// Server/Session: epoch-snapshot isolation property suite.
//
// The load-bearing properties (DESIGN §11): a session pinned to a
// snapshot never observes commits published after it opened — including
// through the columnar path and result-cache hits — aborted batches are
// invisible at every level (contents, stamps, epoch), and every
// concurrent reader's result is bit-identical to evaluating the same
// query single-threaded on a quiesced copy of its snapshot. Runs under
// the `robustness` ctest label, so the TSan/ASan lanes
// (scripts/run_sanitizer_lanes.sh) cover the concurrent tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "gov/fault_injection.h"
#include "graphlog/api.h"
#include "obs/metrics.h"
#include "storage/io.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

using storage::Database;
using storage::LoadFacts;
using storage::Relation;
using testutil::RelationSet;

constexpr const char* kTcQuery =
    "query tc { edge X -> Y : edge+; distinguished X -> Y : tc; }";

/// A chain a..e plus whatever the writer appends later.
constexpr const char* kSeedFacts =
    "edge(a, b).\n"
    "edge(b, c).\n"
    "edge(c, d).\n"
    "edge(d, e).\n";

/// Evaluates kTcQuery single-threaded on a scratch database seeded from
/// `facts` — the quiesced ground truth a session result must match.
std::set<std::string> QuiescedTc(const std::string& facts) {
  Database db;
  EXPECT_TRUE(LoadFacts(facts, &db).ok());
  auto resp = Run(QueryRequest::GraphLog(kTcQuery), &db);
  EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  return RelationSet(db, "tc");
}

// ---------------------------------------------------------------------------
// Commit/epoch mechanics

TEST(ServerTest, EpochAdvancesPerCommitAndAbortsAreInvisible) {
  Server server;
  EXPECT_EQ(server.epoch(), 0u);
  ASSERT_OK_AND_ASSIGN(size_t n,
                       server.Apply(WriteBatch().Facts(kSeedFacts)));
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(server.epoch(), 1u);
  ASSERT_OK(server.Apply(WriteBatch().Insert("edge", {"e", "f"})).status());
  EXPECT_EQ(server.epoch(), 2u);

  // A failing batch moves nothing: not the epoch, not the head snapshot,
  // not the authoritative contents or stamps.
  auto head_before = server.head();
  const Relation* edge = server.database().Find("edge");
  ASSERT_NE(edge, nullptr);
  const uint64_t stamp = edge->data_generation();
  auto bad = server.Apply(WriteBatch()
                              .Insert("edge", {"f", "g"})
                              .Facts("edge(broken.\n"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(server.epoch(), 2u);
  EXPECT_EQ(server.head().get(), head_before.get());
  EXPECT_EQ(edge->size(), 5u);
  EXPECT_EQ(edge->data_generation(), stamp);
}

TEST(ServerTest, AtomicBatchRollsBackClearsAndCreations) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  // Clear an existing relation, create a new one, then fail: both the
  // cleared rows and the pre-batch catalog must come back exactly.
  auto before = RelationSet(server.database(), "edge");
  auto bad = server.Apply(WriteBatch()
                              .Clear("edge")
                              .Facts("brandnew(x, y).\n")
                              .Clear("no_such_relation"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(RelationSet(server.database(), "edge"), before);
  EXPECT_EQ(server.database().Find("brandnew"), nullptr);
  EXPECT_EQ(server.epoch(), 1u);
}

TEST(ServerTest, RollbackDiscardsInBatchInsertsBeforeClear) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  const Relation* edge = server.database().Find("edge");
  ASSERT_NE(edge, nullptr);
  const uint64_t stamp = edge->data_generation();
  auto before = RelationSet(server.database(), "edge");
  // Insert-then-clear-then-fail: the copy saved at clear time already
  // holds the in-batch insert and its bumped stamp; rollback must
  // reinstate the true pre-batch rows and stamp, never the contaminated
  // copy — a phantom row under a moved stamp would be published by the
  // next successful commit and certified by stamp-keyed caches.
  auto bad = server.Apply(WriteBatch()
                              .Insert("edge", {"e", "f"})
                              .Clear("edge")
                              .Clear("no_such_relation"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(RelationSet(server.database(), "edge"), before);
  EXPECT_EQ(server.database().Find("edge")->data_generation(), stamp);
  EXPECT_EQ(server.epoch(), 1u);
}

TEST(ServerTest, SnapshotRetainsUntouchedVersions) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK(server.Apply(WriteBatch().Facts("color(a, red).\n")).status());
  auto s1 = server.head();
  ASSERT_OK(server.Apply(WriteBatch().Facts("color(b, blue).\n")).status());
  auto s2 = server.head();
  // The commit touched only `color`: the `edge` version is shared with
  // the previous snapshot, the `color` version is a fresh copy.
  Symbol edge_sym = server.database().symbols().Lookup("edge");
  Symbol color_sym = server.database().symbols().Lookup("color");
  EXPECT_EQ(s1->relations.at(edge_sym).get(), s2->relations.at(edge_sym).get());
  EXPECT_NE(s1->relations.at(color_sym).get(),
            s2->relations.at(color_sym).get());
}

TEST(ServerTest, AdmissionControlCapsOpenSessions) {
  Server server({.max_sessions = 2});
  ASSERT_OK_AND_ASSIGN(auto s1, server.OpenSession());
  ASSERT_OK_AND_ASSIGN(auto s2, server.OpenSession());
  auto s3 = server.OpenSession();
  EXPECT_EQ(s3.status().code(), StatusCode::kBudgetExceeded);
  s2.reset();  // closing a session frees a slot
  EXPECT_OK(server.OpenSession().status());
}

// ---------------------------------------------------------------------------
// Snapshot isolation

TEST(ServerIsolationTest, PinnedReaderNeverSeesLaterCommits) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK_AND_ASSIGN(auto reader, server.OpenSession());
  const std::set<std::string> expected = QuiescedTc(kSeedFacts);

  ASSERT_OK(reader->Run(QueryRequest::GraphLog(kTcQuery)).status());
  EXPECT_EQ(RelationSet(reader->database(), "tc"), expected);

  // The writer extends the chain; the pinned reader must keep answering
  // from its snapshot.
  ASSERT_OK(server.Apply(WriteBatch().Insert("edge", {"e", "f"})).status());
  ASSERT_OK(reader->Run(QueryRequest::GraphLog(kTcQuery)).status());
  EXPECT_EQ(RelationSet(reader->database(), "tc"), expected);
  EXPECT_EQ(reader->epoch(), 1u);

  // Refresh re-pins to the head: the commit becomes visible.
  ASSERT_OK(reader->Refresh());
  EXPECT_EQ(reader->epoch(), 2u);
  ASSERT_OK(reader->Run(QueryRequest::GraphLog(kTcQuery)).status());
  EXPECT_EQ(RelationSet(reader->database(), "tc"),
            QuiescedTc(std::string(kSeedFacts) + "edge(e, f).\n"));
}

TEST(ServerIsolationTest, PinnedUnderColumnarAndCacheHits) {
  cache::ResultCache rcache;
  Server server({.result_cache = &rcache});
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  SessionOptions so;
  so.defaults.eval.columnar = true;
  ASSERT_OK_AND_ASSIGN(auto reader, server.OpenSession(so));
  const std::set<std::string> expected = QuiescedTc(kSeedFacts);

  ASSERT_OK_AND_ASSIGN(QueryResponse first,
                       reader->Run(QueryRequest::GraphLog(kTcQuery)));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(RelationSet(reader->database(), "tc"), expected);
  EXPECT_GT(reader->csr_cache().stats().builds, 0u);

  // Writer commits; the pinned reader's repeat run — now a result-cache
  // hit over the columnar path — must still serve the snapshot answer.
  ASSERT_OK(server.Apply(WriteBatch().Insert("edge", {"e", "f"})).status());
  ASSERT_OK_AND_ASSIGN(QueryResponse second,
                       reader->Run(QueryRequest::GraphLog(kTcQuery)));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(RelationSet(reader->database(), "tc"), expected);

  // After refresh the EDB stamp moved, so the stale entry cannot serve:
  // the re-run recomputes against the new snapshot.
  ASSERT_OK(reader->Refresh());
  ASSERT_OK_AND_ASSIGN(QueryResponse third,
                       reader->Run(QueryRequest::GraphLog(kTcQuery)));
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(RelationSet(reader->database(), "tc"),
            QuiescedTc(std::string(kSeedFacts) + "edge(e, f).\n"));
}

TEST(ServerIsolationTest, ResultCacheEntriesNeverCrossSessions) {
  cache::ResultCache rcache;
  Server server({.result_cache = &rcache});
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK_AND_ASSIGN(auto a, server.OpenSession());
  ASSERT_OK_AND_ASSIGN(auto b, server.OpenSession());
  // Session databases have distinct uids, so the same query misses in
  // each session once (entries are db-scoped) and hits on its own repeat.
  ASSERT_OK_AND_ASSIGN(auto a1, a->Run(QueryRequest::GraphLog(kTcQuery)));
  EXPECT_FALSE(a1.cache_hit);
  ASSERT_OK_AND_ASSIGN(auto b1, b->Run(QueryRequest::GraphLog(kTcQuery)));
  EXPECT_FALSE(b1.cache_hit);
  ASSERT_OK_AND_ASSIGN(auto a2, a->Run(QueryRequest::GraphLog(kTcQuery)));
  EXPECT_TRUE(a2.cache_hit);
  EXPECT_EQ(RelationSet(a->database(), "tc"), RelationSet(b->database(), "tc"));
}

TEST(ServerIsolationTest, WriterSessionFastForwardsInPlace) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK_AND_ASSIGN(auto session, server.OpenSession());
  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  const uint64_t uid_before = session->database().uid();
  ASSERT_NE(session->database().Find("tc"), nullptr);

  // The session's own write fast-forwards: same private database (uid
  // unchanged), materialized `tc` survives, epoch reaches the commit.
  ASSERT_OK(session->Apply(WriteBatch().Insert("edge", {"e", "f"})).status());
  EXPECT_EQ(session->epoch(), server.epoch());
  EXPECT_EQ(session->database().uid(), uid_before);
  EXPECT_NE(session->database().Find("tc"), nullptr);
  // And the replayed relation's stamp matches the published version, so
  // stamp-keyed caches stay coherent.
  Symbol edge_sym = server.database().symbols().Lookup("edge");
  auto head = server.head();
  const Relation* local = session->database().Find("edge");
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->uid(), head->relations.at(edge_sym)->uid());
  EXPECT_EQ(local->data_generation(),
            head->relations.at(edge_sym)->data_generation());

  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  EXPECT_EQ(RelationSet(session->database(), "tc"),
            QuiescedTc(std::string(kSeedFacts) + "edge(e, f).\n"));
}

TEST(ServerIsolationTest, RefreshAcrossSymbolGrowthRebuilds) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK_AND_ASSIGN(auto session, server.OpenSession());
  // The session interns local symbols (variables, aux predicates)...
  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  const uint64_t uid_before = session->database().uid();
  // ...then a foreign commit interns brand-new server symbols. The ids
  // would collide with the session's local ones, so Refresh must rebuild
  // the private database instead of patching in place.
  ASSERT_OK(server.Apply(WriteBatch().Facts("owns(alice, fido).\n")).status());
  ASSERT_OK(session->Refresh());
  EXPECT_NE(session->database().uid(), uid_before);
  EXPECT_EQ(RelationSet(session->database(), "owns"),
            std::set<std::string>{"alice,fido"});
  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  EXPECT_EQ(RelationSet(session->database(), "tc"), QuiescedTc(kSeedFacts));
}

TEST(ServerIsolationTest, RefreshDropsServerRemovedRelations) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK(server.Apply(WriteBatch().Facts("color(a, red).\n")).status());
  ASSERT_OK_AND_ASSIGN(auto session, server.OpenSession());
  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  ASSERT_NE(session->database().Find("color"), nullptr);
  // The server drops `color` out-of-band and republishes. No new symbols
  // were interned, so Refresh takes the in-place fast path — which must
  // erase the deleted EDB while session-local materializations survive.
  Symbol color_sym = server.database().symbols().Lookup("color");
  ASSERT_TRUE(server.database().Remove(color_sym));
  server.Publish();
  const uint64_t uid_before = session->database().uid();
  ASSERT_OK(session->Refresh());
  EXPECT_EQ(session->database().uid(), uid_before);  // in-place, not rebuilt
  EXPECT_EQ(session->database().Find("color"), nullptr);
  EXPECT_NE(session->database().Find("tc"), nullptr);
}

TEST(ServerIsolationTest, LoadFileFastForwardMatchesPublishedVersion) {
  const std::string path =
      ::testing::TempDir() + "/graphlog_server_test_ff.facts";
  { std::ofstream(path) << "edge(e, f).\nedge(f, g).\n"; }
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  ASSERT_OK_AND_ASSIGN(auto session, server.OpenSession());
  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  const uint64_t uid_before = session->database().uid();

  // A LoadFile batch fast-forwards by replaying the captured file
  // contents (never re-reading disk), so the session relation must land
  // on the same stamp AND the same rows as the published head version.
  ASSERT_OK(session->Apply(WriteBatch().LoadFile(path)).status());
  EXPECT_EQ(session->database().uid(), uid_before);
  EXPECT_EQ(session->epoch(), server.epoch());
  auto head = server.head();
  Symbol edge_sym = server.database().symbols().Lookup("edge");
  const Relation* local = session->database().Find("edge");
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->uid(), head->relations.at(edge_sym)->uid());
  EXPECT_EQ(local->data_generation(),
            head->relations.at(edge_sym)->data_generation());
  EXPECT_EQ(RelationSet(session->database(), "edge"),
            RelationSet(server.database(), "edge"));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Governance and accounting

TEST(ServerGovernanceTest, SessionBudgetAndCancellationGovernQueries) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  SessionOptions so;
  so.budget.max_rounds = 1;
  ASSERT_OK_AND_ASSIGN(auto session, server.OpenSession(so));
  auto tripped = session->Run(QueryRequest::GraphLog(kTcQuery));
  EXPECT_EQ(tripped.status().code(), StatusCode::kBudgetExceeded);

  ASSERT_OK_AND_ASSIGN(auto other, server.OpenSession(so));
  other->Cancel();
  auto cancelled = other->Run(QueryRequest::GraphLog(kTcQuery));
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(other->stats().errors, 1u);
}

TEST(ServerGovernanceTest, ServerFaultInjectorGatesCommits) {
  gov::FaultInjector faults;
  Server server({.faults = &faults});
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  gov::FaultSpec spec;
  spec.trigger_hit = 1;
  faults.Arm("io.load", spec);
  auto r = server.Apply(WriteBatch().Facts("edge(e, f).\n"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(faults.hits("io.load"), 1u);
  EXPECT_EQ(server.epoch(), 1u);
  EXPECT_EQ(testutil::RelationSize(server.database(), "edge"), 4u);
  faults.Reset();
  EXPECT_OK(server.Apply(WriteBatch().Facts("edge(e, f).\n")).status());
  EXPECT_EQ(server.epoch(), 2u);
}

TEST(ServerGovernanceTest, MetricsAccountPerSessionAndServer) {
  obs::MetricsRegistry metrics;
  Server server({.metrics = &metrics});
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());
  SessionOptions so;
  so.name = "alpha";
  ASSERT_OK_AND_ASSIGN(auto session, server.OpenSession(so));
  ASSERT_OK(session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  ASSERT_OK(session->Apply(WriteBatch().Insert("edge", {"e", "f"})).status());
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("server.commits"), 2u);
  EXPECT_EQ(snap.counters.at("server.queries"), 1u);
  EXPECT_EQ(snap.counters.at("server.sessions_opened"), 1u);
  EXPECT_EQ(snap.counters.at("session.alpha.queries"), 1u);
  EXPECT_EQ(snap.gauges.at("server.epoch"), 2);
  EXPECT_EQ(session->stats().queries, 1u);
  EXPECT_EQ(session->stats().writes, 1u);
  // The sessions gauge tracks closes as well as opens.
  EXPECT_EQ(snap.gauges.at("server.sessions"), 1);
  session.reset();
  EXPECT_EQ(metrics.Snapshot().gauges.at("server.sessions"), 0);
}

// ---------------------------------------------------------------------------
// Stamp-at-commit loader (the multi-relation write entry point)

TEST(LoaderStampTest, LoadBumpsEachTouchedRelationOnce) {
  Database db;
  ASSERT_OK(LoadFacts("edge(a, b).\n", &db).status());
  const Relation* edge = db.Find("edge");
  ASSERT_NE(edge, nullptr);
  const uint64_t stamp = edge->data_generation();
  // Many facts across two relations: one committed batch, one stamp bump
  // per touched relation — not one per fact.
  ASSERT_OK(LoadFacts("edge(b, c).\nedge(c, d).\nedge(d, e).\n"
                      "color(a, red).\ncolor(b, blue).\n",
                      &db)
                .status());
  EXPECT_EQ(edge->data_generation(), stamp + 1);
  EXPECT_EQ(db.Find("color")->data_generation(), 1u);
  // A batch of pure duplicates changes nothing, so no stamp moves.
  ASSERT_OK(LoadFacts("edge(b, c).\n", &db).status());
  EXPECT_EQ(edge->data_generation(), stamp + 1);
}

TEST(LoaderStampTest, FailedLoadPublishesNoStamp) {
  Database db;
  ASSERT_OK(LoadFacts(kSeedFacts, &db).status());
  const Relation* edge = db.Find("edge");
  const uint64_t stamp = edge->data_generation();
  // Validation failure (arity clash on the later fact): nothing applied,
  // nothing stamped.
  auto r = LoadFacts("edge(x, y).\nedge(oops).\n", &db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(edge->size(), 4u);
  EXPECT_EQ(edge->data_generation(), stamp);
  // Fault-injected failure at the io.load site: same guarantee.
  gov::FaultInjector faults;
  gov::FaultSpec spec;
  faults.Arm("io.load", spec);
  gov::GovernorContext gov;
  gov.faults = &faults;
  auto injected = LoadFacts("edge(x, y).\n", &db, &gov);
  EXPECT_FALSE(injected.ok());
  EXPECT_EQ(edge->size(), 4u);
  EXPECT_EQ(edge->data_generation(), stamp);
}

// ---------------------------------------------------------------------------
// Concurrency: 1 writer + 4 reader sessions, every reader bit-identical
// to a quiesced single-threaded run over its pinned snapshot.

TEST(ServerConcurrencyTest, ReadersBitIdenticalToQuiescedSnapshotRuns) {
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());

  constexpr int kReaders = 4;
  constexpr int kReaderRounds = 6;
  constexpr int kWriterCommits = 24;
  std::atomic<bool> failed{false};
  std::vector<std::string> errors(kReaders);

  std::thread writer([&] {
    for (int i = 0; i < kWriterCommits; ++i) {
      // Extend the chain n5 -> n6 -> ... so every commit changes the
      // closure, and sprinkle aborted batches between good ones to prove
      // they are invisible to everyone.
      std::string from = i == 0 ? "e" : "n" + std::to_string(i + 4);
      std::string to = "n" + std::to_string(i + 5);
      auto ok = server.Apply(WriteBatch().Insert("edge", {from, to}));
      if (!ok.ok()) failed.store(true);
      auto bad = server.Apply(WriteBatch()
                                  .Insert("edge", {"zz", "zz2"})
                                  .Clear("never_declared"));
      if (bad.ok()) failed.store(true);  // must abort
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int round = 0; round < kReaderRounds && !failed.load(); ++round) {
        auto session_or = server.OpenSession();
        if (!session_or.ok()) {
          errors[r] = session_or.status().ToString();
          failed.store(true);
          return;
        }
        std::unique_ptr<Session> session = std::move(*session_or);
        // Ground truth: the session's materialized EDB, re-evaluated
        // single-threaded on a scratch database. The writer keeps
        // committing while this runs; the pinned session must not care.
        const std::string facts = storage::DumpFacts(session->database());
        const std::set<std::string> expected = QuiescedTc(facts);
        for (int rep = 0; rep < 2; ++rep) {
          auto resp = session->Run(QueryRequest::GraphLog(kTcQuery));
          if (!resp.ok()) {
            errors[r] = resp.status().ToString();
            failed.store(true);
            return;
          }
          auto got = RelationSet(session->database(), "tc");
          if (got != expected) {
            errors[r] = "reader " + std::to_string(r) + " round " +
                        std::to_string(round) +
                        " diverged from quiesced run (" +
                        std::to_string(got.size()) + " vs " +
                        std::to_string(expected.size()) + " tuples)";
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  for (const std::string& e : errors) EXPECT_EQ(e, "");
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(server.epoch(), 1u + kWriterCommits);

  // Quiesced: a fresh session at the final head matches ground truth too.
  ASSERT_OK_AND_ASSIGN(auto final_session, server.OpenSession());
  const std::string final_facts = storage::DumpFacts(final_session->database());
  ASSERT_OK(final_session->Run(QueryRequest::GraphLog(kTcQuery)).status());
  EXPECT_EQ(RelationSet(final_session->database(), "tc"),
            QuiescedTc(final_facts));
}

TEST(ServerConcurrencyTest, ConcurrentReadersShareCacheAndColumnarSafely) {
  cache::ResultCache rcache;
  obs::MetricsRegistry metrics;
  Server server({.metrics = &metrics, .result_cache = &rcache});
  ASSERT_OK(server.Apply(WriteBatch().Facts(kSeedFacts)).status());

  constexpr int kReaders = 4;
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) {
      auto ok = server.Apply(WriteBatch().Insert(
          "edge", {"m" + std::to_string(i), "m" + std::to_string(i + 1)}));
      if (!ok.ok()) failed.store(true);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      SessionOptions so;
      so.defaults.eval.columnar = true;
      auto session_or = server.OpenSession(so);
      if (!session_or.ok()) {
        failed.store(true);
        return;
      }
      std::unique_ptr<Session> session = std::move(*session_or);
      const std::string facts = storage::DumpFacts(session->database());
      const std::set<std::string> expected = QuiescedTc(facts);
      for (int rep = 0; rep < 3; ++rep) {
        auto resp = session->Run(QueryRequest::GraphLog(kTcQuery));
        if (!resp.ok() ||
            RelationSet(session->database(), "tc") != expected) {
          failed.store(true);
          return;
        }
        if (session->Refresh().ok()) {
          // After re-pinning, recompute ground truth for the new snapshot.
          const std::string f2 = storage::DumpFacts(session->database());
          if (f2 != facts) return;  // snapshot moved; this round is done
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace graphlog
