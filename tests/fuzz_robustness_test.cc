// Mutation fuzzing of the text front doors: random byte-level mutations
// of well-formed Datalog programs, GraphLog queries, and fact files must
// never crash the parsers or the engine — every input either evaluates
// or fails with a clean, non-empty Status. Deterministic in its seeds,
// and intended to run under both sanitizer lanes (GRAPHLOG_SANITIZE=
// thread|address), where "no crash" also means "no UB the tools can see".

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "cache/result_cache.h"
#include "cache/view_catalog.h"
#include "columnar/csr.h"
#include "columnar/csr_cache.h"
#include "durability/wal.h"
#include "eval/engine.h"
#include "gov/governor.h"
#include "graphlog/api.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/protocol.h"
#include "server/server.h"
#include "storage/database.h"
#include "storage/io.h"
#include "testing/crash_sweep.h"
#include "testing/random_programs.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

using storage::Database;

/// Applies `n` random byte mutations (overwrite / insert / delete /
/// truncate) to `text`. Deterministic in `rng`.
std::string Mutate(std::string text, int n, std::mt19937_64* rng) {
  // Printable noise plus the grammar's own punctuation, so mutations hit
  // both lexer edges and parser edges.
  constexpr char kBytes[] = "(),.:-+*?!{}&|=_ \t\nabcXY019@\\\"%";
  for (int i = 0; i < n && !text.empty(); ++i) {
    size_t pos = (*rng)() % text.size();
    switch ((*rng)() % 4) {
      case 0:
        text[pos] = kBytes[(*rng)() % (sizeof(kBytes) - 1)];
        break;
      case 1:
        text.insert(pos, 1, kBytes[(*rng)() % (sizeof(kBytes) - 1)]);
        break;
      case 2:
        text.erase(pos, 1);
        break;
      default:
        text.resize(pos);  // truncate: unbalanced braces, cut tokens
        break;
    }
  }
  return text;
}

/// A small EDB for the random linear programs (e1/2, e2/2, n1/1) plus a
/// graph for GraphLog closure queries.
void SeedDatabase(Database* db) {
  ASSERT_OK(storage::LoadFacts("e1(a, b). e1(b, c). e1(c, d).\n"
                               "e2(b, a). e2(d, c).\n"
                               "n1(a). n1(c).\n"
                               "edge(a, b). edge(b, c). edge(c, a).",
                               db)
                .status());
}

/// Runs mutated text through the full front door. The only acceptable
/// outcomes are a clean success or a clean error; anything else (crash,
/// hang, empty error) fails the test. A governor bounds runaway
/// mutants — a mutation may legitimately produce an expensive program.
void RunMutant(QueryRequest req, const std::string& label) {
  Database db;
  SeedDatabase(&db);
  gov::GovernorContext g;
  g.deadline = gov::Deadline::AfterMillis(10'000);
  g.budget.max_rounds = 200;
  g.budget.max_result_rows = 200'000;
  req.options.eval.governor = &g;
  req.options.eval.max_iterations = 500;
  auto r = graphlog::Run(req, &db);
  if (!r.ok()) {
    EXPECT_NE(r.status().code(), StatusCode::kOk) << label;
    EXPECT_FALSE(r.status().message().empty()) << label;
  }
}

TEST(FuzzRobustnessTest, MutatedDatalogProgramsNeverCrash) {
  testing::RandomProgramOptions gen;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const std::string base = testing::RandomLinearProgram(gen, seed);
    std::mt19937_64 rng(seed * 7919);
    for (int round = 0; round < 8; ++round) {
      const std::string mutant =
          Mutate(base, 1 + static_cast<int>(rng() % 6), &rng);
      RunMutant(QueryRequest::Datalog(mutant),
                "datalog seed " + std::to_string(seed) + " round " +
                    std::to_string(round));
    }
  }
}

TEST(FuzzRobustnessTest, MutatedGraphLogQueriesNeverCrash) {
  const std::string base =
      "query t { edge X -> Y : edge+; distinguished X -> Y : t; }\n"
      "query s { edge X -> Y : (edge.edge)+; n1 X;"
      " distinguished X -> Y : s; }";
  std::mt19937_64 rng(0x5eed);
  for (int round = 0; round < 120; ++round) {
    const std::string mutant =
        Mutate(base, 1 + static_cast<int>(rng() % 8), &rng);
    RunMutant(QueryRequest::GraphLog(mutant),
              "graphlog round " + std::to_string(round));
  }
}

TEST(FuzzRobustnessTest, MutatedFactFilesNeverCrashOrPartiallyApply) {
  const std::string base =
      "from(106, toronto).\ndeparture(106, 1305).\narrives(106, ottawa).\n"
      "price(106, 3900).\n";
  std::mt19937_64 rng(424242);
  for (int round = 0; round < 200; ++round) {
    const std::string mutant =
        Mutate(base, 1 + static_cast<int>(rng() % 10), &rng);
    Database db;
    auto r = storage::LoadFacts(mutant, &db);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
      // Transactional: a failed load applies nothing.
      EXPECT_TRUE(db.relations().empty()) << mutant;
    }
  }
}

// ---------------------------------------------------------------------------
// Cache/view coherence under random interleavings. This is robustness of
// the caching subsystem rather than the parsers: any schedule of fact
// insertions, view refreshes, and cached query evaluations must leave
// query answers identical to cold recomputation over the same facts, and
// a result-cache hit must not mutate the database at all.

/// Every relation's rows in insertion order — order-sensitive, unlike
/// testutil::RelationSet, so it detects any write a pure serve performs.
std::map<std::string, std::vector<std::string>> ExactContents(
    const Database& db) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [name, rel] : db.relations()) {
    std::vector<std::string>& rows = out[db.symbols().name(name)];
    for (const auto& row : rel.rows()) {
      std::string s;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) s += ",";
        s += row[i].ToString(db.symbols());
      }
      rows.push_back(s);
    }
  }
  return out;
}

TEST(FuzzRobustnessTest, InterleavedCacheViewOpsMatchColdRecomputation) {
  const std::string kViewText =
      "query vtc { edge X -> Y : edge+; distinguished X -> Y : vtc; }";
  const std::string kHopText =
      "query hop { edge X -> Z : edge edge; distinguished X -> Z : hop; }";
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);

    Database hot;
    cache::ResultCache rcache;
    cache::ViewCatalog views;
    QueryOptions copts;
    copts.cache.result_cache = &rcache;
    copts.cache.views = &views;

    // Everything ever inserted, in order, so a cold mirror can be replayed.
    std::vector<std::pair<std::string, std::string>> fact_log;
    auto insert_random_edge = [&]() {
      std::string a = "n" + std::to_string(rng() % 8);
      std::string b = "n" + std::to_string(rng() % 8);
      EXPECT_OK(hot.AddFact(
          "edge", {Value::Sym(hot.Intern(a)), Value::Sym(hot.Intern(b))}));
      fact_log.emplace_back(a, b);
    };
    auto cold_answer = [&](const std::string& text, const char* pred) {
      Database cold;
      for (const auto& [a, b] : fact_log) {
        EXPECT_OK(cold.AddFact("edge", {Value::Sym(cold.Intern(a)),
                                        Value::Sym(cold.Intern(b))}));
      }
      EXPECT_OK(graphlog::Run(QueryRequest::GraphLog(text), &cold).status());
      return testutil::RelationSet(cold, pred);
    };
    auto run_cached = [&](const std::string& text) {
      QueryRequest req = QueryRequest::GraphLog(text);
      req.options = copts;
      auto r = graphlog::Run(req, &hot);
      EXPECT_OK(r.status());
      return std::move(r).ValueOrDie();
    };

    for (int i = 0; i < 3; ++i) insert_random_edge();
    ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                         MakeViewDefinition("vtc", kViewText, &hot, copts));
    ASSERT_OK(views.Define(std::move(def), &hot));

    for (int op = 0; op < 24; ++op) {
      SCOPED_TRACE("op " + std::to_string(op));
      switch (rng() % 4) {
        case 0:
          insert_random_edge();
          break;
        case 1:
          ASSERT_OK(views.RefreshAll(&hot));
          break;
        case 2: {
          // The view's own query: always answered from the catalog,
          // refreshed on demand, and equal to cold recomputation (as a
          // set — incremental maintenance may order rows differently).
          QueryResponse r = run_cached(kViewText);
          EXPECT_TRUE(r.served_from_view);
          EXPECT_EQ(testutil::RelationSet(hot, "vtc"),
                    cold_answer(kViewText, "vtc"));
          break;
        }
        default: {
          // A non-view query exercises the result cache. Hits must be
          // pure serves: bit-identical database before and after.
          auto before = ExactContents(hot);
          QueryResponse r = run_cached(kHopText);
          EXPECT_FALSE(r.served_from_view);
          if (r.cache_hit) EXPECT_EQ(ExactContents(hot), before);
          EXPECT_EQ(testutil::RelationSet(hot, "hop"),
                    cold_answer(kHopText, "hop"));
          break;
        }
      }
    }
  }
}

TEST(FuzzRobustnessTest, InterleavedMutationsNeverServeStaleCsr) {
  // Random insert/clear/truncate/drop-index interleavings against a
  // shared CsrCache: after every operation, the snapshot served by Get()
  // must decode to exactly the relation's current rows — a stale serve
  // is the one bug class the generation stamp exists to kill.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
    Database db;
    ASSERT_OK(db.AddFact("edge", {Value::Int(0), Value::Int(1)}));
    storage::Relation* rel = db.FindMutable(db.Intern("edge"));
    ASSERT_NE(rel, nullptr);
    columnar::CsrCache cache;

    for (int op = 0; op < 40; ++op) {
      SCOPED_TRACE("op " + std::to_string(op));
      switch (rng() % 8) {
        case 0:
          rel->Clear();
          break;
        case 1:
          rel->TruncateTo(rng() % (rel->size() + 1));
          break;
        case 2:
          rel->DropIndexes();  // must NOT invalidate the snapshot
          break;
        default:
          rel->Insert(storage::Tuple{Value::Int(int64_t(rng() % 12)),
                                     Value::Int(int64_t(rng() % 12))});
          break;
      }
      ASSERT_OK_AND_ASSIGN(auto csr, cache.Get(*rel));
      ASSERT_EQ(csr->num_edges(), rel->size());
      std::vector<storage::Tuple> decoded;
      for (uint32_t u = 0; u < csr->num_nodes(); ++u) {
        for (uint32_t t : csr->Fwd(u)) {
          decoded.push_back(storage::Tuple{csr->values[u], csr->values[t]});
        }
      }
      std::sort(decoded.begin(), decoded.end(), storage::TupleLess());
      EXPECT_EQ(decoded, rel->SortedRows()) << "stale CSR served";
    }
    EXPECT_GT(cache.stats().invalidations, 0u);
  }
}

TEST(FuzzRobustnessTest, ColumnarEngineMatchesRowEngineUnderInterleaving) {
  // Random linear programs evaluated repeatedly while the EDB mutates
  // between runs, columnar sharing one CsrCache across every run (so
  // reuse and invalidation both happen). The two engine paths must agree
  // on every relation after every round.
  testing::RandomProgramOptions gen;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed * 0x51afd34ca1ULL);
    const std::string program = testing::RandomLinearProgram(gen, seed);

    Database row_db, col_db;
    columnar::CsrCache cache;
    auto mutate_both = [&](Database* a, Database* b) {
      const std::string x = "m" + std::to_string(rng() % 9);
      const std::string y = "m" + std::to_string(rng() % 9);
      const char* pred = (rng() % 2) == 0 ? "e1" : "e2";
      for (Database* d : {a, b}) {
        EXPECT_OK(d->AddFact(
            pred, {Value::Sym(d->Intern(x)), Value::Sym(d->Intern(y))}));
      }
    };
    for (Database* d : {&row_db, &col_db}) {
      EXPECT_OK(storage::LoadFacts("e1(a, b). e2(b, a). n1(a).", d)
                    .status());
    }
    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      for (int i = 0; i < 3; ++i) mutate_both(&row_db, &col_db);

      eval::EvalOptions row_opts;
      row_opts.max_iterations = 200;
      ASSERT_OK(eval::EvaluateText(program, &row_db, row_opts).status());

      eval::EvalOptions col_opts;
      col_opts.max_iterations = 200;
      col_opts.columnar = true;
      col_opts.csr_cache = &cache;
      col_opts.num_threads = (round % 2) == 0 ? 1 : 4;
      ASSERT_OK(eval::EvaluateText(program, &col_db, col_opts).status());

      for (const auto& [sym, relation] : row_db.relations()) {
        const std::string name = row_db.symbols().name(sym);
        EXPECT_EQ(testutil::RelationSet(row_db, name),
                  testutil::RelationSet(col_db, name))
            << "relation " << name;
      }
    }
    EXPECT_GT(cache.stats().builds, 0u);
  }
}

TEST(FuzzRobustnessTest, CommitCrashRecoverMatchesCommittedPrefix) {
  // Random streams of write batches against a durable server, crashed by
  // truncating the WAL at a random byte offset. Whatever whole records
  // survive the cut define a committed prefix; recovery must reproduce
  // exactly the state of a reference server that applied only that
  // prefix — never a partial batch, never a dropped committed one.
  namespace fs = std::filesystem;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed * 0xd1342543de82ef95ULL);
    const std::string dir = ::testing::TempDir() + "/graphlog_fuzz_crash_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(seed);
    std::error_code ec;
    fs::remove_all(dir, ec);

    // Phase 1: commit a random op stream, recording the WAL byte boundary
    // after every commit. Relations keep a fixed arity of 2 so every
    // batch is well-formed; Clear only targets relations already written.
    std::vector<WriteBatch> committed;
    std::vector<uint64_t> boundaries;
    std::vector<std::string> live_fingerprints;
    {
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<Server> server, Server::Open(dir));
      boundaries.push_back(server->wal()->tail_offset());
      live_fingerprints.push_back(
          testing::DatabaseFingerprint(server->database()));
      std::vector<std::string> written;  // relations eligible for Clear
      const size_t n_batches = 4 + rng() % 5;
      for (size_t b = 0; b < n_batches; ++b) {
        WriteBatch batch;
        const size_t n_ops = 1 + rng() % 3;
        for (size_t op = 0; op < n_ops; ++op) {
          const std::string rel = "e" + std::to_string(rng() % 3);
          switch (rng() % 4) {
            case 0:
              if (!written.empty()) {
                batch.Clear(written[rng() % written.size()]);
                break;
              }
              [[fallthrough]];
            case 1:
              batch.Facts(rel + "(n" + std::to_string(rng() % 7) + ", " +
                          std::to_string(int64_t(rng() % 100)) + ").");
              written.push_back(rel);
              break;
            default:
              batch.Insert(rel, {"n" + std::to_string(rng() % 7),
                                 "n" + std::to_string(rng() % 7)});
              written.push_back(rel);
              break;
          }
        }
        ASSERT_OK(server->Apply(batch).status());
        committed.push_back(batch);
        boundaries.push_back(server->wal()->tail_offset());
        live_fingerprints.push_back(
            testing::DatabaseFingerprint(server->database()));
      }
    }
    const std::string wal_path = dir + "/wal.log";
    std::string pristine;
    {
      std::ifstream in(wal_path, std::ios::binary);
      ASSERT_TRUE(in.is_open());
      pristine.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(pristine.size(), boundaries.back());

    // Phase 2: crash at random offsets (plus the two extremes), recover,
    // and compare against a reference server that replays exactly the
    // committed prefix the surviving records imply.
    std::vector<uint64_t> cuts = {0, pristine.size()};
    for (int t = 0; t < 12; ++t) cuts.push_back(rng() % (pristine.size() + 1));
    for (const uint64_t cut : cuts) {
      SCOPED_TRACE("crash at byte " + std::to_string(cut));
      size_t prefix = 0;
      while (prefix + 1 < boundaries.size() && boundaries[prefix + 1] <= cut) {
        ++prefix;
      }
      {
        std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
        out.write(pristine.data(), static_cast<std::streamsize>(cut));
        ASSERT_TRUE(out.good());
      }
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<Server> recovered,
                           Server::Open(dir));
      Server reference;
      for (size_t i = 0; i < prefix; ++i) {
        ASSERT_OK(reference.Apply(committed[i]).status());
      }
      EXPECT_EQ(testing::DatabaseFingerprint(recovered->database()),
                testing::DatabaseFingerprint(reference.database()));
      EXPECT_EQ(testing::DatabaseFingerprint(recovered->database()),
                live_fingerprints[prefix]);
      // A torn tail must be physically repaired back to the boundary.
      recovered.reset();
      EXPECT_EQ(fs::file_size(wal_path), boundaries[prefix]);
    }
    fs::remove_all(dir, ec);
  }
}

TEST(FuzzRobustnessTest, MutatedWireFramesNeverCrashServerOrPartiallyApply) {
  // Random byte-level mutations of a valid client conversation, replayed
  // over raw TCP against a live NetServer. The server must answer every
  // mutant with an error frame or a clean close — never crash, never
  // hang, and never partially apply the write batch the conversation
  // carries: the batch adds exactly 3 rows, so the relation's row count
  // stays a multiple of 3 after every round.
  Server server;
  ASSERT_OK(server.Apply(WriteBatch().Facts("edge(a, b). edge(b, c)."))
                .status());
  auto started = net::NetServer::Start(&server, {});
  ASSERT_OK(started.status());
  auto& ns = **started;

  ASSERT_OK_AND_ASSIGN(auto watcher, server.OpenSession());
  const auto wire_rows = [&]() -> size_t {
    EXPECT_OK(watcher->Refresh());
    const Symbol s = watcher->database().symbols().Lookup("wirebatch");
    if (s == kNoSymbol) return 0;
    const auto* rel = watcher->database().Find(s);
    return rel == nullptr ? 0 : rel->size();
  };

  std::mt19937_64 rng(0xf8a3e5);
  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE("wire round " + std::to_string(round));

    // A valid conversation: hello, open session, apply a 3-row batch
    // unique to this round, ping.
    const std::string r = "r" + std::to_string(round);
    std::string stream;
    {
      net::Frame hello;
      hello.type = net::MsgType::kHello;
      net::EncodeHello(net::WireHello{}, &hello.body);
      stream += net::SerializeFrame(hello);
      net::Frame open;
      open.type = net::MsgType::kOpenSession;
      net::EncodeSessionOpen(net::WireSessionOpen{}, &open.body);
      stream += net::SerializeFrame(open);
      net::Frame apply;
      apply.type = net::MsgType::kApplyBatch;
      ASSERT_OK(durability::BatchCodec::Encode(
          WriteBatch().Facts("wirebatch(" + r + "a, 1). wirebatch(" + r +
                             "b, 2). wirebatch(" + r + "c, 3)."),
          {}, &apply.body));
      stream += net::SerializeFrame(apply);
      net::Frame ping;
      ping.type = net::MsgType::kPing;
      stream += net::SerializeFrame(ping);
    }
    const std::string mutant =
        Mutate(stream, 1 + static_cast<int>(rng() % 8), &rng);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ns.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Ship the whole mutant, then half-close so a server parked inside a
    // mis-framed read sees EOF instead of waiting forever.
    (void)::send(fd, mutant.data(), mutant.size(), MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the server answers until it closes or the receive
    // timeout trips; either way the conversation terminates.
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    }
    ::close(fd);

    EXPECT_EQ(wire_rows() % 3, 0u) << "partially applied batch";
  }

  // The server survived the campaign: a well-behaved client still gets
  // full service.
  auto client = net::Client::Connect("127.0.0.1", ns.port());
  ASSERT_OK(client.status());
  ASSERT_OK((*client)->Ping());
  ASSERT_OK((*client)->OpenSession().status());
  net::WireQuery q;
  q.text = "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";
  ASSERT_OK((*client)->Run(q).status());
  ns.Stop();
}

}  // namespace
}  // namespace graphlog
