// Mutation fuzzing of the text front doors: random byte-level mutations
// of well-formed Datalog programs, GraphLog queries, and fact files must
// never crash the parsers or the engine — every input either evaluates
// or fails with a clean, non-empty Status. Deterministic in its seeds,
// and intended to run under both sanitizer lanes (GRAPHLOG_SANITIZE=
// thread|address), where "no crash" also means "no UB the tools can see".

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "gov/governor.h"
#include "graphlog/api.h"
#include "storage/database.h"
#include "storage/io.h"
#include "testing/random_programs.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

using storage::Database;

/// Applies `n` random byte mutations (overwrite / insert / delete /
/// truncate) to `text`. Deterministic in `rng`.
std::string Mutate(std::string text, int n, std::mt19937_64* rng) {
  // Printable noise plus the grammar's own punctuation, so mutations hit
  // both lexer edges and parser edges.
  constexpr char kBytes[] = "(),.:-+*?!{}&|=_ \t\nabcXY019@\\\"%";
  for (int i = 0; i < n && !text.empty(); ++i) {
    size_t pos = (*rng)() % text.size();
    switch ((*rng)() % 4) {
      case 0:
        text[pos] = kBytes[(*rng)() % (sizeof(kBytes) - 1)];
        break;
      case 1:
        text.insert(pos, 1, kBytes[(*rng)() % (sizeof(kBytes) - 1)]);
        break;
      case 2:
        text.erase(pos, 1);
        break;
      default:
        text.resize(pos);  // truncate: unbalanced braces, cut tokens
        break;
    }
  }
  return text;
}

/// A small EDB for the random linear programs (e1/2, e2/2, n1/1) plus a
/// graph for GraphLog closure queries.
void SeedDatabase(Database* db) {
  ASSERT_OK(storage::LoadFacts("e1(a, b). e1(b, c). e1(c, d).\n"
                               "e2(b, a). e2(d, c).\n"
                               "n1(a). n1(c).\n"
                               "edge(a, b). edge(b, c). edge(c, a).",
                               db)
                .status());
}

/// Runs mutated text through the full front door. The only acceptable
/// outcomes are a clean success or a clean error; anything else (crash,
/// hang, empty error) fails the test. A governor bounds runaway
/// mutants — a mutation may legitimately produce an expensive program.
void RunMutant(QueryRequest req, const std::string& label) {
  Database db;
  SeedDatabase(&db);
  gov::GovernorContext g;
  g.deadline = gov::Deadline::AfterMillis(10'000);
  g.budget.max_rounds = 200;
  g.budget.max_result_rows = 200'000;
  req.options.eval.governor = &g;
  req.options.eval.max_iterations = 500;
  auto r = graphlog::Run(req, &db);
  if (!r.ok()) {
    EXPECT_NE(r.status().code(), StatusCode::kOk) << label;
    EXPECT_FALSE(r.status().message().empty()) << label;
  }
}

TEST(FuzzRobustnessTest, MutatedDatalogProgramsNeverCrash) {
  testing::RandomProgramOptions gen;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const std::string base = testing::RandomLinearProgram(gen, seed);
    std::mt19937_64 rng(seed * 7919);
    for (int round = 0; round < 8; ++round) {
      const std::string mutant =
          Mutate(base, 1 + static_cast<int>(rng() % 6), &rng);
      RunMutant(QueryRequest::Datalog(mutant),
                "datalog seed " + std::to_string(seed) + " round " +
                    std::to_string(round));
    }
  }
}

TEST(FuzzRobustnessTest, MutatedGraphLogQueriesNeverCrash) {
  const std::string base =
      "query t { edge X -> Y : edge+; distinguished X -> Y : t; }\n"
      "query s { edge X -> Y : (edge.edge)+; n1 X;"
      " distinguished X -> Y : s; }";
  std::mt19937_64 rng(0x5eed);
  for (int round = 0; round < 120; ++round) {
    const std::string mutant =
        Mutate(base, 1 + static_cast<int>(rng() % 8), &rng);
    RunMutant(QueryRequest::GraphLog(mutant),
              "graphlog round " + std::to_string(round));
  }
}

TEST(FuzzRobustnessTest, MutatedFactFilesNeverCrashOrPartiallyApply) {
  const std::string base =
      "from(106, toronto).\ndeparture(106, 1305).\narrives(106, ottawa).\n"
      "price(106, 3900).\n";
  std::mt19937_64 rng(424242);
  for (int round = 0; round < 200; ++round) {
    const std::string mutant =
        Mutate(base, 1 + static_cast<int>(rng() % 10), &rng);
    Database db;
    auto r = storage::LoadFacts(mutant, &db);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
      // Transactional: a failed load applies nothing.
      EXPECT_TRUE(db.relations().empty()) << mutant;
    }
  }
}

}  // namespace
}  // namespace graphlog
