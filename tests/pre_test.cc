// Tests for path regular expressions (Definition 2.8): parsing, variable
// analysis, and equality expansion.

#include <gtest/gtest.h>

#include <functional>

#include "graphlog/pre.h"
#include "tests/test_util.h"

namespace graphlog::gl {
namespace {

TEST(PreParserTest, PlainLiteral) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("descendant", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kAtom);
  EXPECT_EQ(syms.name(e.predicate), "descendant");
  EXPECT_TRUE(e.params.empty());
}

TEST(PreParserTest, ClosureLiteral) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("descendant+", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kPlus);
  EXPECT_EQ(e.children[0].kind, PathExpr::Kind::kAtom);
}

TEST(PreParserTest, ParamsRequireAdjacency) {
  SymbolTable syms;
  // p(D) is an atom with a parameter...
  ASSERT_OK_AND_ASSIGN(PathExpr e1, ParsePathExpr("p(D)", &syms));
  EXPECT_EQ(e1.kind, PathExpr::Kind::kAtom);
  ASSERT_EQ(e1.params.size(), 1u);
  // ...but `p (q)` is p composed with q.
  ASSERT_OK_AND_ASSIGN(PathExpr e2, ParsePathExpr("p (q)", &syms));
  EXPECT_EQ(e2.kind, PathExpr::Kind::kSeq);
}

TEST(PreParserTest, Figure5Expression) {
  SymbolTable syms;
  // The Figure 5 edge: ancestors through father or mother (hospital
  // projected out), then friend, with residence on the target node.
  ASSERT_OK_AND_ASSIGN(PathExpr e,
                       ParsePathExpr("(father | mother(_))* friend", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kSeq);
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[0].kind, PathExpr::Kind::kStar);
  EXPECT_EQ(e.children[0].children[0].kind, PathExpr::Kind::kAlt);
  EXPECT_EQ(e.children[1].kind, PathExpr::Kind::kAtom);
}

TEST(PreParserTest, InversionAndComposition) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e,
                       ParsePathExpr("(-from) feasible+ to", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kSeq);
  ASSERT_EQ(e.children.size(), 3u);
  EXPECT_EQ(e.children[0].kind, PathExpr::Kind::kInverse);
  EXPECT_EQ(e.children[1].kind, PathExpr::Kind::kPlus);
}

TEST(PreParserTest, NegatedClosure) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("!descendant+", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kNegate);
  EXPECT_EQ(e.children[0].kind, PathExpr::Kind::kPlus);
  EXPECT_FALSE(e.HasNestedNegation());
}

TEST(PreParserTest, NestedNegationDetected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p (!q)", &syms));
  EXPECT_TRUE(e.HasNestedNegation());
}

TEST(PreParserTest, AlternationPrecedenceIsLowest) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("a b | c", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kAlt);
  EXPECT_EQ(e.children[0].kind, PathExpr::Kind::kSeq);
  EXPECT_EQ(e.children[1].kind, PathExpr::Kind::kAtom);
}

TEST(PreParserTest, EqualsAndOptional) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("= | p?", &syms));
  EXPECT_EQ(e.kind, PathExpr::Kind::kAlt);
  EXPECT_EQ(e.children[0].kind, PathExpr::Kind::kEquals);
  EXPECT_EQ(e.children[1].kind, PathExpr::Kind::kOptional);
}

TEST(PreParserTest, RoundTripThroughToString) {
  SymbolTable syms;
  for (const char* text :
       {"descendant+", "(father | mother(_))* friend",
        "(-from) feasible+ to", "!descendant+", "a (b | c)+ d?",
        "in-module ((calls-local)* calls-extn -(in-module))+"}) {
    ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr(text, &syms));
    std::string printed = e.ToString(syms);
    ASSERT_OK_AND_ASSIGN(PathExpr e2, ParsePathExpr(printed, &syms));
    EXPECT_EQ(printed, e2.ToString(syms)) << "for input: " << text;
  }
}

TEST(PreVarsTest, SharedVsGhostInAlternation) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p(D) | q(D, H)", &syms));
  Symbol d = syms.Lookup("D"), h = syms.Lookup("H");
  EXPECT_EQ(e.SharedVariables(), (std::vector<Symbol>{d}));
  EXPECT_EQ(e.GhostVariables(), (std::vector<Symbol>{h}));
}

TEST(PreVarsTest, SeqUnionsVariables) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p(A) q(B)", &syms));
  EXPECT_EQ(e.SharedVariables().size(), 2u);
  EXPECT_TRUE(e.GhostVariables().empty());
}

TEST(PreVarsTest, ClosureThreadsItsVariables) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p(D)+", &syms));
  ASSERT_EQ(e.SharedVariables().size(), 1u);
  EXPECT_EQ(syms.name(e.SharedVariables()[0]), "D");
}

TEST(PreVarsTest, WildcardIsNotAVariable) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p(_)+", &syms));
  EXPECT_TRUE(e.SharedVariables().empty());
}

// ---------------------------------------------------------------------------
// Equality expansion

TEST(ExpandTest, AtomIsItself) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_FALSE(x.has_identity);
  ASSERT_EQ(x.alternatives.size(), 1u);
}

TEST(ExpandTest, StarBecomesIdentityPlusClosure) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p*", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_TRUE(x.has_identity);
  ASSERT_EQ(x.alternatives.size(), 1u);
  EXPECT_EQ(x.alternatives[0].kind, PathExpr::Kind::kPlus);
}

TEST(ExpandTest, OptionalBecomesIdentityPlusSelf) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("p?", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_TRUE(x.has_identity);
  ASSERT_EQ(x.alternatives.size(), 1u);
  EXPECT_EQ(x.alternatives[0].kind, PathExpr::Kind::kAtom);
}

TEST(ExpandTest, SeqWithOptionalDistributes) {
  SymbolTable syms;
  // a b? == a | a b
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("a b?", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_FALSE(x.has_identity);
  EXPECT_EQ(x.alternatives.size(), 2u);
}

TEST(ExpandTest, StarInsideClosureCollapses) {
  SymbolTable syms;
  // (p*)+ == = | p+
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("(p*)+", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_TRUE(x.has_identity);
  ASSERT_EQ(x.alternatives.size(), 1u);
  EXPECT_EQ(x.alternatives[0].kind, PathExpr::Kind::kPlus);
  // The inner expression of the + must be =-free.
  EXPECT_EQ(x.alternatives[0].children[0].kind, PathExpr::Kind::kAtom);
}

TEST(ExpandTest, PureEqualsIsIdentityOnly) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("=", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_TRUE(x.has_identity);
  EXPECT_TRUE(x.alternatives.empty());
}

TEST(ExpandTest, InverseDistributes) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e, ParsePathExpr("-(p | q?)", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  EXPECT_TRUE(x.has_identity);
  EXPECT_EQ(x.alternatives.size(), 2u);
  for (const PathExpr& a : x.alternatives) {
    EXPECT_EQ(a.kind, PathExpr::Kind::kInverse);
  }
}

TEST(ExpandTest, AlternativesAreEqualsFree) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(PathExpr e,
                       ParsePathExpr("(a? b*)+ (c | =)", &syms));
  ASSERT_OK_AND_ASSIGN(ExpandedPre x, ExpandEquality(e));
  // Sanity: no kEquals / kStar / kOptional anywhere in the alternatives.
  std::function<bool(const PathExpr&)> clean = [&](const PathExpr& p) {
    if (p.kind == PathExpr::Kind::kEquals ||
        p.kind == PathExpr::Kind::kStar ||
        p.kind == PathExpr::Kind::kOptional) {
      return false;
    }
    for (const PathExpr& c : p.children) {
      if (!clean(c)) return false;
    }
    return true;
  };
  for (const PathExpr& a : x.alternatives) {
    EXPECT_TRUE(clean(a)) << a.ToString(syms);
  }
}

}  // namespace
}  // namespace graphlog::gl
