// End-to-end GraphLog tests: the paper's own example queries, evaluated
// through parse -> validate -> lambda-translate -> stratified Datalog.

#include <gtest/gtest.h>

#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::gl {
namespace {

using storage::Database;
using testutil::RelationSet;
using testutil::RelationSize;

/// Evaluates GraphLog text through the unified Run() API, handing back the
/// stats like the retired gl::EvaluateGraphLogText wrapper did.
Result<QueryStats> EvalText(std::string text, Database* db) {
  GRAPHLOG_ASSIGN_OR_RETURN(
      QueryResponse resp, Run(QueryRequest::GraphLog(std::move(text)), db));
  return std::move(resp.stats);
}

/// A small family: grandparents ann&art -> parents bob,bea -> kids cid,cora.
/// descendant(ancestor, descendant).
Database FamilyDb() {
  Database db;
  for (const char* p : {"ann", "art", "bob", "bea", "cid", "cora", "zoe"}) {
    EXPECT_OK(db.AddSymFact("person", {p}));
  }
  EXPECT_OK(db.AddSymFact("descendant", {"ann", "bob"}));
  EXPECT_OK(db.AddSymFact("descendant", {"art", "bea"}));
  EXPECT_OK(db.AddSymFact("descendant", {"bob", "cid"}));
  EXPECT_OK(db.AddSymFact("descendant", {"bea", "cora"}));
  return db;
}

TEST(GraphLogEngineTest, Figure2DescendantsQuery) {
  // "The descendants of P1 which are not descendants of P2."
  Database db = FamilyDb();
  ASSERT_OK_AND_ASSIGN(
      QueryStats stats,
      EvalText("query not-desc-of {\n"
                           "  node P2 [person];\n"
                           "  edge P1 -> P3 : descendant+;\n"
                           "  edge P2 -> P3 : !descendant+;\n"
                           "  distinguished P1 -> P3 : not-desc-of(P2);\n"
                           "}\n",
                           &db));
  EXPECT_EQ(stats.graphs_translated, 1u);
  auto res = RelationSet(db, "not-desc-of");
  // bob is a descendant of ann; bob is not a descendant of art.
  EXPECT_TRUE(res.count("ann,bob,art"));
  // cid is a descendant of ann (via bob) and not of art/bea.
  EXPECT_TRUE(res.count("ann,cid,art"));
  EXPECT_TRUE(res.count("ann,cid,bea"));
  // but cid IS a descendant of bob, so (ann, cid, bob) is excluded.
  EXPECT_FALSE(res.count("ann,cid,bob"));
  // (ann, cid, ann): cid descends from ann, so excluded.
  EXPECT_FALSE(res.count("ann,cid,ann"));
}

TEST(GraphLogEngineTest, Figure3TranslationShape) {
  // The lambda translation of Figure 2 must match Figure 3: one main rule
  // over descendant-tc plus the two TC rules.
  Database db = FamilyDb();
  ASSERT_OK_AND_ASSIGN(
      GraphicalQuery q,
      ParseGraphicalQuery("query not-desc-of {\n"
                          "  node P2 [person];\n"
                          "  edge P1 -> P3 : descendant+;\n"
                          "  edge P2 -> P3 : !descendant+;\n"
                          "  distinguished P1 -> P3 : not-desc-of(P2);\n"
                          "}\n",
                          &db.symbols()));
  ASSERT_OK_AND_ASSIGN(Translation t, Translate(q, &db.symbols()));
  // 1 main rule + 2 TC rules for each of the two closure edges (the
  // negated closure reuses a separately generated closure predicate).
  ASSERT_EQ(t.program.rules.size(), 5u);
  std::string text = t.program.ToString(db.symbols());
  EXPECT_NE(text.find("descendant-tc"), std::string::npos);
  EXPECT_NE(text.find("!descendant-tc"), std::string::npos);
  EXPECT_NE(text.find("person(P2)"), std::string::npos);
}

TEST(GraphLogEngineTest, Figure4FeasibleConnections) {
  Database db;
  auto mkflight = [&](const char* f, const char* from, const char* to,
                      int dep, int arr) {
    EXPECT_OK(db.AddSymFact("from", {f, from}));
    EXPECT_OK(db.AddSymFact("to", {f, to}));
    EXPECT_OK(db.AddFact(
        "departure", {Value::Sym(db.Intern(f)), Value::Int(dep)}));
    EXPECT_OK(db.AddFact(
        "arrival", {Value::Sym(db.Intern(f)), Value::Int(arr)}));
  };
  // toronto -> montreal -> paris, plus one infeasible (too early) leg.
  mkflight("f1", "toronto", "montreal", 540, 600);
  mkflight("f2", "montreal", "paris", 700, 1100);
  mkflight("f3", "montreal", "paris", 550, 1000);  // departs before f1 lands
  ASSERT_OK(
      EvalText(
          "query feasible {\n"
          "  edge F1 -> A1 : arrival;\n"
          "  edge F2 -> D2 : departure;\n"
          "  edge A1 -> D2 : <;\n"
          "  edge F1 -> C : to;\n"
          "  edge F2 -> C : from;\n"
          "  distinguished F1 -> F2 : feasible;\n"
          "}\n"
          "query stop-connected {\n"
          "  edge C1 -> C2 : (-from) feasible+ to;\n"
          "  distinguished C1 -> C2 : stop-connected;\n"
          "}\n",
          &db)
          .status());
  EXPECT_EQ(RelationSet(db, "feasible"), (std::set<std::string>{"f1,f2"}));
  // A connection with >= 2 flights: toronto -> paris.
  EXPECT_EQ(RelationSet(db, "stop-connected"),
            (std::set<std::string>{"toronto,paris"}));
}

TEST(GraphLogEngineTest, Figure5LocalFamilyFriends) {
  Database db;
  // me -> father bob -> father art; art's friend zoe lives in toronto;
  // my own friend sam lives in ottawa; mother-with-hospital chain too.
  EXPECT_OK(db.AddSymFact("father", {"bob", "me"}));
  EXPECT_OK(db.AddSymFact("father", {"art", "bob"}));
  EXPECT_OK(db.AddSymFact("mother", {"mia", "me", "stmikes"}));
  EXPECT_OK(db.AddSymFact("friend", {"art", "zoe"}));
  EXPECT_OK(db.AddSymFact("friend", {"me", "sam"}));
  EXPECT_OK(db.AddSymFact("friend", {"mia", "pat"}));
  EXPECT_OK(db.AddSymFact("residence", {"zoe", "toronto"}));
  EXPECT_OK(db.AddSymFact("residence", {"sam", "ottawa"}));
  EXPECT_OK(db.AddSymFact("residence", {"pat", "toronto"}));
  // Ancestors of `me` are found by *inverted* father/mother edges
  // (father(P1,P2): P1 is the father of P2), so the paper's edge reads
  // from the person to their ancestors: (-(father|mother(_)))* friend.
  ASSERT_OK(EvalText(
                "query local-friend {\n"
                "  edge P -> F : (-(father | mother(_)))* friend;\n"
                "  edge F -> \"toronto\" : residence;\n"
                "  distinguished P -> F : local-friend;\n"
                "}\n",
                &db)
                .status());
  auto res = RelationSet(db, "local-friend");
  // me -> zoe (friend of grandfather art, lives in toronto)
  EXPECT_TRUE(res.count("me,zoe"));
  // me -> pat (friend of mother mia, toronto)
  EXPECT_TRUE(res.count("me,pat"));
  // sam lives in ottawa: excluded.
  EXPECT_FALSE(res.count("me,sam"));
}

TEST(GraphLogEngineTest, Figure6CircularModules) {
  Database db;
  // Modules m1 -> m2 -> m1 circular; m1 uses async-io via f3.
  EXPECT_OK(db.AddSymFact("in-module", {"f1", "m1"}));
  EXPECT_OK(db.AddSymFact("in-module", {"f2", "m2"}));
  EXPECT_OK(db.AddSymFact("in-module", {"f3", "m1"}));
  EXPECT_OK(db.AddSymFact("in-module", {"f4", "m3"}));
  EXPECT_OK(db.AddSymFact("calls-extn", {"f1", "f2"}));
  EXPECT_OK(db.AddSymFact("calls-extn", {"f2", "f3"}));
  EXPECT_OK(db.AddSymFact("calls-local", {"f3", "f1"}));
  EXPECT_OK(db.AddSymFact("in-library", {"f3", "async-io"}));
  EXPECT_OK(db.AddSymFact("calls-extn", {"f4", "f1"}));

  // module-calls(M1, M2): some function of M1 calls (possibly via local
  // calls) an external function belonging to M2.
  ASSERT_OK(
      EvalText(
          "query module-calls {\n"
          "  edge M1 -> M2 : -(in-module) (calls-local)* calls-extn "
          "in-module;\n"
          "  distinguished M1 -> M2 : module-calls;\n"
          "}\n"
          "query uses-async {\n"
          "  edge M -> F : -(in-module) (calls-local | calls-extn)+;\n"
          "  edge F -> \"async-io\" : in-library;\n"
          "  distinguished M -> M : uses-async;\n"
          "}\n"
          "query self-used {\n"
          "  edge M -> M : module-calls+;\n"
          "  edge M -> M : uses-async;\n"
          "  distinguished M -> M : self-used;\n"
          "}\n",
          &db)
          .status());
  auto mc = RelationSet(db, "module-calls");
  EXPECT_TRUE(mc.count("m1,m2"));
  EXPECT_TRUE(mc.count("m2,m1"));
  EXPECT_TRUE(mc.count("m3,m1"));
  // m1 and m2 call themselves through each other, and both invoke f3
  // (which is in the async-io library); m3 calls m1 but is not circular.
  EXPECT_EQ(RelationSet(db, "self-used"),
            (std::set<std::string>{"m1,m1", "m2,m2"}));
}

TEST(GraphLogEngineTest, KleeneStarIncludesZeroLengthPaths) {
  Database db;
  EXPECT_OK(db.AddSymFact("e", {"a", "b"}));
  EXPECT_OK(db.AddSymFact("n", {"a"}));
  EXPECT_OK(db.AddSymFact("n", {"b"}));
  EXPECT_OK(db.AddSymFact("n", {"c"}));
  ASSERT_OK(EvalText("query r {\n"
                                 "  node X [n];\n"
                                 "  node Y [n];\n"
                                 "  edge X -> Y : e*;\n"
                                 "  distinguished X -> Y : r;\n"
                                 "}\n",
                                 &db)
                .status());
  auto res = RelationSet(db, "r");
  // Zero-length: every n-node relates to itself.
  EXPECT_TRUE(res.count("a,a"));
  EXPECT_TRUE(res.count("c,c"));
  EXPECT_TRUE(res.count("a,b"));
  EXPECT_FALSE(res.count("b,a"));
  EXPECT_EQ(res.size(), 4u);
}

TEST(GraphLogEngineTest, ClosureWithParameterThreadsValue) {
  // p(D)+ follows edges with the SAME parameter value along the path.
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  EXPECT_OK(db.AddFact("p", {sym("a"), sym("b"), Value::Int(1)}));
  EXPECT_OK(db.AddFact("p", {sym("b"), sym("c"), Value::Int(1)}));
  EXPECT_OK(db.AddFact("p", {sym("b"), sym("d"), Value::Int(2)}));
  ASSERT_OK(EvalText("query same-val {\n"
                                 "  edge X -> Y : p(D)+;\n"
                                 "  distinguished X -> Y : same-val(D);\n"
                                 "}\n",
                                 &db)
                .status());
  auto res = RelationSet(db, "same-val");
  EXPECT_TRUE(res.count("a,c,1"));   // a->b->c all with value 1
  EXPECT_FALSE(res.count("a,d,1"));  // a->b(1), b->d(2): mixed values
  EXPECT_FALSE(res.count("a,d,2"));
  EXPECT_TRUE(res.count("b,d,2"));
}

TEST(GraphLogEngineTest, UnderscoreProjectsClosureParameter) {
  // p(_)+ allows the parameter to vary along the path.
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  EXPECT_OK(db.AddFact("p", {sym("a"), sym("b"), Value::Int(1)}));
  EXPECT_OK(db.AddFact("p", {sym("b"), sym("c"), Value::Int(2)}));
  ASSERT_OK(EvalText("query reach {\n"
                                 "  edge X -> Y : p(_)+;\n"
                                 "  distinguished X -> Y : reach;\n"
                                 "}\n",
                                 &db)
                .status());
  EXPECT_TRUE(RelationSet(db, "reach").count("a,c"));
}

TEST(GraphLogEngineTest, GhostVariableEscapeIsRejected) {
  Database db;
  EXPECT_OK(db.AddSymFact("p", {"a", "b"}));
  EXPECT_OK(db.AddSymFact("q", {"a", "b", "x"}));
  // H occurs in only one branch of the alternation but also in the
  // distinguished edge: ghost escape.
  auto r = EvalText("query bad {\n"
                                "  edge X -> Y : p | q(H);\n"
                                "  distinguished X -> Y : bad(H);\n"
                                "}\n",
                                &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kGhostVariable);
}

TEST(GraphLogEngineTest, NestedNegationIsRejected) {
  Database db;
  EXPECT_OK(db.AddSymFact("p", {"a", "b"}));
  auto r = EvalText("query bad {\n"
                                "  edge X -> Y : p (!p);\n"
                                "  distinguished X -> Y : bad;\n"
                                "}\n",
                                &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafeRule);
}

TEST(GraphLogEngineTest, CyclicDependenceIsRejected) {
  Database db;
  EXPECT_OK(db.AddSymFact("e", {"a", "b"}));
  auto r = EvalText("query p {\n"
                                "  edge X -> Y : q;\n"
                                "  distinguished X -> Y : p;\n"
                                "}\n"
                                "query q {\n"
                                "  edge X -> Y : p;\n"
                                "  distinguished X -> Y : q;\n"
                                "}\n",
                                &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCyclicDependence);
}

TEST(GraphLogEngineTest, SelfReferenceIsRejected) {
  Database db;
  auto r = EvalText("query p {\n"
                                "  edge X -> Y : p;\n"
                                "  distinguished X -> Y : p;\n"
                                "}\n",
                                &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCyclicDependence);
}

TEST(GraphLogEngineTest, MultipleGraphsSamePredicateUnion) {
  Database db;
  EXPECT_OK(db.AddSymFact("a", {"x", "y"}));
  EXPECT_OK(db.AddSymFact("b", {"y", "z"}));
  ASSERT_OK(EvalText("query c {\n"
                                 "  edge X -> Y : a;\n"
                                 "  distinguished X -> Y : c;\n"
                                 "}\n"
                                 "query c {\n"
                                 "  edge X -> Y : b;\n"
                                 "  distinguished X -> Y : c;\n"
                                 "}\n"
                                 "query d {\n"
                                 "  edge X -> Y : c+;\n"
                                 "  distinguished X -> Y : d;\n"
                                 "}\n",
                                 &db)
                .status());
  EXPECT_EQ(RelationSet(db, "c"), (std::set<std::string>{"x,y", "y,z"}));
  EXPECT_EQ(RelationSet(db, "d"),
            (std::set<std::string>{"x,y", "y,z", "x,z"}));
}

TEST(GraphLogEngineTest, ConstantEndpointsFigure12Style) {
  // The prototype's RT-scale query: scales on a CP-flights path from Rome
  // to Tokyo (Figure 12), as a loop edge on the scale city.
  Database db;
  EXPECT_OK(db.AddSymFact("cp", {"rome", "geneva"}));
  EXPECT_OK(db.AddSymFact("cp", {"geneva", "bombay"}));
  EXPECT_OK(db.AddSymFact("cp", {"bombay", "tokyo"}));
  EXPECT_OK(db.AddSymFact("cp", {"rome", "paris"}));   // dead end
  EXPECT_OK(db.AddSymFact("aa", {"paris", "tokyo"}));  // wrong airline
  ASSERT_OK(EvalText(
                "query rt-scale {\n"
                "  edge \"rome\" -> C : cp+;\n"
                "  edge C -> \"tokyo\" : cp+;\n"
                "  distinguished C -> C : rt-scale;\n"
                "}\n",
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "rt-scale"),
            (std::set<std::string>{"geneva,geneva", "bombay,bombay"}));
}

TEST(GraphLogEngineTest, WhereClauseArithmetic) {
  Database db;
  EXPECT_OK(db.AddFact("val", {Value::Sym(db.Intern("a")), Value::Int(10)}));
  EXPECT_OK(db.AddFact("val", {Value::Sym(db.Intern("b")), Value::Int(3)}));
  ASSERT_OK(EvalText("query doubled {\n"
                                 "  edge X -> V : val;\n"
                                 "  where D := V * 2, V > 5;\n"
                                 "  distinguished X -> V : doubled(D);\n"
                                 "}\n",
                                 &db)
                .status());
  EXPECT_EQ(RelationSet(db, "doubled"), (std::set<std::string>{"a,10,20"}));
}

TEST(GraphLogEngineTest, SummarizationCriticalPath) {
  // Figure 11's earlier-start: longest sum of durations along paths.
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  // affects-d(T1, T2, D): T1 affects T2, and T2's work takes D days.
  EXPECT_OK(db.AddFact("affects-d", {sym("t1"), sym("t2"), Value::Int(3)}));
  EXPECT_OK(db.AddFact("affects-d", {sym("t2"), sym("t4"), Value::Int(5)}));
  EXPECT_OK(db.AddFact("affects-d", {sym("t1"), sym("t3"), Value::Int(4)}));
  EXPECT_OK(db.AddFact("affects-d", {sym("t3"), sym("t4"), Value::Int(6)}));
  ASSERT_OK_AND_ASSIGN(
      QueryStats stats,
      EvalText(
          "query earlier-start {\n"
          "  summarize E = max<sum<D>> over affects-d(D);\n"
          "  distinguished T1 -> T2 : earlier-start(E);\n"
          "}\n",
          &db));
  EXPECT_EQ(stats.graphs_summarized, 1u);
  auto res = RelationSet(db, "earlier-start");
  // Longest path t1->t4: via t3 (4+6=10) beats via t2 (3+5=8).
  EXPECT_TRUE(res.count("t1,t4,10"));
  EXPECT_TRUE(res.count("t1,t2,3"));
  EXPECT_TRUE(res.count("t2,t4,5"));
  EXPECT_FALSE(res.count("t1,t4,8"));
}

TEST(GraphLogEngineTest, SummarizationCycleIsRejected) {
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  EXPECT_OK(db.AddFact("w", {sym("a"), sym("b"), Value::Int(1)}));
  EXPECT_OK(db.AddFact("w", {sym("b"), sym("a"), Value::Int(1)}));
  auto r = EvalText("query longest {\n"
                                "  summarize E = max<sum<D>> over w(D);\n"
                                "  distinguished X -> Y : longest(E);\n"
                                "}\n",
                                &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCycleInPath);
}

TEST(GraphLogEngineTest, QueryGraphToStringReparses) {
  Database db;
  const char* text =
      "query not-desc-of {\n"
      "  node P2 [person];\n"
      "  edge P1 -> P3 : descendant+;\n"
      "  edge P2 -> P3 : !(descendant+);\n"
      "  distinguished P1 -> P3 : not-desc-of(P2);\n"
      "}\n";
  ASSERT_OK_AND_ASSIGN(GraphicalQuery q,
                       ParseGraphicalQuery(text, &db.symbols()));
  std::string printed = q.ToString(db.symbols());
  ASSERT_OK_AND_ASSIGN(GraphicalQuery q2,
                       ParseGraphicalQuery(printed, &db.symbols()));
  EXPECT_EQ(printed, q2.ToString(db.symbols()));
}

}  // namespace
}  // namespace graphlog::gl
