// Edge-case tests for the rule compiler and evaluation engine: join
// ordering, repeated variables, constants in odd positions, empty
// relations, self joins, zero-arity predicates.

#include <gtest/gtest.h>

#include "eval/compiled_rule.h"
#include "eval/engine.h"
#include "datalog/parser.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::eval {
namespace {

using storage::Database;
using testutil::RelationSet;
using testutil::RelationSize;

TEST(EvalEdgeCasesTest, RepeatedVariableInAtom) {
  Database db;
  ASSERT_OK(db.AddSymFact("e", {"a", "a"}));
  ASSERT_OK(db.AddSymFact("e", {"a", "b"}));
  ASSERT_OK(EvaluateText("loop(X) :- e(X, X).", &db).status());
  EXPECT_EQ(RelationSet(db, "loop"), (std::set<std::string>{"a"}));
}

TEST(EvalEdgeCasesTest, RepeatedVariableAcrossAtoms) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("q", {"b", "c"}));
  ASSERT_OK(db.AddSymFact("q", {"x", "y"}));
  ASSERT_OK(EvaluateText("j(X, Z) :- p(X, Y), q(Y, Z).", &db).status());
  EXPECT_EQ(RelationSet(db, "j"), (std::set<std::string>{"a,c"}));
}

TEST(EvalEdgeCasesTest, RepeatedUnboundVariableInNegatedAtom) {
  // !e(X, X) where X is bound: anti-join with intra-atom equality.
  Database db;
  ASSERT_OK(db.AddSymFact("n", {"a"}));
  ASSERT_OK(db.AddSymFact("n", {"b"}));
  ASSERT_OK(db.AddSymFact("e", {"a", "a"}));
  ASSERT_OK(EvaluateText("noloop(X) :- n(X), !e(X, X).", &db).status());
  EXPECT_EQ(RelationSet(db, "noloop"), (std::set<std::string>{"b"}));
}

TEST(EvalEdgeCasesTest, NegatedAtomWithRepeatedLocalVariable) {
  // !e(Y, Y) with Y local: fails iff ANY self-loop exists.
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    ASSERT_OK(db->AddSymFact("n", {"a"}));
  }
  ASSERT_OK(db1.AddSymFact("e", {"x", "x"}));  // self loop somewhere
  ASSERT_OK(db2.AddSymFact("e", {"x", "y"}));  // no self loop
  ASSERT_OK(EvaluateText("ok(X) :- n(X), !e(Y, Y).", &db1).status());
  ASSERT_OK(EvaluateText("ok(X) :- n(X), !e(Y, Y).", &db2).status());
  EXPECT_EQ(RelationSize(db1, "ok"), 0u);
  EXPECT_EQ(RelationSize(db2, "ok"), 1u);
}

TEST(EvalEdgeCasesTest, ConstantInBodyPosition) {
  Database db;
  ASSERT_OK(db.AddFact("p", {Value::Sym(db.Intern("a")), Value::Int(1)}));
  ASSERT_OK(db.AddFact("p", {Value::Sym(db.Intern("b")), Value::Int(2)}));
  ASSERT_OK(EvaluateText("one(X) :- p(X, 1).", &db).status());
  EXPECT_EQ(RelationSet(db, "one"), (std::set<std::string>{"a"}));
}

TEST(EvalEdgeCasesTest, ConstantInHead) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  ASSERT_OK(EvaluateText("tagged(X, hello, 42) :- p(X).", &db).status());
  EXPECT_EQ(RelationSet(db, "tagged"), (std::set<std::string>{"a,hello,42"}));
}

TEST(EvalEdgeCasesTest, RepeatedHeadVariable) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  ASSERT_OK(EvaluateText("dup(X, X) :- p(X).", &db).status());
  EXPECT_EQ(RelationSet(db, "dup"), (std::set<std::string>{"a,a"}));
}

TEST(EvalEdgeCasesTest, MissingEdbIsEmpty) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  // `never` is not in the database: treated as empty, not an error.
  ASSERT_OK(EvaluateText("q(X) :- p(X), never(X).", &db).status());
  EXPECT_EQ(RelationSize(db, "q"), 0u);
}

TEST(EvalEdgeCasesTest, NegationOfMissingEdbAlwaysHolds) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  ASSERT_OK(EvaluateText("q(X) :- p(X), !never(X).", &db).status());
  EXPECT_EQ(RelationSet(db, "q"), (std::set<std::string>{"a"}));
}

TEST(EvalEdgeCasesTest, ZeroArityPredicates) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  ASSERT_OK(EvaluateText("flag() :- p(a).\n"
                         "out(X) :- p(X), flag().\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSize(db, "flag"), 1u);
  EXPECT_EQ(RelationSet(db, "out"), (std::set<std::string>{"a"}));
}

TEST(EvalEdgeCasesTest, ZeroArityNegation) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  ASSERT_OK(EvaluateText("flag() :- p(b).\n"
                         "out(X) :- p(X), !flag().\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "out"), (std::set<std::string>{"a"}));
}

TEST(EvalEdgeCasesTest, CartesianProduct) {
  Database db;
  ASSERT_OK(db.AddSymFact("a", {"x"}));
  ASSERT_OK(db.AddSymFact("a", {"y"}));
  ASSERT_OK(db.AddSymFact("b", {"1"}));
  ASSERT_OK(db.AddSymFact("b", {"2"}));
  ASSERT_OK(EvaluateText("prod(X, Y) :- a(X), b(Y).", &db).status());
  EXPECT_EQ(RelationSize(db, "prod"), 4u);
}

TEST(EvalEdgeCasesTest, SelfJoinSameRelation) {
  Database db;
  ASSERT_OK(db.AddFact("num", {Value::Int(1)}));
  ASSERT_OK(db.AddFact("num", {Value::Int(2)}));
  ASSERT_OK(db.AddFact("num", {Value::Int(3)}));
  ASSERT_OK(
      EvaluateText("lt(X, Y) :- num(X), num(Y), X < Y.", &db).status());
  EXPECT_EQ(RelationSize(db, "lt"), 3u);
}

TEST(EvalEdgeCasesTest, ChainOfAssignments) {
  Database db;
  ASSERT_OK(db.AddFact("p", {Value::Int(5)}));
  ASSERT_OK(EvaluateText("q(C) :- p(X), A := X + 1, B := A * 2, C := B - X.",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "q"), (std::set<std::string>{"7"}));
}

TEST(EvalEdgeCasesTest, AssignmentAsEqualityCheck) {
  // Target already bound: the assignment filters.
  Database db;
  ASSERT_OK(db.AddFact("pair", {Value::Int(2), Value::Int(4)}));
  ASSERT_OK(db.AddFact("pair", {Value::Int(3), Value::Int(5)}));
  ASSERT_OK(
      EvaluateText("dbl(X, Y) :- pair(X, Y), Y := X * 2.", &db).status());
  EXPECT_EQ(RelationSet(db, "dbl"), (std::set<std::string>{"2,4"}));
}

TEST(EvalEdgeCasesTest, MixedIntDoubleArithmetic) {
  Database db;
  ASSERT_OK(db.AddFact("p", {Value::Int(3), Value::Double(0.5)}));
  ASSERT_OK(EvaluateText("q(Z) :- p(X, Y), Z := X * Y.", &db).status());
  EXPECT_EQ(RelationSet(db, "q"), (std::set<std::string>{"1.5"}));
}

TEST(EvalEdgeCasesTest, EqualityIsValueIdentity) {
  // 3 and 3.0 are distinct domain values: `=` agrees with join equality
  // regardless of literal order, while ordering comparisons are numeric.
  Database db;
  ASSERT_OK(db.AddFact("p", {Value::Int(3)}));
  ASSERT_OK(db.AddFact("q", {Value::Double(3.0)}));
  ASSERT_OK(EvaluateText("same() :- p(X), q(Y), X = Y.", &db).status());
  EXPECT_EQ(RelationSize(db, "same"), 0u);
  ASSERT_OK(EvaluateText("joined(X) :- p(X), q(X).", &db).status());
  EXPECT_EQ(RelationSize(db, "joined"), 0u);
  // Numeric ordering still mixes kinds: 3 <= 3.0 and 3 >= 3.0.
  ASSERT_OK(
      EvaluateText("le() :- p(X), q(Y), X <= Y, X >= Y.", &db).status());
  EXPECT_EQ(RelationSize(db, "le"), 1u);
}

TEST(EvalEdgeCasesTest, FactOnlyProgram) {
  Database db;
  ASSERT_OK(EvaluateText("p(a).\np(b).\nq(a, b).\n", &db).status());
  EXPECT_EQ(RelationSize(db, "p"), 2u);
  EXPECT_EQ(RelationSize(db, "q"), 1u);
}

TEST(EvalEdgeCasesTest, IdbExtendsExistingRelation) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"seed"}));
  ASSERT_OK(db.AddSymFact("q", {"x"}));
  // p is both EDB (has facts) and IDB (has a rule): facts survive.
  ASSERT_OK(EvaluateText("p(X) :- q(X).", &db).status());
  EXPECT_EQ(RelationSet(db, "p"), (std::set<std::string>{"seed", "x"}));
}

TEST(EvalEdgeCasesTest, HeadArityConflictWithExistingRelation) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  auto r = EvaluateText("p(X) :- q(X).", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArityMismatch);
}

TEST(EvalEdgeCasesTest, LongChainDeepRecursion) {
  Database db;
  for (int i = 0; i < 600; ++i) {
    ASSERT_OK(db.AddFact("e", {Value::Int(i), Value::Int(i + 1)}));
  }
  ASSERT_OK(EvaluateText("r(Y) :- e(0, Y).\nr(Y) :- r(X), e(X, Y).\n", &db)
                .status());
  EXPECT_EQ(RelationSize(db, "r"), 600u);
}

TEST(EvalEdgeCasesTest, CompiledRuleRejectsWildcardHead) {
  SymbolTable syms;
  datalog::Rule r;
  r.head.predicate = syms.Intern("p");
  r.head.args.push_back(
      datalog::HeadTerm::Plain(datalog::Term::Wildcard()));
  auto c = CompiledRule::Compile(r, syms);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnsafeRule);
}

}  // namespace
}  // namespace graphlog::eval
