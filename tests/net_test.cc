// The network front end: framed wire protocol, NetServer admission
// control, and the blocking Client.
//
// The load-bearing property is remote-equals-local: a query answered
// over TCP must be bit-identical to the same query answered by an
// in-process Session on the same server — same relation text, same
// stats, same Status taxonomy on failure. Around it: protocol codec
// round-trips, deterministic kOverloaded shedding with retry advice,
// net.* fault sites, and clean teardown with requests in flight (the
// TSan lane's main subject).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "durability/wal.h"
#include "gov/fault_injection.h"
#include "net/client.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

constexpr char kTcQuery[] =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

net::WireQuery TcQuery() {
  net::WireQuery q;
  q.text = kTcQuery;
  return q;
}

void SeedEdges(Server* server) {
  ASSERT_OK(server
                ->Apply(WriteBatch().Facts(
                    "edge(a, b). edge(b, c). edge(c, d). edge(d, e)."))
                .status());
}

/// Starts a loopback NetServer over `server` with the given options.
std::unique_ptr<net::NetServer> Serve(Server* server,
                                      net::NetServerOptions opts = {}) {
  auto started = net::NetServer::Start(server, opts);
  EXPECT_OK(started.status());
  return started.ok() ? std::move(*started) : nullptr;
}

std::unique_ptr<net::Client> Connect(const net::NetServer& ns) {
  auto client = net::Client::Connect("127.0.0.1", ns.port());
  EXPECT_OK(client.status());
  return client.ok() ? std::move(*client) : nullptr;
}

// ---------------------------------------------------------------------------
// Protocol codecs

TEST(NetProtocolTest, BodyCodecsRoundTrip) {
  {
    net::WireSessionOpen in;
    in.name = "alpha";
    in.budget.max_result_rows = 7;
    in.budget.return_partial = true;
    in.deadline_ms = 1234;
    std::string body;
    net::EncodeSessionOpen(in, &body);
    net::WireSessionOpen out;
    ASSERT_OK(net::DecodeSessionOpen(body, &out));
    EXPECT_EQ(out.name, "alpha");
    EXPECT_EQ(out.budget.max_result_rows, 7u);
    EXPECT_TRUE(out.budget.return_partial);
    EXPECT_EQ(out.deadline_ms, 1234u);
  }
  {
    net::WireQuery in;
    in.language = 1;
    in.text = "t(X, Y) :- edge(X, Y).";
    in.num_threads = 4;
    in.columnar = true;
    in.explain = true;
    in.budget.max_rounds = 9;
    std::string body;
    net::EncodeQuery(in, &body);
    net::WireQuery out;
    ASSERT_OK(net::DecodeQuery(body, &out));
    EXPECT_EQ(out.language, 1);
    EXPECT_EQ(out.text, in.text);
    EXPECT_EQ(out.num_threads, 4u);
    EXPECT_TRUE(out.columnar);
    EXPECT_TRUE(out.explain);
    EXPECT_EQ(out.budget.max_rounds, 9u);
  }
  {
    net::WireQueryResult in;
    in.tuples_derived = 10;
    in.result_tuples = 11;
    in.epoch = 3;
    in.truncated = true;
    in.truncated_by = "rows";
    in.explain = "plan";
    std::string body;
    net::EncodeQueryResult(in, &body);
    net::WireQueryResult out;
    ASSERT_OK(net::DecodeQueryResult(body, &out));
    EXPECT_EQ(out.tuples_derived, 10u);
    EXPECT_EQ(out.result_tuples, 11u);
    EXPECT_EQ(out.epoch, 3u);
    EXPECT_TRUE(out.truncated);
    EXPECT_EQ(out.truncated_by, "rows");
    EXPECT_EQ(out.explain, "plan");
  }
  {
    std::vector<net::WireRelationInfo> in(2);
    in[0] = {"edge", 2, 5};
    in[1] = {"t", 2, 10};
    std::string body;
    net::EncodeRelationList(in, &body);
    std::vector<net::WireRelationInfo> out;
    ASSERT_OK(net::DecodeRelationList(body, &out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].name, "edge");
    EXPECT_EQ(out[1].rows, 10u);
  }
}

TEST(NetProtocolTest, DecodersRejectTruncationAndTrailingBytes) {
  net::WireQuery q;
  q.text = "query t { edge X -> Y : edge+; }";
  std::string body;
  net::EncodeQuery(q, &body);
  net::WireQuery out;
  // Every strict prefix is malformed, never a wild read.
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(net::DecodeQuery(body.substr(0, len), &out).ok()) << len;
  }
  EXPECT_FALSE(net::DecodeQuery(body + "x", &out).ok());
}

TEST(NetProtocolTest, ErrorFramesCarryTheFullStatusTaxonomy) {
  for (int code = 1; code <= static_cast<int>(StatusCode::kOverloaded);
       ++code) {
    const Status in(static_cast<StatusCode>(code), "message for " +
                        std::to_string(code));
    std::string body;
    net::EncodeError(net::StatusToWireError(in, 42), &body);
    net::WireError wire;
    ASSERT_OK(net::DecodeError(body, &wire));
    EXPECT_EQ(wire.retry_after_ms, 42u);
    const Status out = net::WireErrorToStatus(wire);
    EXPECT_EQ(out.code(), in.code());
    EXPECT_EQ(out.message(), in.message());
  }
  // A code from a newer peer degrades to kInternal, message preserved.
  net::WireError future;
  future.code = static_cast<StatusCode>(99);
  future.message = "from the future";
  const Status degraded = net::WireErrorToStatus(future);
  EXPECT_EQ(degraded.code(), StatusCode::kInternal);
  EXPECT_NE(degraded.message().find("from the future"), std::string::npos);
}

TEST(NetProtocolTest, FrameSerializationMatchesTheDocumentedLayout) {
  net::Frame f;
  f.type = net::MsgType::kPing;
  f.body = "xy";
  const std::string bytes = net::SerializeFrame(f);
  ASSERT_EQ(bytes.size(), 8u + 2u + 2u);
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, bytes.data(), 4);
  std::memcpy(&crc, bytes.data() + 4, 4);
  EXPECT_EQ(len, 4u);  // version + type + "xy"
  EXPECT_EQ(crc, durability::Crc32(bytes.data() + 8, 4));
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), net::kProtocolVersion);
  EXPECT_EQ(static_cast<uint8_t>(bytes[9]),
            static_cast<uint8_t>(net::MsgType::kPing));
}

// ---------------------------------------------------------------------------
// Client/server basics

TEST(NetServerTest, PingSessionLifecycleAndErrors) {
  Server server;
  auto ns = Serve(&server);
  ASSERT_NE(ns, nullptr);
  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);

  ASSERT_OK(client->Ping());

  // Requests before a session opens fail cleanly, connection intact.
  EXPECT_EQ(client->Run(TcQuery()).status().code(),
            StatusCode::kInvalidArgument);

  auto opened = client->OpenSession();
  ASSERT_OK(opened.status());
  EXPECT_FALSE(opened->name.empty());
  EXPECT_EQ(opened->epoch, 0u);

  // One session per connection.
  EXPECT_EQ(client->OpenSession().status().code(),
            StatusCode::kAlreadyExists);

  // A failing query surfaces its real code, and the connection survives.
  net::WireQuery bad;
  bad.text = "query t { edge X -> Y : nosuch+; }";
  EXPECT_FALSE(client->Run(bad).ok());
  ASSERT_OK(client->Ping());

  ASSERT_OK(client->CloseSession());
  ASSERT_OK(client->OpenSession().status());  // reopen after close
}

TEST(NetServerTest, RemoteResultsAreBitIdenticalToInProcess) {
  obs::MetricsRegistry metrics;
  Server server(ServerOptions{.metrics = &metrics});
  SeedEdges(&server);
  auto ns = Serve(&server, {.metrics = &metrics});
  ASSERT_NE(ns, nullptr);

  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->OpenSession().status());

  // Remote write, remote query.
  auto applied = client->Apply(WriteBatch().Facts("edge(e, f)."));
  ASSERT_OK(applied.status());
  EXPECT_EQ(applied->facts, 1u);
  EXPECT_EQ(applied->epoch, 2u);

  auto remote = client->Run(TcQuery());
  ASSERT_OK(remote.status());

  // The same query by an in-process session on the same server.
  ASSERT_OK_AND_ASSIGN(auto local, server.OpenSession());
  QueryRequest req = QueryRequest::GraphLog(kTcQuery);
  ASSERT_OK_AND_ASSIGN(QueryResponse in_process, local->Run(req));

  EXPECT_EQ(remote->tuples_derived, in_process.stats.datalog.tuples_derived);
  EXPECT_EQ(remote->result_tuples, in_process.stats.result_tuples);
  EXPECT_EQ(remote->graphs_translated, in_process.stats.graphs_translated);

  // Bit-identical relation text, EDB and IDB alike.
  for (const char* rel : {"edge", "t"}) {
    auto fetched = client->FetchRelation(rel);
    ASSERT_OK(fetched.status());
    const Symbol s = local->database().symbols().Lookup(rel);
    ASSERT_NE(s, kNoSymbol);
    EXPECT_EQ(*fetched, local->database().RelationToString(s)) << rel;
  }

  // The explain rendering crosses the wire verbatim too.
  net::WireQuery explain_q = TcQuery();
  explain_q.explain = true;
  auto explained = client->Run(explain_q);
  ASSERT_OK(explained.status());
  req.options.observability.explain = true;
  ASSERT_OK_AND_ASSIGN(QueryResponse local_explained, local->Run(req));
  EXPECT_EQ(explained->explain, local_explained.explain);
}

TEST(NetServerTest, FourConcurrentClientsStayBitIdentical) {
  obs::MetricsRegistry metrics;
  Server server(ServerOptions{.metrics = &metrics});
  SeedEdges(&server);
  auto ns = Serve(&server, {.metrics = &metrics});
  ASSERT_NE(ns, nullptr);

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", ns->port());
      if (!client.ok() || !(*client)->OpenSession().ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string a = "c" + std::to_string(c) + "n" +
                              std::to_string(i);
        const std::string b = "c" + std::to_string(c) + "n" +
                              std::to_string(i + 1);
        if (!(*client)->Apply(
                WriteBatch().Facts("edge(" + a + ", " + b + ").")).ok() ||
            !(*client)->Run(TcQuery()).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  // Every commit landed: 1 seed batch + 4*8 single-fact batches.
  EXPECT_EQ(server.epoch(), 1u + kClients * kOpsPerClient);

  // A fresh remote session and a fresh in-process session, both pinned
  // to the final epoch, must agree byte-for-byte after the same query.
  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);
  auto opened = client->OpenSession();
  ASSERT_OK(opened.status());
  EXPECT_EQ(opened->epoch, server.epoch());
  ASSERT_OK(client->Run(TcQuery()).status());

  ASSERT_OK_AND_ASSIGN(auto local, server.OpenSession());
  ASSERT_OK(local->Run(QueryRequest::GraphLog(kTcQuery)).status());

  auto listed = client->ListRelations();
  ASSERT_OK(listed.status());
  EXPECT_EQ(listed->size(), local->database().relations().size());
  for (const auto& info : *listed) {
    auto fetched = client->FetchRelation(info.name);
    ASSERT_OK(fetched.status());
    const Symbol s = local->database().symbols().Lookup(info.name);
    ASSERT_NE(s, kNoSymbol) << info.name;
    EXPECT_EQ(*fetched, local->database().RelationToString(s)) << info.name;
  }
}

TEST(NetServerTest, RemoteGovernedQueriesKeepTheStatusTaxonomy) {
  Server server;
  SeedEdges(&server);
  auto ns = Serve(&server);
  ASSERT_NE(ns, nullptr);
  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->OpenSession().status());

  // A hard budget trips remotely exactly as it does in-process.
  net::WireQuery q = TcQuery();
  q.budget.max_result_rows = 1;
  EXPECT_EQ(client->Run(q).status().code(), StatusCode::kBudgetExceeded);

  // return_partial turns the same trip into a truncated success.
  q.budget.return_partial = true;
  auto partial = client->Run(q);
  ASSERT_OK(partial.status());
  EXPECT_TRUE(partial->truncated);
  EXPECT_FALSE(partial->truncated_by.empty());
}

TEST(NetServerTest, ClientCapturesLoadFilesAndServerRejectsRemotePaths) {
  Server server;
  auto ns = Serve(&server);
  ASSERT_NE(ns, nullptr);
  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->OpenSession().status());

  const std::string path =
      ::testing::TempDir() + "/net_test_capture_facts.dl";
  {
    std::ofstream out(path);
    out << "edge(p, q). edge(q, r).\n";
  }
  // The client reads the file and ships bytes; the server applies facts.
  auto applied = client->Apply(WriteBatch().LoadFile(path));
  ASSERT_OK(applied.status());
  EXPECT_EQ(applied->facts, 2u);
  ::unlink(path.c_str());

  // A raw batch that still carries a kLoadFile op is rejected: the
  // server must never resolve a path against its own filesystem.
  net::Frame raw;
  raw.type = net::MsgType::kApplyBatch;
  ASSERT_OK(durability::BatchCodec::Encode(WriteBatch().LoadFile("/etc/motd"),
                                           {"ignored(a)."}, &raw.body));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ns->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  net::Frame hello;
  hello.type = net::MsgType::kHello;
  net::EncodeHello(net::WireHello{}, &hello.body);
  ASSERT_OK(net::SendFrame(fd, hello, nullptr));
  ASSERT_OK(net::RecvFrame(fd, nullptr).status());
  net::Frame open;
  open.type = net::MsgType::kOpenSession;
  net::EncodeSessionOpen(net::WireSessionOpen{}, &open.body);
  ASSERT_OK(net::SendFrame(fd, open, nullptr));
  ASSERT_OK(net::RecvFrame(fd, nullptr).status());
  ASSERT_OK(net::SendFrame(fd, raw, nullptr));
  auto resp = net::RecvFrame(fd, nullptr);
  ASSERT_OK(resp.status());
  ASSERT_EQ(resp->type, net::MsgType::kError);
  net::WireError err;
  ASSERT_OK(net::DecodeError(resp->body, &err));
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(NetServerTest, OverloadShedsDeterministicallyWithRetryAdvice) {
  obs::MetricsRegistry metrics;
  gov::FaultInjector faults;
  Server server(ServerOptions{.metrics = &metrics});
  SeedEdges(&server);
  net::NetServerOptions opts;
  opts.max_inflight_queries = 1;
  opts.retry_after_ms = 250;
  opts.metrics = &metrics;
  opts.faults = &faults;
  auto ns = Serve(&server, opts);
  ASSERT_NE(ns, nullptr);

  // Stall the first query inside evaluation so it is observably in
  // flight when the second one arrives.
  gov::FaultSpec stall;
  stall.action = gov::FaultAction::kStall;
  stall.stall_ms = 1000;
  stall.trigger_hit = 1;
  faults.Arm("eval.round", stall);

  auto slow = Connect(*ns);
  ASSERT_NE(slow, nullptr);
  ASSERT_OK(slow->OpenSession().status());
  std::thread slow_thread([&] {
    EXPECT_OK(slow->Run(TcQuery()).status());
  });

  obs::Gauge* active = metrics.gauge("net.requests_active");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (active->value() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(active->value(), 1);

  auto shed = Connect(*ns);
  ASSERT_NE(shed, nullptr);
  ASSERT_OK(shed->OpenSession().status());
  const Status rejected = shed->Run(TcQuery()).status();
  EXPECT_EQ(rejected.code(), StatusCode::kOverloaded);
  EXPECT_EQ(shed->last_retry_after_ms(), 250u);
  // The connection survives a shed; a later request (after the stall
  // clears) succeeds.
  slow_thread.join();
  ASSERT_OK(shed->Run(TcQuery()).status());

  EXPECT_GE(ns->rejected(), 1u);
  EXPECT_GE(metrics.counter("net.rejected")->value(), 1u);
  EXPECT_GE(metrics.counter("net.accepted")->value(), 2u);
  EXPECT_GT(metrics.counter("net.bytes_in")->value(), 0u);
  EXPECT_GT(metrics.counter("net.bytes_out")->value(), 0u);
}

TEST(NetServerTest, ConnectionLimitShedsWithOverloadedHandshake) {
  obs::MetricsRegistry metrics;
  Server server;
  net::NetServerOptions opts;
  opts.max_connections = 1;
  opts.retry_after_ms = 77;
  opts.metrics = &metrics;
  auto ns = Serve(&server, opts);
  ASSERT_NE(ns, nullptr);

  auto first = Connect(*ns);
  ASSERT_NE(first, nullptr);
  ASSERT_OK(first->Ping());

  // The second connection is answered kOverloaded at the door.
  auto second = net::Client::Connect("127.0.0.1", ns->port());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(ns->rejected(), 1u);

  // Dropping the first connection frees the slot (after the server
  // reaps the finished handler on its next accept).
  first->Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::unique_ptr<net::Client> third;
  while (std::chrono::steady_clock::now() < deadline) {
    auto attempt = net::Client::Connect("127.0.0.1", ns->port());
    if (attempt.ok()) {
      third = std::move(*attempt);
      break;
    }
    EXPECT_EQ(attempt.status().code(), StatusCode::kOverloaded);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(third, nullptr);
  ASSERT_OK(third->Ping());
}

// ---------------------------------------------------------------------------
// Fault sites + teardown

TEST(NetServerTest, NetFaultSitesAreWiredAndCounted) {
  gov::FaultInjector faults;
  Server server;
  SeedEdges(&server);
  auto ns = Serve(&server, {.faults = &faults});
  ASSERT_NE(ns, nullptr);

  // net.accept: the next connection is answered with the injected error.
  gov::FaultSpec fail;
  fail.action = gov::FaultAction::kFail;
  fail.trigger_hit = 1;
  faults.Arm("net.accept", fail);
  auto refused = net::Client::Connect("127.0.0.1", ns->port());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInternal);
  EXPECT_EQ(faults.hits("net.accept"), 1u);
  EXPECT_GE(ns->rejected(), 1u);

  // net.read: the injected failure drops the live connection. The site
  // is consulted before each blocking read, so depending on whether the
  // handler was already parked in the next read when the fault was
  // armed, it fires before the first or the second request after
  // arming; either way the connection drops within two requests.
  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->Ping());
  faults.Arm("net.read", fail);
  if (client->Ping().ok()) {
    EXPECT_FALSE(client->Ping().ok());
  }
  EXPECT_GE(faults.hits("net.read"), 1u);

  // net.write: the response never arrives; the client sees a severed
  // stream, never a half-written frame.
  auto client2 = Connect(*ns);
  ASSERT_NE(client2, nullptr);
  faults.Arm("net.write", fail);
  EXPECT_FALSE(client2->Ping().ok());
  EXPECT_GE(faults.hits("net.write"), 1u);
}

TEST(NetServerTest, StopCancelsInFlightWorkAndJoinsCleanly) {
  gov::FaultInjector faults;
  Server server;
  SeedEdges(&server);
  auto ns = Serve(&server, {.faults = &faults});
  ASSERT_NE(ns, nullptr);

  // A long stall inside evaluation; Stop() must cancel through the
  // connection token and join without waiting the full stall out.
  gov::FaultSpec stall;
  stall.action = gov::FaultAction::kStall;
  stall.stall_ms = 30'000;
  stall.trigger_hit = 1;
  faults.Arm("eval.round", stall);

  auto client = Connect(*ns);
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->OpenSession().status());
  std::thread runner([&] {
    // Either a cancellation status or a severed connection is fine;
    // hanging or crashing is not.
    client->Run(TcQuery());
  });
  while (faults.hits("eval.round") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t0 = std::chrono::steady_clock::now();
  ns->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  runner.join();
  EXPECT_EQ(ns->active_connections(), 0u);
}

}  // namespace
}  // namespace graphlog
