// Tests for aggregates on distinguished edges (Section 4) and for the DOT
// rendering of the visual formalism.

#include <gtest/gtest.h>

#include "graphlog/dot.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::gl {
namespace {

using storage::Database;
using testutil::RelationSet;

/// Evaluates GraphLog text through the unified Run() API, handing back the
/// stats like the retired gl::EvaluateGraphLogText wrapper did.
Result<QueryStats> EvalText(std::string text, Database* db) {
  GRAPHLOG_ASSIGN_OR_RETURN(
      QueryResponse resp, Run(QueryRequest::GraphLog(std::move(text)), db));
  return std::move(resp.stats);
}

TEST(GraphLogAggregatesTest, SumOnDistinguishedEdge) {
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  EXPECT_OK(db.AddFact("sale", {sym("east"), sym("c1"), Value::Int(10)}));
  EXPECT_OK(db.AddFact("sale", {sym("east"), sym("c2"), Value::Int(5)}));
  EXPECT_OK(db.AddFact("sale", {sym("west"), sym("c3"), Value::Int(7)}));
  EXPECT_OK(db.AddSymFact("in-region", {"c1", "north"}));
  EXPECT_OK(db.AddSymFact("in-region", {"c2", "north"}));
  EXPECT_OK(db.AddSymFact("in-region", {"c3", "south"}));
  ASSERT_OK(EvalText(
                "query region-total {\n"
                "  edge R -> C : sale(V);\n"
                "  edge C -> G : in-region;\n"
                "  distinguished R -> G : region-total(sum<V>);\n"
                "}\n",
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "region-total"),
            (std::set<std::string>{"east,north,15", "west,south,7"}));
}

TEST(GraphLogAggregatesTest, CountReachable) {
  Database db;
  EXPECT_OK(db.AddSymFact("edge", {"a", "b"}));
  EXPECT_OK(db.AddSymFact("edge", {"b", "c"}));
  EXPECT_OK(db.AddSymFact("edge", {"a", "d"}));
  ASSERT_OK(EvalText(
                "query reach {\n"
                "  edge X -> Y : edge+;\n"
                "  distinguished X -> Y : reach;\n"
                "}\n"
                "query fanout {\n"
                "  edge X -> Y : reach;\n"
                "  distinguished X -> X : fanout(count<Y>);\n"
                "}\n",
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "fanout"),
            (std::set<std::string>{"a,a,3", "b,b,1"}));
}

TEST(GraphLogAggregatesTest, MinMaxAvg) {
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  EXPECT_OK(db.AddFact("temp", {sym("yyz"), Value::Int(10)}));
  EXPECT_OK(db.AddFact("temp", {sym("yyz"), Value::Int(20)}));
  EXPECT_OK(db.AddFact("temp", {sym("yul"), Value::Int(4)}));
  ASSERT_OK(EvalText(
                "query stats {\n"
                "  edge S -> T : temp;\n"
                "  distinguished S -> S : stats(min<T>, max<T>, avg<T>);\n"
                "}\n",
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "stats"),
            (std::set<std::string>{"yyz,yyz,10,20,15.0", "yul,yul,4,4,4.0"}));
}

TEST(GraphLogAggregatesTest, AggregateWithIdentityEdgeRejected) {
  Database db;
  EXPECT_OK(db.AddSymFact("e", {"a", "b"}));
  auto r = EvalText(
      "query bad {\n"
      "  edge X -> Y : e*;\n"
      "  distinguished X -> X : bad(count<Y>);\n"
      "}\n",
      &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(GraphLogAggregatesTest, AggregationOverClosure) {
  // Count each node's descendants through a closure edge — recursion
  // below, aggregation above, stratified (Section 4's design point).
  Database db;
  EXPECT_OK(db.AddSymFact("parent", {"a", "b"}));
  EXPECT_OK(db.AddSymFact("parent", {"b", "c"}));
  EXPECT_OK(db.AddSymFact("parent", {"a", "d"}));
  ASSERT_OK(EvalText(
                "query descendants {\n"
                "  edge X -> Y : parent+;\n"
                "  distinguished X -> X : descendants(count<Y>);\n"
                "}\n",
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "descendants"),
            (std::set<std::string>{"a,a,3", "b,b,1"}));
}

TEST(GraphLogAggregatesTest, ParseRoundTrip) {
  Database db;
  const char* text =
      "query fanout {\n"
      "  edge X -> Y : reach;\n"
      "  distinguished X -> X : fanout(count<Y>);\n"
      "}\n";
  ASSERT_OK_AND_ASSIGN(GraphicalQuery q,
                       ParseGraphicalQuery(text, &db.symbols()));
  std::string printed = q.ToString(db.symbols());
  EXPECT_NE(printed.find("count<Y>"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(GraphicalQuery q2,
                       ParseGraphicalQuery(printed, &db.symbols()));
  EXPECT_EQ(printed, q2.ToString(db.symbols()));
}

// ---------------------------------------------------------------------------
// DOT rendering of query graphs

TEST(QueryGraphDotTest, RendersPaperConventions) {
  Database db;
  ASSERT_OK_AND_ASSIGN(
      GraphicalQuery q,
      ParseGraphicalQuery("query not-desc-of {\n"
                          "  node P2 [person];\n"
                          "  edge P1 -> P3 : descendant+;\n"
                          "  edge P2 -> P3 : !descendant+;\n"
                          "  distinguished P1 -> P3 : not-desc-of(P2);\n"
                          "}\n",
                          &db.symbols()));
  std::string dot = RenderQueryGraph(q.graphs[0], db.symbols());
  // Closure edges dashed (Example 2.2's drawing convention).
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Negative literal marked.
  EXPECT_NE(dot.find("¬descendant+"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Distinguished edge bold.
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  // Node predicate annotation.
  EXPECT_NE(dot.find("[person]"), std::string::npos);
}

TEST(QueryGraphDotTest, ComparisonEdgesDotted) {
  Database db;
  ASSERT_OK_AND_ASSIGN(
      GraphicalQuery q,
      ParseGraphicalQuery("query f {\n"
                          "  edge F1 -> A : arrival;\n"
                          "  edge F2 -> D : departure;\n"
                          "  edge A -> D : <;\n"
                          "  distinguished F1 -> F2 : f;\n"
                          "}\n",
                          &db.symbols()));
  std::string dot = RenderQueryGraph(q.graphs[0], db.symbols());
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
  EXPECT_NE(dot.find("label=\"<\""), std::string::npos);
}

TEST(QueryGraphDotTest, GraphicalQueryUsesClusters) {
  Database db;
  ASSERT_OK_AND_ASSIGN(
      GraphicalQuery q,
      ParseGraphicalQuery("query a { edge X -> Y : e; "
                          "distinguished X -> Y : a; }\n"
                          "query b { edge X -> Y : a+; "
                          "distinguished X -> Y : b; }\n",
                          &db.symbols()));
  std::string dot = RenderGraphicalQuery(q, db.symbols());
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
}

TEST(QueryGraphDotTest, SummaryEdgeRendered) {
  Database db;
  ASSERT_OK_AND_ASSIGN(
      GraphicalQuery q,
      ParseGraphicalQuery("query es {\n"
                          "  summarize E = max<sum<D>> over w(D);\n"
                          "  distinguished T1 -> T2 : es(E);\n"
                          "}\n",
                          &db.symbols()));
  std::string dot = RenderQueryGraph(q.graphs[0], db.symbols());
  EXPECT_NE(dot.find("max<sum<D>>"), std::string::npos);
  EXPECT_NE(dot.find("color=blue"), std::string::npos);
}

}  // namespace
}  // namespace graphlog::gl
