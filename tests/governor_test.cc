// Tests for the query governor: cooperative cancellation, deadlines,
// resource budgets (strict and return_partial), rollback guarantees,
// deterministic fault injection, and the API-level error taxonomy.
//
// The headline contracts under test:
//  * budget trips are bit-identical across num_threads settings;
//  * cancellation/deadline aborts leave the Database exactly as it was
//    before the run (no partially-merged rounds leak);
//  * a cancel lands well under a stalled lane's stall time.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "eval/engine.h"
#include "gov/fault_injection.h"
#include "gov/governor.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "storage/io.h"
#include "tc/columnar_tc.h"
#include "tc/parallel_tc.h"
#include "tc/transitive_closure.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog {
namespace {

using storage::Database;
using storage::Relation;
using storage::Tuple;
using testutil::RelationSet;
using testutil::RelationSize;

constexpr char kTcProgram[] =
    "t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).";

/// Loads a chain n0 -> n1 -> ... -> n{n} into `db` as `edge`.
void LoadChain(Database* db, int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ").\n";
  }
  ASSERT_OK(storage::LoadFacts(text, db).status());
}

// ---------------------------------------------------------------------------
// Primitives.

TEST(CancellationTokenTest, CopiesShareState) {
  gov::CancellationToken a;
  gov::CancellationToken b = a;
  EXPECT_FALSE(a.cancelled());
  b.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  a.Reset();
  EXPECT_FALSE(b.cancelled());
  EXPECT_FALSE(a.flag()->load());
}

TEST(DeadlineTest, DefaultNeverExpires) {
  gov::Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, ZeroDeadlineExpiresImmediately) {
  gov::Deadline d = gov::Deadline::AfterNanos(0);
  EXPECT_TRUE(d.armed());
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  gov::Deadline d = gov::Deadline::AfterMillis(60'000);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired());
}

TEST(GovernorContextTest, NullCheckpointIsOk) {
  EXPECT_OK(gov::CheckPoint(nullptr, "anything"));
}

TEST(GovernorContextTest, CancelledAndExpiredTaxonomy) {
  gov::GovernorContext g;
  EXPECT_OK(g.Check("site"));
  g.token.Cancel();
  Status st = g.Check("site");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("site"), std::string::npos);

  gov::GovernorContext d;
  d.deadline = gov::Deadline::AfterNanos(0);
  EXPECT_EQ(d.Check("late").code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Fault injection.

TEST(FaultInjectorTest, TriggersOnNthHitOnly) {
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.trigger_hit = 3;
  spec.code = StatusCode::kInternal;
  fi.Arm("x", spec);
  EXPECT_OK(fi.Hit("x"));
  EXPECT_OK(fi.Hit("x"));
  Status st = fi.Hit("x");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("hit 3"), std::string::npos);
  EXPECT_OK(fi.Hit("x"));  // not repeat: only the 3rd hit fires
  EXPECT_EQ(fi.hits("x"), 4u);
}

TEST(FaultInjectorTest, RepeatFiresEveryHitFromN) {
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.trigger_hit = 2;
  spec.repeat = true;
  fi.Arm("x", spec);
  EXPECT_OK(fi.Hit("x"));
  EXPECT_FALSE(fi.Hit("x").ok());
  EXPECT_FALSE(fi.Hit("x").ok());
  fi.Disarm("x");
  EXPECT_OK(fi.Hit("x"));
  EXPECT_EQ(fi.hits("x"), 4u);  // disarm keeps counting
  fi.Reset();
  EXPECT_EQ(fi.hits("x"), 0u);
  EXPECT_TRUE(fi.Armed().empty());
}

TEST(FaultInjectorTest, HitsCountedWhenNothingArmed) {
  gov::FaultInjector fi;
  EXPECT_OK(fi.Hit("cold"));
  EXPECT_OK(fi.Hit("cold"));
  EXPECT_EQ(fi.hits("cold"), 2u);
}

TEST(FaultInjectorTest, StallWakesEarlyOnCancel) {
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.action = gov::FaultAction::kStall;
  spec.stall_ms = 5000;
  fi.Arm("x", spec);

  gov::GovernorContext g;
  g.faults = &fi;
  gov::CancellationToken token = g.token;
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  Status st = g.Check("x");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  // The stall absorbed the cancel and the checkpoint reports it.
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2500);
}

// ---------------------------------------------------------------------------
// Engine: budgets, rollback, determinism.

TEST(EngineGovernorTest, StrictRowBudgetFailsAndRollsBack) {
  Database db;
  LoadChain(&db, 20);
  gov::GovernorContext g;
  g.budget.max_result_rows = 5;
  eval::EvalOptions opts;
  opts.governor = &g;
  auto r = eval::EvaluateText(kTcProgram, &db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
  // Rollback: the created IDB relation is gone, the EDB untouched.
  EXPECT_EQ(db.Find("t"), nullptr);
  EXPECT_EQ(RelationSize(db, "edge"), 20u);
}

TEST(EngineGovernorTest, PartialBudgetIsDeterministicAcrossThreads) {
  std::set<std::string> rows[2];
  uint64_t derived[2] = {0, 0};
  const unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    Database db;
    LoadChain(&db, 30);
    gov::GovernorContext g;
    g.budget.max_result_rows = 50;
    g.budget.return_partial = true;
    eval::EvalOptions opts;
    opts.governor = &g;
    opts.num_threads = threads[i];
    ASSERT_OK_AND_ASSIGN(eval::EvalStats stats,
                         eval::EvaluateText(kTcProgram, &db, opts));
    EXPECT_TRUE(stats.truncated);
    EXPECT_NE(stats.truncated_by.find("max_result_rows"), std::string::npos);
    rows[i] = RelationSet(db, "t");
    derived[i] = stats.tuples_derived;
    // At-least semantics: the cap plus at most one round's overshoot.
    EXPECT_GE(stats.tuples_derived, 50u);
  }
  EXPECT_EQ(rows[0], rows[1]);
  EXPECT_EQ(derived[0], derived[1]);
}

TEST(EngineGovernorTest, MaxRoundsPartialStopsEarly) {
  Database db;
  LoadChain(&db, 30);
  gov::GovernorContext g;
  g.budget.max_rounds = 3;
  g.budget.return_partial = true;
  eval::EvalOptions opts;
  opts.governor = &g;
  ASSERT_OK_AND_ASSIGN(eval::EvalStats stats,
                       eval::EvaluateText(kTcProgram, &db, opts));
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(stats.iterations, 4u);
  // A 30-chain's closure has 465 pairs; 3 rounds cannot reach it.
  EXPECT_LT(RelationSize(db, "t"), 465u);
  EXPECT_GT(RelationSize(db, "t"), 0u);
}

TEST(EngineGovernorTest, PreExpiredDeadlineLeavesNoState) {
  Database db;
  LoadChain(&db, 10);
  gov::GovernorContext g;
  g.deadline = gov::Deadline::AfterNanos(0);
  eval::EvalOptions opts;
  opts.governor = &g;
  auto r = eval::EvaluateText(kTcProgram, &db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(db.Find("t"), nullptr);
  EXPECT_EQ(RelationSize(db, "edge"), 10u);
}

TEST(EngineGovernorTest, RollbackTruncatesPreexistingRelations) {
  Database db;
  LoadChain(&db, 5);
  // First run materializes t = closure of the 5-chain (15 pairs).
  ASSERT_OK(eval::EvaluateText(kTcProgram, &db).status());
  const size_t before = RelationSize(db, "t");
  ASSERT_EQ(before, 15u);
  // Grow the graph, then fail a second governed run: t must come back
  // to exactly its pre-run size, not keep half-merged new pairs.
  ASSERT_OK(storage::LoadFacts("edge(n5, n6). edge(n6, n7).", &db).status());
  gov::GovernorContext g;
  g.token.Cancel();
  eval::EvalOptions opts;
  opts.governor = &g;
  auto r = eval::EvaluateText(kTcProgram, &db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(RelationSize(db, "t"), before);
}

TEST(EngineGovernorTest, EvalRoundFaultRollsBack) {
  Database db;
  LoadChain(&db, 10);
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.trigger_hit = 2;
  spec.code = StatusCode::kInternal;
  spec.message = "boom";
  fi.Arm("eval.round", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  eval::EvalOptions opts;
  opts.governor = &g;
  auto r = eval::EvaluateText(kTcProgram, &db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("boom"), std::string::npos);
  EXPECT_EQ(db.Find("t"), nullptr);
  EXPECT_GE(fi.hits("eval.round"), 2u);
}

TEST(EngineGovernorTest, PoolTaskFaultPropagatesFromParallelLanes) {
  Database db;
  LoadChain(&db, 20);
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.trigger_hit = 2;
  spec.code = StatusCode::kInternal;
  fi.Arm("pool.task", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  eval::EvalOptions opts;
  opts.governor = &g;
  opts.num_threads = 4;
  auto r = eval::EvaluateText(kTcProgram, &db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  // The lane error aborted before the merge: rollback left no trace.
  EXPECT_EQ(db.Find("t"), nullptr);
  EXPECT_EQ(RelationSize(db, "edge"), 20u);
}

// ---------------------------------------------------------------------------
// TC kernels.

TEST(TcGovernorTest, StrictBudgetFails) {
  Database db;
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ").\n";
  }
  ASSERT_OK(storage::LoadFacts(text, &db).status());
  const Relation& edges = *db.Find("edge");
  gov::GovernorContext g;
  g.budget.max_result_rows = 10;
  tc::TcStats stats;
  auto r = tc::TransitiveClosure(edges, tc::TcAlgorithm::kSemiNaive, &stats,
                                 nullptr, nullptr, &g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
}

TEST(TcGovernorTest, PartialBudgetTruncates) {
  Database db;
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ").\n";
  }
  ASSERT_OK(storage::LoadFacts(text, &db).status());
  const Relation& edges = *db.Find("edge");
  gov::GovernorContext g;
  g.budget.max_rounds = 2;
  g.budget.return_partial = true;
  tc::TcStats stats;
  ASSERT_OK_AND_ASSIGN(
      Relation closure,
      tc::TransitiveClosure(edges, tc::TcAlgorithm::kSemiNaive, &stats,
                            nullptr, nullptr, &g));
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(closure.size(), 50u * 51u / 2u);
  EXPECT_GT(closure.size(), 0u);
}

TEST(TcGovernorTest, ParallelPartialRowCapDeterministicAcrossThreads) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(40, 120, 7, &db));
  const Relation& edges = *db.Find("edge");
  Relation results[2] = {Relation(2), Relation(2)};
  const unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    gov::GovernorContext g;
    g.budget.max_result_rows = 100;
    g.budget.return_partial = true;
    tc::TcStats stats;
    ASSERT_OK_AND_ASSIGN(
        results[i],
        tc::ParallelTransitiveClosure(edges, threads[i], nullptr, &g,
                                      &stats));
    EXPECT_TRUE(stats.truncated);
    EXPECT_EQ(results[i].size(), 100u);
  }
  EXPECT_EQ(results[0].rows(), results[1].rows());
}

TEST(TcGovernorTest, ParallelCancelLandsWellUnderStall) {
  // Arm a 5-second stall on every tc.expand hit, start a parallel
  // closure of a 200-node graph, cancel ~50 ms in: the cancel must land
  // orders of magnitude before the stall would have drained (the
  // acceptance bound for shell Ctrl-C latency).
  Database db;
  ASSERT_OK(workload::RandomDigraph(200, 800, 11, &db));
  const Relation& edges = *db.Find("edge");
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.action = gov::FaultAction::kStall;
  spec.stall_ms = 5000;
  spec.repeat = true;
  fi.Arm("tc.expand", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  gov::CancellationToken token = g.token;

  Status result = Status::OK();
  const auto start = std::chrono::steady_clock::now();
  std::thread worker([&] {
    auto r = tc::ParallelTransitiveClosure(edges, 4, nullptr, &g);
    result = r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel();
  worker.join();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_EQ(result.code(), StatusCode::kCancelled) << result.ToString();
  EXPECT_LT(elapsed_ms, 2500);  // one stall is 5000 ms; N sources stall
}

// ---------------------------------------------------------------------------
// Columnar kernels and the columnar engine path.

TEST(ColumnarGovernorTest, StrictRowBudgetFails) {
  Database db;
  LoadChain(&db, 50);
  const Relation& edges = *db.Find("edge");
  gov::GovernorContext g;
  g.budget.max_result_rows = 10;
  auto r = tc::ColumnarTransitiveClosure(edges, 0, nullptr, &g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
}

TEST(ColumnarGovernorTest, PartialRowCapDeterministicAcrossThreads) {
  // Same contract as the row-path parallel kernel: a return_partial row
  // cap yields bit-identical rows at every thread count.
  Database db;
  ASSERT_OK(workload::RandomDigraph(40, 120, 7, &db));
  const Relation& edges = *db.Find("edge");
  Relation results[2] = {Relation(2), Relation(2)};
  const unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    gov::GovernorContext g;
    g.budget.max_result_rows = 100;
    g.budget.return_partial = true;
    tc::TcStats stats;
    ASSERT_OK_AND_ASSIGN(
        results[i],
        tc::ColumnarTransitiveClosure(edges, threads[i], nullptr, &g,
                                      &stats));
    EXPECT_TRUE(stats.truncated);
    EXPECT_EQ(results[i].size(), 100u);
  }
  EXPECT_EQ(results[0].rows(), results[1].rows());
}

TEST(ColumnarGovernorTest, PartialByteBudgetTruncates) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(40, 120, 9, &db));
  const Relation& edges = *db.Find("edge");
  ASSERT_OK_AND_ASSIGN(Relation full, tc::ColumnarTransitiveClosure(edges));
  gov::GovernorContext g;
  g.budget.max_bytes = full.MemoryBytes() / 4;
  g.budget.return_partial = true;
  tc::TcStats stats;
  ASSERT_OK_AND_ASSIGN(
      Relation capped,
      tc::ColumnarTransitiveClosure(edges, 0, nullptr, &g, &stats));
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(capped.size(), full.size());
  EXPECT_GT(capped.size(), 0u);
  // The truncation is a prefix of the unbudgeted run's insertion order.
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped.rows()[i], full.rows()[i]) << "row " << i;
  }
}

TEST(ColumnarGovernorTest, CancelLandsWellUnderStall) {
  // Mirror of the row kernel's Ctrl-C latency bound: a 5-second stall on
  // every tc.expand hit must not hold a cancelled columnar BFS hostage.
  Database db;
  ASSERT_OK(workload::RandomDigraph(200, 800, 11, &db));
  const Relation& edges = *db.Find("edge");
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.action = gov::FaultAction::kStall;
  spec.stall_ms = 5000;
  spec.repeat = true;
  fi.Arm("tc.expand", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  gov::CancellationToken token = g.token;

  Status result = Status::OK();
  const auto start = std::chrono::steady_clock::now();
  std::thread worker([&] {
    auto r = tc::ColumnarTransitiveClosure(edges, 4, nullptr, &g);
    result = r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel();
  worker.join();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_EQ(result.code(), StatusCode::kCancelled) << result.ToString();
  EXPECT_LT(elapsed_ms, 2500);
}

TEST(ColumnarGovernorTest, CsrBuildFaultFailsKernel) {
  Database db;
  LoadChain(&db, 10);
  const Relation& edges = *db.Find("edge");
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "csr boom";
  fi.Arm("csr.build", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  auto r = tc::ColumnarTransitiveClosure(edges, 0, nullptr, &g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("csr boom"), std::string::npos);
  EXPECT_EQ(fi.hits("csr.build"), 1u);
}

TEST(ColumnarGovernorTest, CsrBuildFaultRollsBackEngineRun) {
  // The fault fires at batch setup, before any lane runs: the engine
  // must abort pre-merge and roll the database back untouched.
  Database db;
  LoadChain(&db, 10);
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "csr boom";
  fi.Arm("csr.build", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  eval::EvalOptions opts;
  opts.governor = &g;
  opts.columnar = true;
  auto r = eval::EvaluateText(kTcProgram, &db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(db.Find("t"), nullptr);
  EXPECT_EQ(RelationSize(db, "edge"), 10u);
  EXPECT_GE(fi.hits("csr.build"), 1u);
}

TEST(ColumnarGovernorTest, EnginePartialBudgetMatchesRowPath) {
  // A return_partial budget trip must land on the identical prefix in
  // both engine paths, at both thread counts.
  std::set<std::string> rows[4];
  int i = 0;
  for (bool columnar : {false, true}) {
    for (unsigned threads : {1u, 4u}) {
      Database db;
      LoadChain(&db, 30);
      gov::GovernorContext g;
      g.budget.max_result_rows = 50;
      g.budget.return_partial = true;
      eval::EvalOptions opts;
      opts.governor = &g;
      opts.columnar = columnar;
      opts.num_threads = threads;
      ASSERT_OK_AND_ASSIGN(eval::EvalStats stats,
                           eval::EvaluateText(kTcProgram, &db, opts));
      EXPECT_TRUE(stats.truncated);
      rows[i++] = RelationSet(db, "t");
    }
  }
  for (int j = 1; j < 4; ++j) EXPECT_EQ(rows[0], rows[j]) << "variant " << j;
}

TEST(ColumnarGovernorTest, BitsetRpqBudgetAndCancel) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(100, 500, 3, &db));
  graph::DataGraph dg = graph::DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(gl::PathExpr expr,
                       gl::ParsePathExpr("edge+", &db.symbols()));

  gov::GovernorContext cancelled;
  cancelled.token.Cancel();
  rpq::RpqOptions opts;
  opts.governor = &cancelled;
  auto r = rpq::EvalRpqBitset(dg, expr, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  gov::GovernorContext strict;
  strict.budget.max_result_rows = 5;
  opts.governor = &strict;
  r = rpq::EvalRpqBitset(dg, expr, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);

  gov::GovernorContext partial;
  partial.budget.max_result_rows = 5;
  partial.budget.return_partial = true;
  opts.governor = &partial;
  rpq::RpqStats stats;
  ASSERT_OK_AND_ASSIGN(Relation rel, rpq::EvalRpqBitset(dg, expr, opts,
                                                        &stats));
  EXPECT_TRUE(stats.truncated);
  EXPECT_GE(rel.size(), 5u);
  EXPECT_LT(rel.size(), 5000u);
}

// ---------------------------------------------------------------------------
// RPQ.

TEST(RpqGovernorTest, PreCancelledSearchAborts) {
  Database db;
  LoadChain(&db, 4);
  graph::DataGraph dg = graph::DataGraph::FromDatabase(db);
  gov::GovernorContext g;
  g.token.Cancel();
  rpq::RpqOptions opts;
  opts.governor = &g;
  auto r = rpq::EvalRpqText(dg, "edge+", &db.symbols(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(RpqGovernorTest, BudgetBoundsProductSearch) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(100, 500, 3, &db));
  graph::DataGraph dg = graph::DataGraph::FromDatabase(db);

  gov::GovernorContext strict;
  strict.budget.max_result_rows = 5;
  rpq::RpqOptions opts;
  opts.governor = &strict;
  auto r = rpq::EvalRpqText(dg, "edge+", &db.symbols(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);

  gov::GovernorContext partial;
  partial.budget.max_result_rows = 5;
  partial.budget.return_partial = true;
  opts.governor = &partial;
  rpq::RpqStats stats;
  ASSERT_OK_AND_ASSIGN(
      Relation rel, rpq::EvalRpqText(dg, "edge+", &db.symbols(), opts,
                                     &stats));
  EXPECT_TRUE(stats.truncated);
  // Budget checks run every ~256 pops, so the overshoot is bounded but
  // nonzero; the full closure of this graph is far larger.
  EXPECT_GE(rel.size(), 5u);
  EXPECT_LT(rel.size(), 5000u);
}

// ---------------------------------------------------------------------------
// Loader.

TEST(IoGovernorTest, LoadFaultAppliesNothing) {
  Database db;
  gov::FaultInjector fi;
  gov::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  fi.Arm("io.load", spec);
  gov::GovernorContext g;
  g.faults = &fi;
  auto r = storage::LoadFacts("a(1). a(2). a(3).", &db, &g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(db.Find("a"), nullptr);
  // Exactly one governed checkpoint per load, after validation.
  EXPECT_EQ(fi.hits("io.load"), 1u);
}

// ---------------------------------------------------------------------------
// API layer: taxonomy counters and slow-log capture.

TEST(ApiGovernorTest, TaxonomyCountersAndSlowLogCapture) {
  obs::MetricsRegistry metrics;
  obs::SlowQueryLog slowlog;
  Database db;
  LoadChain(&db, 20);

  auto run_governed = [&](gov::GovernorContext* g) {
    QueryRequest req = QueryRequest::Datalog(kTcProgram);
    req.options.eval.governor = g;
    req.options.observability.metrics = &metrics;
    req.options.observability.slow_query_log = &slowlog;
    // Threshold far beyond any test runtime: only governed aborts may
    // land in the log.
    req.options.observability.slow_query_threshold_ns = 60'000'000'000ull;
    return graphlog::Run(req, &db);
  };

  gov::GovernorContext cancelled;
  cancelled.token.Cancel();
  EXPECT_EQ(run_governed(&cancelled).status().code(), StatusCode::kCancelled);

  gov::GovernorContext late;
  late.deadline = gov::Deadline::AfterNanos(0);
  EXPECT_EQ(run_governed(&late).status().code(),
            StatusCode::kDeadlineExceeded);

  gov::GovernorContext broke;
  broke.budget.max_result_rows = 3;
  EXPECT_EQ(run_governed(&broke).status().code(),
            StatusCode::kBudgetExceeded);

  gov::GovernorContext partial;
  partial.budget.max_result_rows = 3;
  partial.budget.return_partial = true;
  auto ok = run_governed(&partial);
  ASSERT_OK(ok.status());
  EXPECT_TRUE(ok->truncated);
  EXPECT_FALSE(ok->truncated_by.empty());

  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters["query.cancelled"], 1u);
  EXPECT_EQ(snap.counters["query.deadline_exceeded"], 1u);
  EXPECT_EQ(snap.counters["query.budget_exceeded"], 1u);
  EXPECT_EQ(snap.counters["query.truncated"], 1u);

  // The three aborts were captured despite the 60 s threshold; the
  // successful truncated run was not (it is not an abort).
  EXPECT_EQ(slowlog.total_recorded(), 3u);
  for (const obs::SlowQueryRecord& rec : slowlog.Entries()) {
    EXPECT_FALSE(rec.error.empty());
  }
}

}  // namespace
}  // namespace graphlog
