// Process-wide metrics registry, its exporters, and the slow-query log.
// The headline property lives here too: the structural projection of a
// registry snapshot (ToJson(include_timings=false)) is byte-identical
// across num_threads settings for the same workload.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "graphlog/api.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::HistogramCell;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SlowQueryLog;
using obs::SlowQueryRecord;
using storage::Database;

// ---------------------------------------------------------------------------
// Registry basics

TEST(MetricsRegistryTest, InstrumentsAccumulateAndSnapshot) {
  MetricsRegistry reg;
  Counter* c = reg.counter("eval.runs");
  c->Increment();
  c->Add(4);
  reg.gauge("db.rows")->Set(123);
  reg.gauge("db.rows")->Add(-23);
  reg.histogram("eval.delta_rows")->Observe(0);
  reg.histogram("eval.delta_rows")->Observe(5);
  reg.histogram("eval.delta_rows")->Observe(300);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("eval.runs"), 5u);
  EXPECT_EQ(snap.gauges.at("db.rows"), 100);
  EXPECT_EQ(snap.histograms.at("eval.delta_rows").count, 3u);
  EXPECT_EQ(snap.histograms.at("eval.delta_rows").sum, 305);
  EXPECT_EQ(snap.histograms.at("eval.delta_rows").min, 0);
  EXPECT_EQ(snap.histograms.at("eval.delta_rows").max, 300);
}

TEST(MetricsRegistryTest, HandlesAreStableAndResetZeroesInPlace) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("x");
  Counter* c2 = reg.counter("x");
  EXPECT_EQ(c1, c2);  // same name -> same instrument
  c1->Add(7);
  reg.Reset();
  EXPECT_EQ(c1->value(), 0u);  // zeroed, not replaced
  c1->Increment();
  EXPECT_EQ(reg.Snapshot().counters.at("x"), 1u);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAndRegistrationsAreSafe) {
  MetricsRegistry reg;
  Counter* shared = reg.counter("shared");
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, shared, t] {
      // Hammer a shared counter while registering thread-local names and
      // observing into a shared histogram — the TSan workload.
      Gauge* g = reg.gauge("lane." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        g->Add(1);
        reg.histogram("obs")->Observe(i);
      }
    });
  }
  for (auto& w : workers) w.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.histograms.at("obs").count,
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.gauges.at("lane." + std::to_string(t)), kIters);
  }
}

// ---------------------------------------------------------------------------
// Exporters

TEST(MetricsSnapshotTest, JsonRoundTripsBothProjections) {
  MetricsRegistry reg;
  reg.counter("eval.runs")->Add(3);
  reg.counter("query.duration_ns")->Add(123456);  // timing by convention
  reg.gauge("db.relation.edge.rows")->Set(42);
  reg.histogram("eval.stratum_rounds")->Observe(1);
  reg.histogram("eval.stratum_rounds")->Observe(9);
  reg.histogram("io.read_ns")->Observe(5000);  // timing histogram
  MetricsSnapshot snap = reg.Snapshot();

  for (bool timings : {true, false}) {
    std::string json = snap.ToJson(timings);
    ASSERT_OK_AND_ASSIGN(MetricsSnapshot parsed,
                         MetricsSnapshot::FromJson(json));
    EXPECT_EQ(parsed.ToJson(timings), json);
  }

  // The structural projection drops exactly the *_ns instruments.
  std::string structural = snap.ToJson(/*include_timings=*/false);
  EXPECT_EQ(structural.find("query.duration_ns"), std::string::npos);
  EXPECT_EQ(structural.find("io.read_ns"), std::string::npos);
  EXPECT_NE(structural.find("eval.runs"), std::string::npos);
  EXPECT_NE(structural.find("eval.stratum_rounds"), std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("eval.rule_firings")->Add(17);
  reg.gauge("db.rows")->Set(-3);
  reg.histogram("tc.output_pairs")->Observe(6);  // width 3: [4, 7]
  std::string prom = reg.Snapshot().ToPrometheus();

  EXPECT_NE(prom.find("# TYPE graphlog_eval_rule_firings counter"),
            std::string::npos);
  EXPECT_NE(prom.find("graphlog_eval_rule_firings 17"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE graphlog_db_rows gauge"), std::string::npos);
  EXPECT_NE(prom.find("graphlog_db_rows -3"), std::string::npos);
  // Power-of-two bucket of width 3 covers up to 7; cumulative le buckets.
  EXPECT_NE(prom.find("graphlog_tc_output_pairs_bucket{le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("graphlog_tc_output_pairs_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("graphlog_tc_output_pairs_sum 6"), std::string::npos);
  EXPECT_NE(prom.find("graphlog_tc_output_pairs_count 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism across num_threads

constexpr char kLinearTc[] =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

/// Runs the workload with a fresh database + registry and returns the
/// structural snapshot projection.
std::string StructuralSnapshotAt(unsigned num_threads) {
  Database db;
  EXPECT_TRUE(workload::RandomDigraph(60, 180, 17, &db).ok());
  MetricsRegistry reg;
  QueryRequest req = QueryRequest::Datalog(kLinearTc);
  req.options.eval.num_threads = num_threads;
  req.options.observability.metrics = &reg;
  auto r = graphlog::Run(req, &db);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return reg.Snapshot().ToJson(/*include_timings=*/false);
}

TEST(MetricsDeterminismTest, StructuralSnapshotIdenticalAcrossThreadCounts) {
  const std::string serial = StructuralSnapshotAt(1);
  EXPECT_FALSE(serial.empty());
  // Counters, gauges (resource accounting), and structural histograms must
  // not depend on the lane count; only *_ns instruments may, and those are
  // projected out.
  EXPECT_EQ(serial, StructuralSnapshotAt(2));
  EXPECT_EQ(serial, StructuralSnapshotAt(4));
  // The projection saw real work and real resource gauges.
  EXPECT_NE(serial.find("eval.rule_firings"), std::string::npos);
  EXPECT_NE(serial.find("db.relation.tc.rows"), std::string::npos);
  EXPECT_NE(serial.find("db.relation.tc.bytes"), std::string::npos);
}

TEST(MetricsDeterminismTest, PeakDeltaStatsAreDeterministic) {
  auto peaks = [](unsigned num_threads) {
    Database db;
    EXPECT_TRUE(workload::RandomDigraph(60, 180, 17, &db).ok());
    QueryRequest req = QueryRequest::Datalog(kLinearTc);
    req.options.eval.num_threads = num_threads;
    auto r = graphlog::Run(req, &db);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::pair<uint64_t, uint64_t>(r->stats.datalog.peak_delta_rows,
                                         r->stats.datalog.peak_delta_bytes);
  };
  auto serial = peaks(1);
  EXPECT_GT(serial.first, 0u);
  EXPECT_GT(serial.second, 0u);
  EXPECT_EQ(serial, peaks(2));
  EXPECT_EQ(serial, peaks(4));
}

// ---------------------------------------------------------------------------
// Slow-query log

TEST(SlowQueryLogTest, RingEvictsOldestAndCountsTotals) {
  SlowQueryLog log(2);
  for (int i = 1; i <= 3; ++i) {
    SlowQueryRecord rec;
    rec.language = "datalog";
    rec.text = "q" + std::to_string(i);
    rec.duration_ns = 1000u * i;
    log.Record(std::move(rec));
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_EQ(log.total_recorded(), 3u);
  std::vector<SlowQueryRecord> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sequence, 2u);  // q1 evicted
  EXPECT_EQ(entries[0].text, "q2");
  EXPECT_EQ(entries[1].sequence, 3u);
  EXPECT_EQ(entries[1].text, "q3");

  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"total_recorded\":3"), std::string::npos);
  EXPECT_EQ(json.find("q1"), std::string::npos);
  EXPECT_NE(json.find("q3"), std::string::npos);

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 3u);  // lifetime total survives Clear
}

TEST(SlowQueryLogTest, RunCapturesRequestExplainAndStats) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(40, 120, 5, &db));
  SlowQueryLog log;
  QueryRequest req = QueryRequest::Datalog(kLinearTc);
  req.options.observability.slow_query_log = &log;
  req.options.observability.slow_query_threshold_ns = 1;  // everything trips
  ASSERT_OK_AND_ASSIGN(QueryResponse resp, graphlog::Run(req, &db));

  // EXPLAIN was forced internally for the record but not leaked into the
  // response the caller did not ask it for.
  EXPECT_TRUE(resp.explain.empty());
  ASSERT_EQ(log.size(), 1u);
  SlowQueryRecord rec = log.Entries()[0];
  EXPECT_EQ(rec.language, "datalog");
  EXPECT_EQ(rec.text, kLinearTc);
  EXPECT_GE(rec.duration_ns, rec.threshold_ns);
  EXPECT_TRUE(rec.error.empty());
  EXPECT_NE(rec.explain.find("stratification"), std::string::npos);
  EXPECT_TRUE(rec.trace_json.empty());  // tracing was off
  EXPECT_EQ(rec.tuples_derived, resp.stats.datalog.tuples_derived);
  EXPECT_EQ(rec.result_tuples, resp.stats.result_tuples);
  EXPECT_GT(rec.peak_delta_rows, 0u);

  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"language\":\"datalog\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\":"), std::string::npos);
}

TEST(SlowQueryLogTest, CapturesTraceWhenTracingAndErrorsOnFailure) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(20, 60, 7, &db));
  SlowQueryLog log;
  QueryRequest req = QueryRequest::Datalog(kLinearTc);
  req.options.observability.tracing = true;
  req.options.observability.slow_query_log = &log;
  req.options.observability.slow_query_threshold_ns = 1;
  ASSERT_OK(graphlog::Run(req, &db).status());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log.Entries()[0].trace_json.find("\"spans\""),
            std::string::npos);

  // A failing query past the threshold is captured with its error.
  QueryRequest bad = QueryRequest::Datalog("p(X) :- q(X.");
  bad.options.observability.slow_query_log = &log;
  bad.options.observability.slow_query_threshold_ns = 1;
  EXPECT_FALSE(graphlog::Run(bad, &db).ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.Entries()[1].error.empty());
}

TEST(SlowQueryLogTest, ZeroThresholdDisablesCapture) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(20, 60, 7, &db));
  SlowQueryLog log;
  QueryRequest req = QueryRequest::Datalog(kLinearTc);
  req.options.observability.slow_query_log = &log;  // threshold stays 0
  ASSERT_OK(graphlog::Run(req, &db).status());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
}

}  // namespace
}  // namespace graphlog
