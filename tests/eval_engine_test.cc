// Tests for the stratified bottom-up evaluation engine.

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::eval {
namespace {

using storage::Database;
using testutil::RelationSet;
using testutil::RelationSize;

Database ChainDb(int n) {
  // edge(0,1), edge(1,2), ..., edge(n-1,n)
  Database db;
  for (int i = 0; i < n; ++i) {
    EXPECT_OK(db.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}));
  }
  return db;
}

TEST(EvalEngineTest, NonRecursiveJoin) {
  Database db;
  ASSERT_OK(db.AddSymFact("parent", {"ann", "bob"}));
  ASSERT_OK(db.AddSymFact("parent", {"bob", "cid"}));
  ASSERT_OK_AND_ASSIGN(
      EvalStats stats,
      EvaluateText("grandparent(X, Z) :- parent(X, Y), parent(Y, Z).", &db));
  EXPECT_EQ(RelationSet(db, "grandparent"),
            (std::set<std::string>{"ann,cid"}));
  EXPECT_EQ(stats.tuples_derived, 1u);
}

TEST(EvalEngineTest, TransitiveClosureOnChain) {
  Database db = ChainDb(10);
  ASSERT_OK(EvaluateText("tc(X, Y) :- edge(X, Y).\n"
                         "tc(X, Y) :- edge(X, Z), tc(Z, Y).",
                         &db)
                .status());
  // 10 nodes in a chain: 10*11/2 = 55 pairs.
  EXPECT_EQ(RelationSize(db, "tc"), 55u);
}

TEST(EvalEngineTest, NaiveAndSemiNaiveAgree) {
  Database db1 = ChainDb(20);
  Database db2 = ChainDb(20);
  const char* prog =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";
  EvalOptions naive;
  naive.strategy = Strategy::kNaive;
  EvalOptions semi;
  semi.strategy = Strategy::kSemiNaive;
  ASSERT_OK(EvaluateText(prog, &db1, naive).status());
  ASSERT_OK(EvaluateText(prog, &db2, semi).status());
  EXPECT_EQ(RelationSet(db1, "tc"), RelationSet(db2, "tc"));
  EXPECT_EQ(RelationSize(db1, "tc"), 210u);
}

TEST(EvalEngineTest, SemiNaiveDoesLessWork) {
  Database db1 = ChainDb(40);
  Database db2 = ChainDb(40);
  const char* prog =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";
  EvalOptions naive;
  naive.strategy = Strategy::kNaive;
  EvalOptions semi;
  semi.strategy = Strategy::kSemiNaive;
  ASSERT_OK_AND_ASSIGN(EvalStats sn, EvaluateText(prog, &db1, naive));
  ASSERT_OK_AND_ASSIGN(EvalStats ss, EvaluateText(prog, &db2, semi));
  EXPECT_LT(ss.rule_firings, sn.rule_firings);
}

TEST(EvalEngineTest, StratifiedNegation) {
  Database db;
  ASSERT_OK(db.AddSymFact("node", {"a"}));
  ASSERT_OK(db.AddSymFact("node", {"b"}));
  ASSERT_OK(db.AddSymFact("node", {"c"}));
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(EvaluateText("reach(X) :- edge(a, X).\n"
                         "reach(X) :- reach(Y), edge(Y, X).\n"
                         "unreach(X) :- node(X), !reach(X), X != a.\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "unreach"), (std::set<std::string>{"c"}));
}

TEST(EvalEngineTest, NegationThroughRecursionFails) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  auto r = EvaluateText("win(X) :- p(X), !win(X).", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnstratifiable);
}

TEST(EvalEngineTest, UnsafeRuleRejected) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  auto r = EvaluateText("q(X, Y) :- p(X).", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafeRule);
}

TEST(EvalEngineTest, ArityMismatchRejected) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  auto r = EvaluateText("q(X) :- p(X), p(X, X).", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArityMismatch);
}

TEST(EvalEngineTest, ComparisonsFilter) {
  Database db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db.AddFact("num", {Value::Int(i)}));
  }
  ASSERT_OK(EvaluateText("small(X) :- num(X), X < 3.\n"
                         "edgev(X) :- num(X), X >= 8.\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "small"), (std::set<std::string>{"0", "1", "2"}));
  EXPECT_EQ(RelationSet(db, "edgev"), (std::set<std::string>{"8", "9"}));
}

TEST(EvalEngineTest, ArithmeticAssignment) {
  Database db;
  ASSERT_OK(db.AddFact("point", {Value::Int(3), Value::Int(4)}));
  ASSERT_OK(EvaluateText("sum(S) :- point(X, Y), S = X + Y.\n"
                         "scaled(S) :- point(X, Y), S = 2 * X + Y * Y.\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "sum"), (std::set<std::string>{"7"}));
  EXPECT_EQ(RelationSet(db, "scaled"), (std::set<std::string>{"22"}));
}

TEST(EvalEngineTest, DivisionByZeroFailsLiteral) {
  Database db;
  ASSERT_OK(db.AddFact("p", {Value::Int(1), Value::Int(0)}));
  ASSERT_OK(db.AddFact("p", {Value::Int(6), Value::Int(2)}));
  ASSERT_OK(EvaluateText("q(Z) :- p(X, Y), Z = X / Y.", &db).status());
  // Only the (6,2) row survives; (1,0) silently fails the builtin.
  EXPECT_EQ(RelationSet(db, "q"), (std::set<std::string>{"3"}));
}

TEST(EvalEngineTest, AggregatesGroupBy) {
  Database db;
  ASSERT_OK(db.AddFact("sale", {Value::Sym(db.Intern("east")), Value::Int(10)}));
  ASSERT_OK(db.AddFact("sale", {Value::Sym(db.Intern("east")), Value::Int(5)}));
  ASSERT_OK(db.AddFact("sale", {Value::Sym(db.Intern("west")), Value::Int(7)}));
  ASSERT_OK(
      EvaluateText("total(R, sum<V>) :- sale(R, V).\n"
                   "biggest(R, max<V>) :- sale(R, V).\n"
                   "cnt(R, count<V>) :- sale(R, V).\n",
                   &db)
          .status());
  EXPECT_EQ(RelationSet(db, "total"),
            (std::set<std::string>{"east,15", "west,7"}));
  EXPECT_EQ(RelationSet(db, "biggest"),
            (std::set<std::string>{"east,10", "west,7"}));
  EXPECT_EQ(RelationSet(db, "cnt"),
            (std::set<std::string>{"east,2", "west,1"}));
}

TEST(EvalEngineTest, AggregateOverIdb) {
  Database db = ChainDb(5);
  ASSERT_OK(EvaluateText("tc(X, Y) :- edge(X, Y).\n"
                         "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
                         "reachable-count(X, count<Y>) :- tc(X, Y).\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "reachable-count"),
            (std::set<std::string>{"0,5", "1,4", "2,3", "3,2", "4,1"}));
}

TEST(EvalEngineTest, RecursionThroughAggregationFails) {
  Database db;
  ASSERT_OK(db.AddFact("e", {Value::Int(1), Value::Int(2)}));
  auto r = EvaluateText("p(X, sum<Y>) :- e(X, Y).\n"
                        "e2(X, Y) :- p(X, Y).\n"
                        "p(X, sum<Y>) :- e2(X, Y).\n",
                        &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnstratifiable);
}

TEST(EvalEngineTest, MutualRecursion) {
  Database db = ChainDb(8);
  // even/odd distance reachability from node 0.
  ASSERT_OK(EvaluateText("odd(X) :- edge(0, X).\n"
                         "odd(Y) :- even(X), edge(X, Y).\n"
                         "even(Y) :- odd(X), edge(X, Y).\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSet(db, "odd"),
            (std::set<std::string>{"1", "3", "5", "7"}));
  EXPECT_EQ(RelationSet(db, "even"),
            (std::set<std::string>{"2", "4", "6", "8"}));
}

TEST(EvalEngineTest, ConstantsInRules) {
  Database db = ChainDb(5);
  ASSERT_OK(EvaluateText("from-two(Y) :- edge(2, Y).", &db).status());
  EXPECT_EQ(RelationSet(db, "from-two"), (std::set<std::string>{"3"}));
}

TEST(EvalEngineTest, FactsInProgram) {
  Database db;
  ASSERT_OK(EvaluateText("color(red).\ncolor(blue).\n"
                         "pair(X, Y) :- color(X), color(Y), X != Y.\n",
                         &db)
                .status());
  EXPECT_EQ(RelationSize(db, "pair"), 2u);
}

TEST(EvalEngineTest, NegatedAtomWithLocalExistentialVar) {
  // !q(X, _): "no q-tuple whose first column is X, with anything second."
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a"}));
  ASSERT_OK(db.AddSymFact("p", {"b"}));
  ASSERT_OK(db.AddSymFact("q", {"a", "z"}));
  ASSERT_OK(EvaluateText("r(X) :- p(X), !q(X, _).", &db).status());
  EXPECT_EQ(RelationSet(db, "r"), (std::set<std::string>{"b"}));
}

TEST(EvalEngineTest, SameGenerationFromPaper) {
  // Figure 8 of the paper.
  Database db;
  ASSERT_OK(db.AddSymFact("person", {"ann"}));
  ASSERT_OK(db.AddSymFact("person", {"bob"}));
  ASSERT_OK(db.AddSymFact("person", {"cid"}));
  ASSERT_OK(db.AddSymFact("person", {"dee"}));
  // parent(child, parent): ann,bob children of cid; cid child of dee.
  ASSERT_OK(db.AddSymFact("parent", {"ann", "cid"}));
  ASSERT_OK(db.AddSymFact("parent", {"bob", "cid"}));
  ASSERT_OK(db.AddSymFact("parent", {"cid", "dee"}));
  ASSERT_OK(EvaluateText("sg(X, X) :- person(X).\n"
                         "sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).\n",
                         &db)
                .status());
  auto sg = RelationSet(db, "sg");
  EXPECT_TRUE(sg.count("ann,bob"));
  EXPECT_TRUE(sg.count("bob,ann"));
  EXPECT_TRUE(sg.count("ann,ann"));
  EXPECT_FALSE(sg.count("ann,cid"));
  EXPECT_FALSE(sg.count("ann,dee"));
}

TEST(EvalEngineTest, MaxIterationsGuard) {
  Database db = ChainDb(100);
  EvalOptions opts;
  opts.max_iterations = 3;
  auto r = EvaluateText("tc(X, Y) :- edge(X, Y).\n"
                        "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n",
                        &db, opts);
  EXPECT_FALSE(r.ok());
}

TEST(EvalEngineTest, StatsAreReported) {
  Database db = ChainDb(10);
  ASSERT_OK_AND_ASSIGN(EvalStats stats,
                       EvaluateText("tc(X, Y) :- edge(X, Y).\n"
                                    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n",
                                    &db));
  EXPECT_EQ(stats.tuples_derived, 55u);
  EXPECT_GT(stats.iterations, 1u);
  EXPECT_GE(stats.rule_firings, 55u);
  EXPECT_EQ(stats.strata, 1u);
}

}  // namespace
}  // namespace graphlog::eval
