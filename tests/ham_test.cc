// Tests for the miniature Hypertext Abstract Machine: transactions,
// version history, cascade deletes, and the GraphLog query interface.

#include <gtest/gtest.h>

#include "graphlog/api.h"
#include "ham/ham.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::ham {
namespace {

using storage::Database;
using testutil::RelationSet;
using testutil::RelationSize;

TEST(HamTest, MutationOutsideTransactionFails) {
  Ham ham;
  EXPECT_FALSE(ham.CreateNode("a").ok());
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  ASSERT_OK(ham.Commit().status());
  EXPECT_FALSE(ham.SetAttribute(a, "x", Value::Int(1)).ok());
}

TEST(HamTest, CommitPublishesAbortDiscards) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK(ham.CreateNode("a").status());
  ASSERT_OK(ham.Abort());
  EXPECT_EQ(ham.num_objects(), 0u);
  EXPECT_EQ(ham.current_version(), 0u);

  ASSERT_OK(ham.Begin());
  ASSERT_OK(ham.CreateNode("a").status());
  ASSERT_OK_AND_ASSIGN(Version v, ham.Commit());
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(ham.num_objects(), 1u);
}

TEST(HamTest, ReadYourWritesInsideTransaction) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  EXPECT_TRUE(ham.Exists(a));  // pending creation visible in-txn
  ASSERT_OK(ham.SetAttribute(a, "color", Value::Sym(0)));
  ASSERT_OK_AND_ASSIGN(Value c, ham.GetAttribute(a, "color"));
  EXPECT_EQ(c, Value::Sym(0));
  ASSERT_OK(ham.Commit().status());
}

TEST(HamTest, DoubleBeginFails) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  EXPECT_FALSE(ham.Begin().ok());
  ASSERT_OK(ham.Abort());
  EXPECT_FALSE(ham.Abort().ok());
}

TEST(HamTest, AttributeVersionHistory) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  ASSERT_OK(ham.SetAttribute(a, "size", Value::Int(1)));
  ASSERT_OK(ham.Commit().status());  // v1

  ASSERT_OK(ham.Begin());
  ASSERT_OK(ham.SetAttribute(a, "size", Value::Int(2)));
  ASSERT_OK(ham.Commit().status());  // v2

  ASSERT_OK_AND_ASSIGN(Value now, ham.GetAttribute(a, "size"));
  EXPECT_EQ(now, Value::Int(2));
  ASSERT_OK_AND_ASSIGN(Value v1, ham.GetAttribute(a, "size", Version{1}));
  EXPECT_EQ(v1, Value::Int(1));
  // Before the node existed.
  EXPECT_FALSE(ham.GetAttribute(a, "size", Version{0}).ok());
}

TEST(HamTest, DestroyNodeCascadesToLinks) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  ASSERT_OK_AND_ASSIGN(ObjectId b, ham.CreateNode("b"));
  ASSERT_OK_AND_ASSIGN(ObjectId l, ham.CreateLink(a, b, "link"));
  ASSERT_OK(ham.Commit().status());
  EXPECT_EQ(ham.num_objects(), 3u);

  ASSERT_OK(ham.Begin());
  ASSERT_OK(ham.Destroy(a));
  ASSERT_OK(ham.Commit().status());
  EXPECT_FALSE(ham.Exists(a));
  EXPECT_FALSE(ham.Exists(l));
  EXPECT_TRUE(ham.Exists(b));
}

TEST(HamTest, HistoricalStateSurvivesDestroy) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  ASSERT_OK(ham.SetAttribute(a, "t", Value::Int(9)));
  ASSERT_OK(ham.Commit().status());  // v1
  ASSERT_OK(ham.Begin());
  ASSERT_OK(ham.Destroy(a));
  ASSERT_OK(ham.Commit().status());  // v2
  EXPECT_FALSE(ham.Exists(a));
  // The v1 state is still queryable.
  ASSERT_OK_AND_ASSIGN(Value t, ham.GetAttribute(a, "t", Version{1}));
  EXPECT_EQ(t, Value::Int(9));
}

TEST(HamTest, LinkRequiresLiveNodeEndpoints) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  EXPECT_FALSE(ham.CreateLink(a, 999, "x").ok());
  ASSERT_OK_AND_ASSIGN(ObjectId b, ham.CreateNode("b"));
  ASSERT_OK_AND_ASSIGN(ObjectId l, ham.CreateLink(a, b, "x"));
  // Links cannot be endpoints.
  EXPECT_FALSE(ham.CreateLink(a, l, "x").ok());
  ASSERT_OK(ham.Commit().status());
}

TEST(HamTest, CreateAndDestroyInSameTransactionLeavesNothing) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  ASSERT_OK(ham.Destroy(a));
  ASSERT_OK(ham.Commit().status());
  EXPECT_EQ(ham.num_objects(), 0u);
}

TEST(HamTest, ExportAndQueryWithGraphLog) {
  // Build a small web in the HAM and pose a GraphLog query over the
  // export — the Section 5 "queries on large graphs may be posed" path.
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId p0, ham.CreateNode("page0"));
  ASSERT_OK_AND_ASSIGN(ObjectId p1, ham.CreateNode("page1"));
  ASSERT_OK_AND_ASSIGN(ObjectId p2, ham.CreateNode("page2"));
  ASSERT_OK(ham.CreateLink(p0, p1, "link").status());
  ASSERT_OK(ham.CreateLink(p1, p2, "link").status());
  ASSERT_OK(ham.SetAttribute(p2, "title", Value::Sym(0)));
  ASSERT_OK(ham.Commit().status());

  Database db;
  ASSERT_OK(ham.Export(&db));
  EXPECT_EQ(RelationSize(db, "node"), 3u);
  EXPECT_EQ(RelationSize(db, "link"), 2u);
  EXPECT_EQ(RelationSize(db, "node-attr"), 1u);

  ASSERT_OK(graphlog::Run(QueryRequest::GraphLog("query reach {\n"
                                       "  edge X -> Y : link+;\n"
                                       "  distinguished X -> Y : reach;\n"
                                       "}\n"),
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "reach"),
            (std::set<std::string>{"page0,page1", "page0,page2",
                                   "page1,page2"}));
}

TEST(HamTest, ExportHistoricalVersion) {
  Ham ham;
  ASSERT_OK(ham.Begin());
  ASSERT_OK_AND_ASSIGN(ObjectId a, ham.CreateNode("a"));
  ASSERT_OK_AND_ASSIGN(ObjectId b, ham.CreateNode("b"));
  ASSERT_OK(ham.CreateLink(a, b, "link").status());
  ASSERT_OK(ham.Commit().status());  // v1
  ASSERT_OK(ham.Begin());
  ASSERT_OK(ham.Destroy(b));
  ASSERT_OK(ham.Commit().status());  // v2

  Database now, then;
  ASSERT_OK(ham.Export(&now));
  ASSERT_OK(ham.Export(&then, Version{1}));
  EXPECT_EQ(RelationSize(now, "node"), 1u);
  EXPECT_EQ(RelationSize(now, "link"), 0u);
  EXPECT_EQ(RelationSize(then, "node"), 2u);
  EXPECT_EQ(RelationSize(then, "link"), 1u);
}

}  // namespace
}  // namespace graphlog::ham
