// Shared helpers for the test suite.

#ifndef GRAPHLOG_TESTS_TEST_UTIL_H_
#define GRAPHLOG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"

#define ASSERT_OK(expr)                                         \
  do {                                                          \
    ::graphlog::Status _st = (expr);                            \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define EXPECT_OK(expr)                                         \
  do {                                                          \
    ::graphlog::Status _st = (expr);                            \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)              \
  auto tmp = (rexpr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();             \
  lhs = std::move(tmp).ValueOrDie()

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL(                                    \
      GRAPHLOG_ASSIGN_OR_RETURN_NAME(_assert_or_, __LINE__), lhs, rexpr)

namespace graphlog::testutil {

/// \brief Renders a relation as a sorted set of "a,b,c" strings — a
/// convenient, order-insensitive comparison form.
inline std::set<std::string> RelationSet(const storage::Database& db,
                                         std::string_view name) {
  std::set<std::string> out;
  const storage::Relation* rel = db.Find(name);
  if (rel == nullptr) return out;
  for (const auto& row : rel->rows()) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += row[i].ToString(db.symbols());
    }
    out.insert(s);
  }
  return out;
}

/// \brief Number of tuples in a relation (0 when absent).
inline size_t RelationSize(const storage::Database& db,
                           std::string_view name) {
  const storage::Relation* rel = db.Find(name);
  return rel == nullptr ? 0 : rel->size();
}

}  // namespace graphlog::testutil

#endif  // GRAPHLOG_TESTS_TEST_UTIL_H_
