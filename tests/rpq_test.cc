// Tests for the RPQ evaluator: NFA construction and product search,
// cross-checked against the lambda/Datalog evaluation path — the empirical
// certification that the Section 5 prototype's [MW89] strategy agrees with
// the Definition 2.4 semantics.

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "rpq/nfa.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog::rpq {
namespace {

using graph::DataGraph;
using graph::NodeId;
using storage::Database;
using storage::Relation;
using storage::Tuple;
using testutil::RelationSet;

/// Renders an RPQ result relation like testutil::RelationSet.
std::set<std::string> ResultSet(const Relation& rel, const SymbolTable& s) {
  std::set<std::string> out;
  for (const Tuple& t : rel.rows()) {
    out.insert(t[0].ToString(s) + "," + t[1].ToString(s));
  }
  return out;
}

TEST(NfaTest, AtomAutomaton) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(auto e, gl::ParsePathExpr("p", &syms));
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(e));
  EXPECT_FALSE(nfa.AcceptsEmpty());
}

TEST(NfaTest, StarAcceptsEmpty) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(auto e, gl::ParsePathExpr("p*", &syms));
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(e));
  EXPECT_TRUE(nfa.AcceptsEmpty());
}

TEST(NfaTest, NegationRejected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(auto e, gl::ParsePathExpr("!p", &syms));
  auto r = Nfa::Compile(e);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(NfaTest, VariableParamsRejected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(auto e, gl::ParsePathExpr("p(D)+", &syms));
  EXPECT_FALSE(Nfa::Compile(e).ok());
}

TEST(RpqEvalTest, SimpleEdge) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("p", {"b", "c"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(Relation r,
                       EvalRpqText(g, "p", &db.symbols()));
  EXPECT_EQ(ResultSet(r, db.symbols()),
            (std::set<std::string>{"a,b", "b,c"}));
}

TEST(RpqEvalTest, ClosureAndInverse) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("p", {"b", "c"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(Relation plus,
                       EvalRpqText(g, "p+", &db.symbols()));
  EXPECT_EQ(ResultSet(plus, db.symbols()),
            (std::set<std::string>{"a,b", "b,c", "a,c"}));
  ASSERT_OK_AND_ASSIGN(Relation inv,
                       EvalRpqText(g, "-p", &db.symbols()));
  EXPECT_EQ(ResultSet(inv, db.symbols()),
            (std::set<std::string>{"b,a", "c,b"}));
}

TEST(RpqEvalTest, InverseOfCompositionReverses) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("q", {"b", "c"}));
  DataGraph g = DataGraph::FromDatabase(db);
  // -(p q) relates c to a.
  ASSERT_OK_AND_ASSIGN(Relation r,
                       EvalRpqText(g, "-(p q)", &db.symbols()));
  EXPECT_EQ(ResultSet(r, db.symbols()), (std::set<std::string>{"c,a"}));
}

TEST(RpqEvalTest, ConstantParamFilters) {
  Database db;
  ASSERT_OK(db.AddFact("w", {Value::Sym(db.Intern("a")),
                             Value::Sym(db.Intern("b")), Value::Int(1)}));
  ASSERT_OK(db.AddFact("w", {Value::Sym(db.Intern("a")),
                             Value::Sym(db.Intern("c")), Value::Int(2)}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(Relation r,
                       EvalRpqText(g, "w(1)", &db.symbols()));
  EXPECT_EQ(ResultSet(r, db.symbols()), (std::set<std::string>{"a,b"}));
  ASSERT_OK_AND_ASSIGN(Relation all,
                       EvalRpqText(g, "w(_)", &db.symbols()));
  EXPECT_EQ(all.size(), 2u);
}

TEST(RpqEvalTest, FixedEndpoints) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("p", {"b", "c"}));
  ASSERT_OK(db.AddSymFact("p", {"x", "y"}));
  DataGraph g = DataGraph::FromDatabase(db);
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("a"));
  ASSERT_OK_AND_ASSIGN(Relation r,
                       EvalRpqText(g, "p+", &db.symbols(), opts));
  EXPECT_EQ(ResultSet(r, db.symbols()),
            (std::set<std::string>{"a,b", "a,c"}));
  opts.target = Value::Sym(db.Intern("c"));
  ASSERT_OK_AND_ASSIGN(Relation rt,
                       EvalRpqText(g, "p+", &db.symbols(), opts));
  EXPECT_EQ(ResultSet(rt, db.symbols()), (std::set<std::string>{"a,c"}));
}

TEST(RpqEvalTest, StarIncludesAllNodesReflexively) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(Relation r, EvalRpqText(g, "p*", &db.symbols()));
  auto s = ResultSet(r, db.symbols());
  EXPECT_TRUE(s.count("a,a"));
  EXPECT_TRUE(s.count("b,b"));
  EXPECT_TRUE(s.count("a,b"));
  EXPECT_EQ(s.size(), 3u);
}

TEST(RpqEvalTest, Figure12RtScaleQuery) {
  // Scales on a CP path from Rome to Tokyo.
  Database db;
  ASSERT_OK(db.AddSymFact("cp", {"rome", "geneva"}));
  ASSERT_OK(db.AddSymFact("cp", {"geneva", "bombay"}));
  ASSERT_OK(db.AddSymFact("cp", {"bombay", "tokyo"}));
  ASSERT_OK(db.AddSymFact("cp", {"rome", "paris"}));
  ASSERT_OK(db.AddSymFact("aa", {"paris", "tokyo"}));
  DataGraph g = DataGraph::FromDatabase(db);
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("rome"));
  opts.target = Value::Sym(db.Intern("tokyo"));
  ASSERT_OK_AND_ASSIGN(Relation r,
                       EvalRpqText(g, "cp cp+", &db.symbols(), opts));
  // Rome connects to Tokyo with at least one intermediate CP stop.
  EXPECT_EQ(ResultSet(r, db.symbols()),
            (std::set<std::string>{"rome,tokyo"}));
}

/// Property sweep: on random graphs, the product-automaton evaluator and
/// the Datalog translation agree for a corpus of expressions.
class RpqVsDatalogTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RpqVsDatalogTest, AgreesOnRandomGraphs) {
  const char* expr = GetParam();
  for (uint64_t seed : {11u, 22u, 33u}) {
    // Two edge labels: p and q.
    Database db;
    ASSERT_OK(workload::RandomDigraph(12, 25, seed, &db, "p"));
    ASSERT_OK(workload::RandomDigraph(12, 18, seed + 100, &db, "q"));

    // RPQ side.
    DataGraph g = DataGraph::FromDatabase(db);
    ASSERT_OK_AND_ASSIGN(Relation rpq_result,
                         EvalRpqText(g, expr, &db.symbols()));

    // Datalog side: translate `query r { edge X -> Y : <expr>; ... }`.
    std::string text = std::string("query rq { edge X -> Y : ") + expr +
                       "; distinguished X -> Y : rq; }";
    ASSERT_OK(graphlog::Run(QueryRequest::GraphLog(text), &db).status());

    std::set<std::string> datalog_set = RelationSet(db, "rq");
    std::set<std::string> rpq_set = ResultSet(rpq_result, db.symbols());
    // Zero-length alternatives: the Datalog rule variant with X = Y keeps
    // X unrestricted only through other pattern parts; with a bare edge it
    // ranges over... nothing. The corpus below avoids identity-accepting
    // expressions, so the two sets must match exactly.
    EXPECT_EQ(rpq_set, datalog_set) << "expr " << expr << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExpressionCorpus, RpqVsDatalogTest,
    ::testing::Values("p", "p+", "p q", "p | q", "(p | q)+", "p q+",
                      "-p", "(-p)+", "p (q | -p)", "p p q",
                      "-(p q)", "(p | -q)+ p"));

TEST(RpqWitnessTest, ShortestPathReturned) {
  Database db;
  // Two routes a->d: length 2 (via x) and length 3 (via y, z).
  ASSERT_OK(db.AddSymFact("p", {"a", "x"}));
  ASSERT_OK(db.AddSymFact("p", {"x", "d"}));
  ASSERT_OK(db.AddSymFact("p", {"a", "y"}));
  ASSERT_OK(db.AddSymFact("p", {"y", "z"}));
  ASSERT_OK(db.AddSymFact("p", {"z", "d"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(auto expr, gl::ParsePathExpr("p+", &db.symbols()));
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("a"));
  opts.target = Value::Sym(db.Intern("d"));
  ASSERT_OK_AND_ASSIGN(auto witnesses, EvalRpqWitnesses(g, expr, opts));
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].edge_ids.size(), 2u);  // BFS-shortest
  // The witness is a real path: consecutive edges share endpoints.
  NodeId a;
  ASSERT_TRUE(g.FindNode(*opts.source, &a));
  NodeId cur = a;
  for (uint32_t ei : witnesses[0].edge_ids) {
    EXPECT_EQ(g.edge(ei).from, cur);
    cur = g.edge(ei).to;
  }
  NodeId d;
  ASSERT_TRUE(g.FindNode(*opts.target, &d));
  EXPECT_EQ(cur, d);
}

TEST(RpqWitnessTest, OneWitnessPerAnswerPair) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("p", {"b", "c"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(auto expr, gl::ParsePathExpr("p+", &db.symbols()));
  ASSERT_OK_AND_ASSIGN(auto witnesses, EvalRpqWitnesses(g, expr));
  // Pairs: (a,b), (a,c), (b,c).
  EXPECT_EQ(witnesses.size(), 3u);
  ASSERT_OK_AND_ASSIGN(Relation answers, EvalRpq(g, expr));
  EXPECT_EQ(witnesses.size(), answers.size());
}

TEST(RpqWitnessTest, InvertedEdgesInWitness) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"b", "a"}));  // traversed backwards
  ASSERT_OK(db.AddSymFact("q", {"b", "c"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(auto expr,
                       gl::ParsePathExpr("(-p) q", &db.symbols()));
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("a"));
  ASSERT_OK_AND_ASSIGN(auto witnesses, EvalRpqWitnesses(g, expr, opts));
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].edge_ids.size(), 2u);
  EXPECT_EQ(witnesses[0].target, Value::Sym(db.Intern("c")));
}

TEST(RpqWitnessTest, ZeroLengthWitnessIsEmpty) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(auto expr, gl::ParsePathExpr("p*", &db.symbols()));
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("a"));
  opts.target = Value::Sym(db.Intern("a"));
  ASSERT_OK_AND_ASSIGN(auto witnesses, EvalRpqWitnesses(g, expr, opts));
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_TRUE(witnesses[0].edge_ids.empty());
}

TEST(RpqStatsTest, FixedSourceTouchesFewerStates) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(60, 180, 5, &db, "p"));
  DataGraph g = DataGraph::FromDatabase(db);
  RpqStats all, single;
  ASSERT_OK(EvalRpqText(g, "p+", &db.symbols(), {}, &all).status());
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("n0"));
  ASSERT_OK(EvalRpqText(g, "p+", &db.symbols(), opts, &single).status());
  EXPECT_LT(single.product_states_visited, all.product_states_visited);
}

}  // namespace
}  // namespace graphlog::rpq
