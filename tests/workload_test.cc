// Tests for the workload generators: determinism and schema shape.

#include <gtest/gtest.h>

#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog::workload {
namespace {

using storage::Database;
using testutil::RelationSize;

TEST(GeneratorsTest, RandomDigraphDeterministic) {
  Database a, b;
  ASSERT_OK(RandomDigraph(20, 50, 99, &a));
  ASSERT_OK(RandomDigraph(20, 50, 99, &b));
  EXPECT_EQ(a.RelationToString(a.Intern("edge")),
            b.RelationToString(b.Intern("edge")));
  EXPECT_EQ(RelationSize(a, "edge"), 50u);
}

TEST(GeneratorsTest, RandomDigraphSeedMatters) {
  Database a, b;
  ASSERT_OK(RandomDigraph(20, 50, 1, &a));
  ASSERT_OK(RandomDigraph(20, 50, 2, &b));
  EXPECT_NE(a.RelationToString(a.Intern("edge")),
            b.RelationToString(b.Intern("edge")));
}

TEST(GeneratorsTest, ChainShape) {
  Database db;
  ASSERT_OK(Chain(10, &db));
  EXPECT_EQ(RelationSize(db, "edge"), 10u);
}

TEST(GeneratorsTest, DagHasNoCycles) {
  Database db;
  ASSERT_OK(RandomDag(15, 40, 3, &db));
  // Verify topological: every edge goes from a lower to a higher index.
  const auto* rel = db.Find("edge");
  ASSERT_NE(rel, nullptr);
  for (const auto& t : rel->rows()) {
    int a = std::stoi(db.symbols().name(t[0].AsSymbol()).substr(1));
    int b = std::stoi(db.symbols().name(t[1].AsSymbol()).substr(1));
    EXPECT_LT(a, b);
  }
}

TEST(GeneratorsTest, KaryTreeSize) {
  Database db;
  ASSERT_OK(KaryTree(2, 3, &db));
  // Complete binary tree of depth 3: 15 nodes, 14 edges.
  EXPECT_EQ(RelationSize(db, "edge"), 14u);
}

TEST(GeneratorsTest, FlightsSchema) {
  Database db;
  FlightsOptions opts;
  opts.num_flights = 25;
  ASSERT_OK(Flights(opts, &db));
  EXPECT_EQ(RelationSize(db, "from"), 25u);
  EXPECT_EQ(RelationSize(db, "to"), 25u);
  EXPECT_EQ(RelationSize(db, "departure"), 25u);
  EXPECT_EQ(RelationSize(db, "arrival"), 25u);
  EXPECT_EQ(RelationSize(db, "capital"), 3u);
  // Arrival strictly after departure for every flight.
  const auto* dep = db.Find("departure");
  const auto* arr = db.Find("arrival");
  for (const auto& d : dep->rows()) {
    for (uint32_t i : arr->Probe({0}, {d[0]})) {
      EXPECT_GT(arr->row(i)[1].AsInt(), d[1].AsInt());
    }
  }
}

TEST(GeneratorsTest, Figure1DatabaseIsThePapersFigure) {
  Database db;
  ASSERT_OK(Figure1Flights(&db));
  EXPECT_EQ(RelationSize(db, "from"), 6u);
  // Flight 106 leaves Toronto at 21:45.
  const auto* dep = db.Find("departure");
  bool found = false;
  for (const auto& t : dep->rows()) {
    if (t[0] == Value::Int(106)) {
      EXPECT_EQ(t[1], Value::Int(21 * 60 + 45));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GeneratorsTest, FamilySchema) {
  Database db;
  FamilyOptions opts;
  ASSERT_OK(Family(opts, &db));
  EXPECT_GT(RelationSize(db, "person"), 0u);
  EXPECT_GT(RelationSize(db, "descendant"), 0u);
  EXPECT_GT(RelationSize(db, "residence"), 0u);
  // Every descendant edge is either a father or a mother edge.
  size_t f = RelationSize(db, "father");
  size_t m = RelationSize(db, "mother");
  EXPECT_EQ(f + m, RelationSize(db, "descendant"));
  // mother has the hospital attribute.
  if (m > 0) {
    EXPECT_EQ(db.Find("mother")->arity(), 3u);
  }
}

TEST(GeneratorsTest, ModulesSchema) {
  Database db;
  ModulesOptions opts;
  ASSERT_OK(Modules(opts, &db));
  EXPECT_EQ(RelationSize(db, "in-module"),
            static_cast<size_t>(opts.num_modules *
                                opts.functions_per_module));
  EXPECT_GT(RelationSize(db, "calls-local"), 0u);
  EXPECT_GT(RelationSize(db, "calls-extn"), 0u);
}

TEST(GeneratorsTest, TasksFormDagWithConsistentStarts) {
  Database db;
  TasksOptions opts;
  ASSERT_OK(Tasks(opts, &db));
  EXPECT_EQ(RelationSize(db, "duration"),
            static_cast<size_t>(opts.num_tasks));
  EXPECT_EQ(RelationSize(db, "scheduled-start"),
            static_cast<size_t>(opts.num_tasks));
  EXPECT_EQ(RelationSize(db, "delay"), 1u);
  // affects is a DAG by construction (i < j).
  const auto* aff = db.Find("affects");
  ASSERT_NE(aff, nullptr);
  for (const auto& t : aff->rows()) {
    int a = std::stoi(db.symbols().name(t[0].AsSymbol()).substr(1));
    int b = std::stoi(db.symbols().name(t[1].AsSymbol()).substr(1));
    EXPECT_LT(a, b);
  }
}

TEST(GeneratorsTest, HypertextSchema) {
  Database db;
  HypertextOptions opts;
  ASSERT_OK(Hypertext(opts, &db));
  EXPECT_EQ(RelationSize(db, "author"),
            static_cast<size_t>(opts.num_pages));
  EXPECT_EQ(RelationSize(db, "title-word"),
            static_cast<size_t>(opts.num_pages));
  EXPECT_GT(RelationSize(db, "link"), 0u);
}

}  // namespace
}  // namespace graphlog::workload
