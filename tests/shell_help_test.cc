// Audit of the interactive shell's `.help` text: every dot-command the
// dispatch loop recognizes must be documented. The shell is a standalone
// binary, so the test scrapes its source (path injected by CMake) rather
// than linking it — a command added to Handle() without a help entry
// fails here.

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string ReadShellSource() {
  std::ifstream in(SHELL_SOURCE_PATH);
  EXPECT_TRUE(in.good()) << "cannot open " << SHELL_SOURCE_PATH;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extracts the body of PrintHelp(): from its definition to the first
/// line consisting of a lone closing brace.
std::string HelpBody(const std::string& source) {
  size_t begin = source.find("void PrintHelp()");
  EXPECT_NE(begin, std::string::npos);
  size_t end = source.find("\n}", begin);
  EXPECT_NE(end, std::string::npos);
  return source.substr(begin, end - begin);
}

/// Every `.command` token compared against the input line in the dispatch
/// loop. Matches both exact comparisons (`line == ".quit"`) and prefix
/// dispatch (`StartsWith(line, ".load ")`).
std::set<std::string> DispatchedCommands(const std::string& source) {
  std::set<std::string> out;
  std::regex exact("line == \"(\\.[a-z]+)\"");
  std::regex prefix("StartsWith\\(line, \"(\\.[a-z]+) ?\"\\)");
  for (const std::regex& re : {exact, prefix}) {
    for (auto it = std::sregex_iterator(source.begin(), source.end(), re);
         it != std::sregex_iterator(); ++it) {
      out.insert((*it)[1].str());
    }
  }
  return out;
}

TEST(ShellHelpAuditTest, DispatchRecognizesACommandCorpus) {
  // The scraper itself must keep working as the shell evolves: if the
  // dispatch idiom changes and the regexes go blind, this pin fails
  // before the audit silently passes on an empty set.
  std::set<std::string> cmds = DispatchedCommands(ReadShellSource());
  EXPECT_GE(cmds.size(), 20u);
  for (const char* expected :
       {".help", ".quit", ".load", ".show", ".cache", ".view", ".trace",
        ".metrics", ".slowlog", ".limit", ".fault", ".datalog", ".rpq"}) {
    EXPECT_TRUE(cmds.count(expected)) << expected << " not dispatched";
  }
}

TEST(ShellHelpAuditTest, EveryDispatchedCommandIsDocumented) {
  std::string source = ReadShellSource();
  std::string help = HelpBody(source);
  for (const std::string& cmd : DispatchedCommands(source)) {
    EXPECT_NE(help.find(cmd), std::string::npos)
        << "command '" << cmd << "' is dispatched but missing from .help";
  }
}

TEST(ShellHelpAuditTest, EveryDocumentedCommandIsDispatched) {
  // The reverse direction: help must not advertise commands the loop no
  // longer understands.
  std::string source = ReadShellSource();
  std::string help = HelpBody(source);
  std::set<std::string> cmds = DispatchedCommands(source);
  std::regex doc("\"  (\\.[a-z]+)[ /\\\\]");
  for (auto it = std::sregex_iterator(help.begin(), help.end(), doc);
       it != std::sregex_iterator(); ++it) {
    std::string cmd = (*it)[1].str();
    EXPECT_TRUE(cmds.count(cmd))
        << "command '" << cmd << "' is documented but not dispatched";
  }
}

}  // namespace
