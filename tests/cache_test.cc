// The src/cache subsystem: canonical query fingerprinting, the
// generation-invalidated result cache, the materialized view catalog
// with incremental maintenance, and their wiring through graphlog::Run
// (governor interplay, metrics, slow-query log).
//
// The load-bearing property throughout: anything served from the cache
// or a view is indistinguishable from cold recomputation — same
// relation contents in the same insertion order, same stats, same
// EXPLAIN — at every num_threads setting.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cache/fingerprint.h"
#include "cache/result_cache.h"
#include "cache/view_catalog.h"
#include "eval/provenance.h"
#include "gov/governor.h"
#include "graphlog/api.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

using cache::CanonicalQueryKey;
using cache::FingerprintKey;
using cache::NormalizeQueryText;
using cache::QueryKeyOptions;
using cache::ResultCache;
using cache::ViewCatalog;
using storage::Database;
using storage::Relation;
using testutil::RelationSet;
using testutil::RelationSize;

constexpr char kTcQuery[] =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

/// A linear chain a0 -> a1 -> ... -> a(n-1).
Database ChainDb(int n) {
  Database db;
  for (int i = 0; i + 1 < n; ++i) {
    std::string from = "a" + std::to_string(i);
    std::string to = "a" + std::to_string(i + 1);
    EXPECT_OK(db.AddFact("edge",
                         {Value::Sym(db.Intern(from)), Value::Sym(db.Intern(to))}));
  }
  return db;
}

/// Every relation's rows, in insertion order — the byte-identity
/// comparison form (RelationSet is order-insensitive; this is not).
std::map<std::string, std::vector<std::string>> ExactContents(
    const Database& db) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [name, rel] : db.relations()) {
    std::vector<std::string>& rows = out[db.symbols().name(name)];
    for (const auto& row : rel.rows()) {
      std::string s;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) s += ",";
        s += row[i].ToString(db.symbols());
      }
      rows.push_back(s);
    }
  }
  return out;
}

Result<QueryResponse> RunText(const std::string& text, Database* db,
                              const QueryOptions& options = {}) {
  QueryRequest req = QueryRequest::GraphLog(text);
  req.options = options;
  return Run(req, db);
}

// ---------------------------------------------------------------------------
// Fingerprinting

TEST(FingerprintTest, NormalizationStripsCommentsAndWhitespace) {
  EXPECT_EQ(NormalizeQueryText("a   b\n\tc"), "a b c");
  EXPECT_EQ(NormalizeQueryText("a # trailing comment\nb"), "a b");
  EXPECT_EQ(NormalizeQueryText("a // c++ style\nb"), "a b");
  EXPECT_EQ(NormalizeQueryText("  padded  "), "padded");
  EXPECT_EQ(NormalizeQueryText(""), "");
}

TEST(FingerprintTest, NormalizationPreservesStringLiterals) {
  // Whitespace and comment markers inside string literals are data.
  EXPECT_EQ(NormalizeQueryText("p(\"a  b\")"), "p(\"a  b\")");
  EXPECT_EQ(NormalizeQueryText("p(\"# not a comment\")"),
            "p(\"# not a comment\")");
  EXPECT_EQ(NormalizeQueryText("p(\"esc\\\" # quote\")"),
            "p(\"esc\\\" # quote\")");
}

TEST(FingerprintTest, EquivalentTextsShareTheCanonicalKey) {
  QueryKeyOptions ko;
  EXPECT_EQ(CanonicalQueryKey("query t {  edge X -> Y : edge+; }", ko),
            CanonicalQueryKey("query t {\n  edge X -> Y : edge+; # tc\n}", ko));
  EXPECT_NE(CanonicalQueryKey("query t { edge X -> Y : edge+; }", ko),
            CanonicalQueryKey("query t { edge X -> Y : edge; }", ko));
}

TEST(FingerprintTest, ResultAffectingOptionsChangeTheKey) {
  QueryKeyOptions base;
  const std::string k0 = CanonicalQueryKey(kTcQuery, base);

  QueryKeyOptions o = base;
  o.language = 1;
  EXPECT_NE(CanonicalQueryKey(kTcQuery, o), k0);
  o = base;
  o.max_iterations = 3;
  EXPECT_NE(CanonicalQueryKey(kTcQuery, o), k0);
  o = base;
  o.cardinality_join_ordering = false;
  EXPECT_NE(CanonicalQueryKey(kTcQuery, o), k0);
  o = base;
  o.specialize_bound_closures = true;
  EXPECT_NE(CanonicalQueryKey(kTcQuery, o), k0);
}

TEST(FingerprintTest, HashIsStableAndDiscriminates) {
  const std::string a = CanonicalQueryKey(kTcQuery, {});
  EXPECT_EQ(FingerprintKey(a), FingerprintKey(a));
  EXPECT_NE(FingerprintKey(a), FingerprintKey(a + "x"));
}

// ---------------------------------------------------------------------------
// Generation counters

TEST(GenerationTest, DataGenerationCountsOnlyDataChanges) {
  Relation r(2);
  const uint64_t g0 = r.data_generation();
  EXPECT_TRUE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(r.data_generation(), g0 + 1);
  // A duplicate insert is a no-op for the extension.
  EXPECT_FALSE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(r.data_generation(), g0 + 1);
  // Index maintenance is structural, not data.
  r.DropIndexes();
  EXPECT_EQ(r.data_generation(), g0 + 1);
  r.TruncateTo(0);
  EXPECT_EQ(r.data_generation(), g0 + 2);
  r.Clear();
  EXPECT_EQ(r.data_generation(), g0 + 3);
}

TEST(GenerationTest, RelationUidsAreNeverReused) {
  Database db;
  ASSERT_OK_AND_ASSIGN(Relation * a, db.Declare(db.Intern("a"), 2));
  const uint64_t a_uid = a->uid();
  EXPECT_NE(a_uid, 0u);
  ASSERT_TRUE(db.Remove(db.symbols().Lookup("a")));
  ASSERT_OK_AND_ASSIGN(Relation * a2, db.Declare(db.Intern("a"), 2));
  EXPECT_NE(a2->uid(), a_uid);
}

TEST(GenerationTest, DatabaseUidsAreDistinct) {
  Database a, b;
  EXPECT_NE(a.uid(), b.uid());
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ResultCacheTest, HitIsBitIdenticalToRecomputationAcrossThreads) {
  for (unsigned nt : {1u, 4u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(nt));
    // Cold reference: same query, no cache.
    Database cold = ChainDb(8);
    QueryOptions cold_opts;
    cold_opts.eval.num_threads = nt;
    ASSERT_OK_AND_ASSIGN(QueryResponse ref, RunText(kTcQuery, &cold, cold_opts));

    Database db = ChainDb(8);
    ResultCache cache;
    QueryOptions opts;
    opts.eval.num_threads = nt;
    opts.cache.result_cache = &cache;
    ASSERT_OK_AND_ASSIGN(QueryResponse first, RunText(kTcQuery, &db, opts));
    EXPECT_FALSE(first.cache_hit);
    EXPECT_EQ(ExactContents(db), ExactContents(cold));

    ASSERT_OK_AND_ASSIGN(QueryResponse second, RunText(kTcQuery, &db, opts));
    EXPECT_TRUE(second.cache_hit);
    // The database is untouched and the response matches both the first
    // run and the cold reference.
    EXPECT_EQ(ExactContents(db), ExactContents(cold));
    EXPECT_EQ(second.stats.result_tuples, ref.stats.result_tuples);
    EXPECT_EQ(second.stats.datalog.tuples_derived,
              ref.stats.datalog.tuples_derived);
    EXPECT_EQ(second.stats.datalog.rule_firings, ref.stats.datalog.rule_firings);
    EXPECT_EQ(cache.Stats().hits, 1u);
    EXPECT_EQ(cache.Stats().misses, 1u);
  }
}

TEST(ResultCacheTest, InsertionInvalidates) {
  Database db = ChainDb(4);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  ASSERT_OK(RunText(kTcQuery, &db, opts).status());
  ASSERT_OK(db.AddFact("edge", {Value::Sym(db.Intern("a3")),
                                Value::Sym(db.Intern("a4"))}));
  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, opts));
  EXPECT_FALSE(r.cache_hit);

  Database cold = ChainDb(5);
  ASSERT_OK(RunText(kTcQuery, &cold).status());
  EXPECT_EQ(RelationSet(db, "t"), RelationSet(cold, "t"));
}

TEST(ResultCacheTest, PreStateReplayRebuildsRemovedRelations) {
  Database db = ChainDb(6);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  const auto pre = ExactContents(db);
  ASSERT_OK(RunText(kTcQuery, &db, opts).status());
  const auto post = ExactContents(db);

  // Drop everything the query materialized; the database now looks
  // exactly like it did before the original run.
  for (const auto& [name, rows] : post) {
    if (pre.count(name) == 0) {
      ASSERT_TRUE(db.Remove(db.symbols().Lookup(name)));
    }
  }
  ASSERT_EQ(ExactContents(db), pre);

  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(cache.Stats().replays, 1u);
  // Replay rebuilt the exact post-run state, insertion order included.
  EXPECT_EQ(ExactContents(db), post);

  // And the replayed entry serves the next lookup as a plain post-state
  // hit (relation uids changed, so the entry re-snapshot must hold).
  ASSERT_OK_AND_ASSIGN(QueryResponse again, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(cache.Stats().hits, 2u);
  EXPECT_EQ(cache.Stats().replays, 1u);
}

TEST(ResultCacheTest, ByteBudgetEvicts) {
  Database db = ChainDb(6);
  ResultCache cache(/*max_bytes=*/32 * 1024, /*num_shards=*/1);
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  // Distinct queries -> distinct entries, each a few KiB.
  for (int i = 0; i < 12; ++i) {
    std::string q = "query t" + std::to_string(i) + " { edge X -> Y : edge+; "
                    "distinguished X -> Y : t" + std::to_string(i) + "; }";
    ASSERT_OK(RunText(q, &db, opts).status());
  }
  cache::ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.inserts, 12u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, cache.max_bytes());
  EXPECT_LT(s.entries, s.inserts);
}

TEST(ResultCacheTest, TruncatedResponsesAreNeverCachedOrServed) {
  Database db = ChainDb(10);
  ResultCache cache;
  gov::GovernorContext governor;
  governor.budget.max_rounds = 1;
  governor.budget.return_partial = true;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  opts.eval.governor = &governor;
  ASSERT_OK_AND_ASSIGN(QueryResponse first, RunText(kTcQuery, &db, opts));
  ASSERT_TRUE(first.truncated);
  EXPECT_EQ(cache.Stats().inserts, 0u);
  ASSERT_OK_AND_ASSIGN(QueryResponse second, RunText(kTcQuery, &db, opts));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.truncated);
}

TEST(ResultCacheTest, EntriesAreScopedPerDatabase) {
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;

  Database db1 = ChainDb(4);
  Database db2 = ChainDb(7);
  ASSERT_OK(RunText(kTcQuery, &db1, opts).status());
  // Same query text, different database: must not serve db1's entry.
  ASSERT_OK_AND_ASSIGN(QueryResponse r2, RunText(kTcQuery, &db2, opts));
  EXPECT_FALSE(r2.cache_hit);
  Database cold = ChainDb(7);
  ASSERT_OK(RunText(kTcQuery, &cold).status());
  EXPECT_EQ(RelationSet(db2, "t"), RelationSet(cold, "t"));
}

TEST(ResultCacheTest, ProvenanceAndExplainOnlyBypass) {
  Database db = ChainDb(4);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;

  eval::ProvenanceStore store;
  QueryOptions prov = opts;
  prov.eval.provenance = &store;
  ASSERT_OK(RunText(kTcQuery, &db, prov).status());
  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, prov));
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(cache.Stats().inserts, 0u);

  QueryOptions ex = opts;
  ex.observability.explain = true;
  ex.observability.explain_only = true;
  ASSERT_OK(RunText(kTcQuery, &db, ex).status());
  ASSERT_OK_AND_ASSIGN(QueryResponse r2, RunText(kTcQuery, &db, ex));
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(cache.Stats().inserts, 0u);
}

TEST(ResultCacheTest, ClearDropsEntries) {
  Database db = ChainDb(4);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  ASSERT_OK(RunText(kTcQuery, &db, opts).status());
  EXPECT_EQ(cache.Stats().entries, 1u);
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, opts));
  EXPECT_FALSE(r.cache_hit);
}

// ---------------------------------------------------------------------------
// Run() wiring: explain, governor, metrics, slow-query log

TEST(RunCacheTest, StoredExplainServesLaterExplainRequests) {
  Database db = ChainDb(5);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  // Recorded without an explain request...
  ASSERT_OK_AND_ASSIGN(QueryResponse first, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(first.explain.empty());

  // ...but a later hit that asks for EXPLAIN gets the rendering the
  // original run produced — identical to a cold explain run.
  QueryOptions ex = opts;
  ex.observability.explain = true;
  ASSERT_OK_AND_ASSIGN(QueryResponse hit, RunText(kTcQuery, &db, ex));
  EXPECT_TRUE(hit.cache_hit);
  ASSERT_FALSE(hit.explain.empty());

  Database cold = ChainDb(5);
  QueryOptions cold_ex;
  cold_ex.observability.explain = true;
  ASSERT_OK_AND_ASSIGN(QueryResponse ref, RunText(kTcQuery, &cold, cold_ex));
  EXPECT_EQ(hit.explain, ref.explain);

  // Without the request, the hit's explain stays stripped.
  ASSERT_OK_AND_ASSIGN(QueryResponse quiet, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(quiet.cache_hit);
  EXPECT_TRUE(quiet.explain.empty());
}

TEST(RunCacheTest, HitsChargeNoResourceBudget) {
  Database db = ChainDb(8);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  ASSERT_OK(RunText(kTcQuery, &db, opts).status());

  // A budget this tight fails the query when recomputed...
  Database cold = ChainDb(8);
  gov::GovernorContext tight;
  tight.budget.max_result_rows = 1;
  QueryOptions governed;
  governed.eval.governor = &tight;
  auto cold_run = RunText(kTcQuery, &cold, governed);
  ASSERT_FALSE(cold_run.ok());
  EXPECT_EQ(cold_run.status().code(), StatusCode::kBudgetExceeded);

  // ...but the cache serves the hit without charging it.
  gov::GovernorContext tight2;
  tight2.budget.max_result_rows = 1;
  QueryOptions hit_opts = opts;
  hit_opts.eval.governor = &tight2;
  ASSERT_OK_AND_ASSIGN(QueryResponse hit, RunText(kTcQuery, &db, hit_opts));
  EXPECT_TRUE(hit.cache_hit);
}

TEST(RunCacheTest, CancelledLookupDoesNotServe) {
  Database db = ChainDb(5);
  ResultCache cache;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  ASSERT_OK(RunText(kTcQuery, &db, opts).status());

  gov::GovernorContext governor;
  governor.token.Cancel();
  QueryOptions cancelled = opts;
  cancelled.eval.governor = &governor;
  auto r = RunText(kTcQuery, &db, cancelled);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(RunCacheTest, MetricsAndSlowLogRecordServing) {
  Database db = ChainDb(5);
  ResultCache cache;
  obs::MetricsRegistry metrics;
  obs::SlowQueryLog slowlog;
  QueryOptions opts;
  opts.cache.result_cache = &cache;
  opts.observability.metrics = &metrics;
  opts.observability.slow_query_log = &slowlog;
  opts.observability.slow_query_threshold_ns = 1;  // capture everything

  ASSERT_OK(RunText(kTcQuery, &db, opts).status());
  ASSERT_OK_AND_ASSIGN(QueryResponse hit, RunText(kTcQuery, &db, opts));
  ASSERT_TRUE(hit.cache_hit);

  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.gauges.at("cache.hits"), 1);
  EXPECT_EQ(snap.gauges.at("cache.misses"), 1);
  EXPECT_GT(snap.gauges.at("cache.bytes"), 0);

  std::vector<obs::SlowQueryRecord> entries = slowlog.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_FALSE(entries[0].cache_hit);
  EXPECT_TRUE(entries[1].cache_hit);
  EXPECT_NE(entries[1].ToJson().find("\"cache_hit\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Materialized views

TEST(ViewCatalogTest, DefineMaterializesAndServes) {
  Database db = ChainDb(6);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db));
  EXPECT_EQ(views.size(), 1u);

  Database cold = ChainDb(6);
  ASSERT_OK(RunText(kTcQuery, &cold).status());
  EXPECT_EQ(RelationSet(db, "t"), RelationSet(cold, "t"));

  QueryOptions opts;
  opts.cache.views = &views;
  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(r.served_from_view);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.stats.result_tuples, cold.Find("t")->size());
  EXPECT_EQ(views.StatsOf("tc").served, 1u);
}

TEST(ViewCatalogTest, IncrementalMaintenanceMatchesRecomputation) {
  for (unsigned nt : {1u, 4u}) {
    SCOPED_TRACE("num_threads=" + std::to_string(nt));
    Database db = ChainDb(5);
    ViewCatalog views;
    QueryOptions def_opts;
    def_opts.eval.num_threads = nt;
    ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                         MakeViewDefinition("tc", kTcQuery, &db, def_opts));
    ASSERT_OK(views.Define(std::move(def), &db));

    // Grow the base: one new edge extending the chain, one branching off.
    ASSERT_OK(db.AddFact("edge", {Value::Sym(db.Intern("a4")),
                                  Value::Sym(db.Intern("a5"))}));
    ASSERT_OK(db.AddFact("edge", {Value::Sym(db.Intern("a2")),
                                  Value::Sym(db.Intern("b0"))}));
    EXPECT_FALSE(views.StatsOf("tc", &db).fresh);
    ASSERT_OK(views.Refresh("tc", &db));

    cache::ViewStats vs = views.StatsOf("tc", &db);
    EXPECT_EQ(vs.full_refreshes, 1u);  // only the Define() one
    EXPECT_EQ(vs.incremental_refreshes, 1u);
    EXPECT_TRUE(vs.fresh);

    Database cold = ChainDb(5);
    ASSERT_OK(cold.AddFact("edge", {Value::Sym(cold.Intern("a4")),
                                    Value::Sym(cold.Intern("a5"))}));
    ASSERT_OK(cold.AddFact("edge", {Value::Sym(cold.Intern("a2")),
                                    Value::Sym(cold.Intern("b0"))}));
    ASSERT_OK(RunText(kTcQuery, &cold).status());
    EXPECT_EQ(RelationSet(db, "t"), RelationSet(cold, "t"));
    EXPECT_EQ(vs.result_rows, cold.Find("t")->size());
  }
}

TEST(ViewCatalogTest, ServingRefreshesStaleViews) {
  Database db = ChainDb(4);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db));
  ASSERT_OK(db.AddFact("edge", {Value::Sym(db.Intern("a3")),
                                Value::Sym(db.Intern("a4"))}));

  QueryOptions opts;
  opts.cache.views = &views;
  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(r.served_from_view);
  Database cold = ChainDb(5);
  ASSERT_OK(RunText(kTcQuery, &cold).status());
  EXPECT_EQ(RelationSet(db, "t"), RelationSet(cold, "t"));
  EXPECT_EQ(r.stats.result_tuples, cold.Find("t")->size());
  EXPECT_EQ(views.StatsOf("tc").incremental_refreshes, 1u);
}

TEST(ViewCatalogTest, NegationForcesFullRefresh) {
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  ASSERT_OK(db.AddFact("parent", {sym("ann"), sym("bob")}));
  ASSERT_OK(db.AddFact("parent", {sym("art"), sym("bea")}));
  ASSERT_OK(db.AddFact("parent", {sym("bob"), sym("cid")}));
  for (const char* p : {"ann", "art", "bea", "bob", "cid"}) {
    ASSERT_OK(db.AddFact("person", {sym(p)}));
  }
  const std::string q =
      "query nd {\n"
      "  node P2 [person];\n"
      "  edge P1 -> P3 : parent+;\n"
      "  edge P2 -> P3 : !parent+;\n"
      "  distinguished P1 -> P3 : nd(P2);\n"
      "}\n";
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("nd", q, &db));
  ASSERT_OK(views.Define(std::move(def), &db));

  // Inserting into the negated base can *retract* view tuples, so the
  // refresh must be full, and the result must match recomputation.
  ASSERT_OK(db.AddFact("parent", {sym("art"), sym("cid")}));
  ASSERT_OK(views.Refresh("nd", &db));
  cache::ViewStats vs = views.StatsOf("nd", &db);
  EXPECT_EQ(vs.full_refreshes, 2u);
  EXPECT_EQ(vs.incremental_refreshes, 0u);

  Database cold;
  auto csym = [&](const char* s) { return Value::Sym(cold.Intern(s)); };
  ASSERT_OK(cold.AddFact("parent", {csym("ann"), csym("bob")}));
  ASSERT_OK(cold.AddFact("parent", {csym("art"), csym("bea")}));
  ASSERT_OK(cold.AddFact("parent", {csym("bob"), csym("cid")}));
  ASSERT_OK(cold.AddFact("parent", {csym("art"), csym("cid")}));
  for (const char* p : {"ann", "art", "bea", "bob", "cid"}) {
    ASSERT_OK(cold.AddFact("person", {csym(p)}));
  }
  ASSERT_OK(RunText(q, &cold).status());
  EXPECT_EQ(RelationSet(db, "nd"), RelationSet(cold, "nd"));
}

TEST(ViewCatalogTest, TamperedOutputForcesFullRefresh) {
  Database db = ChainDb(4);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db));

  // A foreign write into the view's output relation.
  ASSERT_OK(db.AddFact("t", {Value::Sym(db.Intern("x")),
                             Value::Sym(db.Intern("y"))}));
  ASSERT_OK(views.Refresh("tc", &db));
  EXPECT_EQ(views.StatsOf("tc").full_refreshes, 2u);
  // The full refresh evicted the foreign row.
  EXPECT_FALSE(RelationSet(db, "t").count("x,y"));

  Database cold = ChainDb(4);
  ASSERT_OK(RunText(kTcQuery, &cold).status());
  EXPECT_EQ(RelationSet(db, "t"), RelationSet(cold, "t"));
}

TEST(ViewCatalogTest, ShrunkBaseForcesFullRefresh) {
  Database db = ChainDb(6);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db));

  db.FindMutable(db.symbols().Lookup("edge"))->Clear();
  ASSERT_OK(db.AddFact("edge", {Value::Sym(db.Intern("a0")),
                                Value::Sym(db.Intern("a1"))}));
  ASSERT_OK(views.Refresh("tc", &db));
  EXPECT_EQ(views.StatsOf("tc").full_refreshes, 2u);
  EXPECT_EQ(RelationSize(db, "t"), 1u);
}

TEST(ViewCatalogTest, SummarizationViewsAreRejected) {
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  ASSERT_OK(db.AddFact("w", {sym("a"), sym("b"), Value::Int(1)}));
  auto r = MakeViewDefinition("sum",
                              "query longest {\n"
                              "  summarize E = max<sum<D>> over w(D);\n"
                              "  distinguished X -> Y : longest(E);\n"
                              "}\n",
                              &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(ViewCatalogTest, CatalogIsBoundToOneDatabase) {
  Database db1 = ChainDb(4);
  Database db2 = ChainDb(4);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db1));
  ASSERT_OK(views.Define(std::move(def), &db1));
  EXPECT_FALSE(views.Refresh("tc", &db2).ok());
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def2,
                       MakeViewDefinition("tc2", kTcQuery, &db2));
  EXPECT_FALSE(views.Define(std::move(def2), &db2).ok());
}

TEST(ViewCatalogTest, ConflictingOutputPredicatesAreRejected) {
  Database db = ChainDb(4);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("v1", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db));
  // Same program, different view name -> same output relations.
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def2,
                       MakeViewDefinition("v2", kTcQuery, &db));
  EXPECT_FALSE(views.Define(std::move(def2), &db).ok());
  // Replacing the view under its own name is fine.
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def3,
                       MakeViewDefinition("v1", kTcQuery, &db));
  EXPECT_OK(views.Define(std::move(def3), &db));
}

TEST(ViewCatalogTest, DropForgetsTheView) {
  Database db = ChainDb(4);
  ViewCatalog views;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db));
  EXPECT_TRUE(views.Drop("tc"));
  EXPECT_FALSE(views.Drop("tc"));
  EXPECT_EQ(views.size(), 0u);
  // The materialized relations remain — they are ordinary relations.
  EXPECT_GT(RelationSize(db, "t"), 0u);
}

TEST(ViewCatalogTest, ViewsWinOverResultCacheAndExportMetrics) {
  Database db = ChainDb(5);
  ViewCatalog views;
  ResultCache cache;
  obs::MetricsRegistry metrics;
  ASSERT_OK_AND_ASSIGN(cache::ViewDefinition def,
                       MakeViewDefinition("tc", kTcQuery, &db));
  ASSERT_OK(views.Define(std::move(def), &db, &metrics));

  QueryOptions opts;
  opts.cache.views = &views;
  opts.cache.result_cache = &cache;
  opts.observability.metrics = &metrics;
  ASSERT_OK_AND_ASSIGN(QueryResponse r, RunText(kTcQuery, &db, opts));
  EXPECT_TRUE(r.served_from_view);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(cache.Stats().inserts, 0u);

  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("view.refreshes_full"), 1);
  EXPECT_EQ(snap.counters.at("view.served"), 1);
}

}  // namespace
}  // namespace graphlog
