// Tests for path summarization (Section 4), parameterized across the
// along/across aggregate combinations.

#include <gtest/gtest.h>

#include "aggr/path_summary.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::aggr {
namespace {

using datalog::AggKind;
using storage::Database;
using storage::Relation;
using storage::Tuple;

/// Builds a weighted-edge relation from (from, to, w) triples.
Relation Weighted(Database* db,
                  std::vector<std::tuple<const char*, const char*, int>> es) {
  Relation r(3);
  for (auto& [a, b, w] : es) {
    r.Insert(Tuple{Value::Sym(db->Intern(a)), Value::Sym(db->Intern(b)),
                   Value::Int(w)});
  }
  return r;
}

/// Looks up the summarized value for (from, to); INT_MIN when absent.
int64_t Get(const Relation& result, Database* db, const char* a,
            const char* b) {
  for (const Tuple& t : result.rows()) {
    if (t[0] == Value::Sym(db->Intern(a)) &&
        t[1] == Value::Sym(db->Intern(b))) {
      return t[2].AsInt();
    }
  }
  return INT64_MIN;
}

TEST(PathSummaryTest, ShortestPathSumMin) {
  Database db;
  Relation base = Weighted(
      &db, {{"a", "b", 1}, {"b", "c", 1}, {"a", "c", 5}});
  PathSummaryOptions opts;
  opts.along = AggKind::kSum;
  opts.across = AggKind::kMin;
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  EXPECT_EQ(Get(r, &db, "a", "c"), 2);  // a->b->c beats direct 5
  EXPECT_EQ(Get(r, &db, "a", "b"), 1);
}

TEST(PathSummaryTest, CriticalPathSumMax) {
  Database db;
  Relation base = Weighted(
      &db, {{"a", "b", 3}, {"b", "d", 5}, {"a", "c", 4}, {"c", "d", 6}});
  PathSummaryOptions opts;
  opts.along = AggKind::kSum;
  opts.across = AggKind::kMax;
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  EXPECT_EQ(Get(r, &db, "a", "d"), 10);  // via c
}

TEST(PathSummaryTest, HopCountMin) {
  Database db;
  Relation base = Weighted(
      &db, {{"a", "b", 99}, {"b", "c", 99}, {"a", "c", 99}});
  PathSummaryOptions opts;
  opts.along = AggKind::kCount;
  opts.across = AggKind::kMin;
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  EXPECT_EQ(Get(r, &db, "a", "c"), 1);  // direct edge, ignoring weights
}

TEST(PathSummaryTest, BottleneckMaxMin) {
  // Widest-path: maximize the minimum edge weight along the path.
  Database db;
  Relation base = Weighted(
      &db, {{"a", "b", 10}, {"b", "c", 2}, {"a", "d", 5}, {"d", "c", 5}});
  PathSummaryOptions opts;
  opts.along = AggKind::kMin;   // path value = narrowest edge
  opts.across = AggKind::kMax;  // pick the widest path
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  EXPECT_EQ(Get(r, &db, "a", "c"), 5);  // via d: min(5,5) beats min(10,2)
}

TEST(PathSummaryTest, MinimaxWithCycleConverges) {
  // Bounded along-operators converge even on cyclic graphs.
  Database db;
  Relation base = Weighted(
      &db, {{"a", "b", 3}, {"b", "a", 7}, {"b", "c", 9}});
  PathSummaryOptions opts;
  opts.along = AggKind::kMax;
  opts.across = AggKind::kMin;
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  EXPECT_EQ(Get(r, &db, "a", "c"), 9);
  // a -> a around the cycle: max(3, 7) = 7.
  EXPECT_EQ(Get(r, &db, "a", "a"), 7);
}

TEST(PathSummaryTest, SumMaxOnCycleFails) {
  Database db;
  Relation base = Weighted(&db, {{"a", "b", 1}, {"b", "a", 1}});
  PathSummaryOptions opts;
  opts.along = AggKind::kSum;
  opts.across = AggKind::kMax;
  auto r = PathSummarize(base, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCycleInPath);
}

TEST(PathSummaryTest, NegativeCycleUnderMinFails) {
  Database db;
  Relation base = Weighted(&db, {{"a", "b", -2}, {"b", "a", 1}});
  PathSummaryOptions opts;
  opts.along = AggKind::kSum;
  opts.across = AggKind::kMin;
  auto r = PathSummarize(base, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCycleInPath);
}

TEST(PathSummaryTest, PositiveCycleUnderMinIsFine) {
  Database db;
  Relation base = Weighted(&db, {{"a", "b", 2}, {"b", "a", 1}, {"b", "c", 4}});
  PathSummaryOptions opts;
  opts.along = AggKind::kSum;
  opts.across = AggKind::kMin;
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  EXPECT_EQ(Get(r, &db, "a", "c"), 6);
  EXPECT_EQ(Get(r, &db, "a", "a"), 3);  // around the cycle once
}

TEST(PathSummaryTest, DoubleWeightsWidenResult) {
  Database db;
  Relation base(3);
  base.Insert(Tuple{Value::Sym(db.Intern("a")), Value::Sym(db.Intern("b")),
                    Value::Double(1.5)});
  PathSummaryOptions opts;
  opts.along = AggKind::kSum;
  opts.across = AggKind::kMin;
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, opts));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.rows()[0][2].is_double());
}

TEST(PathSummaryTest, AvgRejected) {
  Database db;
  Relation base = Weighted(&db, {{"a", "b", 1}});
  PathSummaryOptions opts;
  opts.along = AggKind::kAvg;
  EXPECT_EQ(PathSummarize(base, opts).status().code(),
            StatusCode::kUnsupported);
}

TEST(PathSummaryTest, AcrossMustBeMinOrMax) {
  Database db;
  Relation base = Weighted(&db, {{"a", "b", 1}});
  PathSummaryOptions opts;
  opts.across = AggKind::kSum;
  EXPECT_EQ(PathSummarize(base, opts).status().code(),
            StatusCode::kUnsupported);
}

TEST(PathSummaryTest, NonNumericWeightRejected) {
  Database db;
  Relation base(3);
  base.Insert(Tuple{Value::Sym(db.Intern("a")), Value::Sym(db.Intern("b")),
                    Value::Sym(db.Intern("oops"))});
  PathSummaryOptions opts;
  EXPECT_EQ(PathSummarize(base, opts).status().code(),
            StatusCode::kTypeError);
}

TEST(PathSummaryTest, EmptyBaseYieldsEmptyResult) {
  Relation base(3);
  ASSERT_OK_AND_ASSIGN(Relation r, PathSummarize(base, {}));
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace graphlog::aggr
