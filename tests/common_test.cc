// Unit tests for the common runtime layer: Status, Result, SymbolTable,
// Value, string helpers.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/symbol_table.h"
#include "common/value.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    GRAPHLOG_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    GRAPHLOG_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  Symbol a = t.Intern("foo");
  Symbol b = t.Intern("foo");
  Symbol c = t.Intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(t.name(a), "foo");
  EXPECT_EQ(t.name(c), "bar");
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTableTest, LookupDoesNotIntern) {
  SymbolTable t;
  EXPECT_EQ(t.Lookup("missing"), kNoSymbol);
  Symbol a = t.Intern("present");
  EXPECT_EQ(t.Lookup("present"), a);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, FreshAvoidsCollisions) {
  SymbolTable t;
  Symbol a = t.Fresh("aux");
  EXPECT_EQ(t.name(a), "aux");
  Symbol b = t.Fresh("aux");
  EXPECT_NE(a, b);
  EXPECT_NE(t.name(b), "aux");
  Symbol c = t.Fresh("aux");
  EXPECT_NE(b, c);
}

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Double(3.5).is_double());
  EXPECT_TRUE(Value::Sym(2).is_symbol());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Double(3.5).is_numeric());
  EXPECT_FALSE(Value::Sym(0).is_numeric());
}

TEST(ValueTest, EqualityIsKindSensitive) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Double(3.0));  // distinct kinds
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::Sym(5), Value::Sym(5));
}

TEST(ValueTest, TotalOrder) {
  // Order by kind tag first, then payload.
  EXPECT_LT(Value::Int(99), Value::Double(0.0));
  EXPECT_LT(Value::Double(99.0), Value::Sym(0));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Sym(1), Value::Sym(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Double(2.5).Hash(), Value::Double(2.5).Hash());
  // Different kinds with the same bit pattern should (almost surely) differ.
  EXPECT_NE(Value::Int(7).Hash(), Value::Sym(7).Hash());
}

TEST(ValueTest, ToStringRendersAllKinds) {
  SymbolTable t;
  Symbol s = t.Intern("toronto");
  EXPECT_EQ(Value::Int(-3).ToString(t), "-3");
  EXPECT_EQ(Value::Sym(s).ToString(t), "toronto");
  EXPECT_EQ(Value::Double(2.5).ToString(t), "2.5");
  EXPECT_EQ(Value::Double(2.0).ToString(t), "2.0");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, EscapeQuoted) {
  EXPECT_EQ(EscapeQuoted("a\"b\\c"), "a\\\"b\\\\c");
}

}  // namespace
}  // namespace graphlog
