// Parallel evaluation: the num_threads knob must be invisible in every
// observable output. These tests run the same program serially and with
// several lane counts and require bit-identical relations (contents AND
// insertion order), stats, and provenance. Also covers the exec::ThreadPool
// primitive itself.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "eval/provenance.h"
#include "exec/thread_pool.h"
#include "graphlog/api.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog {
namespace {

using eval::EvalOptions;
using eval::EvalStats;
using eval::Justification;
using eval::ProvenanceStore;
using exec::ThreadPool;
using storage::Database;
using storage::Relation;
using storage::Tuple;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](unsigned, size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.ParallelFor(1000, [&](unsigned worker, size_t) {
    if (worker >= pool.parallelism()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](unsigned, size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  size_t sum = 0;  // safe unsynchronized: everything runs on this thread
  pool.ParallelFor(100, [&](unsigned worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](unsigned, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ResolveParallelism) {
  EXPECT_EQ(ThreadPool::ResolveParallelism(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveParallelism(7), 7u);
  EXPECT_GE(ThreadPool::ResolveParallelism(0), 1u);
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel determinism

/// Everything observable about one evaluation run.
struct RunResult {
  EvalStats stats;
  // Per-relation rows in insertion order.
  std::map<std::string, std::vector<Tuple>> rows;
  // Per derived tuple: justifying rule index and its premises, keyed by a
  // stable (relation, row position) coordinate.
  std::map<std::string, std::vector<Justification>> provenance;
};

RunResult RunProgram(const std::string& program, unsigned num_threads,
                     const std::function<void(Database*)>& setup) {
  Database db;
  setup(&db);
  ProvenanceStore store;
  EvalOptions opts;
  opts.num_threads = num_threads;
  opts.provenance = &store;
  auto r = eval::EvaluateText(program, &db, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  RunResult out;
  out.stats = *r;
  for (const auto& [sym, rel] : db.relations()) {
    const std::string name = db.symbols().name(sym);
    out.rows[name] = rel.rows();
    std::vector<Justification>& js = out.provenance[name];
    for (const Tuple& t : rel.rows()) {
      const Justification* j = store.Find(sym, t);
      js.push_back(j == nullptr ? Justification{} : *j);
    }
  }
  return out;
}

void ExpectIdentical(const RunResult& a, const RunResult& b,
                     unsigned threads) {
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << threads << " lanes";
  EXPECT_EQ(a.stats.rule_firings, b.stats.rule_firings) << threads
                                                        << " lanes";
  EXPECT_EQ(a.stats.tuples_derived, b.stats.tuples_derived)
      << threads << " lanes";
  EXPECT_EQ(a.stats.strata, b.stats.strata) << threads << " lanes";
  EXPECT_EQ(a.stats.index_builds, b.stats.index_builds) << threads
                                                        << " lanes";
  EXPECT_EQ(a.stats.index_appends, b.stats.index_appends) << threads
                                                          << " lanes";
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (const auto& [name, rows] : a.rows) {
    auto it = b.rows.find(name);
    ASSERT_NE(it, b.rows.end()) << name;
    // operator== on Tuple vectors compares contents *and* order.
    ASSERT_EQ(rows, it->second)
        << name << " differs in contents or insertion order at " << threads
        << " lanes";
  }
  for (const auto& [name, js] : a.provenance) {
    auto it = b.provenance.find(name);
    ASSERT_NE(it, b.provenance.end()) << name;
    ASSERT_EQ(js.size(), it->second.size()) << name;
    for (size_t i = 0; i < js.size(); ++i) {
      EXPECT_EQ(js[i].rule_index, it->second[i].rule_index)
          << name << " row " << i << " at " << threads << " lanes";
      EXPECT_EQ(js[i].premises, it->second[i].premises)
          << name << " row " << i << " at " << threads << " lanes";
    }
  }
}

void CheckDeterminism(const std::string& program,
                      const std::function<void(Database*)>& setup) {
  RunResult serial = RunProgram(program, 1, setup);
  for (unsigned threads : {2u, 8u}) {
    RunResult parallel = RunProgram(program, threads, setup);
    ExpectIdentical(serial, parallel, threads);
  }
}

void SeedRandomGraph(Database* db, int n, int m, uint64_t seed) {
  ASSERT_OK(workload::RandomDigraph(n, m, seed, db));
}

TEST(ParallelEvalTest, LinearTransitiveClosure) {
  // Figure 2 of the paper: recursive path definition over edges.
  CheckDeterminism(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n",
      [](Database* db) { SeedRandomGraph(db, 300, 1200, 7); });
}

TEST(ParallelEvalTest, NonlinearTransitiveClosure) {
  // Nonlinear recursion: the rule reads its own head twice, so each round
  // has two delta occurrences; those tasks must not be fanned together.
  CheckDeterminism(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n",
      [](Database* db) { SeedRandomGraph(db, 200, 800, 11); });
}

TEST(ParallelEvalTest, SameGenerationStyleRecursion) {
  // Figure 9 of the paper (same-generation): two relations recursed
  // through in opposite directions.
  CheckDeterminism(
      "sg(X, X) :- person(X).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
      [](Database* db) {
        SeedRandomGraph(db, 120, 360, 3);
        // person = every endpoint; up/down derived from edge.
        ASSERT_OK(eval::EvaluateText("up(X, Y) :- edge(X, Y).\n"
                                     "down(X, Y) :- edge(Y, X).\n"
                                     "person(X) :- edge(X, Y).\n"
                                     "person(Y) :- edge(X, Y).\n",
                                     db)
                      .status());
      });
}

TEST(ParallelEvalTest, MutualRecursion) {
  // Two mutually recursive predicates in one stratum: the batch scheduler
  // must serialize odd-reads-even against even's earlier writes.
  CheckDeterminism(
      "even(X) :- zero(X).\n"
      "even(Y) :- odd(X), succ(X, Y).\n"
      "odd(Y) :- even(X), succ(X, Y).\n",
      [](Database* db) {
        ASSERT_OK(db->AddFact("zero", {Value::Int(0)}));
        for (int i = 0; i < 400; ++i) {
          ASSERT_OK(
              db->AddFact("succ", {Value::Int(i), Value::Int(i + 1)}));
        }
      });
}

TEST(ParallelEvalTest, StratifiedNegationAndAggregates) {
  CheckDeterminism(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "unreachable(X, Y) :- node(X), node(Y), !tc(X, Y).\n"
      "outdeg(X, count<Y>) :- tc(X, Y).\n",
      [](Database* db) {
        SeedRandomGraph(db, 60, 150, 5);
        ASSERT_OK(eval::EvaluateText("node(X) :- edge(X, Y).\n"
                                     "node(Y) :- edge(X, Y).\n",
                                     db)
                      .status());
      });
}

TEST(ParallelEvalTest, HardwareConcurrencySettingWorks) {
  // num_threads = 0 resolves to hardware concurrency; results still match.
  const std::string prog =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";
  auto setup = [](Database* db) { SeedRandomGraph(db, 150, 600, 23); };
  RunResult serial = RunProgram(prog, 1, setup);
  RunResult hw = RunProgram(prog, 0, setup);
  ExpectIdentical(serial, hw, 0);
}

// ---------------------------------------------------------------------------
// Trace determinism: the structural projection of a trace (span tree,
// attrs, notes, metrics — ToJson(include_timings=false)) must be
// byte-identical across thread counts, like every other observable.

/// The figure-regression Figure 4 query over the Figure 1 flights.
constexpr char kFigure4Query[] =
    "query feasible {\n"
    "  edge F1 -> A1 : arrival;\n"
    "  edge F2 -> D2 : departure;\n"
    "  edge A1 -> D2 : <;\n"
    "  edge F1 -> C : to;\n"
    "  edge F2 -> C : from;\n"
    "  distinguished F1 -> F2 : feasible;\n"
    "}\n"
    "query stop-connected {\n"
    "  edge C1 -> C2 : (-from) feasible+ to;\n"
    "  distinguished C1 -> C2 : stop-connected;\n"
    "}\n";

std::string TracedRunJson(const QueryRequest& base, unsigned num_threads,
                          const std::function<void(Database*)>& setup) {
  Database db;
  setup(&db);
  QueryRequest req = base;
  req.options.eval.num_threads = num_threads;
  req.options.observability.tracing = true;
  auto r = Run(req, &db);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "";
  EXPECT_FALSE(r->trace.empty());
  return r->trace.ToJson(/*include_timings=*/false);
}

TEST(ParallelEvalTest, Figure4TraceIdenticalAcrossThreadCounts) {
  auto setup = [](Database* db) { ASSERT_OK(workload::Figure1Flights(db)); };
  const QueryRequest base = QueryRequest::GraphLog(kFigure4Query);
  const std::string serial = TracedRunJson(base, 1, setup);
  ASSERT_FALSE(serial.empty());
  for (unsigned threads : {4u}) {
    EXPECT_EQ(serial, TracedRunJson(base, threads, setup))
        << "structural trace differs at " << threads << " lanes";
  }
}

TEST(ParallelEvalTest, DatalogTraceIdenticalAcrossThreadCounts) {
  auto setup = [](Database* db) { SeedRandomGraph(db, 200, 800, 11); };
  const QueryRequest base = QueryRequest::Datalog(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n");
  const std::string serial = TracedRunJson(base, 1, setup);
  ASSERT_FALSE(serial.empty());
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(serial, TracedRunJson(base, threads, setup))
        << "structural trace differs at " << threads << " lanes";
  }
}

TEST(ParallelEvalTest, IncrementalIndexCountersPopulated) {
  Database db;
  SeedRandomGraph(&db, 200, 800, 13);
  EvalOptions opts;
  auto r = eval::EvaluateText(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n",
      &db, opts);
  ASSERT_OK(r.status());
  // The nonlinear rule probes tc while inserting into it across rounds:
  // incremental maintenance must be doing the work, not rebuilds.
  EXPECT_GT(r->index_appends, 0u);
  EXPECT_GT(r->index_builds, 0u);
  EXPECT_LT(r->index_builds, r->index_appends);
}

}  // namespace
}  // namespace graphlog
