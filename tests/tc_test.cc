// Tests for the transitive-closure kernels: all four algorithms agree with
// each other and with hand-computed closures; parameterized over algorithm.

#include <gtest/gtest.h>

#include "storage/relation.h"
#include "tc/parallel_tc.h"
#include "tc/transitive_closure.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog::tc {
namespace {

using storage::Database;
using storage::Relation;
using storage::Tuple;

Relation MakeEdges(Database* db, std::vector<std::pair<int, int>> pairs) {
  Relation r(2);
  for (auto [a, b] : pairs) {
    r.Insert(Tuple{Value::Sym(db->Intern("n" + std::to_string(a))),
                   Value::Sym(db->Intern("n" + std::to_string(b)))});
  }
  return r;
}

class TcAlgorithmTest : public ::testing::TestWithParam<TcAlgorithm> {};

TEST_P(TcAlgorithmTest, ChainClosure) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ASSERT_OK_AND_ASSIGN(Relation tc, TransitiveClosure(edges, GetParam()));
  EXPECT_EQ(tc.size(), 10u);  // 5 choose 2
}

TEST_P(TcAlgorithmTest, CycleClosure) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 1}, {1, 2}, {2, 0}});
  ASSERT_OK_AND_ASSIGN(Relation tc, TransitiveClosure(edges, GetParam()));
  // Every node reaches every node including itself: 9 pairs.
  EXPECT_EQ(tc.size(), 9u);
}

TEST_P(TcAlgorithmTest, DisconnectedComponents) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 1}, {2, 3}});
  ASSERT_OK_AND_ASSIGN(Relation tc, TransitiveClosure(edges, GetParam()));
  EXPECT_EQ(tc.size(), 2u);
}

TEST_P(TcAlgorithmTest, EmptyRelation) {
  Relation edges(2);
  ASSERT_OK_AND_ASSIGN(Relation tc, TransitiveClosure(edges, GetParam()));
  EXPECT_TRUE(tc.empty());
}

TEST_P(TcAlgorithmTest, SelfLoopOnly) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 0}});
  ASSERT_OK_AND_ASSIGN(Relation tc, TransitiveClosure(edges, GetParam()));
  EXPECT_EQ(tc.size(), 1u);
}

TEST_P(TcAlgorithmTest, AgreesWithBfsOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Database db;
    ASSERT_OK(workload::RandomDigraph(25, 60, seed, &db));
    const Relation& edges = *db.Find("edge");
    ASSERT_OK_AND_ASSIGN(Relation got, TransitiveClosure(edges, GetParam()));
    ASSERT_OK_AND_ASSIGN(Relation oracle,
                         TransitiveClosure(edges, TcAlgorithm::kBfs));
    EXPECT_TRUE(got.SetEquals(oracle)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TcAlgorithmTest,
                         ::testing::Values(TcAlgorithm::kNaive,
                                           TcAlgorithm::kSemiNaive,
                                           TcAlgorithm::kSquaring,
                                           TcAlgorithm::kBfs),
                         [](const auto& info) {
                           switch (info.param) {
                             case TcAlgorithm::kNaive:
                               return "Naive";
                             case TcAlgorithm::kSemiNaive:
                               return "SemiNaive";
                             case TcAlgorithm::kSquaring:
                               return "Squaring";
                             case TcAlgorithm::kBfs:
                               return "Bfs";
                           }
                           return "Unknown";
                         });

TEST(TcStatsTest, SquaringUsesFewerRounds) {
  Database db;
  ASSERT_OK(workload::Chain(64, &db));
  const Relation& edges = *db.Find("edge");
  TcStats semi, sq;
  ASSERT_OK(
      TransitiveClosure(edges, TcAlgorithm::kSemiNaive, &semi).status());
  ASSERT_OK(TransitiveClosure(edges, TcAlgorithm::kSquaring, &sq).status());
  // Squaring: O(log diameter) rounds; semi-naive: O(diameter).
  EXPECT_GT(semi.rounds, 60u);
  EXPECT_LT(sq.rounds, 10u);
}

TEST(TcStatsTest, NaiveVisitsMorePairsThanSemiNaive) {
  Database db;
  ASSERT_OK(workload::Chain(40, &db));
  const Relation& edges = *db.Find("edge");
  TcStats naive, semi;
  ASSERT_OK(TransitiveClosure(edges, TcAlgorithm::kNaive, &naive).status());
  ASSERT_OK(
      TransitiveClosure(edges, TcAlgorithm::kSemiNaive, &semi).status());
  EXPECT_GT(naive.pair_visits, semi.pair_visits);
}

TEST(TcTest, WrongArityRejected) {
  Relation r(3);
  EXPECT_FALSE(TransitiveClosure(r, TcAlgorithm::kBfs).ok());
}

TEST(ReachableFromTest, SingleSource) {
  Database db;
  Relation edges =
      MakeEdges(&db, {{0, 1}, {1, 2}, {3, 4}});  // two components
  ASSERT_OK_AND_ASSIGN(
      Relation reach,
      ReachableFrom(edges, Value::Sym(db.Intern("n0"))));
  EXPECT_EQ(reach.size(), 2u);  // n1, n2
}

TEST(ReachableFromTest, PositiveClosureExcludesSourceWithoutCycle) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 1}});
  ASSERT_OK_AND_ASSIGN(
      Relation reach,
      ReachableFrom(edges, Value::Sym(db.Intern("n0"))));
  EXPECT_EQ(reach.size(), 1u);
  EXPECT_FALSE(reach.Contains(Tuple{Value::Sym(db.Intern("n0"))}));
}

TEST(ReachableFromTest, CycleIncludesSource) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 1}, {1, 0}});
  ASSERT_OK_AND_ASSIGN(
      Relation reach,
      ReachableFrom(edges, Value::Sym(db.Intern("n0"))));
  EXPECT_TRUE(reach.Contains(Tuple{Value::Sym(db.Intern("n0"))}));
}

TEST(ParallelTcTest, MatchesSequentialAcrossThreadCounts) {
  for (unsigned threads : {1u, 2u, 4u}) {
    Database db;
    ASSERT_OK(workload::RandomDigraph(30, 80, 77, &db));
    const Relation& edges = *db.Find("edge");
    ASSERT_OK_AND_ASSIGN(Relation par,
                         ParallelTransitiveClosure(edges, threads));
    ASSERT_OK_AND_ASSIGN(Relation seq,
                         TransitiveClosure(edges, TcAlgorithm::kBfs));
    EXPECT_TRUE(par.SetEquals(seq)) << threads << " threads";
  }
}

TEST(ParallelTcTest, EmptyAndWrongArity) {
  Relation empty(2);
  ASSERT_OK_AND_ASSIGN(Relation tc, ParallelTransitiveClosure(empty, 2));
  EXPECT_TRUE(tc.empty());
  Relation bad(3);
  EXPECT_FALSE(ParallelTransitiveClosure(bad, 2).ok());
}

TEST(ReachableFromTest, UnknownSourceIsEmpty) {
  Database db;
  Relation edges = MakeEdges(&db, {{0, 1}});
  ASSERT_OK_AND_ASSIGN(
      Relation reach,
      ReachableFrom(edges, Value::Sym(db.Intern("missing"))));
  EXPECT_TRUE(reach.empty());
}

}  // namespace
}  // namespace graphlog::tc
