// Columnar/CSR layer: CSR construction, the bitset primitive, cache
// invalidation, and — the load-bearing contract — bit-identical engine
// output (rows, insertion order, provenance, logical stats) between the
// row path and the columnar path, at every thread count. The columnar
// kernels (ColumnarTransitiveClosure, EvalRpqBitset) are checked
// set-equal against their row-path oracles and order-deterministic
// across thread counts.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "columnar/bitset.h"
#include "columnar/csr.h"
#include "columnar/csr_cache.h"
#include "eval/engine.h"
#include "eval/provenance.h"
#include "obs/metrics.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "tc/columnar_tc.h"
#include "tc/parallel_tc.h"
#include "tc/transitive_closure.h"
#include "testing/random_programs.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog {
namespace {

using columnar::Bitset;
using columnar::BuildCsr;
using columnar::Csr;
using columnar::CsrCache;
using eval::EvalOptions;
using eval::EvalStats;
using eval::Justification;
using eval::ProvenanceStore;
using storage::Database;
using storage::Relation;
using storage::Tuple;

// ---------------------------------------------------------------------------
// Bitset

TEST(BitsetTest, SetTestCount) {
  Bitset b(200);
  EXPECT_FALSE(b.Any());
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(199));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(198));
  EXPECT_EQ(b.Count(), 4u);
  EXPECT_TRUE(b.Any());
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, TestAndSet) {
  Bitset b(70);
  EXPECT_TRUE(b.TestAndSet(65));
  EXPECT_FALSE(b.TestAndSet(65));
  EXPECT_TRUE(b.Test(65));
}

TEST(BitsetTest, ForEachSetAscending) {
  Bitset b(300);
  const std::vector<uint32_t> want = {2, 63, 64, 65, 128, 299};
  for (uint32_t i : want) b.Set(i);
  std::vector<uint32_t> got;
  b.ForEachSet([&](uint32_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitsetTest, OrWithAndNot) {
  Bitset a(130), c(130);
  a.Set(1);
  a.Set(100);
  c.Set(100);
  c.Set(129);
  a.OrWith(c);
  EXPECT_EQ(a.Count(), 3u);

  // frontier &~ visited: only 1 survives.
  Bitset frontier(130), visited(130);
  frontier.Set(1);
  frontier.Set(100);
  visited.Set(100);
  EXPECT_TRUE(frontier.AndNot(visited));
  EXPECT_TRUE(frontier.Test(1));
  EXPECT_FALSE(frontier.Test(100));
  visited.Set(1);
  EXPECT_FALSE(frontier.AndNot(visited));
  EXPECT_FALSE(frontier.Any());
}

// ---------------------------------------------------------------------------
// CSR construction

Value Sym(Database* db, const std::string& s) {
  return Value::Sym(db->Intern(s));
}

TEST(CsrTest, ThreeLayoutsAgreeWithRows) {
  Database db;
  // b appears as a target before it appears as a source: dense ids
  // follow row-order first appearance across both columns.
  ASSERT_OK(db.AddFact("edge", {Sym(&db, "a"), Sym(&db, "b")}));
  ASSERT_OK(db.AddFact("edge", {Sym(&db, "a"), Sym(&db, "c")}));
  ASSERT_OK(db.AddFact("edge", {Sym(&db, "b"), Sym(&db, "c")}));
  ASSERT_OK(db.AddFact("edge", {Sym(&db, "c"), Sym(&db, "a")}));
  const Relation* rel = db.Find("edge");
  ASSERT_NE(rel, nullptr);

  ASSERT_OK_AND_ASSIGN(Csr csr, BuildCsr(*rel));
  EXPECT_EQ(csr.num_nodes(), 3u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.source_uid, rel->uid());
  EXPECT_EQ(csr.source_size, rel->size());

  // Forward spans enumerate targets in row insertion order — the same
  // order a posting-list probe of the row path would produce.
  const int64_t a = csr.IdOf(Sym(&db, "a"));
  const int64_t b = csr.IdOf(Sym(&db, "b"));
  const int64_t c = csr.IdOf(Sym(&db, "c"));
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_GE(c, 0);
  EXPECT_EQ(csr.IdOf(Sym(&db, "zzz")), -1);
  auto fwd_a = csr.Fwd(static_cast<uint32_t>(a));
  ASSERT_EQ(fwd_a.size(), 2u);
  EXPECT_EQ(csr.values[fwd_a[0]], Sym(&db, "b"));
  EXPECT_EQ(csr.values[fwd_a[1]], Sym(&db, "c"));

  // Reverse spans mirror: sources of c in row order are a then b.
  auto rev_c = csr.Rev(static_cast<uint32_t>(c));
  ASSERT_EQ(rev_c.size(), 2u);
  EXPECT_EQ(csr.values[rev_c[0]], Sym(&db, "a"));
  EXPECT_EQ(csr.values[rev_c[1]], Sym(&db, "b"));

  // Sorted spans ascend; HasEdge binary-searches them.
  auto sorted_a = csr.Fwd(static_cast<uint32_t>(a));
  for (size_t i = 1; i < sorted_a.size(); ++i) {
    EXPECT_LE(csr.Sorted(static_cast<uint32_t>(a))[i - 1],
              csr.Sorted(static_cast<uint32_t>(a))[i]);
  }
  EXPECT_TRUE(csr.HasEdge(static_cast<uint32_t>(a), static_cast<uint32_t>(b)));
  EXPECT_TRUE(csr.HasEdge(static_cast<uint32_t>(c), static_cast<uint32_t>(a)));
  EXPECT_FALSE(
      csr.HasEdge(static_cast<uint32_t>(b), static_cast<uint32_t>(a)));

  // Decoding every (fwd) span reproduces the relation's exact rows.
  std::multiset<std::string> decoded, original;
  for (uint32_t u = 0; u < csr.num_nodes(); ++u) {
    for (uint32_t t : csr.Fwd(u)) {
      decoded.insert(csr.values[u].ToString(db.symbols()) + "," +
                     csr.values[t].ToString(db.symbols()));
    }
  }
  for (const Tuple& t : rel->rows()) {
    original.insert(t[0].ToString(db.symbols()) + "," +
                    t[1].ToString(db.symbols()));
  }
  EXPECT_EQ(decoded, original);
}

TEST(CsrTest, RejectsNonBinaryRelations) {
  Relation r(3);
  EXPECT_FALSE(BuildCsr(r).ok());
}

TEST(CsrTest, EmptyRelationBuildsEmptySnapshot) {
  Relation r(2);
  ASSERT_OK_AND_ASSIGN(Csr csr, BuildCsr(r));
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrTest, BuildFoldsMetrics) {
  Relation r(2);
  r.Insert(Tuple{Value::Int(1), Value::Int(2)});
  obs::MetricsRegistry metrics;
  ASSERT_OK(BuildCsr(r, &metrics).status());
  EXPECT_EQ(metrics.counter("columnar.builds")->value(), 1u);
  EXPECT_GT(metrics.counter("columnar.build_ns")->value(), 0u);
}

// ---------------------------------------------------------------------------
// CsrCache

TEST(CsrCacheTest, ReusesUntilDataChanges) {
  Database db;
  ASSERT_OK(db.AddFact("edge", {Value::Int(1), Value::Int(2)}));
  const Relation* rel = db.Find("edge");
  ASSERT_NE(rel, nullptr);

  CsrCache cache;
  ASSERT_OK_AND_ASSIGN(auto c1, cache.Get(*rel));
  ASSERT_OK_AND_ASSIGN(auto c2, cache.Get(*rel));
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().reuses, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.size(), 1u);

  // Data change: the stale snapshot must never be served again.
  ASSERT_OK(db.AddFact("edge", {Value::Int(2), Value::Int(3)}));
  ASSERT_OK_AND_ASSIGN(auto c3, cache.Get(*rel));
  EXPECT_NE(c1.get(), c3.get());
  EXPECT_EQ(c3->num_edges(), 2u);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(CsrCacheTest, ClearAndTruncateInvalidate) {
  Database db;
  ASSERT_OK(db.AddFact("edge", {Value::Int(1), Value::Int(2)}));
  ASSERT_OK(db.AddFact("edge", {Value::Int(3), Value::Int(4)}));
  Relation* rel = db.FindMutable(db.Intern("edge"));
  ASSERT_NE(rel, nullptr);

  CsrCache cache;
  ASSERT_OK(cache.Get(*rel).status());
  rel->TruncateTo(1);
  ASSERT_OK_AND_ASSIGN(auto c, cache.Get(*rel));
  EXPECT_EQ(c->num_edges(), 1u);

  rel->Clear();
  ASSERT_OK_AND_ASSIGN(auto c2, cache.Get(*rel));
  EXPECT_EQ(c2->num_edges(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(CsrCacheTest, DropIndexesDoesNotInvalidate) {
  Database db;
  ASSERT_OK(db.AddFact("edge", {Value::Int(1), Value::Int(2)}));
  const Relation* rel = db.Find("edge");
  ASSERT_NE(rel, nullptr);

  CsrCache cache;
  ASSERT_OK_AND_ASSIGN(auto c1, cache.Get(*rel));
  rel->DropIndexes();  // bumps generation() but not data_generation()
  ASSERT_OK_AND_ASSIGN(auto c2, cache.Get(*rel));
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(cache.stats().reuses, 1u);
}

TEST(CsrCacheTest, UnownedRelationsAreNeverCached) {
  // uid 0 (not Database-owned): per-round engine deltas. Caching by uid
  // would alias unrelated relations, so every Get builds fresh.
  Relation r(2);
  r.Insert(Tuple{Value::Int(1), Value::Int(2)});
  ASSERT_EQ(r.uid(), 0u);
  CsrCache cache;
  ASSERT_OK_AND_ASSIGN(auto c1, cache.Get(r));
  ASSERT_OK_AND_ASSIGN(auto c2, cache.Get(r));
  EXPECT_NE(c1.get(), c2.get());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().reuses, 0u);
}

// ---------------------------------------------------------------------------
// Relation satellite changes: MemoryBytes caching, AppendUnique

TEST(RelationTest, MemoryBytesCacheTracksMutations) {
  // r1 interleaves MemoryBytes() reads with mutations; r2 performs the
  // same mutations and reads once. The cached estimate must match the
  // from-scratch one at every point.
  Relation r1(2), r2(2);
  for (int i = 0; i < 50; ++i) {
    r1.Insert(Tuple{Value::Int(i), Value::Int(i + 1)});
    r2.Insert(Tuple{Value::Int(i), Value::Int(i + 1)});
    ASSERT_EQ(r1.MemoryBytes(), r1.MemoryBytes());
  }
  EXPECT_EQ(r1.MemoryBytes(), r2.MemoryBytes());

  r1.BuildIndex({0});
  r2.BuildIndex({0});
  EXPECT_EQ(r1.MemoryBytes(), r2.MemoryBytes());
  const size_t with_index = r1.MemoryBytes();

  r1.DropIndexes();
  EXPECT_LT(r1.MemoryBytes(), with_index);

  r1.TruncateTo(10);
  r2.DropIndexes();
  r2.TruncateTo(10);
  EXPECT_EQ(r1.MemoryBytes(), r2.MemoryBytes());

  r1.Clear();
  EXPECT_EQ(r1.MemoryBytes(), Relation(2).MemoryBytes());
}

TEST(RelationTest, AppendUniqueSyncsLazily) {
  Relation r(2);
  r.Insert(Tuple{Value::Int(0), Value::Int(1)});
  for (int i = 1; i < 20; ++i) {
    r.AppendUnique(Tuple{Value::Int(i), Value::Int(i + 1)});
  }
  EXPECT_EQ(r.size(), 20u);
  // Contains forces the lazy dedup-set rebuild.
  EXPECT_TRUE(r.Contains(Tuple{Value::Int(19), Value::Int(20)}));
  EXPECT_FALSE(r.Contains(Tuple{Value::Int(19), Value::Int(21)}));
  // Insert after sync still dedups.
  EXPECT_FALSE(r.Insert(Tuple{Value::Int(5), Value::Int(6)}));
  EXPECT_TRUE(r.Insert(Tuple{Value::Int(99), Value::Int(100)}));
  EXPECT_EQ(r.size(), 21u);
}

// ---------------------------------------------------------------------------
// Engine equivalence: columnar must be bit-identical to the row path

/// Everything observable about one evaluation (same shape as the
/// parallel determinism suite).
struct RunResult {
  EvalStats stats;
  std::map<std::string, std::vector<Tuple>> rows;
  std::map<std::string, std::vector<Justification>> provenance;
};

RunResult RunProgram(const std::string& program, bool columnar,
                     unsigned num_threads,
                     const std::function<void(Database*)>& setup) {
  Database db;
  setup(&db);
  ProvenanceStore store;
  EvalOptions opts;
  opts.columnar = columnar;
  opts.num_threads = num_threads;
  opts.provenance = &store;
  auto r = eval::EvaluateText(program, &db, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  RunResult out;
  if (r.ok()) out.stats = *r;
  for (const auto& [sym, rel] : db.relations()) {
    const std::string name = db.symbols().name(sym);
    out.rows[name] = rel.rows();
    std::vector<Justification>& js = out.provenance[name];
    for (const Tuple& t : rel.rows()) {
      const Justification* j = store.Find(sym, t);
      js.push_back(j == nullptr ? Justification{} : *j);
    }
  }
  return out;
}

/// Rows (contents AND order), provenance, and every logical stat must be
/// identical. index_builds/index_appends are deliberately excluded: the
/// columnar path serves probes from CSR snapshots instead of hash
/// indexes, so its index counters legitimately differ.
void ExpectBitIdentical(const RunResult& row, const RunResult& col,
                        const std::string& label) {
  EXPECT_EQ(row.stats.iterations, col.stats.iterations) << label;
  EXPECT_EQ(row.stats.rule_firings, col.stats.rule_firings) << label;
  EXPECT_EQ(row.stats.tuples_derived, col.stats.tuples_derived) << label;
  EXPECT_EQ(row.stats.strata, col.stats.strata) << label;
  EXPECT_EQ(row.stats.peak_delta_rows, col.stats.peak_delta_rows) << label;
  EXPECT_EQ(row.stats.truncated, col.stats.truncated) << label;
  ASSERT_EQ(row.rows.size(), col.rows.size()) << label;
  for (const auto& [name, rows] : row.rows) {
    auto it = col.rows.find(name);
    ASSERT_NE(it, col.rows.end()) << label << " " << name;
    ASSERT_EQ(rows, it->second)
        << label << ": " << name << " differs in contents or order";
  }
  for (const auto& [name, js] : row.provenance) {
    auto it = col.provenance.find(name);
    ASSERT_NE(it, col.provenance.end()) << label << " " << name;
    ASSERT_EQ(js.size(), it->second.size()) << label << " " << name;
    for (size_t i = 0; i < js.size(); ++i) {
      EXPECT_EQ(js[i].rule_index, it->second[i].rule_index)
          << label << " " << name << " row " << i;
      EXPECT_EQ(js[i].premises, it->second[i].premises)
          << label << " " << name << " row " << i;
    }
  }
}

void CheckColumnarEquivalence(const std::string& program,
                              const std::function<void(Database*)>& setup) {
  for (unsigned threads : {1u, 4u}) {
    RunResult row = RunProgram(program, /*columnar=*/false, threads, setup);
    RunResult col = RunProgram(program, /*columnar=*/true, threads, setup);
    ExpectBitIdentical(row, col, std::to_string(threads) + " lanes");
  }
}

void SeedRandomGraph(Database* db, int n, int m, uint64_t seed) {
  ASSERT_OK(workload::RandomDigraph(n, m, seed, db));
}

TEST(ColumnarEngineTest, LinearTransitiveClosure) {
  CheckColumnarEquivalence(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n",
      [](Database* db) { SeedRandomGraph(db, 150, 600, 7); });
}

TEST(ColumnarEngineTest, NonlinearTransitiveClosure) {
  CheckColumnarEquivalence(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n",
      [](Database* db) { SeedRandomGraph(db, 100, 400, 11); });
}

TEST(ColumnarEngineTest, SameGenerationStyleRecursion) {
  CheckColumnarEquivalence(
      "sg(X, X) :- person(X).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
      [](Database* db) {
        SeedRandomGraph(db, 80, 240, 3);
        ASSERT_OK(eval::EvaluateText("up(X, Y) :- edge(X, Y).\n"
                                     "down(X, Y) :- edge(Y, X).\n"
                                     "person(X) :- edge(X, Y).\n"
                                     "person(Y) :- edge(X, Y).\n",
                                     db)
                      .status());
      });
}

TEST(ColumnarEngineTest, StratifiedNegationAndAggregates) {
  // Negation over a binary relation exercises the CSR existence checks
  // (HasEdge / non-empty span) in kNegCheck.
  CheckColumnarEquivalence(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "unreachable(X, Y) :- node(X), node(Y), !tc(X, Y).\n"
      "outdeg(X, count<Y>) :- tc(X, Y).\n",
      [](Database* db) {
        SeedRandomGraph(db, 40, 100, 5);
        ASSERT_OK(eval::EvaluateText("node(X) :- edge(X, Y).\n"
                                     "node(Y) :- edge(X, Y).\n",
                                     db)
                      .status());
      });
}

TEST(ColumnarEngineTest, RepeatedVariableAndConstantPatterns) {
  // Self-loops via a repeated variable (eq_cols) and bound constants
  // (fully-bound probe) — the CSR branches beyond plain {0}/{1} probes.
  CheckColumnarEquivalence(
      "loop(X) :- edge(X, X).\n"
      "two_hop(X, Y) :- edge(X, Z), edge(Z, Y).\n"
      "from_zero(Y) :- edge(0, Y).\n",
      [](Database* db) {
        for (int i = 0; i < 30; ++i) {
          ASSERT_OK(db->AddFact(
              "edge", {Value::Int(i % 7), Value::Int((i * 3) % 7)}));
        }
      });
}

TEST(ColumnarEngineTest, RandomLinearPrograms) {
  // Differential sweep: random stratified linear programs over random
  // EDBs, row vs columnar, both thread counts.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    testing::RandomProgramOptions gen;
    const std::string program = testing::RandomLinearProgram(gen, seed);
    auto setup = [seed](Database* db) {
      ASSERT_OK(workload::RandomDigraph(12, 30, seed, db, "e1"));
      ASSERT_OK(workload::RandomDigraph(12, 24, seed + 101, db, "e2"));
      for (int i = 0; i < 12; i += 2) {
        ASSERT_OK(db->AddFact("n1", {Value::Int(i)}));
      }
    };
    for (unsigned threads : {1u, 4u}) {
      RunResult row =
          RunProgram(program, /*columnar=*/false, threads, setup);
      RunResult col = RunProgram(program, /*columnar=*/true, threads, setup);
      ExpectBitIdentical(row, col,
                         "seed " + std::to_string(seed) + " at " +
                             std::to_string(threads) + " lanes");
    }
  }
}

TEST(ColumnarEngineTest, SharedCacheServesRepeatedRuns) {
  Database db;
  SeedRandomGraph(&db, 60, 200, 9);
  CsrCache cache;
  EvalOptions opts;
  opts.columnar = true;
  opts.csr_cache = &cache;
  ASSERT_OK(eval::EvaluateText("tc(X, Y) :- edge(X, Y).\n"
                               "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n",
                               &db, opts)
                .status());
  const uint64_t builds_first = cache.stats().builds;
  EXPECT_GT(builds_first, 0u);
  // Second run re-derives from scratch into already-populated IDBs; the
  // edge CSR must be reused, not rebuilt.
  ASSERT_OK(eval::EvaluateText("tc2(X, Y) :- edge(X, Z), edge(Z, Y).\n",
                               &db, opts)
                .status());
  EXPECT_GT(cache.stats().reuses, 0u);
}

// ---------------------------------------------------------------------------
// Columnar TC kernel

TEST(ColumnarTcTest, MatchesRowKernels) {
  for (uint64_t seed : {3u, 14u, 159u}) {
    Database db;
    ASSERT_OK(workload::RandomDigraph(40, 120, seed, &db));
    const Relation* edges = db.Find("edge");
    ASSERT_NE(edges, nullptr);

    ASSERT_OK_AND_ASSIGN(Relation bfs, tc::TransitiveClosure(
                                           *edges, tc::TcAlgorithm::kBfs));
    ASSERT_OK_AND_ASSIGN(Relation par,
                         tc::ParallelTransitiveClosure(*edges, 4));
    ASSERT_OK_AND_ASSIGN(Relation col, tc::ColumnarTransitiveClosure(*edges));
    EXPECT_TRUE(col.SetEquals(bfs)) << "seed " << seed;
    EXPECT_TRUE(col.SetEquals(par)) << "seed " << seed;
  }
}

TEST(ColumnarTcTest, OrderIdenticalAcrossThreadCounts) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(60, 180, 21, &db));
  const Relation* edges = db.Find("edge");
  ASSERT_NE(edges, nullptr);
  ASSERT_OK_AND_ASSIGN(Relation serial,
                       tc::ColumnarTransitiveClosure(*edges, 1));
  for (unsigned threads : {2u, 4u}) {
    ASSERT_OK_AND_ASSIGN(Relation parallel,
                         tc::ColumnarTransitiveClosure(*edges, threads));
    ASSERT_EQ(serial.rows(), parallel.rows())
        << threads << " lanes changed contents or insertion order";
  }
}

TEST(ColumnarTcTest, EmptyAndCyclicInputs) {
  Relation empty(2);
  ASSERT_OK_AND_ASSIGN(Relation closure, tc::ColumnarTransitiveClosure(empty));
  EXPECT_EQ(closure.size(), 0u);

  Relation cycle(2);
  cycle.Insert(Tuple{Value::Int(0), Value::Int(1)});
  cycle.Insert(Tuple{Value::Int(1), Value::Int(2)});
  cycle.Insert(Tuple{Value::Int(2), Value::Int(0)});
  ASSERT_OK_AND_ASSIGN(Relation cyc, tc::ColumnarTransitiveClosure(cycle));
  // Every node reaches every node, including itself.
  EXPECT_EQ(cyc.size(), 9u);
}

TEST(ColumnarTcTest, ReusesCacheAndFoldsMetrics) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(30, 90, 5, &db));
  const Relation* edges = db.Find("edge");
  ASSERT_NE(edges, nullptr);
  CsrCache cache;
  obs::MetricsRegistry metrics;
  tc::TcStats stats;
  ASSERT_OK(tc::ColumnarTransitiveClosure(*edges, 0, &metrics, nullptr,
                                          &stats, &cache)
                .status());
  EXPECT_GT(stats.pair_visits, 0u);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(metrics.counter("tc.invocations")->value(), 1u);
  ASSERT_OK(tc::ColumnarTransitiveClosure(*edges, 0, &metrics, nullptr,
                                          nullptr, &cache)
                .status());
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().reuses, 1u);
}

// ---------------------------------------------------------------------------
// RPQ bitset kernel

TEST(RpqBitsetTest, AgreesWithDfaOnRandomExpressions) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Database db;
    ASSERT_OK(workload::RandomDigraph(10, 22, seed, &db, "p"));
    ASSERT_OK(workload::RandomDigraph(10, 16, seed + 77, &db, "q"));
    testing::RandomPreOptions gen;
    gl::PathExpr expr =
        testing::RandomPathExpr(gen, seed * 13 + 5, &db.symbols());
    graph::DataGraph g = graph::DataGraph::FromDatabase(db);
    ASSERT_OK_AND_ASSIGN(Relation via_dfa, rpq::EvalRpqDfa(g, expr));
    ASSERT_OK_AND_ASSIGN(Relation via_bitset, rpq::EvalRpqBitset(g, expr));
    EXPECT_TRUE(via_bitset.SetEquals(via_dfa))
        << "expr " << expr.ToString(db.symbols()) << " seed " << seed;
  }
}

TEST(RpqBitsetTest, EndpointRestrictions) {
  Database db;
  ASSERT_OK(db.AddFact("p", {Sym(&db, "a"), Sym(&db, "b")}));
  ASSERT_OK(db.AddFact("p", {Sym(&db, "b"), Sym(&db, "c")}));
  ASSERT_OK(db.AddFact("p", {Sym(&db, "c"), Sym(&db, "d")}));
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  SymbolTable& syms = db.symbols();

  ASSERT_OK_AND_ASSIGN(gl::PathExpr expr, gl::ParsePathExpr("p+", &syms));

  rpq::RpqOptions opts;
  opts.source = Sym(&db, "a");
  ASSERT_OK_AND_ASSIGN(Relation from_a, rpq::EvalRpqBitset(g, expr, opts));
  EXPECT_EQ(from_a.size(), 3u);  // a->b, a->c, a->d

  opts.target = Sym(&db, "d");
  ASSERT_OK_AND_ASSIGN(Relation a_to_d, rpq::EvalRpqBitset(g, expr, opts));
  EXPECT_EQ(a_to_d.size(), 1u);

  rpq::RpqOptions missing;
  missing.source = Sym(&db, "zzz");
  ASSERT_OK_AND_ASSIGN(Relation none, rpq::EvalRpqBitset(g, expr, missing));
  EXPECT_EQ(none.size(), 0u);
}

TEST(RpqBitsetTest, ZeroLengthMatchesAndStats) {
  Database db;
  ASSERT_OK(db.AddFact("p", {Sym(&db, "a"), Sym(&db, "b")}));
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(gl::PathExpr expr,
                       gl::ParsePathExpr("p*", &db.symbols()));
  rpq::RpqStats stats;
  ASSERT_OK_AND_ASSIGN(Relation out, rpq::EvalRpqBitset(g, expr, {}, &stats));
  // a->a, b->b (zero length) plus a->b.
  EXPECT_EQ(out.size(), 3u);
  EXPECT_GT(stats.product_states_visited, 0u);
  ASSERT_OK_AND_ASSIGN(Relation via_dfa, rpq::EvalRpqDfa(g, expr));
  EXPECT_TRUE(out.SetEquals(via_dfa));
}

}  // namespace
}  // namespace graphlog
