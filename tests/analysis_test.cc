// Tests for program analysis: dependence graphs, SCCs, stratification,
// safety, linearity, and TC-shape recognition.

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace graphlog::datalog {
namespace {

Program Parse(const char* text, SymbolTable* syms) {
  auto r = ParseProgram(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(DependenceGraphTest, EdgesAndPolarity) {
  SymbolTable syms;
  Program p = Parse("r(X) :- p(X), !q(X).", &syms);
  DependenceGraph g = DependenceGraph::Build(p);
  Symbol pp = syms.Lookup("p"), q = syms.Lookup("q"), r = syms.Lookup("r");
  EXPECT_TRUE(g.HasEdge(pp, r));
  EXPECT_TRUE(g.HasEdge(q, r));
  EXPECT_FALSE(g.HasNegativeEdge(pp, r));
  EXPECT_TRUE(g.HasNegativeEdge(q, r));
  EXPECT_TRUE(g.IsAcyclic());
}

TEST(DependenceGraphTest, AggregateHeadMakesEdgesNegative) {
  SymbolTable syms;
  Program p = Parse("s(X, sum<Y>) :- f(X, Y).", &syms);
  DependenceGraph g = DependenceGraph::Build(p);
  EXPECT_TRUE(g.HasNegativeEdge(syms.Lookup("f"), syms.Lookup("s")));
}

TEST(DependenceGraphTest, SelfLoopIsCyclic) {
  SymbolTable syms;
  Program p = Parse("t(X, Y) :- t(X, Z), e(Z, Y).", &syms);
  DependenceGraph g = DependenceGraph::Build(p);
  EXPECT_FALSE(g.IsAcyclic());
}

TEST(SccTest, MutualRecursionIsOneComponent) {
  SymbolTable syms;
  Program p = Parse(
      "a(X) :- b(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- b(X).\n",
      &syms);
  DependenceGraph g = DependenceGraph::Build(p);
  auto comps = g.StronglyConnectedComponents();
  // {a,b} together; c alone.
  size_t sizes[2] = {0, 0};
  ASSERT_EQ(comps.size(), 2u);
  sizes[0] = comps[0].size();
  sizes[1] = comps[1].size();
  EXPECT_EQ(sizes[0] + sizes[1], 3u);
  EXPECT_TRUE(sizes[0] == 2 || sizes[1] == 2);
  auto idx = g.ComponentIndex();
  EXPECT_EQ(idx[syms.Lookup("a")], idx[syms.Lookup("b")]);
  EXPECT_NE(idx[syms.Lookup("a")], idx[syms.Lookup("c")]);
}

TEST(SccTest, LongCycle) {
  SymbolTable syms;
  Program p = Parse(
      "a(X) :- d(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- b(X).\n"
      "d(X) :- c(X).\n",
      &syms);
  DependenceGraph g = DependenceGraph::Build(p);
  auto comps = g.StronglyConnectedComponents();
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 4u);
}

TEST(StratifyTest, NegationPushesUp) {
  SymbolTable syms;
  Program p = Parse(
      "r(X) :- e(X, Y).\n"
      "s(X) :- n(X), !r(X).\n"
      "t(X) :- s(X), !u(X).\n"
      "u(X) :- n(X), n(X).\n",
      &syms);
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratify(p, syms));
  EXPECT_EQ(s.stratum_of[syms.Lookup("r")], 0);
  EXPECT_EQ(s.stratum_of[syms.Lookup("u")], 0);
  EXPECT_EQ(s.stratum_of[syms.Lookup("s")], 1);
  // t needs stratum(s) and stratum(u)+1; both give 1 (minimal strata).
  EXPECT_EQ(s.stratum_of[syms.Lookup("t")], 1);
  EXPECT_EQ(s.num_strata, 2);
}

TEST(StratifyTest, RecursionThroughNegationFails) {
  SymbolTable syms;
  Program p = Parse("w(X) :- m(X, Y), !w(Y).", &syms);
  auto r = Stratify(p, syms);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnstratifiable);
}

TEST(StratifyTest, PositiveRecursionIsFine) {
  SymbolTable syms;
  Program p = Parse("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).\n",
                    &syms);
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratify(p, syms));
  EXPECT_EQ(s.num_strata, 1);
}

TEST(SafetyTest, HeadVariableMustBeLimited) {
  SymbolTable syms;
  Program p = Parse("q(X, Y) :- p(X).", &syms);
  EXPECT_EQ(CheckSafety(p, syms).code(), StatusCode::kUnsafeRule);
}

TEST(SafetyTest, EqualityPropagatesLimitedness) {
  SymbolTable syms;
  Program p = Parse("q(Y) :- p(X), Y = X.", &syms);
  EXPECT_OK(CheckSafety(p, syms));
}

TEST(SafetyTest, AssignmentLimitsTarget) {
  SymbolTable syms;
  Program p = Parse("q(Z) :- p(X), Z := X + 1.", &syms);
  EXPECT_OK(CheckSafety(p, syms));
}

TEST(SafetyTest, AssignmentFromUnboundFails) {
  SymbolTable syms;
  Program p = Parse("q(Z) :- p(X), Z := Y + 1.", &syms);
  EXPECT_EQ(CheckSafety(p, syms).code(), StatusCode::kUnsafeRule);
}

TEST(SafetyTest, ComparisonNeedsBothBound) {
  SymbolTable syms;
  Program p = Parse("q(X) :- p(X), X < Y.", &syms);
  EXPECT_EQ(CheckSafety(p, syms).code(), StatusCode::kUnsafeRule);
}

TEST(SafetyTest, LocalNegatedVariableAllowed) {
  SymbolTable syms;
  Program p = Parse("q(X) :- p(X), !r(X, Y).", &syms);
  EXPECT_OK(CheckSafety(p, syms));
}

TEST(SafetyTest, SharedNegatedVariableRejected) {
  SymbolTable syms;
  // Y in the negated subgoal also occurs in the head: not allowed.
  Program p = Parse("q(X, Y) :- p(X), !r(X, Y).", &syms);
  EXPECT_EQ(CheckSafety(p, syms).code(), StatusCode::kUnsafeRule);
}

TEST(LinearTest, LinearPrograms) {
  SymbolTable syms;
  EXPECT_OK(CheckLinear(
      Parse("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\n", &syms), syms));
  // Figure 8 is linear.
  EXPECT_OK(CheckLinear(
      Parse("sg(X,X) :- person(X).\n"
            "sg(X,Y) :- parent(X,Z), sg(Z,W), parent(Y,W).\n",
            &syms),
      syms));
}

TEST(LinearTest, NonlinearDetected) {
  SymbolTable syms;
  Program p = Parse("t(X,Y) :- e(X,Y).\nt(X,Y) :- t(X,Z), t(Z,Y).\n", &syms);
  EXPECT_EQ(CheckLinear(p, syms).code(), StatusCode::kNotLinear);
  EXPECT_FALSE(IsLinear(p));
}

TEST(LinearTest, NonRecursiveSubgoalsDoNotCount) {
  SymbolTable syms;
  // Two IDB subgoals, but only one in the head's SCC.
  Program p = Parse(
      "base(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- base(X, Y).\n"
      "t(X, Y) :- base(X, Z), base(Z, W), t(W, Y).\n",
      &syms);
  EXPECT_OK(CheckLinear(p, syms));
}

TEST(TcShapeTest, RecognizesPlainTc) {
  SymbolTable syms;
  Program p = Parse("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\n", &syms);
  ASSERT_OK_AND_ASSIGN(TcShape shape, MatchTcRules(p, syms.Lookup("t")));
  EXPECT_EQ(shape.base, syms.Lookup("e"));
  EXPECT_EQ(shape.n, 1u);
  EXPECT_EQ(shape.w, 0u);
  EXPECT_TRUE(IsTcProgram(p));
}

TEST(TcShapeTest, RecognizesWideTc) {
  SymbolTable syms;
  Program p = Parse(
      "t(A,B,C,D) :- e(A,B,C,D).\n"
      "t(A,B,C,D) :- e(A,B,E,F), t(E,F,C,D).\n",
      &syms);
  ASSERT_OK_AND_ASSIGN(TcShape shape, MatchTcRules(p, syms.Lookup("t")));
  EXPECT_EQ(shape.n, 2u);
  EXPECT_EQ(shape.w, 0u);
}

TEST(TcShapeTest, RecognizesParameterizedTc) {
  SymbolTable syms;
  // Definition 2.4 rules (2)-(3): closure with a carried parameter W.
  Program p = Parse(
      "t(X,Y,W) :- e(X,Y,W).\n"
      "t(X,Y,W) :- e(X,Z,W), t(Z,Y,W).\n",
      &syms);
  ASSERT_OK_AND_ASSIGN(TcShape shape, MatchTcRules(p, syms.Lookup("t")));
  EXPECT_EQ(shape.n, 1u);
  EXPECT_EQ(shape.w, 1u);
  EXPECT_TRUE(IsTcProgram(p));
}

TEST(TcShapeTest, RejectsRightLinearVariant) {
  SymbolTable syms;
  // t(X,Y) :- t(X,Z), e(Z,Y) is linear but not the canonical TC shape
  // (the closure subgoal must extend on the left).
  Program p = Parse("t(X,Y) :- e(X,Y).\nt(X,Y) :- t(X,Z), e(Z,Y).\n", &syms);
  EXPECT_FALSE(MatchTcRules(p, syms.Lookup("t")).ok());
  EXPECT_FALSE(IsTcProgram(p));
}

TEST(TcShapeTest, RejectsNonTcRecursion) {
  SymbolTable syms;
  Program p = Parse(
      "sg(X,X) :- person(X).\n"
      "sg(X,Y) :- parent(X,Z), sg(Z,W), parent(Y,W).\n",
      &syms);
  EXPECT_FALSE(IsTcProgram(p));
}

TEST(AritiesTest, ConsistentAndInconsistent) {
  SymbolTable syms;
  EXPECT_OK(CheckArities(Parse("q(X) :- p(X, Y), p(Y, X).", &syms), syms));
  Program bad = Parse("q(X) :- p(X), p(X, X).", &syms);
  EXPECT_EQ(CheckArities(bad, syms).code(), StatusCode::kArityMismatch);
}

TEST(ProgramTest, EdbIdbClassification) {
  SymbolTable syms;
  Program p = Parse(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "q(X) :- t(X, X), n(X).\n",
      &syms);
  auto heads = p.HeadPredicates();
  auto edbs = p.EdbPredicates();
  EXPECT_EQ(heads.size(), 2u);
  EXPECT_EQ(edbs.size(), 2u);  // e and n
}

}  // namespace
}  // namespace graphlog::datalog
