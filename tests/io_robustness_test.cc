// Loader hardening tests against the malformed-input corpus under
// tests/corpus/: every corrupt file fails with a Status that names the
// file (and line, for parse-level errors) and applies NOTHING — the
// transactional contract of storage/io.h. The oversized-token case is
// generated at runtime (a 64 KiB line does not belong in a git tree).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "storage/database.h"
#include "storage/io.h"
#include "tests/test_util.h"

#ifndef GRAPHLOG_TEST_CORPUS_DIR
#error "GRAPHLOG_TEST_CORPUS_DIR must point at tests/corpus"
#endif

namespace graphlog::storage {
namespace {

std::string CorpusPath(const std::string& name) {
  return std::string(GRAPHLOG_TEST_CORPUS_DIR) + "/" + name;
}

/// Loads a corpus file expecting failure; returns the status and asserts
/// the database came through untouched.
Status LoadExpectingFailure(const std::string& name) {
  Database db;
  auto r = LoadFactsFile(CorpusPath(name), &db);
  EXPECT_FALSE(r.ok()) << name << " unexpectedly loaded";
  EXPECT_TRUE(db.relations().empty())
      << name << " left partial state behind";
  // The file is named in every loader error.
  EXPECT_NE(r.status().message().find(name), std::string::npos)
      << r.status().ToString();
  return r.status();
}

TEST(IoRobustnessTest, UnterminatedFactIsParseError) {
  Status st = LoadExpectingFailure("unterminated.dl");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line"), std::string::npos)
      << st.ToString();
}

TEST(IoRobustnessTest, GarbageTokensAreParseError) {
  Status st = LoadExpectingFailure("badtoken.dl");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(IoRobustnessTest, RuleInFactFileRejected) {
  Status st = LoadExpectingFailure("nonfact.dl");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("not a ground fact"), std::string::npos)
      << st.ToString();
}

TEST(IoRobustnessTest, VariableArgumentRejected) {
  Status st = LoadExpectingFailure("nonconstant.dl");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("non-constant"), std::string::npos)
      << st.ToString();
}

TEST(IoRobustnessTest, ArityConflictWithinFileRejected) {
  Status st = LoadExpectingFailure("arity_conflict.dl");
  EXPECT_EQ(st.code(), StatusCode::kArityMismatch);
}

TEST(IoRobustnessTest, ValidPrefixBeforeBadLineAppliesNothing) {
  // Four good facts precede the broken line; none may survive the error.
  Status st = LoadExpectingFailure("partial_then_bad.dl");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(IoRobustnessTest, ArityConflictWithExistingRelationRejected) {
  Database db;
  ASSERT_OK(LoadFacts("edge(a, b).", &db).status());
  auto r = LoadFacts("edge(c, d). edge(e, f, g).", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArityMismatch);
  // The conflicting batch was not applied, even its valid prefix.
  EXPECT_EQ(testutil::RelationSize(db, "edge"), 1u);
}

TEST(IoRobustnessTest, OversizedTokenRejectedWithLine) {
  const std::string path =
      ::testing::TempDir() + "/graphlog_oversized_token.dl";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "ok(1).\n";
    out << std::string(70 * 1024, 'a');  // one 70 KiB "token"
    out << "(b).\n";
  }
  Database db;
  auto r = LoadFactsFile(path, &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("oversized token"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_TRUE(db.relations().empty());
  std::remove(path.c_str());
}

TEST(IoRobustnessTest, BinaryGarbageFileRejectedNotCrashed) {
  const std::string path = ::testing::TempDir() + "/graphlog_binary_blob.dl";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 4096; ++i) {
      out.put(static_cast<char>(i * 37 % 256));
    }
  }
  Database db;
  auto r = LoadFactsFile(path, &db);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(db.relations().empty());
  std::remove(path.c_str());
}

TEST(IoRobustnessTest, MissingFileIsNotFound) {
  Database db;
  auto r = LoadFactsFile("/nonexistent/graphlog/facts.dl", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoRobustnessTest, EmptyFileLoadsZeroFacts) {
  const std::string path = ::testing::TempDir() + "/graphlog_empty.dl";
  { std::ofstream out(path, std::ios::trunc); }
  Database db;
  ASSERT_OK_AND_ASSIGN(size_t n, LoadFactsFile(path, &db));
  EXPECT_EQ(n, 0u);
  std::remove(path.c_str());
}

TEST(IoRobustnessTest, WellFormedCorpusNeighborStillLoads) {
  // Sanity guard: the strictness above must not reject ordinary files.
  Database db;
  ASSERT_OK_AND_ASSIGN(
      size_t n, LoadFacts("from(106, toronto).\ndeparture(106, 1305).", &db));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(testutil::RelationSize(db, "from"), 1u);
}

}  // namespace
}  // namespace graphlog::storage
