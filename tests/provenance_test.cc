// Tests for provenance tracking and derivation-tree explanations.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "eval/provenance.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::eval {
namespace {

using storage::Database;
using storage::Tuple;

struct EvalRun {
  Database db;
  datalog::Program program;
  ProvenanceStore store;
};

EvalRun RunProgram(const char* facts, const char* program_text) {
  EvalRun r;
  if (facts != nullptr) {
    auto facts_prog = datalog::ParseProgram(facts, &r.db.symbols());
    EXPECT_TRUE(facts_prog.ok());
    EXPECT_TRUE(Evaluate(*facts_prog, &r.db).ok());
  }
  auto prog = datalog::ParseProgram(program_text, &r.db.symbols());
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  r.program = *prog;
  EvalOptions opts;
  opts.provenance = &r.store;
  EXPECT_TRUE(Evaluate(r.program, &r.db, opts).ok());
  return r;
}

TEST(ProvenanceTest, RecordsFirstDerivation) {
  EvalRun r = RunProgram("e(a, b).\ne(b, c).\n",
                   "tc(X, Y) :- e(X, Y).\n"
                   "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  EXPECT_EQ(r.store.size(), 3u);  // tc has 3 tuples
  Symbol tc = r.db.symbols().Lookup("tc");
  Tuple ac{Value::Sym(r.db.Intern("a")), Value::Sym(r.db.Intern("c"))};
  const Justification* j = r.store.Find(tc, ac);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->rule_index, 1);  // the recursive rule
  ASSERT_EQ(j->premises.size(), 2u);
}

TEST(ProvenanceTest, EdbFactsHaveNoJustification) {
  EvalRun r = RunProgram("e(a, b).\n", "tc(X, Y) :- e(X, Y).\n");
  Symbol e = r.db.symbols().Lookup("e");
  Tuple ab{Value::Sym(r.db.Intern("a")), Value::Sym(r.db.Intern("b"))};
  EXPECT_EQ(r.store.Find(e, ab), nullptr);
}

TEST(ProvenanceTest, ExplainRendersTree) {
  EvalRun r = RunProgram("e(a, b).\ne(b, c).\n",
                   "tc(X, Y) :- e(X, Y).\n"
                   "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  ASSERT_OK_AND_ASSIGN(
      std::string tree,
      ExplainFact(r.store, r.program, r.db.symbols(), "tc(a, c)"));
  EXPECT_NE(tree.find("tc(a, c)"), std::string::npos);
  EXPECT_NE(tree.find("by rule:"), std::string::npos);
  EXPECT_NE(tree.find("e(a, b)   [edb]"), std::string::npos);
  EXPECT_NE(tree.find("tc(b, c)"), std::string::npos);
  // The inner tc is justified by the base rule, whose premise is an EDB.
  EXPECT_NE(tree.find("e(b, c)   [edb]"), std::string::npos);
}

TEST(ProvenanceTest, ExplainUnknownPredicateFails) {
  EvalRun r = RunProgram(nullptr, "p(a).\n");
  EXPECT_FALSE(
      ExplainFact(r.store, r.program, r.db.symbols(), "zzz(a)").ok());
}

TEST(ProvenanceTest, ExplainNonFactFails) {
  EvalRun r = RunProgram(nullptr, "p(a).\n");
  EXPECT_FALSE(
      ExplainFact(r.store, r.program, r.db.symbols(), "p(X)").ok());
}

TEST(ProvenanceTest, DepthCapElides) {
  // A chain of length 30 explained with max_depth 3.
  std::string facts;
  for (int i = 0; i < 30; ++i) {
    facts += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  EvalRun r = RunProgram(facts.c_str(),
                   "tc(X, Y) :- e(X, Y).\n"
                   "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  ASSERT_OK_AND_ASSIGN(
      std::string tree,
      ExplainFact(r.store, r.program, r.db.symbols(), "tc(n0, n30)",
                  /*max_depth=*/3));
  EXPECT_NE(tree.find("..."), std::string::npos);
}

TEST(ProvenanceTest, NegationAndBuiltinsAreNotPremises) {
  EvalRun r = RunProgram("p(1).\np(2).\nq(2).\n",
                   "keep(X) :- p(X), !q(X), X < 10.\n");
  Symbol keep = r.db.symbols().Lookup("keep");
  const Justification* j = r.store.Find(keep, Tuple{Value::Int(1)});
  ASSERT_NE(j, nullptr);
  // Only the positive relational atom is a premise.
  ASSERT_EQ(j->premises.size(), 1u);
  EXPECT_EQ(r.db.symbols().name(j->premises[0].first), "p");
}

TEST(ProvenanceTest, FirstDerivationIsStable) {
  // Two rules derive the same tuple; the recorded rule is the first one
  // that fired (the non-recursive one runs before the fixpoint).
  EvalRun r = RunProgram("a(x).\nb(x).\n",
                   "out(X) :- a(X).\n"
                   "out(X) :- b(X).\n");
  Symbol out = r.db.symbols().Lookup("out");
  const Justification* j =
      r.store.Find(out, Tuple{Value::Sym(r.db.Intern("x"))});
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(r.db.symbols().name(r.program.rules[j->rule_index]
                                    .body[0]
                                    .atom.predicate),
            "a");
}

}  // namespace
}  // namespace graphlog::eval
