// Regression pins for the paper's running example: the exact Figure 1
// database and the exact answers of the Figure 4 query over it, plus
// error paths of the surface syntax.

#include <gtest/gtest.h>

#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog::gl {
namespace {

using storage::Database;
using testutil::RelationSet;

TEST(Figure1RegressionTest, Figure4AnswersOnThePapersDatabase) {
  Database db;
  ASSERT_OK(workload::Figure1Flights(&db));
  ASSERT_OK(graphlog::Run(QueryRequest::GraphLog(
                    "query feasible {\n"
                    "  edge F1 -> A1 : arrival;\n"
                    "  edge F2 -> D2 : departure;\n"
                    "  edge A1 -> D2 : <;\n"
                    "  edge F1 -> C : to;\n"
                    "  edge F2 -> C : from;\n"
                    "  distinguished F1 -> F2 : feasible;\n"
                    "}\n"
                    "query stop-connected {\n"
                    "  edge C1 -> C2 : (-from) feasible+ to;\n"
                    "  distinguished C1 -> C2 : stop-connected;\n"
                    "}\n"),
                &db)
                .status());
  // Hand-checked against the Figure 1 times:
  //   109 (ott->tor, arr 9:00) connects to 106 (tor->ott, dep 21:45)
  //   and 132 (tor->mtl, dep 12:00); etc.
  EXPECT_EQ(RelationSet(db, "feasible"),
            (std::set<std::string>{"109,106", "109,132", "132,143",
                                   "132,158", "143,106", "156,143",
                                   "156,158"}));
  EXPECT_EQ(RelationSet(db, "stop-connected"),
            (std::set<std::string>{"montreal,ottawa", "ottawa,montreal",
                                   "ottawa,ottawa", "ottawa,toronto",
                                   "toronto,ottawa", "toronto,toronto"}));
}

TEST(Figure1RegressionTest, CapitalIsANodePredicate) {
  Database db;
  ASSERT_OK(workload::Figure1Flights(&db));
  // Flights into the national capital, using the unary predicate.
  ASSERT_OK(graphlog::Run(QueryRequest::GraphLog("query to-capital {\n"
                                       "  node C [capital];\n"
                                       "  edge F -> C : to;\n"
                                       "  distinguished F -> C : to-capital;\n"
                                       "}\n"),
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "to-capital"),
            (std::set<std::string>{"106,ottawa", "158,ottawa"}));
}

TEST(SurfaceSyntaxErrorTest, MissingDistinguishedEdge) {
  Database db;
  auto r = ParseGraphicalQuery("query t { edge X -> Y : e; }",
                               &db.symbols());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("distinguished"), std::string::npos);
}

TEST(SurfaceSyntaxErrorTest, NameMismatchRejected) {
  Database db;
  auto r = ParseGraphicalQuery(
      "query t { edge X -> Y : e; distinguished X -> Y : other; }",
      &db.symbols());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("does not match"), std::string::npos);
}

TEST(SurfaceSyntaxErrorTest, UnterminatedBlock) {
  Database db;
  auto r = ParseGraphicalQuery(
      "query t { edge X -> Y : e; distinguished X -> Y : t;",
      &db.symbols());
  EXPECT_FALSE(r.ok());
}

TEST(SurfaceSyntaxErrorTest, UnknownStatement) {
  Database db;
  auto r = ParseGraphicalQuery(
      "query t { frobnicate X; distinguished X -> X : t; }",
      &db.symbols());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected node/edge"),
            std::string::npos);
}

TEST(SurfaceSyntaxErrorTest, EmptyInput) {
  Database db;
  EXPECT_FALSE(ParseGraphicalQuery("", &db.symbols()).ok());
  EXPECT_FALSE(ParseGraphicalQuery("   // just a comment\n",
                                   &db.symbols())
                   .ok());
}

TEST(SurfaceSyntaxErrorTest, DuplicateSummarize) {
  Database db;
  auto r = ParseGraphicalQuery(
      "query t {\n"
      "  summarize E = max<sum<D>> over w(D);\n"
      "  summarize E = min<sum<D>> over w(D);\n"
      "  distinguished X -> Y : t(E);\n"
      "}\n",
      &db.symbols());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
}

TEST(SurfaceSyntaxErrorTest, BadAggregateSpelling) {
  Database db;
  auto r = ParseGraphicalQuery(
      "query t {\n"
      "  summarize E = median<sum<D>> over w(D);\n"
      "  distinguished X -> Y : t(E);\n"
      "}\n",
      &db.symbols());
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace graphlog::gl
