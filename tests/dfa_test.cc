// Tests for the DFA pipeline: determinization, minimization, and
// agreement with the NFA product evaluator.

#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "rpq/dfa.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog::rpq {
namespace {

using graph::DataGraph;
using storage::Database;
using storage::Relation;

Result<Dfa> CompileDfa(const char* expr_text, SymbolTable* syms) {
  GRAPHLOG_ASSIGN_OR_RETURN(gl::PathExpr e,
                            gl::ParsePathExpr(expr_text, syms));
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(e));
  return Dfa::Determinize(nfa);
}

TEST(DfaTest, SingleLabel) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileDfa("p", &syms));
  EXPECT_EQ(dfa.alphabet().size(), 1u);
  EXPECT_FALSE(dfa.IsAccepting(dfa.start()));
  uint32_t next = dfa.Next(dfa.start(), 0);
  ASSERT_NE(next, Dfa::kNoTransition);
  EXPECT_TRUE(dfa.IsAccepting(next));
}

TEST(DfaTest, StarStartIsAccepting) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileDfa("p*", &syms));
  EXPECT_TRUE(dfa.IsAccepting(dfa.start()));
}

TEST(DfaTest, InverseBecomesDistinctLabel) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileDfa("p (-p)", &syms));
  EXPECT_EQ(dfa.alphabet().size(), 2u);
}

TEST(DfaTest, FiltersRejected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(gl::PathExpr e, gl::ParsePathExpr("p(1)", &syms));
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(e));
  auto r = Dfa::Determinize(nfa);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(DfaTest, WildcardFiltersAllowed) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileDfa("p(_)+", &syms));
  EXPECT_EQ(dfa.alphabet().size(), 1u);
}

TEST(DfaTest, MinimizeShrinksThompsonBlowup) {
  SymbolTable syms;
  // Thompson NFAs for unions of equal branches have many redundant
  // states; (p|p|p)+ must minimize to 2 states.
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileDfa("(p | p | p)+", &syms));
  Dfa min = dfa.Minimize();
  EXPECT_LE(min.num_states(), 2u);
  EXPECT_LE(min.num_states(), dfa.num_states());
}

TEST(DfaTest, MinimizePreservesStartAcceptance) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileDfa("p* q?", &syms));
  Dfa min = dfa.Minimize();
  EXPECT_EQ(dfa.IsAccepting(dfa.start()), min.IsAccepting(min.start()));
}

class DfaVsNfaTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DfaVsNfaTest, SameResultsOnRandomGraphs) {
  const char* expr_text = GetParam();
  for (uint64_t seed : {5u, 6u, 7u}) {
    Database db;
    ASSERT_OK(workload::RandomDigraph(15, 30, seed, &db, "p"));
    ASSERT_OK(workload::RandomDigraph(15, 20, seed + 50, &db, "q"));
    DataGraph g = DataGraph::FromDatabase(db);
    ASSERT_OK_AND_ASSIGN(gl::PathExpr expr,
                         gl::ParsePathExpr(expr_text, &db.symbols()));
    ASSERT_OK_AND_ASSIGN(Relation via_nfa, EvalRpq(g, expr));
    ASSERT_OK_AND_ASSIGN(Relation via_dfa, EvalRpqDfa(g, expr));
    EXPECT_TRUE(via_nfa.SetEquals(via_dfa))
        << "expr " << expr_text << " seed " << seed << ": nfa="
        << via_nfa.size() << " dfa=" << via_dfa.size();
  }
}

INSTANTIATE_TEST_SUITE_P(ExpressionCorpus, DfaVsNfaTest,
                         ::testing::Values("p", "p+", "p*", "p q", "p | q",
                                           "(p | q)+", "p q+ p?", "-p",
                                           "(-p | q)+", "-(p q)",
                                           "p (q | -p)* q"));

TEST(DfaEvalTest, FixedEndpointsWork) {
  Database db;
  ASSERT_OK(db.AddSymFact("p", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("p", {"b", "c"}));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(gl::PathExpr expr,
                       gl::ParsePathExpr("p+", &db.symbols()));
  RpqOptions opts;
  opts.source = Value::Sym(db.Intern("a"));
  opts.target = Value::Sym(db.Intern("c"));
  ASSERT_OK_AND_ASSIGN(Relation r, EvalRpqDfa(g, expr, opts));
  EXPECT_EQ(r.size(), 1u);
}

TEST(DfaEvalTest, DfaVisitsNoMoreProductStates) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(40, 120, 9, &db, "p"));
  DataGraph g = DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(gl::PathExpr expr,
                       gl::ParsePathExpr("(p | p p)+", &db.symbols()));
  RpqStats nfa_stats, dfa_stats;
  ASSERT_OK(EvalRpq(g, expr, {}, &nfa_stats).status());
  ASSERT_OK(EvalRpqDfa(g, expr, {}, &dfa_stats).status());
  EXPECT_LE(dfa_stats.product_states_visited,
            nfa_stats.product_states_visited);
}

}  // namespace
}  // namespace graphlog::rpq
