// Tests for textual database I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/database.h"
#include "storage/io.h"
#include "tests/test_util.h"

namespace graphlog::storage {
namespace {

using testutil::RelationSet;

TEST(IoTest, LoadFactsBasic) {
  Database db;
  ASSERT_OK_AND_ASSIGN(size_t n, LoadFacts("edge(a, b).\n"
                                           "edge(b, c).\n"
                                           "weight(a, b, 3).\n"
                                           "pi(3.5).\n",
                                           &db));
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(RelationSet(db, "edge"),
            (std::set<std::string>{"a,b", "b,c"}));
  EXPECT_EQ(RelationSet(db, "pi"), (std::set<std::string>{"3.5"}));
}

TEST(IoTest, LoadFactsRejectsRules) {
  Database db;
  auto r = LoadFacts("p(X) :- q(X).", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(IoTest, LoadFactsRejectsVariables) {
  Database db;
  EXPECT_FALSE(LoadFacts("p(X).", &db).ok());
}

TEST(IoTest, DumpRoundTrips) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(db.AddFact("w", {Value::Sym(db.Intern("a")), Value::Int(-7)}));
  ASSERT_OK(db.AddSymFact("city", {"Sao Paulo"}));  // needs quoting
  std::string dump = DumpFacts(db);

  Database db2;
  ASSERT_OK(LoadFacts(dump, &db2).status());
  EXPECT_EQ(DumpFacts(db2), dump);
}

TEST(IoTest, FileRoundTrip) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"x", "y"}));
  std::string path = ::testing::TempDir() + "/graphlog_io_test.facts";
  ASSERT_OK(SaveFactsFile(path, db));
  Database db2;
  ASSERT_OK_AND_ASSIGN(size_t n, LoadFactsFile(path, &db2));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(RelationSet(db2, "edge"), (std::set<std::string>{"x,y"}));
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileFails) {
  Database db;
  auto r = LoadFactsFile("/nonexistent/path/facts.dl", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, CommentsAndWhitespaceIgnored) {
  Database db;
  ASSERT_OK_AND_ASSIGN(size_t n, LoadFacts("// header\n"
                                           "  edge(a, b).   # trailing\n"
                                           "\n",
                                           &db));
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace graphlog::storage
