// Tests for the Datalog lexer and parser.

#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/lexer.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace graphlog::datalog {
namespace {

TEST(LexerTest, BasicTokens) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("p(X, y) :- q(X), X < 3."));
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kIdent,  TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kComma,  TokenKind::kIdent,  TokenKind::kRParen,
      TokenKind::kImplies, TokenKind::kIdent, TokenKind::kLParen,
      TokenKind::kVariable, TokenKind::kRParen, TokenKind::kComma,
      TokenKind::kVariable, TokenKind::kLt,    TokenKind::kInt,
      TokenKind::kDot,    TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, HyphenatedIdentifiers) {
  // The paper writes predicate names like not-desc-of; a hyphen followed by
  // a letter is absorbed into the identifier.
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("not-desc-of"));
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "not-desc-of");
}

TEST(LexerTest, HyphenBeforeDigitIsMinus) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("a-1"));
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kMinus);
  EXPECT_EQ(toks[2].kind, TokenKind::kInt);
}

TEST(LexerTest, VariablesDoNotAbsorbHyphens) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("X-y"));
  EXPECT_EQ(toks[0].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[1].kind, TokenKind::kMinus);
}

TEST(LexerTest, NumbersAndStrings) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("42 3.25 \"hi \\\"there\\\"\""));
  EXPECT_EQ(toks[0].kind, TokenKind::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.25);
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_EQ(toks[2].text, "hi \"there\"");
}

TEST(LexerTest, Comments) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("a // comment\n# also\nb"));
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, OperatorDisambiguation) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize(":- := != <= >= -> => : ! < >"));
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kImplies, TokenKind::kAssign,  TokenKind::kNe,
      TokenKind::kLe,      TokenKind::kGe,      TokenKind::kArrow,
      TokenKind::kDoubleArrow, TokenKind::kColon, TokenKind::kBang,
      TokenKind::kLt,      TokenKind::kGt,      TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, UnterminatedStringFails) {
  auto r = Tokenize("\"oops");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, TracksLineNumbers) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("a\nb\n  c"));
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].column, 3);
}

// ---------------------------------------------------------------------------

TEST(ParserTest, SimpleRuleRoundTrips) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r,
                       ParseRule("path(X, Y) :- edge(X, Y).", &syms));
  EXPECT_EQ(r.ToString(syms), "path(X, Y) :- edge(X, Y).");
}

TEST(ParserTest, FactHasEmptyBody) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("edge(a, b).", &syms));
  EXPECT_TRUE(r.is_fact());
  EXPECT_EQ(r.head.arity(), 2u);
  EXPECT_TRUE(r.head.args[0].term.is_constant());
}

TEST(ParserTest, NegationAndComparison) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(
      Rule r, ParseRule("q(X) :- p(X), !r(X), X < 10.", &syms));
  ASSERT_EQ(r.body.size(), 3u);
  EXPECT_TRUE(r.body[0].is_positive_atom());
  EXPECT_TRUE(r.body[1].is_negated_atom());
  EXPECT_EQ(r.body[2].kind, Literal::Kind::kComparison);
  EXPECT_EQ(r.body[2].cmp, CmpOp::kLt);
}

TEST(ParserTest, EqWithPlainTermIsComparison) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("q(X, Y) :- p(X, Y), X = Y.", &syms));
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kComparison);
  EXPECT_EQ(r.body[1].cmp, CmpOp::kEq);
}

TEST(ParserTest, EqWithCompoundExprIsAssignment) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(
      Rule r, ParseRule("q(X, Z) :- p(X, Y), Z = Y + 2 * X.", &syms));
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kAssignment);
  // Multiplication binds tighter than addition.
  EXPECT_EQ(r.body[1].assign_expr.op, ArithOp::kAdd);
}

TEST(ParserTest, ExplicitAssignOperator) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("q(Z) :- p(Y), Z := Y.", &syms));
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kAssignment);
}

TEST(ParserTest, AggregateHeads) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("total(X, sum<D>) :- f(X, D).\n"
                   "n(count<*>) :- f(_, _).\n"
                   "lo(X, min<D>) :- f(X, D).\n",
                   &syms));
  ASSERT_EQ(p.rules.size(), 3u);
  EXPECT_TRUE(p.rules[0].head.has_aggregates());
  EXPECT_EQ(p.rules[0].head.args[1].agg, AggKind::kSum);
  EXPECT_EQ(p.rules[1].head.args[0].agg, AggKind::kCount);
  EXPECT_EQ(p.rules[1].head.args[0].agg_var, kNoSymbol);
  EXPECT_EQ(p.rules[2].head.args[1].agg, AggKind::kMin);
}

TEST(ParserTest, WildcardsBecomeFreshVariables) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("q(X) :- p(X, _, _).", &syms));
  const auto& args = r.body[0].atom.args;
  ASSERT_TRUE(args[1].is_variable());
  ASSERT_TRUE(args[2].is_variable());
  EXPECT_NE(args[1].var(), args[2].var());
}

TEST(ParserTest, NegativeNumericConstants) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("p(-5, -2.5).", &syms));
  EXPECT_EQ(r.head.args[0].term.value(), Value::Int(-5));
  EXPECT_EQ(r.head.args[1].term.value(), Value::Double(-2.5));
}

TEST(ParserTest, QuotedStringConstants) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("city(\"Sao Paulo\").", &syms));
  EXPECT_TRUE(r.head.args[0].term.value().is_symbol());
  // Round trip keeps the quotes because of the space.
  EXPECT_EQ(r.ToString(syms), "city(\"Sao Paulo\").");
}

TEST(ParserTest, ProgramToStringReparses) {
  SymbolTable syms;
  const char* text =
      "sg(X, X) :- person(X).\n"
      "sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).\n";
  ASSERT_OK_AND_ASSIGN(Program p, ParseProgram(text, &syms));
  std::string printed = p.ToString(syms);
  ASSERT_OK_AND_ASSIGN(Program p2, ParseProgram(printed, &syms));
  EXPECT_EQ(printed, p2.ToString(syms));
}

TEST(ParserTest, ErrorsCarryPosition) {
  SymbolTable syms;
  auto r = ParseRule("p(X) :- q(X", &syms);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, MissingDotFails) {
  SymbolTable syms;
  EXPECT_FALSE(ParseRule("p(X) :- q(X)", &syms).ok());
}

TEST(ParserTest, ZeroArityPredicate) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Rule r, ParseRule("flag() :- p(X).", &syms));
  EXPECT_EQ(r.head.arity(), 0u);
}

}  // namespace
}  // namespace graphlog::datalog
