// EXPLAIN ANALYZE profiling and the relation-statistics subsystem.
//
// The profile's logical sections must be bit-identical across num_threads
// and across the columnar path being on or off (the same contract the
// engine's stats and provenance already obey); RelationStats must follow
// the CSR cache's invalidation rules (data_generation + size stamp,
// DropIndexes exempt) while refreshing incrementally on grow-only
// workloads; and turning profiling on must never change what a query
// computes, including its result-cache behavior.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "columnar/csr_cache.h"
#include "eval/engine.h"
#include "graphlog/api.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "server/server.h"
#include "storage/database.h"
#include "testing/random_programs.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

using obs::QueryProfile;
using storage::Database;
using storage::Relation;
using storage::RelationStats;

/// A small graph whose closure takes several rounds and re-derives pairs
/// (diamonds), so every dedup counter is exercised.
void SeedGraph(Database* db) {
  const char* edges[][2] = {{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"},
                            {"a", "c"}, {"b", "d"}, {"c", "e"}, {"e", "f"},
                            {"f", "g"}, {"d", "g"}};
  for (const auto& e : edges) ASSERT_OK(db->AddSymFact("edge", {e[0], e[1]}));
}

constexpr char kClosureQuery[] =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

/// Runs `text` on a fresh seeded database with profiling on and returns
/// the response.
QueryResponse RunProfiled(const std::string& text, unsigned num_threads,
                          bool columnar) {
  Database db;
  SeedGraph(&db);
  columnar::CsrCache csrs;
  QueryRequest req = QueryRequest::GraphLog(text);
  req.options.observability.profile = true;
  req.options.eval.num_threads = num_threads;
  req.options.eval.columnar = columnar;
  if (columnar) req.options.eval.csr_cache = &csrs;
  auto r = graphlog::Run(req, &db);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(*r);
}

// ---------------------------------------------------------------------------
// Determinism: the acceptance bar for the logical profile.

TEST(ProfileDeterminismTest, LogicalJsonByteIdenticalAcrossThreadCounts) {
  const std::string serial = RunProfiled(kClosureQuery, 1, false)
                                 .profile.ToJson(/*include_timings=*/false);
  EXPECT_FALSE(serial.empty());
  for (unsigned threads : {2u, 4u, 8u}) {
    const std::string parallel =
        RunProfiled(kClosureQuery, threads, false)
            .profile.ToJson(/*include_timings=*/false);
    EXPECT_EQ(serial, parallel) << "num_threads=" << threads;
  }
}

TEST(ProfileDeterminismTest, LogicalJsonByteIdenticalAcrossColumnarOnOff) {
  const std::string row = RunProfiled(kClosureQuery, 1, false)
                              .profile.ToJson(/*include_timings=*/false);
  const std::string csr = RunProfiled(kClosureQuery, 1, true)
                              .profile.ToJson(/*include_timings=*/false);
  EXPECT_EQ(row, csr);
  // Columnar x parallel together must also land on the same bytes.
  EXPECT_EQ(row, RunProfiled(kClosureQuery, 4, true)
                     .profile.ToJson(/*include_timings=*/false));
}

TEST(ProfileDeterminismTest, CsrServedCountsAreConfinedToTimingsSection) {
  QueryProfile row = RunProfiled(kClosureQuery, 1, false).profile;
  QueryProfile csr = RunProfiled(kClosureQuery, 1, true).profile;
  uint64_t served = 0;
  for (const auto& r : csr.rules) {
    for (const auto& s : r.steps) served += s.csr_invocations;
  }
  EXPECT_GT(served, 0u) << "columnar run never hit the CSR path";
  // The physical counter differs between the paths, so it may only appear
  // in the timings projection.
  EXPECT_NE(row.ToJson(true), csr.ToJson(true));
  EXPECT_EQ(row.ToJson(false), csr.ToJson(false));
  EXPECT_EQ(row.ToJson(false).find("csr_invocations"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profile contents.

TEST(ProfileTest, DedupAccountingBalancesPerRule) {
  QueryProfile p = RunProfiled(kClosureQuery, 1, false).profile;
  ASSERT_FALSE(p.rules.empty());
  ASSERT_FALSE(p.rounds.empty());
  uint64_t firings = 0;
  for (const auto& r : p.rules) {
    // Every firing either emitted a novel tuple or was rejected by
    // exactly one of the two dedup layers.
    EXPECT_EQ(r.firings, r.rows_emitted + r.dup_in_head + r.dup_in_round)
        << r.rule;
    firings += r.firings;
  }
  EXPECT_GT(firings, 0u);
  // The diamond graph re-derives pairs, so some dedup must have fired.
  uint64_t dups = 0;
  for (const auto& r : p.rules) dups += r.dup_in_head + r.dup_in_round;
  EXPECT_GT(dups, 0u);
}

TEST(ProfileTest, StepsCarryEstimatesAndActuals) {
  QueryProfile p = RunProfiled(kClosureQuery, 1, false).profile;
  bool saw_estimate = false;
  bool saw_rows = false;
  for (const auto& r : p.rules) {
    EXPECT_FALSE(r.rule.empty());
    EXPECT_FALSE(r.plan.empty());
    for (const auto& s : r.steps) {
      EXPECT_FALSE(s.op.empty());
      saw_estimate = saw_estimate || s.estimated_rows > 0;
      saw_rows = saw_rows || s.rows_out > 0;
    }
  }
  EXPECT_TRUE(saw_estimate);
  EXPECT_TRUE(saw_rows);
  const std::string text = p.ToText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("miss="), std::string::npos);
  EXPECT_NE(text.find("rounds:"), std::string::npos);
}

TEST(ProfileTest, RoundLogMatchesEvalStats) {
  QueryResponse resp = RunProfiled(kClosureQuery, 1, false);
  uint64_t derived = 0;
  uint64_t firings = 0;
  for (const auto& r : resp.profile.rounds) {
    derived += r.derived;
    firings += r.firings;
  }
  // The round log is complete: the one-shot seeding pass plus every
  // fixpoint round sums to the run totals.
  EXPECT_EQ(derived, resp.stats.datalog.tuples_derived);
  EXPECT_EQ(firings, resp.stats.datalog.rule_firings);
  // One stratum: its seed pass rides ahead of the counted iterations.
  EXPECT_EQ(resp.profile.rounds.size(), resp.stats.datalog.iterations + 1);
}

TEST(ProfileTest, OffByDefaultAndResponseStaysEmpty) {
  Database db;
  SeedGraph(&db);
  QueryRequest req = QueryRequest::GraphLog(kClosureQuery);
  auto r = graphlog::Run(req, &db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->profile.empty());
  EXPECT_TRUE(r->profile.ToText().find("rule [") == std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN integration: static plans are labeled, ANALYZE appends actuals.

TEST(ProfileTest, ExplainLabelsUpperStrataPreRunAndAppendsAnalyze) {
  Database db;
  SeedGraph(&db);
  for (const char* n : {"a", "b", "c", "d"}) {
    ASSERT_OK(db.AddSymFact("node", {n}));
  }
  // Negation splits the program: `unreach` sits in stratum 1, above the
  // closure it reads.
  QueryRequest req = QueryRequest::Datalog(
      "reach(X, Y) :- edge(X, Y). "
      "reach(X, Y) :- edge(X, Z), reach(Z, Y). "
      "unreach(X, Y) :- node(X), node(Y), !reach(X, Y).");
  req.options.observability.explain = true;
  req.options.observability.profile = true;
  auto r = graphlog::Run(req, &db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The unreach rule reads the closure stratum's output, which is not
  // materialized at static-EXPLAIN time: its plan line is estimated
  // blind and says so. Stratum-0 plans estimate from real sizes.
  EXPECT_NE(r->explain.find("(pre-run)"), std::string::npos) << r->explain;
  // Scan the static section only; the ANALYZE plan echoes are unlabeled.
  const size_t analyze_at = r->explain.find("EXPLAIN ANALYZE");
  ASSERT_NE(analyze_at, std::string::npos);
  std::istringstream lines(r->explain.substr(0, analyze_at));
  std::string line;
  bool saw_unreach_plan = false;
  while (std::getline(lines, line)) {
    if (line.find("<-") == std::string::npos) continue;  // plan lines only
    if (line.find("unreach <-") != std::string::npos) {
      saw_unreach_plan = true;
      EXPECT_NE(line.find("(pre-run)"), std::string::npos) << line;
    } else {
      EXPECT_EQ(line.find("(pre-run)"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_unreach_plan) << r->explain;
  // The ANALYZE section follows with the post-run actuals.
  EXPECT_NE(r->explain.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_LT(r->explain.find("(pre-run)"), r->explain.find("EXPLAIN ANALYZE"));
}

// ---------------------------------------------------------------------------
// RelationStats: incremental maintenance and invalidation.

TEST(RelationStatsTest, ComputesPerColumnDistinctAndDegrees) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("edge", {"a", "c"}));
  ASSERT_OK(db.AddSymFact("edge", {"b", "c"}));
  const RelationStats* st = db.StatsFor("edge");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->rows(), 3u);
  EXPECT_EQ(st->distinct(0), 2u);  // {a, b}
  EXPECT_EQ(st->distinct(1), 2u);  // {b, c}
  EXPECT_EQ(st->max_degree(0), 2u);  // a -> {b, c}
  EXPECT_DOUBLE_EQ(st->mean_degree(0), 1.5);
}

TEST(RelationStatsTest, InsertInvalidatesAndRefreshAbsorbsTheSuffix) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  const Relation* rel = db.Find("edge");
  ASSERT_NE(db.StatsFor("edge"), nullptr);
  EXPECT_NE(db.stats_catalog().Peek(*rel), nullptr);
  // A new row stales the stamp; the next StatsFor absorbs just the
  // appended suffix and is current again.
  ASSERT_OK(db.AddSymFact("edge", {"a", "c"}));
  EXPECT_EQ(db.stats_catalog().Peek(*rel), nullptr);
  const RelationStats* st = db.StatsFor("edge");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->rows(), 2u);
  EXPECT_EQ(st->distinct(1), 2u);
  EXPECT_EQ(st->max_degree(0), 2u);
  EXPECT_NE(db.stats_catalog().Peek(*rel), nullptr);
}

TEST(RelationStatsTest, ClearAndTruncateForceRecompute) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("edge", {"b", "c"}));
  ASSERT_OK(db.AddSymFact("edge", {"c", "d"}));
  ASSERT_NE(db.StatsFor("edge"), nullptr);
  Relation* rel = db.FindMutable(db.symbols().Lookup("edge"));
  ASSERT_NE(rel, nullptr);

  rel->TruncateTo(1);
  EXPECT_EQ(db.stats_catalog().Peek(*rel), nullptr);
  const RelationStats* st = db.StatsFor("edge");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->rows(), 1u);
  EXPECT_EQ(st->distinct(0), 1u);

  rel->Clear();
  EXPECT_EQ(db.stats_catalog().Peek(*rel), nullptr);
  st = db.StatsFor("edge");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->rows(), 0u);
  EXPECT_EQ(st->distinct(0), 0u);
  EXPECT_EQ(st->EstimateMatches({0}), 0u);
}

TEST(RelationStatsTest, DropIndexesDoesNotInvalidate) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  const Relation* rel = db.Find("edge");
  ASSERT_NE(db.StatsFor("edge"), nullptr);
  ASSERT_NE(db.stats_catalog().Peek(*rel), nullptr);
  // Index teardown is structural, not data: the stats stay served.
  rel->DropIndexes();
  EXPECT_NE(db.stats_catalog().Peek(*rel), nullptr);
}

TEST(RelationStatsTest, EstimateMatchesDividesByDistinct) {
  Database db;
  // 8 rows, 4 distinct sources, 2 distinct targets.
  const char* rows[][2] = {{"a", "x"}, {"a", "y"}, {"b", "x"}, {"b", "y"},
                           {"c", "x"}, {"c", "y"}, {"d", "x"}, {"d", "y"}};
  for (const auto& r : rows) ASSERT_OK(db.AddSymFact("edge", {r[0], r[1]}));
  const RelationStats* st = db.StatsFor("edge");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->EstimateMatches({}), 8u);      // scan
  EXPECT_EQ(st->EstimateMatches({0}), 2u);     // 8 / 4
  EXPECT_EQ(st->EstimateMatches({1}), 4u);     // 8 / 2
  EXPECT_EQ(st->EstimateMatches({0, 1}), 1u);  // 8 / 8
}

// ---------------------------------------------------------------------------
// Metrics export.

TEST(RelationStatsMetricsTest, DistinctGaugesExportAndRoundTrip) {
  Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("edge", {"a", "c"}));
  obs::MetricsRegistry registry;
  db.ExportResourceMetrics(&registry);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauges.at("db.relation.edge.distinct.0"), 1);
  EXPECT_EQ(snap.gauges.at("db.relation.edge.distinct.1"), 2);
  EXPECT_EQ(snap.gauges.at("db.relation.edge.max_degree.0"), 2);
  // JSON round-trip preserves the gauges bit-for-bit.
  ASSERT_OK_AND_ASSIGN(obs::MetricsSnapshot parsed,
                       obs::MetricsSnapshot::FromJson(snap.ToJson()));
  EXPECT_EQ(parsed.ToJson(), snap.ToJson());
  EXPECT_EQ(parsed.gauges.at("db.relation.edge.distinct.1"), 2);
  // Prometheus exposition carries the sanitized name.
  EXPECT_NE(snap.ToPrometheus().find("graphlog_db_relation_edge_distinct_1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiling is an observer: results and cache behavior never change.

TEST(ProfilePropertyTest, TogglingProfilingNeverChangesResults) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const std::string program =
        testing::RandomLinearProgram(testing::RandomProgramOptions{}, seed);
    std::map<bool, std::map<std::string, std::set<std::string>>> results;
    std::map<bool, uint64_t> derived;
    for (bool profiled : {false, true}) {
      Database db;
      SeedGraph(&db);
      ASSERT_OK(db.AddSymFact("e1", {"a", "b"}));
      ASSERT_OK(db.AddSymFact("e1", {"b", "c"}));
      ASSERT_OK(db.AddSymFact("e2", {"c", "d"}));
      ASSERT_OK(db.AddSymFact("n1", {"a"}));
      QueryRequest req = QueryRequest::Datalog(program);
      req.options.observability.profile = profiled;
      req.options.eval.num_threads = profiled ? 4 : 1;
      auto r = graphlog::Run(req, &db);
      ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
      derived[profiled] = r->stats.datalog.tuples_derived;
      for (const auto& [sym, rel] : db.relations()) {
        results[profiled][db.symbols().name(sym)] =
            testutil::RelationSet(db, db.symbols().name(sym));
      }
      EXPECT_EQ(r->profile.empty(), !profiled) << "seed " << seed;
    }
    EXPECT_EQ(results[false], results[true]) << "seed " << seed;
    EXPECT_EQ(derived[false], derived[true]) << "seed " << seed;
  }
}

TEST(ProfilePropertyTest, CacheFingerprintIgnoresProfiling) {
  Database db;
  SeedGraph(&db);
  cache::ResultCache rcache;

  QueryRequest req = QueryRequest::GraphLog(kClosureQuery);
  req.options.cache.result_cache = &rcache;
  req.options.observability.profile = false;
  auto cold = graphlog::Run(req, &db);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->cache_hit);

  // Same query with profiling on must hit the entry recorded without it:
  // observability options are excluded from the fingerprint.
  req.options.observability.profile = true;
  auto warm = graphlog::Run(req, &db);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(rcache.Stats().hits, 1u);
  EXPECT_EQ(rcache.Stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Slow-query log attribution.

TEST(ProfileSlowLogTest, DetachedSessionStampsNameEpochAndProfile) {
  Server server;
  auto session = server.OpenSession({.name = "slow-session"});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto w = (*session)->Apply(WriteBatch().Facts(
      "edge(a, b). edge(b, c). edge(c, d)."));
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  obs::SlowQueryLog log;
  QueryRequest req = QueryRequest::GraphLog(kClosureQuery);
  req.options.observability.profile = true;
  req.options.observability.slow_query_log = &log;
  req.options.observability.slow_query_threshold_ns = 1;  // everything
  auto r = (*session)->Run(req);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ASSERT_EQ(log.size(), 1u);
  const obs::SlowQueryRecord rec = log.Entries()[0];
  EXPECT_EQ(rec.session, "slow-session");
  EXPECT_EQ(rec.server_epoch, (*session)->epoch());
  EXPECT_FALSE(rec.profile_json.empty());
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"session\":\"slow-session\""), std::string::npos);
  EXPECT_NE(json.find("\"server_epoch\":"), std::string::npos);
  EXPECT_NE(json.find("\"profile\":{"), std::string::npos);
}

TEST(ProfileSlowLogTest, RawRunLeavesAttributionEmpty) {
  Database db;
  SeedGraph(&db);
  obs::SlowQueryLog log;
  QueryRequest req = QueryRequest::GraphLog(kClosureQuery);
  req.options.observability.slow_query_log = &log;
  req.options.observability.slow_query_threshold_ns = 1;
  auto r = graphlog::Run(req, &db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(log.size(), 1u);
  const obs::SlowQueryRecord rec = log.Entries()[0];
  EXPECT_TRUE(rec.session.empty());
  EXPECT_EQ(rec.server_epoch, 0u);
  // No session key at all in the JSON when unattributed.
  EXPECT_EQ(rec.ToJson().find("\"session\""), std::string::npos);
}

}  // namespace
}  // namespace graphlog
