// Tests for the bound-closure (magic-TC) specialization.

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "storage/database.h"
#include "testing/equivalence.h"
#include "tests/test_util.h"
#include "translate/magic_tc.h"
#include "workload/generators.h"

namespace graphlog::translate {
namespace {

using datalog::Program;
using storage::Database;
using testutil::RelationSet;

Program Parse(const char* text, SymbolTable* syms) {
  auto r = datalog::ParseProgram(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(MagicTcTest, ForwardSeedRewrite) {
  SymbolTable syms;
  Program p = Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "answer(Y) :- tc(rome, Y).\n",
      &syms);
  MagicTcStats stats;
  ASSERT_OK_AND_ASSIGN(Program out,
                       SpecializeBoundClosures(p, &syms, {}, &stats));
  EXPECT_EQ(stats.closures_specialized, 1);
  EXPECT_EQ(stats.uses_rewritten, 1);
  EXPECT_EQ(stats.rules_dropped, 2);  // tc's TC pair removed
  std::string text = out.ToString(syms);
  EXPECT_NE(text.find("tc-from-rome"), std::string::npos);
  // No rule defines or uses the original tc anymore.
  EXPECT_EQ(text.find("tc("), std::string::npos);
}

TEST(MagicTcTest, BackwardSeedRewrite) {
  SymbolTable syms;
  Program p = Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "answer(X) :- tc(X, tokyo).\n",
      &syms);
  ASSERT_OK_AND_ASSIGN(Program out, SpecializeBoundClosures(p, &syms));
  std::string text = out.ToString(syms);
  EXPECT_NE(text.find("tc-to-tokyo"), std::string::npos);
}

TEST(MagicTcTest, UnboundUseBlocksSpecialization) {
  SymbolTable syms;
  Program p = Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "answer(Y) :- tc(rome, Y).\n"
      "all(X, Y) :- tc(X, Y).\n",
      &syms);
  MagicTcStats stats;
  ASSERT_OK_AND_ASSIGN(Program out,
                       SpecializeBoundClosures(p, &syms, {}, &stats));
  EXPECT_EQ(stats.closures_specialized, 0);
  EXPECT_EQ(out.ToString(syms), p.ToString(syms));
}

TEST(MagicTcTest, ProtectedPredicateKeepsRules) {
  SymbolTable syms;
  Program p = Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "answer(Y) :- tc(rome, Y).\n",
      &syms);
  Symbol tc = syms.Lookup("tc");
  MagicTcStats stats;
  ASSERT_OK_AND_ASSIGN(Program out,
                       SpecializeBoundClosures(p, &syms, {tc}, &stats));
  EXPECT_EQ(stats.rules_dropped, 0);
  EXPECT_EQ(stats.uses_rewritten, 1);
}

TEST(MagicTcTest, PreservesSemantics) {
  SymbolTable syms;
  const char* prog =
      "tc(X, Y) :- e1(X, Y).\n"
      "tc(X, Y) :- e1(X, Z), tc(Z, Y).\n"
      "answer(Y) :- tc(d0, Y).\n"
      "answer2(X) :- tc(X, d1).\n";
  Program p = Parse(prog, &syms);
  ASSERT_OK_AND_ASSIGN(Program out, SpecializeBoundClosures(p, &syms));
  testing::EquivalenceOptions opts;
  opts.trials = 10;
  opts.compare = {"answer", "answer2"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      testing::CheckEquivalent(prog, out.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(MagicTcTest, ParameterizedClosure) {
  SymbolTable syms;
  const char* prog =
      "tc(X, Y, W) :- e1(X, Y, W).\n"
      "tc(X, Y, W) :- e1(X, Z, W), tc(Z, Y, W).\n"
      "answer(Y, W) :- tc(d0, Y, W).\n";
  Program p = Parse(prog, &syms);
  MagicTcStats stats;
  ASSERT_OK_AND_ASSIGN(Program out,
                       SpecializeBoundClosures(p, &syms, {}, &stats));
  EXPECT_EQ(stats.closures_specialized, 1);
  // e1 here is ternary (edge + parameter).
  testing::EquivalenceOptions opts;
  opts.trials = 8;
  opts.compare = {"answer"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      testing::CheckEquivalent(prog, out.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(MagicTcTest, DistinctConstantsGetDistinctSeeds) {
  SymbolTable syms;
  Program p = Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "a(Y) :- tc(u, Y).\n"
      "b(Y) :- tc(v, Y).\n",
      &syms);
  MagicTcStats stats;
  ASSERT_OK_AND_ASSIGN(Program out,
                       SpecializeBoundClosures(p, &syms, {}, &stats));
  EXPECT_EQ(stats.closures_specialized, 2);
  std::string text = out.ToString(syms);
  EXPECT_NE(text.find("tc-from-u"), std::string::npos);
  EXPECT_NE(text.find("tc-from-v"), std::string::npos);
}

TEST(MagicTcTest, NegatedUseDisqualifies) {
  SymbolTable syms;
  Program p = Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "a(X) :- node(X), !tc(u, X).\n",
      &syms);
  MagicTcStats stats;
  ASSERT_OK_AND_ASSIGN(Program out,
                       SpecializeBoundClosures(p, &syms, {}, &stats));
  EXPECT_EQ(stats.closures_specialized, 0);
}

TEST(MagicTcTest, EndToEndThroughGraphLogEngine) {
  // The Figure 12 pattern evaluated with and without specialization must
  // agree, and the specialized run must derive fewer tuples.
  auto build = [](Database* db) {
    EXPECT_OK(workload::RandomDigraph(40, 120, 3, db, "cp"));
  };
  const char* query =
      "query rt-scale {\n"
      "  edge \"n0\" -> C : cp+;\n"
      "  edge C -> \"n1\" : cp+;\n"
      "  distinguished C -> C : rt-scale;\n"
      "}\n";

  Database plain_db;
  build(&plain_db);
  ASSERT_OK_AND_ASSIGN(
      gl::GraphicalQuery q1,
      gl::ParseGraphicalQuery(query, &plain_db.symbols()));
  ASSERT_OK_AND_ASSIGN(QueryResponse plain_resp,
                       graphlog::Run(QueryRequest::Graphical(q1), &plain_db));

  Database magic_db;
  build(&magic_db);
  ASSERT_OK_AND_ASSIGN(
      gl::GraphicalQuery q2,
      gl::ParseGraphicalQuery(query, &magic_db.symbols()));
  QueryRequest magic_req = QueryRequest::Graphical(q2);
  magic_req.options.translation.specialize_bound_closures = true;
  ASSERT_OK_AND_ASSIGN(QueryResponse magic_resp,
                       graphlog::Run(magic_req, &magic_db));

  EXPECT_EQ(RelationSet(plain_db, "rt-scale"),
            RelationSet(magic_db, "rt-scale"));
  EXPECT_LT(magic_resp.stats.datalog.tuples_derived,
            plain_resp.stats.datalog.tuples_derived);
}

}  // namespace
}  // namespace graphlog::translate
