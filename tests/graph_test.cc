// Tests for the DataGraph model (Definition 2.1) and its relational
// round-trip.

#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace graphlog::graph {
namespace {

using storage::Database;
using storage::Tuple;

TEST(DataGraphTest, AddNodeInterns) {
  DataGraph g;
  NodeId a = g.AddNode(Value::Int(1));
  NodeId b = g.AddNode(Value::Int(1));
  NodeId c = g.AddNode(Value::Int(2));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(DataGraphTest, MultigraphKeepsDistinctParallelEdges) {
  Database db;
  DataGraph g;
  Symbol p = db.Intern("p");
  Symbol q = db.Intern("q");
  Value a = Value::Int(1), b = Value::Int(2);
  g.AddEdge(a, b, p);
  g.AddEdge(a, b, q);                       // different label: kept
  g.AddEdge(a, b, p, {Value::Int(5)});      // different args: kept
  g.AddEdge(a, b, p);                       // exact duplicate: dropped
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(DataGraphTest, AdjacencyLists) {
  Database db;
  DataGraph g;
  Symbol p = db.Intern("p");
  g.AddEdge(Value::Int(1), Value::Int(2), p);
  g.AddEdge(Value::Int(1), Value::Int(3), p);
  g.AddEdge(Value::Int(2), Value::Int(3), p);
  NodeId n1;
  ASSERT_TRUE(g.FindNode(Value::Int(1), &n1));
  EXPECT_EQ(g.OutEdges(n1).size(), 2u);
  NodeId n3;
  ASSERT_TRUE(g.FindNode(Value::Int(3), &n3));
  EXPECT_EQ(g.InEdges(n3).size(), 2u);
}

TEST(DataGraphTest, NodePredicates) {
  Database db;
  DataGraph g;
  Symbol cap = db.Intern("capital");
  g.AddNodePredicate(Value::Int(7), cap);
  NodeId n;
  ASSERT_TRUE(g.FindNode(Value::Int(7), &n));
  EXPECT_TRUE(g.NodeHas(cap, n));
  EXPECT_EQ(g.NodesWith(cap).size(), 1u);
  EXPECT_FALSE(g.NodeHas(db.Intern("other"), n));
}

TEST(DataGraphTest, DatabaseRoundTrip) {
  Database db;
  ASSERT_OK(db.AddSymFact("road", {"a", "b"}));
  ASSERT_OK(db.AddFact("road", {Value::Sym(db.Intern("b")),
                                Value::Sym(db.Intern("c"))}));
  ASSERT_OK(db.AddFact(
      "flight", {Value::Sym(db.Intern("a")), Value::Sym(db.Intern("c")),
                 Value::Int(100)}));
  ASSERT_OK(db.AddSymFact("capital", {"a"}));

  DataGraph g = DataGraph::FromDatabase(db);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.EdgePredicates().size(), 2u);

  Database back;
  ASSERT_OK(g.ToDatabase(db.symbols(), &back));
  // Note: `back` has its own symbol table; compare by rendering.
  EXPECT_EQ(back.RelationToString(back.Intern("road")),
            db.RelationToString(db.Intern("road")));
  EXPECT_EQ(back.RelationToString(back.Intern("capital")),
            db.RelationToString(db.Intern("capital")));
  EXPECT_EQ(back.RelationToString(back.Intern("flight")),
            db.RelationToString(db.Intern("flight")));
}

TEST(DataGraphTest, DotExport) {
  Database db;
  DataGraph g;
  g.AddEdge(Value::Sym(db.Intern("x")), Value::Sym(db.Intern("y")),
            db.Intern("link"), {Value::Int(3)});
  DotOptions opts;
  opts.highlight_edges = {0};
  std::string dot = ToDot(g, db.symbols(), opts);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("link(3)"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("\"x\""), std::string::npos);
}

TEST(DataGraphTest, DotWithoutArgs) {
  Database db;
  DataGraph g;
  g.AddEdge(Value::Sym(db.Intern("x")), Value::Sym(db.Intern("y")),
            db.Intern("link"), {Value::Int(3)});
  DotOptions opts;
  opts.show_edge_args = false;
  std::string dot = ToDot(g, db.symbols(), opts);
  EXPECT_EQ(dot.find("link(3)"), std::string::npos);
  EXPECT_NE(dot.find("link"), std::string::npos);
}

}  // namespace
}  // namespace graphlog::graph
