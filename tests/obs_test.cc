// Observability layer: span nesting, metrics, JSON export round-trip,
// EXPLAIN, and the unified QueryRequest/QueryResponse front door. The
// deterministic-across-thread-counts properties are in
// tests/parallel_eval_test.cc; this file covers the subsystem itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "graphlog/api.h"
#include "obs/trace.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "tc/transitive_closure.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog {
namespace {

using obs::Histogram;
using obs::Metrics;
using obs::Span;
using obs::SpanGuard;
using obs::Tracer;
using obs::TraceReport;
using storage::Database;

// ---------------------------------------------------------------------------
// Tracer / SpanGuard

TEST(TracerTest, SpansNestByOpenCloseOrder) {
  Tracer t;
  t.BeginSpan("root");
  t.AddAttr("n", 1);
  t.BeginSpan("child-a");
  t.AddNote("k", "v");
  t.EndSpan();
  t.BeginSpan("child-b");
  t.BeginSpan("grandchild");
  t.EndSpan();
  t.EndSpan();
  t.EndSpan();
  TraceReport r = t.TakeReport();
  ASSERT_EQ(r.spans.size(), 1u);
  const Span& root = r.spans[0];
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.attrs.size(), 1u);
  EXPECT_EQ(root.attrs[0].first, "n");
  EXPECT_EQ(root.attrs[0].second, 1);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "child-a");
  ASSERT_EQ(root.children[0].notes.size(), 1u);
  EXPECT_EQ(root.children[0].notes[0].second, "v");
  EXPECT_EQ(root.children[1].name, "child-b");
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "grandchild");
}

TEST(TracerTest, TakeReportClosesOpenSpansAndResets) {
  Tracer t;
  t.BeginSpan("left-open");
  t.BeginSpan("inner");
  TraceReport r = t.TakeReport();
  ASSERT_EQ(r.spans.size(), 1u);
  EXPECT_GE(r.spans[0].end_ns, r.spans[0].start_ns);
  // Reusable after TakeReport.
  t.BeginSpan("fresh");
  t.EndSpan();
  TraceReport r2 = t.TakeReport();
  ASSERT_EQ(r2.spans.size(), 1u);
  EXPECT_EQ(r2.spans[0].name, "fresh");
}

TEST(TracerTest, SiblingRootsSupported) {
  Tracer t;
  t.BeginSpan("first");
  t.EndSpan();
  t.BeginSpan("second");
  t.EndSpan();
  TraceReport r = t.TakeReport();
  ASSERT_EQ(r.spans.size(), 2u);
  EXPECT_EQ(r.spans[0].name, "first");
  EXPECT_EQ(r.spans[1].name, "second");
}

TEST(SpanGuardTest, NullTracerIsDisabledNoOp) {
  SpanGuard g(nullptr, "nothing");
  EXPECT_FALSE(g.enabled());
  g.AddAttr("a", 1);
  g.AddNote("b", "c");
  g.AddTiming("t", 5);  // must not crash
}

TEST(SpanGuardTest, RaiiClosesInDestructionOrder) {
  Tracer t;
  {
    SpanGuard outer(&t, "outer");
    EXPECT_TRUE(outer.enabled());
    SpanGuard inner(&t, "inner");
    inner.AddAttr("depth", 2);
  }
  TraceReport r = t.TakeReport();
  ASSERT_EQ(r.spans.size(), 1u);
  ASSERT_EQ(r.spans[0].children.size(), 1u);
  EXPECT_EQ(r.spans[0].children[0].name, "inner");
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CountersAccumulate) {
  Metrics m;
  m.Count("a", 2);
  m.Count("a", 3);
  m.Count("b", 1);
  EXPECT_EQ(m.counters().at("a"), 5u);
  EXPECT_EQ(m.counters().at("b"), 1u);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram h;
  for (int64_t v : {0, 1, 2, 3, 4, 1000}) h.Observe(v);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 1010);
  EXPECT_EQ(h.min, 0);
  EXPECT_EQ(h.max, 1000);
  EXPECT_EQ(h.buckets.at(0), 1u);   // 0
  EXPECT_EQ(h.buckets.at(1), 1u);   // 1
  EXPECT_EQ(h.buckets.at(2), 2u);   // 2, 3
  EXPECT_EQ(h.buckets.at(3), 1u);   // 4
  EXPECT_EQ(h.buckets.at(10), 1u);  // 1000
}

// ---------------------------------------------------------------------------
// JSON export / import

TraceReport SampleReport() {
  Tracer t;
  t.BeginSpan("query");
  t.AddNote("language", "graphlog");
  t.BeginSpan("stratum");
  t.AddAttr("index", 0);
  t.AddNote("plan", "t <- scan edge [driver] ; probe \"tc\"(1)");
  t.AddTiming("lane.0", 1234);
  t.EndSpan();
  t.EndSpan();
  t.metrics().Count("eval.rule_firings", 42);
  t.metrics().Observe("eval.delta_rows", 3);
  t.metrics().Observe("eval.delta_rows", 17);
  return t.TakeReport();
}

TEST(TraceJsonTest, RoundTripsWithTimings) {
  TraceReport r = SampleReport();
  const std::string json = r.ToJson(/*include_timings=*/true);
  auto back = TraceReport::FromJson(json);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->ToJson(true), json);
}

TEST(TraceJsonTest, RoundTripsDeterministicProjection) {
  TraceReport r = SampleReport();
  const std::string json = r.ToJson(/*include_timings=*/false);
  auto back = TraceReport::FromJson(json);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->ToJson(false), json);
}

TEST(TraceJsonTest, DeterministicProjectionOmitsWallClock) {
  TraceReport r = SampleReport();
  const std::string json = r.ToJson(/*include_timings=*/false);
  EXPECT_EQ(json.find("duration_ns"), std::string::npos);
  EXPECT_EQ(json.find("timings"), std::string::npos);
  EXPECT_EQ(json.find("lane.0"), std::string::npos);
  // Structural content survives, including escapes.
  EXPECT_NE(json.find("\"stratum\""), std::string::npos);
  EXPECT_NE(json.find("probe \\\"tc\\\"(1)"), std::string::npos);
}

TEST(TraceJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(TraceReport::FromJson("").ok());
  EXPECT_FALSE(TraceReport::FromJson("{\"spans\":[").ok());
  EXPECT_FALSE(TraceReport::FromJson("[1,2,3]").ok());
}

TEST(TraceTextTest, RendersTreeAndCounters) {
  TraceReport r = SampleReport();
  const std::string text = r.ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("stratum"), std::string::npos);
  EXPECT_NE(text.find("eval.rule_firings = 42"), std::string::npos);
  EXPECT_NE(text.find("eval.delta_rows"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The unified API end to end

constexpr char kTcQuery[] =
    "query t { edge X -> Y : edge+; distinguished X -> Y : t; }";

void SeedEdges(Database* db) {
  ASSERT_OK(db->AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(db->AddSymFact("edge", {"b", "c"}));
  ASSERT_OK(db->AddSymFact("edge", {"c", "d"}));
}

/// Collects every span name in the tree (depth first).
void CollectNames(const std::vector<Span>& spans,
                  std::vector<std::string>* out) {
  for (const Span& s : spans) {
    out->push_back(s.name);
    CollectNames(s.children, out);
  }
}

TEST(QueryApiTest, TracedRunCoversThePipeline) {
  Database db;
  SeedEdges(&db);
  QueryRequest req = QueryRequest::GraphLog(kTcQuery);
  req.options.observability.tracing = true;
  auto r = graphlog::Run(req, &db);
  ASSERT_OK(r.status());
  std::vector<std::string> names;
  CollectNames(r->trace.spans, &names);
  for (const char* expect :
       {"query", "parse", "validate", "translate", "evaluate", "stratify",
        "stratum", "round"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end())
        << "missing span " << expect;
  }
  const auto& counters = r->trace.metrics.counters();
  EXPECT_EQ(counters.at("eval.tuples_derived"),
            r->stats.datalog.tuples_derived);
  EXPECT_GT(counters.at("query.result_tuples"), 0u);
  EXPECT_FALSE(r->trace.metrics.histograms().empty());
}

TEST(QueryApiTest, TracingOffProducesEmptyTrace) {
  Database db;
  SeedEdges(&db);
  auto r = graphlog::Run(QueryRequest::GraphLog(kTcQuery), &db);
  ASSERT_OK(r.status());
  EXPECT_TRUE(r->trace.empty());
  EXPECT_TRUE(r->explain.empty());
  // Query heads only (t: full closure of a 3-edge chain), not auxiliaries.
  EXPECT_EQ(r->stats.result_tuples, 6u);
}

TEST(QueryApiTest, DatalogLanguageRunsThroughSameDoor) {
  Database db;
  SeedEdges(&db);
  QueryRequest req = QueryRequest::Datalog(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n");
  req.options.observability.tracing = true;
  auto r = graphlog::Run(req, &db);
  ASSERT_OK(r.status());
  EXPECT_EQ(r->stats.datalog.tuples_derived, 6u);
  EXPECT_EQ(r->stats.programs.size(), 2u);
  std::vector<std::string> names;
  CollectNames(r->trace.spans, &names);
  EXPECT_NE(std::find(names.begin(), names.end(), "evaluate"), names.end());
}

TEST(QueryApiTest, ExplainRendersRulesStrataAndPlans) {
  Database db;
  SeedEdges(&db);
  QueryRequest req = QueryRequest::GraphLog(kTcQuery);
  req.options.observability.explain = true;
  auto r = graphlog::Run(req, &db);
  ASSERT_OK(r.status());
  EXPECT_NE(r->explain.find("program:"), std::string::npos);
  EXPECT_NE(r->explain.find("stratification:"), std::string::npos);
  EXPECT_NE(r->explain.find("join plans"), std::string::npos);
  EXPECT_NE(r->explain.find("edge-tc"), std::string::npos);
  // explain (without explain_only) still evaluates.
  EXPECT_GT(r->stats.datalog.tuples_derived, 0u);
}

TEST(QueryApiTest, ExplainOnlySkipsEvaluation) {
  Database db;
  SeedEdges(&db);
  QueryRequest req = QueryRequest::GraphLog(kTcQuery);
  req.options.observability.explain = true;
  req.options.observability.explain_only = true;
  auto r = graphlog::Run(req, &db);
  ASSERT_OK(r.status());
  EXPECT_FALSE(r->explain.empty());
  EXPECT_EQ(r->stats.datalog.tuples_derived, 0u);
  EXPECT_EQ(db.Find(db.symbols().Lookup("t")), nullptr);
}

TEST(EvalStatsTest, MergeAddsEveryCounter) {
  eval::EvalStats a{1, 2, 3, 4, 5, 6};
  eval::EvalStats b{10, 20, 30, 40, 50, 60};
  a.Merge(b);
  EXPECT_EQ(a.iterations, 11u);
  EXPECT_EQ(a.rule_firings, 22u);
  EXPECT_EQ(a.tuples_derived, 33u);
  EXPECT_EQ(a.strata, 44u);
  EXPECT_EQ(a.index_builds, 55u);
  EXPECT_EQ(a.index_appends, 66u);
}

TEST(QueryApiTest, IndexCountersSurviveMultiGraphQueries) {
  // Two query graphs -> two engine runs accumulated through
  // EvalStats::Merge; the index maintenance counters must survive (the
  // old field-by-field accumulation silently dropped them). Each graph's
  // recursive plan builds an index (probe edge / probe t1), so the merged
  // total must see both.
  Database db;
  ASSERT_OK(workload::RandomDigraph(60, 180, 17, &db));
  QueryRequest req = QueryRequest::GraphLog(
      "query t1 { edge X -> Y : edge+; distinguished X -> Y : t1; }\n"
      "query t2 { edge X -> Y : t1 t1; distinguished X -> Y : t2; }\n");
  auto r = graphlog::Run(req, &db);
  ASSERT_OK(r.status());
  EXPECT_EQ(r->stats.graphs_translated, 2u);
  EXPECT_GE(r->stats.datalog.index_builds, 2u);
  // GraphLog translations are linear (they probe only non-growing
  // relations), so incremental appends come from the Datalog door:
  // nonlinear TC probes tc while inserting into it. Same Merge path.
  QueryRequest dreq = QueryRequest::Datalog(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), tc(Z, Y).\n");
  auto d = graphlog::Run(dreq, &db);
  ASSERT_OK(d.status());
  EXPECT_GT(d->stats.datalog.index_appends, 0u);
  EXPECT_GT(d->stats.datalog.index_builds, 0u);
}

// ---------------------------------------------------------------------------
// Kernel spans (TC, RPQ)

TEST(KernelSpanTest, TransitiveClosureRecordsTcSpan) {
  Database db;
  ASSERT_OK(workload::RandomDigraph(40, 120, 5, &db));
  const storage::Relation* edges = db.Find(db.symbols().Lookup("edge"));
  ASSERT_NE(edges, nullptr);
  Tracer tracer;
  auto r = tc::TransitiveClosure(*edges, tc::TcAlgorithm::kSemiNaive,
                                 nullptr, &tracer);
  ASSERT_OK(r.status());
  TraceReport report = tracer.TakeReport();
  ASSERT_EQ(report.spans.size(), 1u);
  const Span& s = report.spans[0];
  EXPECT_EQ(s.name, "tc");
  ASSERT_EQ(s.notes.size(), 1u);
  EXPECT_EQ(s.notes[0].second, "semi-naive");
  bool saw_rounds = false;
  for (const auto& [k, v] : s.attrs) {
    if (k == "rounds") saw_rounds = v > 0;
    if (k == "pairs") EXPECT_EQ(static_cast<size_t>(v), r->size());
  }
  EXPECT_TRUE(saw_rounds);
}

TEST(KernelSpanTest, RpqRecordsSearchEffort) {
  Database db;
  SeedEdges(&db);
  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  Tracer tracer;
  rpq::RpqOptions opts;
  opts.source = Value::Sym(db.Intern("a"));
  opts.tracer = &tracer;
  auto r = rpq::EvalRpqText(g, "edge+", &db.symbols(), opts);
  ASSERT_OK(r.status());
  EXPECT_EQ(r->size(), 3u);
  TraceReport report = tracer.TakeReport();
  ASSERT_EQ(report.spans.size(), 1u);
  const Span& s = report.spans[0];
  EXPECT_EQ(s.name, "rpq");
  int64_t pairs = -1, visited = 0;
  for (const auto& [k, v] : s.attrs) {
    if (k == "pairs") pairs = v;
    if (k == "product_states_visited") visited = v;
  }
  EXPECT_EQ(pairs, 3);
  EXPECT_GT(visited, 0);
}

}  // namespace
}  // namespace graphlog
