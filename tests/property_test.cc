// Property sweeps: randomized differential testing across the
// repository's independent implementations of the same semantics.
//
//  * Algorithm 3.1 preserves semantics on random stratified linear
//    programs (Theorem 3.2, fuzzed),
//  * naive and semi-naive evaluation agree on random programs,
//  * the three RPQ strategies (NFA product, DFA product, lambda/Datalog)
//    agree on random path expressions over random graphs,
//  * the four TC kernels agree (covered per-algorithm in tc_test; here the
//    Datalog engine joins the panel).

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "graph/data_graph.h"
#include "graphlog/api.h"
#include "graphlog/query_graph.h"
#include "rpq/rpq_eval.h"
#include "storage/database.h"
#include "tc/transitive_closure.h"
#include "testing/equivalence.h"
#include "testing/random_programs.h"
#include "tests/test_util.h"
#include "translate/sl_to_stc.h"
#include "workload/generators.h"

namespace graphlog {
namespace {

using storage::Database;
using storage::Relation;

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, Algorithm31PreservesSemantics) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  testing::RandomProgramOptions gen;
  std::string program = testing::RandomLinearProgram(gen, seed);

  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(datalog::Program parsed,
                       datalog::ParseProgram(program, &syms));
  ASSERT_OK(datalog::CheckLinear(parsed, syms));
  ASSERT_OK(datalog::Stratify(parsed, syms).status());

  ASSERT_OK_AND_ASSIGN(auto translated,
                       translate::TranslateSlToStc(parsed, &syms));
  EXPECT_TRUE(datalog::IsTcProgram(translated.program))
      << "seed " << seed << "\n"
      << program;

  testing::EquivalenceOptions opts;
  opts.trials = 4;
  opts.edb.domain_size = 6;
  opts.edb.fill = 0.25;
  opts.edb.seed = seed * 31 + 7;
  opts.compare = {"result", "non-result"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      testing::CheckEquivalent(program,
                               translated.program.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent)
      << "seed " << seed << ": " << report.detail << "\n"
      << program;
}

TEST_P(RandomProgramTest, NaiveAndSemiNaiveAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  testing::RandomProgramOptions gen;
  std::string program = testing::RandomLinearProgram(gen, seed + 1000);

  testing::EquivalenceOptions opts;
  opts.trials = 3;
  opts.edb.seed = seed;
  opts.compare = {"result", "non-result"};
  opts.eval.strategy = eval::Strategy::kNaive;
  // Left = naive, right = semi-naive: run via two option sets by abusing
  // the harness twice.
  testing::EquivalenceOptions semi = opts;
  semi.eval.strategy = eval::Strategy::kSemiNaive;

  // Evaluate both strategies on identical EDBs and compare directly.
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 3; ++trial) {
    uint64_t s = rng();
    Database d1, d2;
    std::mt19937_64 r1(s), r2(s);
    std::vector<testing::RelationSchema> schemas = {
        {"e1", 2}, {"e2", 2}, {"n1", 1}};
    testing::FillRandomEdb(schemas, opts.edb, &r1, &d1);
    testing::FillRandomEdb(schemas, opts.edb, &r2, &d2);
    eval::EvalOptions naive_opts, semi_opts;
    naive_opts.strategy = eval::Strategy::kNaive;
    semi_opts.strategy = eval::Strategy::kSemiNaive;
    ASSERT_OK(eval::EvaluateText(program, &d1, naive_opts).status());
    ASSERT_OK(eval::EvaluateText(program, &d2, semi_opts).status());
    for (const char* pred : {"result", "non-result"}) {
      EXPECT_EQ(testutil::RelationSet(d1, pred),
                testutil::RelationSet(d2, pred))
          << "seed " << seed << " trial " << trial << " pred " << pred;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1, 13));

class RandomPreTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPreTest, ThreeRpqStrategiesAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Database db;
  ASSERT_OK(workload::RandomDigraph(10, 22, seed, &db, "p"));
  ASSERT_OK(workload::RandomDigraph(10, 16, seed + 77, &db, "q"));

  testing::RandomPreOptions gen;
  gl::PathExpr expr =
      testing::RandomPathExpr(gen, seed * 13 + 5, &db.symbols());
  std::string expr_text = expr.ToString(db.symbols());

  graph::DataGraph g = graph::DataGraph::FromDatabase(db);
  ASSERT_OK_AND_ASSIGN(Relation via_nfa, rpq::EvalRpq(g, expr));
  ASSERT_OK_AND_ASSIGN(Relation via_dfa, rpq::EvalRpqDfa(g, expr));
  EXPECT_TRUE(via_nfa.SetEquals(via_dfa))
      << "expr " << expr_text << " seed " << seed;

  // Datalog strategy via the surface syntax.
  std::string text = "query rq { edge X -> Y : " + expr_text +
                     "; distinguished X -> Y : rq; }";
  ASSERT_OK(graphlog::Run(QueryRequest::GraphLog(text), &db).status());
  std::set<std::string> datalog_set = testutil::RelationSet(db, "rq");
  std::set<std::string> nfa_set;
  for (const auto& t : via_nfa.rows()) {
    nfa_set.insert(t[0].ToString(db.symbols()) + "," +
                   t[1].ToString(db.symbols()));
  }
  EXPECT_EQ(nfa_set, datalog_set) << "expr " << expr_text << " seed "
                                  << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPreTest, ::testing::Range(1, 25));

TEST(TcPanelTest, DatalogEngineAgreesWithTcKernels) {
  for (uint64_t seed : {3u, 14u, 159u}) {
    Database db;
    ASSERT_OK(workload::RandomDigraph(20, 50, seed, &db));
    ASSERT_OK(eval::EvaluateText("tc(X, Y) :- edge(X, Y).\n"
                                 "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n",
                                 &db)
                  .status());
    ASSERT_OK_AND_ASSIGN(
        Relation oracle,
        tc::TransitiveClosure(*db.Find("edge"), tc::TcAlgorithm::kBfs));
    EXPECT_TRUE(db.Find("tc")->SetEquals(oracle)) << "seed " << seed;
  }
}

TEST(RandomGeneratorTest, ProgramsAreDeterministic) {
  testing::RandomProgramOptions gen;
  EXPECT_EQ(testing::RandomLinearProgram(gen, 5),
            testing::RandomLinearProgram(gen, 5));
  EXPECT_NE(testing::RandomLinearProgram(gen, 5),
            testing::RandomLinearProgram(gen, 6));
}

TEST(PrinterRoundTripTest, RandomPreTextIsStable) {
  // ToString -> parse -> ToString is a fixpoint for random expressions.
  SymbolTable syms;
  testing::RandomPreOptions gen;
  gen.max_depth = 5;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    gl::PathExpr e = testing::RandomPathExpr(gen, seed, &syms);
    std::string once = e.ToString(syms);
    auto reparsed = gl::ParsePathExpr(once, &syms);
    ASSERT_TRUE(reparsed.ok())
        << once << ": " << reparsed.status().ToString();
    EXPECT_EQ(once, reparsed->ToString(syms)) << "seed " << seed;
  }
}

TEST(PrinterRoundTripTest, RandomProgramTextIsStable) {
  testing::RandomProgramOptions gen;
  for (uint64_t seed = 100; seed < 120; ++seed) {
    std::string text = testing::RandomLinearProgram(gen, seed);
    SymbolTable syms;
    auto prog = datalog::ParseProgram(text, &syms);
    ASSERT_TRUE(prog.ok()) << text;
    std::string once = prog->ToString(syms);
    auto again = datalog::ParseProgram(once, &syms);
    ASSERT_TRUE(again.ok()) << once;
    EXPECT_EQ(once, again->ToString(syms)) << "seed " << seed;
  }
}

TEST(RandomGeneratorTest, PreHasNoTopLevelIdentity) {
  SymbolTable syms;
  testing::RandomPreOptions gen;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    gl::PathExpr e = testing::RandomPathExpr(gen, seed, &syms);
    ASSERT_OK_AND_ASSIGN(gl::ExpandedPre x, gl::ExpandEquality(e));
    EXPECT_FALSE(x.has_identity) << e.ToString(syms);
    EXPECT_FALSE(x.alternatives.empty()) << e.ToString(syms);
  }
}

}  // namespace
}  // namespace graphlog
