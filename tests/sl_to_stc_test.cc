// Tests for Algorithm 3.1 (SL-DATALOG -> STC-DATALOG), including the
// empirical equivalence certification of Theorem 3.2.

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "storage/database.h"
#include "testing/equivalence.h"
#include "tests/test_util.h"
#include "translate/sl_to_stc.h"

namespace graphlog::translate {
namespace {

using datalog::Program;
using storage::Database;
using testing::CheckEquivalent;
using testing::EquivalenceOptions;
using testutil::RelationSet;

const char* kSameGeneration =
    "sg(X, X) :- person(X).\n"
    "sg(X, Y) :- parent(X, Z), sg(Z, W), parent(Y, W).\n";

/// Runs Algorithm 3.1 on `text` and returns (input program text unchanged,
/// translated program text).
std::string TranslateToText(const char* text, SymbolTable* syms) {
  auto prog = datalog::ParseProgram(text, syms);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  auto out = TranslateSlToStc(*prog, syms);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out->program.ToString(*syms);
}

TEST(SlToStcTest, SameGenerationShapeMatchesFigure9) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(Program input,
                       datalog::ParseProgram(kSameGeneration, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));

  // The output must be a TC program (only TC-shaped recursion).
  EXPECT_TRUE(datalog::IsTcProgram(out.program));
  EXPECT_TRUE(datalog::IsLinear(out.program));
  ASSERT_EQ(out.edge_closure_pairs.size(), 1u);

  // Figure 9 structure: 2 e-rules, 2 t-rules, 1 extraction rule.
  EXPECT_EQ(out.program.rules.size(), 5u);

  // The configuration width is m+1 = 3, so e has arity 6 (as in Figure 9).
  auto arities = datalog::PredicateArities(out.program);
  EXPECT_EQ(arities[out.edge_closure_pairs[0].first], 6u);
  EXPECT_EQ(arities[out.edge_closure_pairs[0].second], 6u);
}

TEST(SlToStcTest, SameGenerationEquivalent) {
  SymbolTable syms;
  std::string translated = TranslateToText(kSameGeneration, &syms);
  EquivalenceOptions opts;
  opts.trials = 15;
  opts.compare = {"sg"};
  opts.edb.domain_size = 7;
  opts.edb.fill = 0.2;
  ASSERT_OK_AND_ASSIGN(auto report,
                       CheckEquivalent(kSameGeneration, translated, opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(SlToStcTest, PlainTcPassthroughVariables) {
  // tc's recursive rule has the pass-through variable Y; the translation
  // grounds it with the generated dom predicate.
  SymbolTable syms;
  const char* tc =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";
  ASSERT_OK_AND_ASSIGN(Program input, datalog::ParseProgram(tc, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));
  EXPECT_NE(out.dom_predicate, kNoSymbol);
  EXPECT_TRUE(datalog::IsTcProgram(out.program));

  EquivalenceOptions opts;
  opts.trials = 15;
  opts.compare = {"tc"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      CheckEquivalent(tc, out.program.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(SlToStcTest, MutualRecursionSingleScc) {
  // odd/even mutual recursion: one SCC with two predicates, exercising the
  // per-predicate signature constants.
  SymbolTable syms;
  const char* prog =
      "odd(Y) :- first(X), edge(X, Y).\n"
      "odd(Y) :- even(X), edge(X, Y).\n"
      "even(Y) :- odd(X), edge(X, Y).\n";
  ASSERT_OK_AND_ASSIGN(Program input, datalog::ParseProgram(prog, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));
  EXPECT_TRUE(datalog::IsTcProgram(out.program));
  EXPECT_EQ(out.edge_closure_pairs.size(), 1u);

  EquivalenceOptions opts;
  opts.trials = 15;
  opts.compare = {"odd", "even"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      CheckEquivalent(prog, out.program.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(SlToStcTest, StratifiedNegationPreserved) {
  SymbolTable syms;
  const char* prog =
      "reach(Y) :- src(X), edge(X, Y).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "blocked(X) :- node(X), !reach(X).\n"
      "safe(Y) :- blocked(X), edge(X, Y).\n"
      "safe(Y) :- safe(X), edge(X, Y).\n";
  ASSERT_OK_AND_ASSIGN(Program input, datalog::ParseProgram(prog, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));
  EXPECT_TRUE(datalog::IsTcProgram(out.program));
  // Two recursive SCCs -> two e/t pairs.
  EXPECT_EQ(out.edge_closure_pairs.size(), 2u);
  // Still stratifiable.
  EXPECT_OK(datalog::Stratify(out.program, syms).status());

  EquivalenceOptions opts;
  opts.trials = 12;
  opts.compare = {"reach", "blocked", "safe"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      CheckEquivalent(prog, out.program.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(SlToStcTest, NonRecursiveProgramCopiedThrough) {
  SymbolTable syms;
  const char* prog = "q(X, Z) :- a(X, Y), b(Y, Z).\n";
  ASSERT_OK_AND_ASSIGN(Program input, datalog::ParseProgram(prog, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));
  EXPECT_EQ(out.program.rules.size(), 1u);
  EXPECT_TRUE(out.edge_closure_pairs.empty());
}

TEST(SlToStcTest, NonlinearRejected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(
      Program input,
      datalog::ParseProgram(
          "t(X,Y) :- e(X,Y).\nt(X,Y) :- t(X,Z), t(Z,Y).\n", &syms));
  auto r = TranslateSlToStc(input, &syms);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotLinear);
}

TEST(SlToStcTest, UnstratifiableRejected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(
      Program input,
      datalog::ParseProgram("w(X) :- m(X, Y), !w(Y).", &syms));
  EXPECT_FALSE(TranslateSlToStc(input, &syms).ok());
}

TEST(SlToStcTest, AggregatesRejected) {
  SymbolTable syms;
  ASSERT_OK_AND_ASSIGN(
      Program input,
      datalog::ParseProgram("s(X, sum<Y>) :- f(X, Y).", &syms));
  auto r = TranslateSlToStc(input, &syms);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(SlToStcTest, ConstantsInRulesSurviveViaDomFacts) {
  SymbolTable syms;
  const char* prog =
      "hops(X, Y) :- special(X), edge(X, Y).\n"
      "hops(X, Y) :- hops(X, Z), edge(Z, Y).\n";
  ASSERT_OK_AND_ASSIGN(Program input, datalog::ParseProgram(prog, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));
  EquivalenceOptions opts;
  opts.trials = 10;
  opts.compare = {"hops"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      CheckEquivalent(prog, out.program.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(SlToStcTest, PiecewiseLinearChains) {
  // Several recursive SCCs feeding one another (piecewise linear).
  SymbolTable syms;
  const char* prog =
      "r1(X, Y) :- e1(X, Y).\n"
      "r1(X, Y) :- e1(X, Z), r1(Z, Y).\n"
      "r2(X, Y) :- r1(X, Y).\n"
      "r2(X, Y) :- r1(X, Z), r2(Z, Y).\n";
  ASSERT_OK_AND_ASSIGN(Program input, datalog::ParseProgram(prog, &syms));
  ASSERT_OK_AND_ASSIGN(SlToStcResult out, TranslateSlToStc(input, &syms));
  EXPECT_TRUE(datalog::IsTcProgram(out.program));
  EquivalenceOptions opts;
  opts.trials = 10;
  opts.edb.domain_size = 6;
  opts.compare = {"r1", "r2"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      CheckEquivalent(prog, out.program.ToString(syms), opts));
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(EquivalenceHarnessTest, DetectsInequivalence) {
  EquivalenceOptions opts;
  opts.trials = 10;
  opts.compare = {"t"};
  ASSERT_OK_AND_ASSIGN(
      auto report,
      CheckEquivalent("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).\n",
                      "t(X, Y) :- e(X, Y).\n", opts));
  EXPECT_FALSE(report.equivalent);
  EXPECT_GE(report.failing_trial, 0);
  EXPECT_FALSE(report.detail.empty());
}

TEST(EquivalenceHarnessTest, IdenticalProgramsAgree) {
  const char* prog = "q(X) :- p(X, Y), !r(Y).\n";
  EquivalenceOptions opts;
  opts.trials = 5;
  ASSERT_OK_AND_ASSIGN(auto report, CheckEquivalent(prog, prog, opts));
  EXPECT_TRUE(report.equivalent);
  EXPECT_EQ(report.trials_run, 5);
}

}  // namespace
}  // namespace graphlog::translate
