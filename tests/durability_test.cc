// Durability: WAL framing, checkpoint/recovery, durable Server mode, and
// the crash-consistency sweep (DESIGN.md §13).
//
// The headline property here is the sweep: for a scripted workload,
// crash/corrupt the log at every record boundary and sampled interior
// offsets, and recovery must be bit-identical to replaying exactly the
// committed prefix — torn tails truncated, interior corruption refused
// wholesale with kCorruptedLog.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/fsync_policy.h"
#include "durability/wal.h"
#include "gov/fault_injection.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "storage/io.h"
#include "testing/crash_sweep.h"
#include "tests/test_util.h"

namespace graphlog {
namespace {

namespace fs = std::filesystem;
using testutil::RelationSet;
using testutil::RelationSize;

std::string UniqueDir(const std::string& tag) {
  static std::atomic<int> seq{0};
  std::string dir = ::testing::TempDir() + "/graphlog_durability_" + tag +
                    "_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seq.fetch_add(1));
  fs::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Building blocks

TEST(DurabilityTest, CorruptedLogStatusCode) {
  Status st = Status::CorruptedLog("boom");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruptedLog);
  EXPECT_EQ(st.ToString(), "CorruptedLog: boom");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruptedLog), "CorruptedLog");
}

TEST(DurabilityTest, Crc32KnownVectors) {
  // The standard CRC-32 (IEEE) check value.
  EXPECT_EQ(durability::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(durability::Crc32("", 0), 0u);
  EXPECT_NE(durability::Crc32("a", 1), durability::Crc32("b", 1));
}

TEST(DurabilityTest, FsyncPolicyNamesRoundTrip) {
  for (auto p : {durability::FsyncPolicy::kAlways,
                 durability::FsyncPolicy::kGroupCommit,
                 durability::FsyncPolicy::kOff}) {
    ASSERT_OK_AND_ASSIGN(
        durability::FsyncPolicy back,
        durability::ParseFsyncPolicy(durability::FsyncPolicyName(p)));
    EXPECT_EQ(back, p);
  }
  EXPECT_FALSE(durability::ParseFsyncPolicy("sometimes").ok());
}

TEST(DurabilityTest, BatchCodecRoundTrip) {
  WriteBatch batch;
  batch.Facts("edge(a, b).\nedge(b, c).")
      .Insert("edge", {"c", "d"})
      .LoadFile("/tmp/some/path.facts")
      .Clear("edge");
  const std::vector<std::string> files = {"edge(x, y).\n"};
  std::string encoded;
  ASSERT_OK(durability::BatchCodec::Encode(batch, files, &encoded));

  WriteBatch decoded;
  std::vector<std::string> decoded_files;
  ASSERT_OK(durability::BatchCodec::Decode(encoded, &decoded, &decoded_files));
  EXPECT_EQ(decoded.size(), batch.size());
  EXPECT_EQ(decoded_files, files);
  // Re-encoding the decoded batch must reproduce the wire bytes exactly.
  std::string reencoded;
  ASSERT_OK(durability::BatchCodec::Encode(decoded, decoded_files, &reencoded));
  EXPECT_EQ(reencoded, encoded);
}

TEST(DurabilityTest, BatchCodecRejectsFileCountMismatch) {
  WriteBatch batch;
  batch.LoadFile("/tmp/p.facts");
  std::string encoded;
  EXPECT_FALSE(durability::BatchCodec::Encode(batch, {}, &encoded).ok());
}

TEST(DurabilityTest, WalAppendScanRoundTrip) {
  const std::string dir = UniqueDir("wal_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/wal.log";
  {
    ASSERT_OK_AND_ASSIGN(auto wal, durability::Wal::Open(path));
    for (uint64_t e = 1; e <= 3; ++e) {
      WriteBatch b;
      b.Insert("edge", {"n" + std::to_string(e), "n" + std::to_string(e + 1)});
      ASSERT_OK(wal->Append(e, b, {}));
    }
    EXPECT_GT(wal->tail_offset(), 0u);
  }
  ASSERT_OK_AND_ASSIGN(durability::WalScan scan, durability::ScanWal(path));
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.valid_prefix_bytes, scan.file_bytes);
  for (uint64_t e = 1; e <= 3; ++e) {
    EXPECT_EQ(scan.records[e - 1].epoch, e);
    EXPECT_EQ(scan.records[e - 1].batch.size(), 1u);
  }
}

TEST(DurabilityTest, ScanOfMissingFileIsEmpty) {
  ASSERT_OK_AND_ASSIGN(
      durability::WalScan scan,
      durability::ScanWal(UniqueDir("no_such") + "/wal.log"));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn);
}

TEST(DurabilityTest, CheckpointRoundTripPreservesValueKinds) {
  const std::string dir = UniqueDir("ckpt_roundtrip");
  fs::create_directories(dir);
  storage::Database db;
  ASSERT_OK(storage::LoadFacts(
                "m(1, 2.5, x).\nm(-7, 0.0, y).\nedge(a, b).", &db)
                .status());
  const std::string path = dir + "/checkpoint.db";
  ASSERT_OK(durability::WriteCheckpoint(path, db, 42));
  ASSERT_OK_AND_ASSIGN(durability::CheckpointData back,
                       durability::ReadCheckpoint(path));
  ASSERT_TRUE(back.found);
  EXPECT_EQ(back.epoch, 42u);
  EXPECT_EQ(graphlog::testing::DatabaseFingerprint(back.db),
            graphlog::testing::DatabaseFingerprint(db));
}

TEST(DurabilityTest, CheckpointMissingIsNotFoundCorruptIsRejected) {
  const std::string dir = UniqueDir("ckpt_corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/checkpoint.db";
  ASSERT_OK_AND_ASSIGN(durability::CheckpointData missing,
                       durability::ReadCheckpoint(path));
  EXPECT_FALSE(missing.found);

  storage::Database db;
  ASSERT_OK(db.AddSymFact("edge", {"a", "b"}));
  ASSERT_OK(durability::WriteCheckpoint(path, db, 1));
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 12u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  WriteFile(path, bytes);
  Result<durability::CheckpointData> corrupt =
      durability::ReadCheckpoint(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kCorruptedLog);
}

TEST(DurabilityTest, FingerprintIgnoresSymbolIdDivergence) {
  storage::Database a;
  a.Intern("unrelated");  // shift every subsequent symbol id
  a.Intern("padding");
  storage::Database b;
  ASSERT_OK(a.AddSymFact("edge", {"x", "y"}));
  ASSERT_OK(b.AddSymFact("edge", {"x", "y"}));
  EXPECT_EQ(graphlog::testing::DatabaseFingerprint(a),
            graphlog::testing::DatabaseFingerprint(b));
}

// ---------------------------------------------------------------------------
// Durable server: commit, recover, checkpoint

TEST(DurabilityTest, DurableServerRecoversCommittedState) {
  const std::string dir = UniqueDir("recover_basic");
  uint64_t committed_epoch = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    EXPECT_TRUE(server->durable());
    WriteBatch b1;
    b1.Facts("edge(a, b).\nedge(b, c).");
    ASSERT_OK_AND_ASSIGN(size_t n1, server->Apply(b1));
    EXPECT_EQ(n1, 2u);
    WriteBatch b2;
    b2.Insert("edge", {"c", "d"}).Insert("label", {"a", "root"});
    ASSERT_OK(server->Apply(b2).status());
    WriteBatch b3;
    b3.Clear("label");
    ASSERT_OK(server->Apply(b3).status());
    committed_epoch = server->epoch();
    EXPECT_EQ(committed_epoch, 3u);
  }
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
  EXPECT_EQ(server->epoch(), committed_epoch);
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"a,b", "b,c", "c,d"}));
  EXPECT_EQ(RelationSize(server->database(), "label"), 0u);
  // The cleared relation stays declared, as after the original commits.
  EXPECT_NE(server->database().Find("label"), nullptr);
  // The recovered head snapshot serves sessions immediately.
  ASSERT_OK_AND_ASSIGN(auto session, server->OpenSession());
  EXPECT_EQ(RelationSet(session->database(), "edge"),
            (std::set<std::string>{"a,b", "b,c", "c,d"}));
}

TEST(DurabilityTest, RecoveryReplaysCapturedFileContentsNotThePath) {
  const std::string dir = UniqueDir("recover_loadfile");
  fs::create_directories(dir);
  const std::string facts = dir + "/input.facts";
  WriteFile(facts, "edge(a, b).\n");
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    WriteBatch b;
    b.LoadFile(facts);
    ASSERT_OK_AND_ASSIGN(size_t n, server->Apply(b));
    EXPECT_EQ(n, 1u);
  }
  // The file changes on disk after the commit — and is then deleted.
  // Recovery must replay the bytes captured AT COMMIT, not re-read it.
  WriteFile(facts, "edge(poisoned, poisoned).\n");
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    EXPECT_EQ(RelationSet(server->database(), "edge"),
              (std::set<std::string>{"a,b"}));
  }
  fs::remove(facts);
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"a,b"}));
}

TEST(DurabilityTest, CheckpointTruncatesWalAndRecoversThroughIt) {
  const std::string dir = UniqueDir("checkpoint");
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    WriteBatch b1;
    b1.Facts("edge(a, b).");
    ASSERT_OK(server->Apply(b1).status());
    ASSERT_OK(server->Checkpoint());
    EXPECT_EQ(server->wal()->tail_offset(), 0u);
    EXPECT_TRUE(fs::exists(dir + "/checkpoint.db"));
    WriteBatch b2;
    b2.Facts("edge(b, c).");
    ASSERT_OK(server->Apply(b2).status());
    EXPECT_GT(server->wal()->tail_offset(), 0u);
  }
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
  EXPECT_EQ(server->epoch(), 2u);
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"a,b", "b,c"}));
}

TEST(DurabilityTest, RecoverySkipsWalRecordsTheCheckpointCovers) {
  // A crash between the checkpoint rename and the WAL truncation leaves
  // records at or below the checkpoint epoch in the log; recovery must
  // not apply them twice.
  const std::string dir = UniqueDir("ckpt_overlap");
  std::string wal_before;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    WriteBatch b1;
    b1.Facts("edge(a, b).");
    ASSERT_OK(server->Apply(b1).status());
    WriteBatch b2;
    b2.Clear("edge");
    b2.Facts("edge(c, d).");
    ASSERT_OK(server->Apply(b2).status());
    wal_before = ReadFile(dir + "/wal.log");
    // Checkpoint at epoch 2 written out-of-band: the WAL keeps both
    // records, exactly the crash window's on-disk state.
    ASSERT_OK(durability::WriteCheckpoint(dir + "/checkpoint.db",
                                          server->database(),
                                          server->epoch()));
  }
  WriteFile(dir + "/wal.log", wal_before);
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
  EXPECT_EQ(server->epoch(), 2u);
  // Replaying record 1 after the checkpoint would resurrect edge(a, b)
  // past the Clear; the epoch filter must skip it.
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"c,d"}));
}

TEST(DurabilityTest, TornTailIsTruncatedAndPrefixRecovered) {
  const std::string dir = UniqueDir("torn");
  std::string full;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    WriteBatch b;
    b.Facts("edge(a, b).");
    ASSERT_OK(server->Apply(b).status());
    full = ReadFile(dir + "/wal.log");
  }
  // A fragment shorter than a record header: the classic torn append.
  WriteFile(dir + "/wal.log", full + std::string("\x03\x00", 2));
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    EXPECT_EQ(RelationSet(server->database(), "edge"),
              (std::set<std::string>{"a,b"}));
    EXPECT_EQ(server->epoch(), 1u);
  }
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), full.size());
}

TEST(DurabilityTest, CorruptInteriorRecordIsRejectedNotPartiallyApplied) {
  const std::string dir = UniqueDir("interior");
  uint64_t first_record_end = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    WriteBatch b1;
    b1.Facts("edge(a, b).");
    ASSERT_OK(server->Apply(b1).status());
    first_record_end = server->wal()->tail_offset();
    WriteBatch b2;
    b2.Facts("edge(b, c).");
    ASSERT_OK(server->Apply(b2).status());
  }
  std::string bytes = ReadFile(dir + "/wal.log");
  ASSERT_GT(first_record_end, 12u);
  // Flip one payload bit inside the FIRST record: complete, checksum
  // fails, and more bytes follow — interior corruption.
  bytes[12] = static_cast<char>(bytes[12] ^ 0x01);
  WriteFile(dir + "/wal.log", bytes);
  Result<std::unique_ptr<Server>> opened = Server::Open(dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruptedLog);
  // Refusal never rewrites the evidence.
  EXPECT_EQ(ReadFile(dir + "/wal.log"), bytes);
}

// ---------------------------------------------------------------------------
// Fault injection on the durable commit path

TEST(DurabilityTest, WalAppendFaultRollsBackTheCommit) {
  const std::string dir = UniqueDir("fault_append");
  gov::FaultInjector faults;
  ServerOptions opts;
  opts.faults = &faults;
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir, opts));
  WriteBatch b1;
  b1.Facts("edge(a, b).");
  ASSERT_OK(server->Apply(b1).status());

  faults.Arm("wal.append", gov::FaultSpec{});
  WriteBatch b2;
  b2.Facts("edge(b, c).").Clear("edge");
  Result<size_t> blocked = server->Apply(b2);
  ASSERT_FALSE(blocked.ok());
  // The in-memory apply rolled back: epoch unmoved, contents unchanged.
  EXPECT_EQ(server->epoch(), 1u);
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"a,b"}));
  faults.Disarm("wal.append");
  ASSERT_OK(server->Apply(b2).status());
  EXPECT_EQ(server->epoch(), 2u);
  EXPECT_EQ(RelationSize(server->database(), "edge"), 0u);
}

TEST(DurabilityTest, WalFsyncFaultRollsBackTheCommitAndTheAppend) {
  const std::string dir = UniqueDir("fault_fsync");
  gov::FaultInjector faults;
  ServerOptions opts;
  opts.faults = &faults;
  uint64_t tail = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir, opts));
    WriteBatch b1;
    b1.Facts("edge(a, b).");
    ASSERT_OK(server->Apply(b1).status());
    tail = server->wal()->tail_offset();

    faults.Arm("wal.fsync", gov::FaultSpec{});
    WriteBatch b2;
    b2.Facts("edge(b, c).");
    ASSERT_FALSE(server->Apply(b2).ok());
    EXPECT_EQ(server->epoch(), 1u);
    // The un-synced record was unwound from the log too: no record may
    // exist for an epoch that never published.
    EXPECT_EQ(server->wal()->tail_offset(), tail);
    faults.Disarm("wal.fsync");
  }
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
  EXPECT_EQ(server->epoch(), 1u);
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"a,b"}));
}

TEST(DurabilityTest, AbortedCheckpointNeverClobbersThePreviousOne) {
  const std::string dir = UniqueDir("fault_ckpt");
  gov::FaultInjector faults;
  ServerOptions opts;
  opts.faults = &faults;
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir, opts));
  WriteBatch b1;
  b1.Facts("edge(a, b).");
  ASSERT_OK(server->Apply(b1).status());
  ASSERT_OK(server->Checkpoint());
  const std::string good = ReadFile(dir + "/checkpoint.db");

  WriteBatch b2;
  b2.Facts("edge(b, c).");
  ASSERT_OK(server->Apply(b2).status());
  const uint64_t wal_tail = server->wal()->tail_offset();
  faults.Arm("checkpoint.write", gov::FaultSpec{});
  ASSERT_FALSE(server->Checkpoint().ok());
  // Previous checkpoint intact, WAL not truncated: nothing was lost.
  EXPECT_EQ(ReadFile(dir + "/checkpoint.db"), good);
  EXPECT_EQ(server->wal()->tail_offset(), wal_tail);
  faults.Disarm("checkpoint.write");

  ASSERT_OK(server->Checkpoint());
  EXPECT_NE(ReadFile(dir + "/checkpoint.db"), good);
}

// ---------------------------------------------------------------------------
// Fsync policies and sessions

TEST(DurabilityTest, GroupCommitAndOffPoliciesStillRecoverOnCleanClose) {
  for (auto policy : {durability::FsyncPolicy::kGroupCommit,
                      durability::FsyncPolicy::kOff}) {
    const std::string dir =
        UniqueDir(std::string("policy_") +
                  std::string(durability::FsyncPolicyName(policy)));
    DurabilityOptions dur;
    dur.fsync = policy;
    {
      ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir, {}, dur));
      EXPECT_EQ(server->wal()->fsync_policy(), policy);
      WriteBatch b;
      b.Facts("edge(a, b).");
      ASSERT_OK(server->Apply(b).status());
    }
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    EXPECT_EQ(RelationSet(server->database(), "edge"),
              (std::set<std::string>{"a,b"}));
  }
}

TEST(DurabilityTest, SessionsWriteThroughTheDurableServer) {
  const std::string dir = UniqueDir("sessions");
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
    ASSERT_OK_AND_ASSIGN(auto session, server->OpenSession());
    WriteBatch b;
    b.Facts("edge(a, b).\nedge(b, c).");
    ASSERT_OK(session->Apply(b).status());
    // The session fast-forwarded onto the committed epoch.
    EXPECT_EQ(session->epoch(), server->epoch());
    ASSERT_OK(session
                  ->Run(QueryRequest::GraphLog(
                      "query tc { edge X -> Y : edge+; "
                      "distinguished X -> Y : tc; }"))
                  .status());
    EXPECT_EQ(RelationSet(session->database(), "tc"),
              (std::set<std::string>{"a,b", "a,c", "b,c"}));
  }
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir));
  // Only the committed EDB recovers; session query materializations are
  // session-local and were never part of the authoritative state.
  EXPECT_EQ(RelationSet(server->database(), "edge"),
            (std::set<std::string>{"a,b", "b,c"}));
}

TEST(DurabilityTest, CheckpointRequiresDurableServer) {
  Server server;
  Status st = server.Checkpoint();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(server.durable());
}

TEST(DurabilityTest, DurabilityMetricsArePublished) {
  const std::string dir = UniqueDir("metrics");
  obs::MetricsRegistry metrics;
  ServerOptions opts;
  opts.metrics = &metrics;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir, opts));
    WriteBatch b;
    b.Facts("edge(a, b).");
    ASSERT_OK(server->Apply(b).status());
    ASSERT_OK(server->Checkpoint());
    WriteBatch b2;
    b2.Facts("edge(b, c).");
    ASSERT_OK(server->Apply(b2).status());
  }
  EXPECT_EQ(metrics.counter("wal.appends")->value(), 2u);
  EXPECT_GE(metrics.counter("wal.fsyncs")->value(), 2u);
  EXPECT_GT(metrics.counter("wal.bytes_appended")->value(), 0u);
  EXPECT_EQ(metrics.counter("checkpoint.writes")->value(), 1u);
  EXPECT_EQ(metrics.counter("recovery.runs")->value(), 1u);

  obs::MetricsRegistry metrics2;
  ServerOptions opts2;
  opts2.metrics = &metrics2;
  ASSERT_OK_AND_ASSIGN(auto server, Server::Open(dir, opts2));
  EXPECT_EQ(metrics2.counter("recovery.runs")->value(), 1u);
  EXPECT_EQ(metrics2.counter("recovery.replayed_records")->value(), 1u);
  EXPECT_EQ(metrics2.gauge("recovery.epoch")->value(), 2);
}

// ---------------------------------------------------------------------------
// The headline artifact: the crash-consistency sweep

TEST(DurabilityTest, CrashConsistencySweepPassesExhaustively) {
  const std::string dir = UniqueDir("sweep");
  fs::create_directories(dir);
  const std::string facts = dir + "/bulk.facts";
  WriteFile(facts, "edge(f1, f2).\nedge(f2, f3).\nweight(f1, 10).\n");

  std::vector<WriteBatch> workload;
  WriteBatch b1;
  b1.Facts("edge(a, b).\nedge(b, c).\nedge(c, a).");
  workload.push_back(b1);
  WriteBatch b2;
  b2.Insert("edge", {"c", "d"}).Insert("label", {"a", "root"});
  workload.push_back(b2);
  WriteBatch b3;
  b3.LoadFile(facts);
  workload.push_back(b3);
  WriteBatch b4;
  b4.Clear("label").Facts("label(d, leaf).\nscore(d, 3).");
  workload.push_back(b4);
  WriteBatch b5;
  b5.Facts("edge(d, e).").Clear("score").Insert("edge", {"e", "a"});
  workload.push_back(b5);

  ASSERT_OK_AND_ASSIGN(
      graphlog::testing::CrashSweepReport report,
      graphlog::testing::RunCrashSweep(dir + "/state", workload));
  for (const std::string& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.commits, workload.size());
  // Every record boundary (commits + the empty log) plus interior
  // samples for each record.
  EXPECT_GE(report.truncation_points, workload.size() + 1);
  EXPECT_GT(report.bitflip_points, 0u);
  EXPECT_GT(report.torn_tails_repaired, 0u);
  EXPECT_GT(report.corruptions_rejected, 0u);
}

}  // namespace
}  // namespace graphlog
