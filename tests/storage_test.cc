// Tests for the storage layer: relations, indexes, database catalog.

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "tests/test_util.h"

namespace graphlog::storage {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(r.Insert({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, ContainsAndRows) {
  Relation r(1);
  r.Insert({Value::Int(5)});
  EXPECT_TRUE(r.Contains({Value::Int(5)}));
  EXPECT_FALSE(r.Contains({Value::Int(6)}));
  EXPECT_EQ(r.rows().size(), 1u);
}

TEST(RelationTest, InsertionOrderPreserved) {
  Relation r(1);
  for (int i = 9; i >= 0; --i) r.Insert({Value::Int(i)});
  EXPECT_EQ(r.rows().front()[0], Value::Int(9));
  EXPECT_EQ(r.rows().back()[0], Value::Int(0));
  // SortedRows is canonical.
  EXPECT_EQ(r.SortedRows().front()[0], Value::Int(0));
}

TEST(RelationTest, ProbeSingleColumn) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(10)});
  r.Insert({Value::Int(1), Value::Int(11)});
  r.Insert({Value::Int(2), Value::Int(20)});
  ProbeResult hits = r.Probe({0}, {Value::Int(1)});
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(r.Probe({0}, {Value::Int(3)}).empty());
}

TEST(RelationTest, ProbeMultiColumn) {
  Relation r(3);
  r.Insert({Value::Int(1), Value::Int(2), Value::Int(3)});
  r.Insert({Value::Int(1), Value::Int(9), Value::Int(3)});
  ProbeResult hits = r.Probe({0, 2}, {Value::Int(1), Value::Int(3)});
  EXPECT_EQ(hits.size(), 2u);
  ProbeResult one = r.Probe({0, 1}, {Value::Int(1), Value::Int(2)});
  EXPECT_EQ(one.size(), 1u);
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(r.Probe({0}, {Value::Int(1)}).size(), 1u);
  r.Insert({Value::Int(1), Value::Int(3)});
  EXPECT_EQ(r.Probe({0}, {Value::Int(1)}).size(), 2u);
}

TEST(RelationTest, InterleavedInsertProbeStaysConsistent) {
  // Fixpoint-style usage: alternate inserts and probes and check the
  // incrementally maintained index against the ground truth every round.
  Relation r(2);
  for (int i = 0; i < 200; ++i) {
    r.Insert({Value::Int(i % 7), Value::Int(i)});
    ProbeResult hits = r.Probe({0}, {Value::Int(i % 7)});
    size_t expect = 0;
    for (const Tuple& t : r.rows()) {
      if (t[0] == Value::Int(i % 7)) ++expect;
    }
    ASSERT_EQ(hits.size(), expect) << "after insert " << i;
    for (uint32_t id : hits) {
      ASSERT_EQ(r.row(id)[0], Value::Int(i % 7));
    }
  }
  // Exactly one build of the {0} index; everything after was an append.
  EXPECT_EQ(r.index_builds(), 1u);
  EXPECT_GT(r.index_appends(), 0u);
}

TEST(RelationTest, DuplicateInsertDoesNotTouchIndexes) {
  Relation r(1);
  r.Insert({Value::Int(1)});
  r.Probe({0}, {Value::Int(1)});  // build the index
  const uint64_t gen = r.generation();
  const uint64_t appends = r.index_appends();
  EXPECT_FALSE(r.Insert({Value::Int(1)}));
  EXPECT_EQ(r.generation(), gen);
  EXPECT_EQ(r.index_appends(), appends);
}

TEST(RelationTest, MultipleIndexesAllMaintained) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(10)});
  r.Probe({0}, {Value::Int(1)});
  r.Probe({1}, {Value::Int(10)});
  r.Probe({0, 1}, {Value::Int(1), Value::Int(10)});
  EXPECT_EQ(r.index_builds(), 3u);
  r.Insert({Value::Int(1), Value::Int(11)});
  EXPECT_EQ(r.Probe({0}, {Value::Int(1)}).size(), 2u);
  EXPECT_EQ(r.Probe({1}, {Value::Int(11)}).size(), 1u);
  EXPECT_EQ(r.Probe({0, 1}, {Value::Int(1), Value::Int(11)}).size(), 1u);
  // One append per built index for the one new row.
  EXPECT_EQ(r.index_appends(), 3u);
  EXPECT_EQ(r.index_builds(), 3u);  // no rebuilds
}

TEST(ProbeResultTest, InvalidatedByInsert) {
  Relation r(1);
  r.Insert({Value::Int(1)});
  ProbeResult hits = r.Probe({0}, {Value::Int(1)});
  EXPECT_TRUE(hits.valid());
  r.Insert({Value::Int(2)});
  EXPECT_FALSE(hits.valid());
}

TEST(ProbeResultTest, DuplicateInsertKeepsViewValid) {
  Relation r(1);
  r.Insert({Value::Int(1)});
  ProbeResult hits = r.Probe({0}, {Value::Int(1)});
  EXPECT_FALSE(r.Insert({Value::Int(1)}));  // no structural change
  EXPECT_TRUE(hits.valid());
  EXPECT_EQ(hits.size(), 1u);
}

TEST(ProbeResultTest, InvalidatedByClearAndDropIndexes) {
  Relation r(1);
  r.Insert({Value::Int(1)});
  ProbeResult a = r.Probe({0}, {Value::Int(1)});
  r.DropIndexes();
  EXPECT_FALSE(a.valid());
  ProbeResult b = r.Probe({0}, {Value::Int(1)});
  EXPECT_TRUE(b.valid());
  r.Clear();
  EXPECT_FALSE(b.valid());
}

TEST(ProbeResultTest, DefaultConstructedIsValidAndEmpty) {
  ProbeResult p;
  EXPECT_TRUE(p.valid());
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.begin(), p.end());
}

TEST(RelationTest, DropIndexesForcesRebuild) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(2)});
  r.Probe({0}, {Value::Int(1)});
  EXPECT_EQ(r.index_builds(), 1u);
  r.DropIndexes();
  EXPECT_EQ(r.Probe({0}, {Value::Int(1)}).size(), 1u);
  EXPECT_EQ(r.index_builds(), 2u);
}

TEST(RelationTest, SetEquals) {
  Relation a(1), b(1);
  a.Insert({Value::Int(1)});
  a.Insert({Value::Int(2)});
  b.Insert({Value::Int(2)});
  b.Insert({Value::Int(1)});
  EXPECT_TRUE(a.SetEquals(b));
  b.Insert({Value::Int(3)});
  EXPECT_FALSE(a.SetEquals(b));
}

TEST(RelationTest, InsertAllReportsNovelCount) {
  Relation a(1), b(1);
  a.Insert({Value::Int(1)});
  b.Insert({Value::Int(1)});
  b.Insert({Value::Int(2)});
  EXPECT_EQ(a.InsertAll(b), 1u);
  EXPECT_EQ(a.size(), 2u);
}

TEST(DatabaseTest, DeclareIsIdempotent) {
  Database db;
  ASSERT_OK_AND_ASSIGN(Relation * r1, db.Declare("p", 2));
  ASSERT_OK_AND_ASSIGN(Relation * r2, db.Declare("p", 2));
  EXPECT_EQ(r1, r2);
}

TEST(DatabaseTest, DeclareArityConflictFails) {
  Database db;
  ASSERT_OK(db.Declare("p", 2).status());
  auto r = db.Declare("p", 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArityMismatch);
}

TEST(DatabaseTest, AddFactDeclaresOnFirstUse) {
  Database db;
  ASSERT_OK(db.AddFact("q", {Value::Int(1)}));
  const Relation* rel = db.Find("q");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 1u);
}

TEST(DatabaseTest, FindByNameAndSymbol) {
  Database db;
  ASSERT_OK(db.AddSymFact("r", {"a", "b"}));
  EXPECT_NE(db.Find("r"), nullptr);
  EXPECT_EQ(db.Find("missing"), nullptr);
  Symbol s = db.symbols().Lookup("r");
  EXPECT_NE(db.Find(s), nullptr);
}

TEST(DatabaseTest, TotalTuplesAndRetainOnly) {
  Database db;
  ASSERT_OK(db.AddSymFact("a", {"x"}));
  ASSERT_OK(db.AddSymFact("b", {"y"}));
  ASSERT_OK(db.AddSymFact("b", {"z"}));
  EXPECT_EQ(db.TotalTuples(), 3u);
  db.RetainOnly({db.Intern("b")});
  EXPECT_EQ(db.Find("a"), nullptr);
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(DatabaseTest, RelationToStringSorted) {
  Database db;
  ASSERT_OK(db.AddSymFact("e", {"b", "c"}));
  ASSERT_OK(db.AddSymFact("e", {"a", "b"}));
  EXPECT_EQ(db.RelationToString(db.Intern("e")),
            "e(a, b).\ne(b, c).\n");
}

}  // namespace
}  // namespace graphlog::storage
