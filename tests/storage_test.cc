// Tests for the storage layer: relations, indexes, database catalog.

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "tests/test_util.h"

namespace graphlog::storage {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(r.Insert({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, ContainsAndRows) {
  Relation r(1);
  r.Insert({Value::Int(5)});
  EXPECT_TRUE(r.Contains({Value::Int(5)}));
  EXPECT_FALSE(r.Contains({Value::Int(6)}));
  EXPECT_EQ(r.rows().size(), 1u);
}

TEST(RelationTest, InsertionOrderPreserved) {
  Relation r(1);
  for (int i = 9; i >= 0; --i) r.Insert({Value::Int(i)});
  EXPECT_EQ(r.rows().front()[0], Value::Int(9));
  EXPECT_EQ(r.rows().back()[0], Value::Int(0));
  // SortedRows is canonical.
  EXPECT_EQ(r.SortedRows().front()[0], Value::Int(0));
}

TEST(RelationTest, ProbeSingleColumn) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(10)});
  r.Insert({Value::Int(1), Value::Int(11)});
  r.Insert({Value::Int(2), Value::Int(20)});
  auto& hits = r.Probe({0}, {Value::Int(1)});
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(r.Probe({0}, {Value::Int(3)}).empty());
}

TEST(RelationTest, ProbeMultiColumn) {
  Relation r(3);
  r.Insert({Value::Int(1), Value::Int(2), Value::Int(3)});
  r.Insert({Value::Int(1), Value::Int(9), Value::Int(3)});
  auto& hits = r.Probe({0, 2}, {Value::Int(1), Value::Int(3)});
  EXPECT_EQ(hits.size(), 2u);
  auto& one = r.Probe({0, 1}, {Value::Int(1), Value::Int(2)});
  EXPECT_EQ(one.size(), 1u);
}

TEST(RelationTest, IndexInvalidatedByInsert) {
  Relation r(2);
  r.Insert({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(r.Probe({0}, {Value::Int(1)}).size(), 1u);
  r.Insert({Value::Int(1), Value::Int(3)});
  EXPECT_EQ(r.Probe({0}, {Value::Int(1)}).size(), 2u);
}

TEST(RelationTest, SetEquals) {
  Relation a(1), b(1);
  a.Insert({Value::Int(1)});
  a.Insert({Value::Int(2)});
  b.Insert({Value::Int(2)});
  b.Insert({Value::Int(1)});
  EXPECT_TRUE(a.SetEquals(b));
  b.Insert({Value::Int(3)});
  EXPECT_FALSE(a.SetEquals(b));
}

TEST(RelationTest, InsertAllReportsNovelCount) {
  Relation a(1), b(1);
  a.Insert({Value::Int(1)});
  b.Insert({Value::Int(1)});
  b.Insert({Value::Int(2)});
  EXPECT_EQ(a.InsertAll(b), 1u);
  EXPECT_EQ(a.size(), 2u);
}

TEST(DatabaseTest, DeclareIsIdempotent) {
  Database db;
  ASSERT_OK_AND_ASSIGN(Relation * r1, db.Declare("p", 2));
  ASSERT_OK_AND_ASSIGN(Relation * r2, db.Declare("p", 2));
  EXPECT_EQ(r1, r2);
}

TEST(DatabaseTest, DeclareArityConflictFails) {
  Database db;
  ASSERT_OK(db.Declare("p", 2).status());
  auto r = db.Declare("p", 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArityMismatch);
}

TEST(DatabaseTest, AddFactDeclaresOnFirstUse) {
  Database db;
  ASSERT_OK(db.AddFact("q", {Value::Int(1)}));
  const Relation* rel = db.Find("q");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 1u);
}

TEST(DatabaseTest, FindByNameAndSymbol) {
  Database db;
  ASSERT_OK(db.AddSymFact("r", {"a", "b"}));
  EXPECT_NE(db.Find("r"), nullptr);
  EXPECT_EQ(db.Find("missing"), nullptr);
  Symbol s = db.symbols().Lookup("r");
  EXPECT_NE(db.Find(s), nullptr);
}

TEST(DatabaseTest, TotalTuplesAndRetainOnly) {
  Database db;
  ASSERT_OK(db.AddSymFact("a", {"x"}));
  ASSERT_OK(db.AddSymFact("b", {"y"}));
  ASSERT_OK(db.AddSymFact("b", {"z"}));
  EXPECT_EQ(db.TotalTuples(), 3u);
  db.RetainOnly({db.Intern("b")});
  EXPECT_EQ(db.Find("a"), nullptr);
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(DatabaseTest, RelationToStringSorted) {
  Database db;
  ASSERT_OK(db.AddSymFact("e", {"b", "c"}));
  ASSERT_OK(db.AddSymFact("e", {"a", "b"}));
  EXPECT_EQ(db.RelationToString(db.Intern("e")),
            "e(a, b).\ne(b, c).\n");
}

}  // namespace
}  // namespace graphlog::storage
