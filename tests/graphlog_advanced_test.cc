// Advanced GraphLog tests: multi-variable node labels (the general
// Definition 2.1/2.3 encoding), the paper's alternative flight
// representation, hypertext integration ([CM89]), and engine options.

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "eval/provenance.h"
#include "graphlog/api.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "storage/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace graphlog::gl {
namespace {

using storage::Database;
using testutil::RelationSet;
using testutil::RelationSize;

/// Evaluates GraphLog text through the unified Run() API, handing back the
/// stats like the retired gl::EvaluateGraphLogText wrapper did.
Result<QueryStats> EvalText(std::string text, Database* db,
                            const eval::EvalOptions& eval = {}) {
  QueryRequest req = QueryRequest::GraphLog(std::move(text));
  req.options.eval = eval;
  GRAPHLOG_ASSIGN_OR_RETURN(QueryResponse resp, Run(req, db));
  return std::move(resp.stats);
}

TEST(MultiVarNodesTest, PlainEdgesBetweenTupleNodes) {
  // The paper's Section 2: "a tuple P(a.., b.., c..) can be represented by
  // an edge between nodes (a..) and (b..) labelled P(c..)". Here flights
  // are edges between (city, city) pairs carrying times.
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  // flight(from, to, dep, arr) — nodes are cities; the query pairs up
  // two-leg journeys using tuple-labeled nodes.
  ASSERT_OK(db.AddFact(
      "flight", {sym("yyz"), sym("yul"), Value::Int(700), Value::Int(800)}));
  ASSERT_OK(db.AddFact(
      "flight", {sym("yul"), sym("cdg"), Value::Int(900), Value::Int(1400)}));
  ASSERT_OK(EvalText(
                "query two-leg {\n"
                "  edge (A, B) -> (D1, A1) : leg;\n"
                "  edge (B, C) -> (D2, A2) : leg;\n"
                "  where A1 < D2;\n"
                "  distinguished (A, B) -> (B, C) : two-leg;\n"
                "}\n"
                "query leg {\n"
                "  edge (A, B) -> (D, R) : flight-times;\n"
                "  distinguished (A, B) -> (D, R) : leg;\n"
                "}\n"
                "query flight-times {\n"
                "  edge A -> B : flight(D, R);\n"
                "  distinguished (A, B) -> (D, R) : flight-times;\n"
                "}\n",
                &db)
                .status());
  // two-leg(A, B, B, C): yyz->yul then yul->cdg.
  EXPECT_EQ(RelationSet(db, "two-leg"),
            (std::set<std::string>{"yyz,yul,yul,cdg"}));
}

TEST(MultiVarNodesTest, ClosureBetweenTupleNodes) {
  // Closure over a 4-ary relation viewed as edges between pairs.
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  ASSERT_OK(db.AddFact("step", {sym("a"), sym("b"), sym("b"), sym("c")}));
  ASSERT_OK(db.AddFact("step", {sym("b"), sym("c"), sym("c"), sym("d")}));
  ASSERT_OK(EvalText(
                "query reach2 {\n"
                "  edge (X1, X2) -> (Y1, Y2) : step+;\n"
                "  distinguished (X1, X2) -> (Y1, Y2) : reach2;\n"
                "}\n",
                &db)
                .status());
  auto res = RelationSet(db, "reach2");
  EXPECT_TRUE(res.count("a,b,b,c"));
  EXPECT_TRUE(res.count("a,b,c,d"));  // two steps
  EXPECT_EQ(res.size(), 3u);
}

TEST(MultiVarNodesTest, MixedArityPlainLiteralAllowed) {
  // A plain literal may connect nodes of different arities
  // (Definition 2.3 only restricts closure literals).
  Database db;
  auto sym = [&](const char* s) { return Value::Sym(db.Intern(s)); };
  ASSERT_OK(db.AddFact("locates", {sym("x"), sym("u"), sym("v")}));
  ASSERT_OK(EvalText(
                "query at {\n"
                "  edge X -> (U, V) : locates;\n"
                "  distinguished X -> (U, V) : at;\n"
                "}\n",
                &db)
                .status());
  EXPECT_EQ(RelationSet(db, "at"), (std::set<std::string>{"x,u,v"}));
}

TEST(MultiVarNodesTest, ClosureAcrossDifferentAritiesRejected) {
  Database db;
  auto r = EvalText(
      "query bad {\n"
      "  edge X -> (U, V) : locates+;\n"
      "  distinguished X -> (U, V) : bad;\n"
      "}\n",
      &db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kArityMismatch);
}

TEST(HypertextIntegrationTest, Cm89StyleQueries) {
  Database db;
  workload::HypertextOptions opts;
  opts.num_pages = 25;
  opts.link_prob = 0.1;
  ASSERT_OK(workload::Hypertext(opts, &db));
  ASSERT_OK(EvalText(
                "query reachable {\n"
                "  edge P1 -> P2 : link+;\n"
                "  distinguished P1 -> P2 : reachable;\n"
                "}\n"
                "query authored-link {\n"
                "  edge P1 -> P2 : link;\n"
                "  edge P1 -> A : author;\n"
                "  edge P2 -> A : author;\n"
                "  distinguished P1 -> P2 : authored-link(A);\n"
                "}\n"
                "query same-author-reach {\n"
                "  edge P1 -> P2 : authored-link(A)+;\n"
                "  distinguished P1 -> P2 : same-author-reach(A);\n"
                "}\n",
                &db)
                .status());
  // Sanity: same-author reachability is a sub-relation of reachability.
  EXPECT_GT(RelationSize(db, "reachable"), 0u);
  const auto* sar = db.Find("same-author-reach");
  const auto* reach = db.Find("reachable");
  for (const auto& t : sar->rows()) {
    EXPECT_TRUE(reach->Contains({t[0], t[1]}));
  }
}

TEST(EngineOptionsTest, MagicSpecializationPreservesResults) {
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    ASSERT_OK(workload::RandomDigraph(30, 80, 21, db, "e"));
  }
  const char* query =
      "query from-n0 {\n"
      "  edge \"n0\" -> Y : e+;\n"
      "  distinguished \"n0\" -> Y : from-n0;\n"
      "}\n";
  ASSERT_OK_AND_ASSIGN(GraphicalQuery q1,
                       ParseGraphicalQuery(query, &db1.symbols()));
  ASSERT_OK_AND_ASSIGN(GraphicalQuery q2,
                       ParseGraphicalQuery(query, &db2.symbols()));
  ASSERT_OK(graphlog::Run(QueryRequest::Graphical(q1), &db1).status());
  QueryRequest magic = QueryRequest::Graphical(q2);
  magic.options.translation.specialize_bound_closures = true;
  ASSERT_OK(graphlog::Run(magic, &db2).status());
  EXPECT_EQ(RelationSet(db1, "from-n0"), RelationSet(db2, "from-n0"));
}

TEST(EngineOptionsTest, NaiveStrategyThroughGraphLog) {
  Database db;
  ASSERT_OK(db.AddSymFact("e", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("e", {"b", "c"}));
  eval::EvalOptions naive;
  naive.strategy = eval::Strategy::kNaive;
  ASSERT_OK(EvalText(
                "query t { edge X -> Y : e+; distinguished X -> Y : t; }",
                &db, naive)
                .status());
  EXPECT_EQ(RelationSize(db, "t"), 3u);
}

TEST(EngineOptionsTest, ProvenanceThroughGraphLog) {
  Database db;
  ASSERT_OK(db.AddSymFact("e", {"a", "b"}));
  ASSERT_OK(db.AddSymFact("e", {"b", "c"}));
  ASSERT_OK_AND_ASSIGN(
      GraphicalQuery q,
      ParseGraphicalQuery(
          "query t { edge X -> Y : e+; distinguished X -> Y : t; }",
          &db.symbols()));
  eval::ProvenanceStore store;
  QueryRequest req = QueryRequest::Graphical(q);
  req.options.eval.provenance = &store;
  ASSERT_OK_AND_ASSIGN(QueryResponse resp, graphlog::Run(req, &db));
  EXPECT_GT(resp.stats.programs.size(), 0u);
  ASSERT_OK_AND_ASSIGN(
      std::string tree,
      eval::ExplainFact(store, resp.stats.programs, db.symbols(), "t(a, c)"));
  EXPECT_NE(tree.find("by rule:"), std::string::npos);
  EXPECT_NE(tree.find("[edb]"), std::string::npos);
}

TEST(TranslateShapeTest, TranslationsAreAlwaysStratifiedLinear) {
  // Every lambda output lands in SL-DATALOG (Lemma 3.4's inclusion).
  Database db;
  const char* queries[] = {
      "query a { edge X -> Y : (p | q r)+ (-p)?; "
      "distinguished X -> Y : a; }",
      "query b { edge X -> Y : !((p | q)+); edge X -> Y : p; "
      "distinguished X -> Y : b; }",
      "query c { node X [n]; edge X -> Y : p (q | =) p; "
      "distinguished X -> Y : c; }",
  };
  for (const char* text : queries) {
    ASSERT_OK_AND_ASSIGN(GraphicalQuery q,
                         ParseGraphicalQuery(text, &db.symbols()));
    ASSERT_OK_AND_ASSIGN(Translation t, Translate(q, &db.symbols()));
    EXPECT_TRUE(datalog::IsLinear(t.program)) << text;
    EXPECT_OK(datalog::Stratify(t.program, db.symbols()).status());
    EXPECT_TRUE(datalog::IsTcProgram(t.program)) << text;
  }
}

}  // namespace
}  // namespace graphlog::gl
