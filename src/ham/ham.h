// A miniature Hypertext Abstract Machine (HAM).
//
// Section 5 of the paper: the prototype "has an interface for processing
// G+/GraphLog queries on top of the Neptune hypertext front-end to the
// Hypertext Abstract Machine (HAM). The HAM is a general-purpose,
// transaction-based, multiuser server for a hypertext storage system.
// Using this interface, queries on large graphs may be posed."
//
// This module is the substitution for that backend (DESIGN.md): a
// single-process HAM with the architecture the original exposed —
//
//   * objects: NODEs and LINKs (a link connects two nodes and carries a
//     label), each with an attribute map,
//   * transactions: Begin / Commit / Abort with staged writes — nothing
//     becomes visible until commit,
//   * versions: every commit advances a global version clock; attribute
//     history is retained, so any past version can be read back
//     (HAM-style version history),
//   * a query interface: Export() materializes the current (or a
//     historical) state as a relational Database, from which GraphLog
//     queries and RPQs run unchanged.

#ifndef GRAPHLOG_HAM_HAM_H_
#define GRAPHLOG_HAM_HAM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"

namespace graphlog::ham {

/// \brief Identifier of a HAM object (node or link).
using ObjectId = uint64_t;

/// \brief A HAM version number; versions advance on commit.
using Version = uint64_t;

/// \brief Object categories.
enum class ObjectKind : uint8_t { kNode, kLink };

/// \brief The miniature Hypertext Abstract Machine.
///
/// Mutations are only permitted inside a transaction. Reads outside a
/// transaction see the last committed state; reads inside see staged
/// changes (read-your-writes).
class Ham {
 public:
  Ham() = default;

  // --- Transactions --------------------------------------------------------

  /// \brief Opens a transaction. Fails if one is already open (the
  /// original HAM serialized writers; this miniature has one writer).
  Status Begin();

  /// \brief Atomically publishes all staged changes and advances the
  /// version clock. Fails when no transaction is open.
  Result<Version> Commit();

  /// \brief Discards all staged changes.
  Status Abort();

  bool in_transaction() const { return in_txn_; }

  /// \brief The current committed version (0 before any commit).
  Version current_version() const { return version_; }

  // --- Mutations (require an open transaction) -----------------------------

  /// \brief Creates a node.
  Result<ObjectId> CreateNode(std::string_view name);

  /// \brief Creates a link from `from` to `to` with a label.
  Result<ObjectId> CreateLink(ObjectId from, ObjectId to,
                              std::string_view label);

  /// \brief Sets (or overwrites) an attribute on any live object.
  Status SetAttribute(ObjectId obj, std::string_view name, Value value);

  /// \brief Deletes an object; deleting a node also deletes its incident
  /// links.
  Status Destroy(ObjectId obj);

  // --- Reads ----------------------------------------------------------------

  bool Exists(ObjectId obj) const;
  Result<ObjectKind> KindOf(ObjectId obj) const;

  /// \brief The attribute value as of `at` (default: latest visible
  /// state). NotFound when the attribute was never set or the object does
  /// not exist at that version.
  Result<Value> GetAttribute(ObjectId obj, std::string_view name,
                             std::optional<Version> at = {}) const;

  /// \brief Node name / link endpoints.
  Result<std::string> NodeName(ObjectId node) const;
  Result<std::pair<ObjectId, ObjectId>> LinkEndpoints(ObjectId link) const;
  Result<std::string> LinkLabel(ObjectId link) const;

  size_t num_objects() const;

  // --- Query interface ------------------------------------------------------

  /// \brief Materializes the committed state (or the state as of `at`)
  /// into `db`:
  ///   node(name).
  ///   <label>(from-name, to-name).          one relation per link label
  ///   node-attr(name, attr, value).
  ///   link-attr(from-name, to-name, label, attr, value).
  /// GraphLog queries then run against `db` unchanged.
  Status Export(storage::Database* db, std::optional<Version> at = {}) const;

 private:
  struct Attribute {
    // (version the write became visible at, value); destroyed attributes
    // are not modeled — objects die whole.
    std::vector<std::pair<Version, Value>> history;
  };
  struct Object {
    ObjectKind kind = ObjectKind::kNode;
    std::string name;           // node name or link label
    ObjectId from = 0, to = 0;  // links only
    Version born = 0;
    std::optional<Version> died;
    std::map<std::string, Attribute, std::less<>> attributes;
  };

  // Staged operations.
  struct StagedAttr {
    ObjectId obj;
    std::string name;
    Value value;
  };

  bool AliveAt(const Object& o, Version at) const {
    return o.born <= at && (!o.died.has_value() || *o.died > at);
  }
  /// Visible liveness for reads (committed state + staged changes).
  bool VisibleNow(ObjectId id, const Object& o) const;

  const Object* FindVisible(ObjectId id) const;

  std::map<ObjectId, Object> objects_;
  Version version_ = 0;
  ObjectId next_id_ = 1;

  bool in_txn_ = false;
  std::vector<ObjectId> staged_creates_;
  std::vector<StagedAttr> staged_attrs_;
  std::vector<ObjectId> staged_destroys_;
};

}  // namespace graphlog::ham

#endif  // GRAPHLOG_HAM_HAM_H_
