#include "ham/ham.h"

#include <algorithm>

namespace graphlog::ham {

using storage::Database;
using storage::Tuple;

// ---------------------------------------------------------------------------
// Transactions

Status Ham::Begin() {
  if (in_txn_) {
    return Status::InvalidArgument("a transaction is already open");
  }
  in_txn_ = true;
  return Status::OK();
}

Result<Version> Ham::Commit() {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  Version v = version_ + 1;
  // Created objects were inserted with born == v already.
  for (const StagedAttr& sa : staged_attrs_) {
    auto it = objects_.find(sa.obj);
    if (it == objects_.end()) continue;  // destroyed in same txn
    it->second.attributes[sa.name].history.emplace_back(v, sa.value);
  }
  for (ObjectId id : staged_destroys_) {
    auto it = objects_.find(id);
    if (it == objects_.end()) continue;
    if (it->second.born == v) {
      objects_.erase(it);  // created and destroyed in the same txn
    } else {
      it->second.died = v;
    }
  }
  staged_creates_.clear();
  staged_attrs_.clear();
  staged_destroys_.clear();
  in_txn_ = false;
  version_ = v;
  return v;
}

Status Ham::Abort() {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  for (ObjectId id : staged_creates_) objects_.erase(id);
  staged_creates_.clear();
  staged_attrs_.clear();
  staged_destroys_.clear();
  in_txn_ = false;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Mutations

Result<ObjectId> Ham::CreateNode(std::string_view name) {
  if (!in_txn_) return Status::InvalidArgument("mutation outside transaction");
  ObjectId id = next_id_++;
  Object o;
  o.kind = ObjectKind::kNode;
  o.name = std::string(name);
  o.born = version_ + 1;
  objects_.emplace(id, std::move(o));
  staged_creates_.push_back(id);
  return id;
}

Result<ObjectId> Ham::CreateLink(ObjectId from, ObjectId to,
                                 std::string_view label) {
  if (!in_txn_) return Status::InvalidArgument("mutation outside transaction");
  const Object* f = FindVisible(from);
  const Object* t = FindVisible(to);
  if (f == nullptr || t == nullptr) {
    return Status::NotFound("link endpoint does not exist");
  }
  if (f->kind != ObjectKind::kNode || t->kind != ObjectKind::kNode) {
    return Status::InvalidArgument("links connect nodes");
  }
  ObjectId id = next_id_++;
  Object o;
  o.kind = ObjectKind::kLink;
  o.name = std::string(label);
  o.from = from;
  o.to = to;
  o.born = version_ + 1;
  objects_.emplace(id, std::move(o));
  staged_creates_.push_back(id);
  return id;
}

Status Ham::SetAttribute(ObjectId obj, std::string_view name, Value value) {
  if (!in_txn_) return Status::InvalidArgument("mutation outside transaction");
  if (FindVisible(obj) == nullptr) {
    return Status::NotFound("object does not exist");
  }
  staged_attrs_.push_back(StagedAttr{obj, std::string(name), value});
  return Status::OK();
}

Status Ham::Destroy(ObjectId obj) {
  if (!in_txn_) return Status::InvalidArgument("mutation outside transaction");
  const Object* o = FindVisible(obj);
  if (o == nullptr) return Status::NotFound("object does not exist");
  staged_destroys_.push_back(obj);
  if (o->kind == ObjectKind::kNode) {
    // Cascade to incident links.
    for (const auto& [id, other] : objects_) {
      if (other.kind == ObjectKind::kLink &&
          (other.from == obj || other.to == obj) &&
          FindVisible(id) != nullptr) {
        staged_destroys_.push_back(id);
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads

bool Ham::VisibleNow(ObjectId id, const Object& o) const {
  if (in_txn_) {
    if (std::find(staged_destroys_.begin(), staged_destroys_.end(), id) !=
        staged_destroys_.end()) {
      return false;
    }
    // Pending creations (born == version_ + 1) are visible in-txn.
    return o.born <= version_ + 1 &&
           (!o.died.has_value() || *o.died > version_);
  }
  return AliveAt(o, version_);
}

const Ham::Object* Ham::FindVisible(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return nullptr;
  return VisibleNow(id, it->second) ? &it->second : nullptr;
}

bool Ham::Exists(ObjectId obj) const { return FindVisible(obj) != nullptr; }

Result<ObjectKind> Ham::KindOf(ObjectId obj) const {
  const Object* o = FindVisible(obj);
  if (o == nullptr) return Status::NotFound("object does not exist");
  return o->kind;
}

Result<Value> Ham::GetAttribute(ObjectId obj, std::string_view name,
                                std::optional<Version> at) const {
  auto it = objects_.find(obj);
  if (it == objects_.end()) return Status::NotFound("object does not exist");
  const Object& o = it->second;

  if (!at.has_value()) {
    if (FindVisible(obj) == nullptr) {
      return Status::NotFound("object does not exist");
    }
    // Read-your-writes: the latest staged value wins inside a txn.
    if (in_txn_) {
      for (auto rit = staged_attrs_.rbegin(); rit != staged_attrs_.rend();
           ++rit) {
        if (rit->obj == obj && rit->name == name) return rit->value;
      }
    }
    at = version_;
  }
  if (!AliveAt(o, *at)) {
    return Status::NotFound("object does not exist at that version");
  }
  auto ait = o.attributes.find(name);
  if (ait == o.attributes.end()) {
    return Status::NotFound("attribute never set");
  }
  const Value* best = nullptr;
  for (const auto& [v, value] : ait->second.history) {
    if (v <= *at) best = &value;
  }
  if (best == nullptr) {
    return Status::NotFound("attribute not set at that version");
  }
  return *best;
}

Result<std::string> Ham::NodeName(ObjectId node) const {
  const Object* o = FindVisible(node);
  if (o == nullptr || o->kind != ObjectKind::kNode) {
    return Status::NotFound("no such node");
  }
  return o->name;
}

Result<std::pair<ObjectId, ObjectId>> Ham::LinkEndpoints(
    ObjectId link) const {
  const Object* o = FindVisible(link);
  if (o == nullptr || o->kind != ObjectKind::kLink) {
    return Status::NotFound("no such link");
  }
  return std::make_pair(o->from, o->to);
}

Result<std::string> Ham::LinkLabel(ObjectId link) const {
  const Object* o = FindVisible(link);
  if (o == nullptr || o->kind != ObjectKind::kLink) {
    return Status::NotFound("no such link");
  }
  return o->name;
}

size_t Ham::num_objects() const {
  size_t n = 0;
  for (const auto& [id, o] : objects_) {
    if (VisibleNow(id, o)) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Export

Status Ham::Export(Database* db, std::optional<Version> at) const {
  Version v = at.value_or(version_);
  auto attr_tuple = [&](const Object& o, Version when,
                        const std::string& name) -> std::optional<Value> {
    auto it = o.attributes.find(name);
    if (it == o.attributes.end()) return std::nullopt;
    const Value* best = nullptr;
    for (const auto& [ver, value] : it->second.history) {
      if (ver <= when) best = &value;
    }
    return best == nullptr ? std::nullopt : std::optional<Value>(*best);
  };

  for (const auto& [id, o] : objects_) {
    if (!AliveAt(o, v)) continue;
    if (o.kind == ObjectKind::kNode) {
      Value name = Value::Sym(db->Intern(o.name));
      GRAPHLOG_RETURN_NOT_OK(db->AddFact("node", Tuple{name}));
      for (const auto& [aname, attr] : o.attributes) {
        auto val = attr_tuple(o, v, aname);
        if (val.has_value()) {
          GRAPHLOG_RETURN_NOT_OK(db->AddFact(
              "node-attr",
              Tuple{name, Value::Sym(db->Intern(aname)), *val}));
        }
      }
    } else {
      const Object& f = objects_.at(o.from);
      const Object& t = objects_.at(o.to);
      Value from = Value::Sym(db->Intern(f.name));
      Value to = Value::Sym(db->Intern(t.name));
      GRAPHLOG_RETURN_NOT_OK(db->AddFact(o.name, Tuple{from, to}));
      for (const auto& [aname, attr] : o.attributes) {
        auto val = attr_tuple(o, v, aname);
        if (val.has_value()) {
          GRAPHLOG_RETURN_NOT_OK(db->AddFact(
              "link-attr",
              Tuple{from, to, Value::Sym(db->Intern(o.name)),
                    Value::Sym(db->Intern(aname)), *val}));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace graphlog::ham
