// Empirical program-equivalence checking.
//
// Query equivalence is undecidable in general; the repository instead
// *certifies* each translation (lambda, Algorithm 3.1, p.r.e. rewrites,
// RPQ evaluation strategies) empirically: evaluate both sides on many
// randomized extensional databases and diff the designated output
// predicates. A disagreement is a counterexample; agreement over many
// trials is the reproduction evidence for Theorem 3.2 / Theorem 3.3.

#ifndef GRAPHLOG_TESTING_EQUIVALENCE_H_
#define GRAPHLOG_TESTING_EQUIVALENCE_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"
#include "eval/engine.h"
#include "storage/database.h"

namespace graphlog::testing {

/// \brief Shape of the random EDBs fed to both programs.
struct RandomEdbOptions {
  int domain_size = 8;        ///< constants are d0..d{n-1}
  double fill = 0.15;         ///< fraction of the full cross product kept
  size_t max_facts_per_relation = 200;
  uint64_t seed = 42;
};

/// \brief A named relation schema (name + arity).
struct RelationSchema {
  std::string name;
  size_t arity = 0;
};

/// \brief Populates `db` with random facts for each schema entry.
void FillRandomEdb(const std::vector<RelationSchema>& schemas,
                   const RandomEdbOptions& options, std::mt19937_64* rng,
                   storage::Database* db);

/// \brief Result of one equivalence run.
struct EquivalenceReport {
  bool equivalent = true;
  int trials_run = 0;
  /// On inequivalence: which trial, predicate, and a sample differing fact.
  int failing_trial = -1;
  std::string detail;
};

/// \brief Options for CheckEquivalent.
struct EquivalenceOptions {
  int trials = 20;
  RandomEdbOptions edb;
  /// Predicates whose extensions must agree; empty = the head predicates
  /// of `left`.
  std::vector<std::string> compare;
  eval::EvalOptions eval;
};

/// \brief Evaluates `left_text` and `right_text` (Datalog source) on the
/// same random EDBs and diffs the compare predicates.
///
/// The EDB schemas are inferred from `left_text`'s EDB predicates (body
/// predicates never appearing in a head of either program).
Result<EquivalenceReport> CheckEquivalent(std::string_view left_text,
                                          std::string_view right_text,
                                          const EquivalenceOptions& options);

}  // namespace graphlog::testing

#endif  // GRAPHLOG_TESTING_EQUIVALENCE_H_
