// Crash-consistency sweep: exhaustive crash-point enumeration over a WAL.
//
// The durability claim is not "recovery usually works" but "after a
// crash at ANY byte, recovery yields exactly the state of some committed
// prefix — and under fsync=always, exactly the acknowledged prefix the
// crash point implies". This harness makes that claim mechanical:
//
//   1. Run a scripted workload (a list of WriteBatches) against a
//      durable server, recording after every commit the WAL record
//      boundary and a logical fingerprint of the database.
//   2. Then simulate crashes: for EVERY record boundary and several
//      sampled offsets INSIDE every record, truncate a copy of the log
//      there and require recovery to reproduce, bit for bit, the
//      fingerprint of exactly the batches whose records survived whole.
//   3. And corruption: flip one payload bit per sampled offset. In an
//      interior record that must surface kCorruptedLog and apply nothing
//      (an append-only log cannot tear in the middle); in the final
//      record it is indistinguishable from a torn tail and must recover
//      the prefix without it, truncating the tear.
//
// Fingerprints resolve symbols to strings and render rows in insertion
// order, so they compare recovered state against an independently
// replayed reference regardless of symbol-id or stamp divergence.

#ifndef GRAPHLOG_TESTING_CRASH_SWEEP_H_
#define GRAPHLOG_TESTING_CRASH_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/server.h"
#include "storage/database.h"

namespace graphlog::testing {

/// \brief Logical contents of `db`: relations sorted by name, rows in
/// insertion order, symbols resolved to strings. Equal fingerprints ==
/// identical observable contents (including row order), independent of
/// symbol ids, uids, and data stamps.
std::string DatabaseFingerprint(const storage::Database& db);

struct CrashSweepOptions {
  /// Interior byte offsets sampled per record (on top of the exhaustive
  /// record-boundary sweep).
  size_t mid_record_samples = 3;
  /// Bit-flip corruption offsets sampled per record payload.
  size_t bitflip_samples = 3;
};

struct CrashSweepReport {
  size_t commits = 0;             ///< workload batches committed
  size_t truncation_points = 0;   ///< crash points exercised (1 + 2)
  size_t bitflip_points = 0;      ///< corruption points exercised (3)
  size_t torn_tails_repaired = 0;
  size_t corruptions_rejected = 0;
  /// One line per violated expectation; empty == the sweep passed.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

/// \brief Runs the sweep in `dir` (created; must not hold live state the
/// caller wants kept — the harness rewrites wal.log under it freely).
/// Errors are setup problems (workload batch failed to commit, I/O);
/// consistency violations land in the report's `failures`.
Result<CrashSweepReport> RunCrashSweep(
    const std::string& dir, const std::vector<WriteBatch>& workload,
    const CrashSweepOptions& options = {});

}  // namespace graphlog::testing

#endif  // GRAPHLOG_TESTING_CRASH_SWEEP_H_
