#include "testing/crash_sweep.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/value.h"
#include "durability/wal.h"

namespace graphlog::testing {

namespace fs = std::filesystem;

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::Internal("crash sweep: cannot read '" + path + "'");
  }
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Status WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    return Status::Internal("crash sweep: cannot write '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

std::string DatabaseFingerprint(const storage::Database& db) {
  const SymbolTable& syms = db.symbols();
  std::vector<std::pair<std::string, Symbol>> names;
  names.reserve(db.relations().size());
  for (const auto& [sym, rel] : db.relations()) {
    (void)rel;
    names.emplace_back(syms.name(sym), sym);
  }
  std::sort(names.begin(), names.end());
  std::string out;
  for (const auto& [name, sym] : names) {
    const storage::Relation& rel = *db.Find(sym);
    out += name;
    out += '/';
    out += std::to_string(rel.arity());
    out += '\n';
    for (const storage::Tuple& row : rel.rows()) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ',';
        out += row[i].ToString(syms);
      }
      out += '\n';
    }
  }
  return out;
}

Result<CrashSweepReport> RunCrashSweep(const std::string& dir,
                                       const std::vector<WriteBatch>& workload,
                                       const CrashSweepOptions& options) {
  CrashSweepReport report;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("crash sweep: cannot create '" + dir +
                            "': " + ec.message());
  }
  const std::string wal_path = dir + "/wal.log";
  fs::remove(wal_path, ec);
  fs::remove(dir + "/checkpoint.db", ec);
  fs::remove(dir + "/checkpoint.db.tmp", ec);

  // Phase 1: the scripted workload, recording after every commit the WAL
  // record boundary and the fingerprint recovery must reproduce.
  std::vector<uint64_t> boundaries;  // boundaries[i] = log bytes after i commits
  std::vector<std::string> expected;
  {
    GRAPHLOG_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                              Server::Open(dir));
    boundaries.push_back(server->wal()->tail_offset());
    expected.push_back(DatabaseFingerprint(server->database()));
    for (const WriteBatch& batch : workload) {
      GRAPHLOG_ASSIGN_OR_RETURN(size_t facts, server->Apply(batch));
      (void)facts;
      boundaries.push_back(server->wal()->tail_offset());
      expected.push_back(DatabaseFingerprint(server->database()));
    }
    report.commits = workload.size();
  }
  GRAPHLOG_ASSIGN_OR_RETURN(const std::string pristine, ReadFile(wal_path));
  if (pristine.size() != boundaries.back()) {
    return Status::Internal(
        "crash sweep: WAL is " + std::to_string(pristine.size()) +
        " bytes but the last commit ended at offset " +
        std::to_string(boundaries.back()));
  }

  auto fail = [&report](std::string line) {
    report.failures.push_back(std::move(line));
  };

  // Recovery at one crash state; expectation index names the committed
  // prefix that must come back.
  auto check_recovery = [&](const std::string& what, size_t prefix_idx,
                            bool expect_repair) -> void {
    Result<std::unique_ptr<Server>> opened = Server::Open(dir);
    if (!opened.ok()) {
      fail(what + ": recovery failed: " + opened.status().ToString());
      return;
    }
    const std::string got = DatabaseFingerprint((*opened)->database());
    if (got != expected[prefix_idx]) {
      fail(what + ": recovered state differs from committed prefix of " +
           std::to_string(prefix_idx) + " batch(es)");
    }
    const uint64_t size_after = fs::file_size(wal_path);
    if (size_after != boundaries[prefix_idx]) {
      fail(what + ": WAL is " + std::to_string(size_after) +
           " bytes after recovery, want the valid prefix " +
           std::to_string(boundaries[prefix_idx]));
    } else if (expect_repair) {
      ++report.torn_tails_repaired;
    }
  };

  // Phase 2: truncation sweep — EVERY record boundary, plus sampled
  // offsets strictly inside every record (a crash mid-append).
  std::vector<std::pair<uint64_t, size_t>> cuts;  // (offset, prefix index)
  for (size_t i = 0; i < boundaries.size(); ++i) {
    cuts.emplace_back(boundaries[i], i);
  }
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const uint64_t lo = boundaries[i];
    const uint64_t hi = boundaries[i + 1];
    for (size_t s = 0; s < options.mid_record_samples; ++s) {
      const uint64_t off =
          lo + 1 + ((hi - lo - 1) * (s + 1)) / (options.mid_record_samples + 1);
      if (off > lo && off < hi) cuts.emplace_back(off, i);
    }
  }
  for (const auto& [off, prefix_idx] : cuts) {
    GRAPHLOG_RETURN_NOT_OK(
        WriteFile(wal_path, std::string_view(pristine).substr(0, off)));
    ++report.truncation_points;
    check_recovery("truncate at byte " + std::to_string(off), prefix_idx,
                   /*expect_repair=*/off != boundaries[prefix_idx]);
  }

  // Phase 3: single-bit corruption in record payloads. Interior records
  // must be refused wholesale with kCorruptedLog (and the refused log
  // left untouched); the final record is indistinguishable from a torn
  // tail and must be truncated away.
  for (size_t rec = 1; rec < boundaries.size(); ++rec) {
    const uint64_t pbegin = boundaries[rec - 1] + 8;  // skip len+crc header
    const uint64_t pend = boundaries[rec];
    if (pbegin >= pend) continue;
    const bool last = rec + 1 == boundaries.size();
    for (size_t s = 0; s < options.bitflip_samples; ++s) {
      const uint64_t off = pbegin + ((pend - pbegin) * s) / options.bitflip_samples;
      std::string mutated = pristine;
      mutated[off] = static_cast<char>(mutated[off] ^ (1u << (s % 8)));
      GRAPHLOG_RETURN_NOT_OK(WriteFile(wal_path, mutated));
      ++report.bitflip_points;
      const std::string what =
          "flip bit " + std::to_string(s % 8) + " of byte " +
          std::to_string(off) + " (record " + std::to_string(rec) + ")";
      if (last) {
        check_recovery(what, rec - 1, /*expect_repair=*/true);
        continue;
      }
      Result<std::unique_ptr<Server>> opened = Server::Open(dir);
      if (opened.ok()) {
        fail(what + ": interior corruption was not rejected");
        continue;
      }
      if (opened.status().code() != StatusCode::kCorruptedLog) {
        fail(what + ": rejected with " + opened.status().ToString() +
             ", want CorruptedLog");
        continue;
      }
      ++report.corruptions_rejected;
      if (fs::file_size(wal_path) != mutated.size()) {
        fail(what + ": refusing recovery modified the log");
      }
    }
  }

  // Leave the directory in its pristine committed state for the caller.
  GRAPHLOG_RETURN_NOT_OK(WriteFile(wal_path, pristine));
  return report;
}

}  // namespace graphlog::testing
