#include "testing/random_programs.h"

#include <vector>

namespace graphlog::testing {

std::string RandomLinearProgram(const RandomProgramOptions& options,
                                uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution recurse(options.recursion_prob);
  std::bernoulli_distribution negate(options.negation_prob);
  std::bernoulli_distribution second_base(options.second_base_prob);
  std::uniform_int_distribution<int> coin(0, 1);

  // Lower relations available to predicate i: the EDBs plus p0..p{i-1}.
  auto lower = [&](int i) -> std::string {
    int pick = std::uniform_int_distribution<int>(0, i + 1)(rng);
    if (pick == 0) return "e1";
    if (pick == 1) return "e2";
    return "p" + std::to_string(pick - 2);
  };

  std::string out;
  for (int i = 0; i < options.num_idb_predicates; ++i) {
    std::string p = "p" + std::to_string(i);

    // Base rule: p(X, Y) :- L(X, Y).  or  a 2-step chain.
    if (coin(rng) == 0) {
      out += p + "(X, Y) :- " + lower(i) + "(X, Y).\n";
    } else {
      out += p + "(X, Y) :- " + lower(i) + "(X, Z), " + lower(i) +
             "(Z, Y).\n";
    }
    if (second_base(rng)) {
      std::string rule = p + "(X, Y) :- " + lower(i) + "(X, Y)";
      if (negate(rng)) {
        // Negation of a *lower* relation keeps the program stratified;
        // arguments are bound by the positive atom.
        rule += ", !" + lower(i) + "(Y, X)";
      }
      if (coin(rng) == 0) {
        rule += ", n1(X)";
      }
      out += rule + ".\n";
    }

    // Recursive rule: left- or right-linear extension.
    if (recurse(rng)) {
      if (coin(rng) == 0) {
        out += p + "(X, Y) :- " + lower(i) + "(X, Z), " + p + "(Z, Y).\n";
      } else {
        out += p + "(X, Y) :- " + p + "(X, Z), " + lower(i) + "(Z, Y).\n";
      }
    }
  }
  // A final consumer predicate exercising negation across the whole stack.
  std::string top = "p" + std::to_string(options.num_idb_predicates - 1);
  out += "result(X, Y) :- " + top + "(X, Y).\n";
  out += "non-result(X, Y) :- e1(X, Y), !" + top + "(X, Y).\n";
  return out;
}

namespace {

gl::PathExpr RandomPreNode(std::mt19937_64* rng, int depth,
                           SymbolTable* syms) {
  std::uniform_int_distribution<int> label(0, 1);
  auto atom = [&]() {
    return gl::PathExpr::Atom(syms->Intern(label(*rng) == 0 ? "p" : "q"));
  };
  if (depth <= 0) return atom();
  // Kinds: 0 atom, 1 seq, 2 alt, 3 plus, 4 star, 5 optional, 6 inverse.
  std::uniform_int_distribution<int> kind(0, 6);
  switch (kind(*rng)) {
    case 0:
      return atom();
    case 1: {
      std::vector<gl::PathExpr> parts;
      parts.push_back(RandomPreNode(rng, depth - 1, syms));
      parts.push_back(RandomPreNode(rng, depth - 1, syms));
      return gl::PathExpr::Seq(std::move(parts));
    }
    case 2: {
      std::vector<gl::PathExpr> parts;
      parts.push_back(RandomPreNode(rng, depth - 1, syms));
      parts.push_back(RandomPreNode(rng, depth - 1, syms));
      return gl::PathExpr::Alt(std::move(parts));
    }
    case 3:
      return gl::PathExpr::Plus(RandomPreNode(rng, depth - 1, syms));
    case 4:
      return gl::PathExpr::Star(RandomPreNode(rng, depth - 1, syms));
    case 5:
      return gl::PathExpr::Optional(RandomPreNode(rng, depth - 1, syms));
    case 6:
      return gl::PathExpr::Inverse(RandomPreNode(rng, depth - 1, syms));
  }
  return atom();
}

}  // namespace

gl::PathExpr RandomPathExpr(const RandomPreOptions& options, uint64_t seed,
                            SymbolTable* syms) {
  std::mt19937_64 rng(seed);
  gl::PathExpr e = RandomPreNode(&rng, options.max_depth, syms);
  // Kill any top-level identity alternative: prefix with a mandatory atom
  // so every match consumes at least one edge. (A pure-identity top level
  // is not domain-independent for the Datalog strategy.)
  auto expanded = gl::ExpandEquality(e);
  if (!expanded.ok() || expanded->has_identity ||
      expanded->alternatives.empty()) {
    std::vector<gl::PathExpr> parts;
    parts.push_back(gl::PathExpr::Atom(syms->Intern("p")));
    parts.push_back(std::move(e));
    return gl::PathExpr::Seq(std::move(parts));
  }
  return e;
}

}  // namespace graphlog::testing
