#include "testing/equivalence.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "storage/relation.h"

namespace graphlog::testing {

using datalog::Program;
using storage::Database;
using storage::Relation;
using storage::Tuple;

void FillRandomEdb(const std::vector<RelationSchema>& schemas,
                   const RandomEdbOptions& options, std::mt19937_64* rng,
                   Database* db) {
  // Pre-intern the domain constants d0..d{n-1}.
  std::vector<Value> domain;
  domain.reserve(options.domain_size);
  for (int i = 0; i < options.domain_size; ++i) {
    domain.push_back(
        Value::Sym(db->Intern("d" + std::to_string(i))));
  }
  for (const RelationSchema& s : schemas) {
    auto rel_or = db->Declare(s.name, s.arity);
    if (!rel_or.ok()) continue;
    Relation* rel = *rel_or;
    double total = std::pow(static_cast<double>(options.domain_size),
                            static_cast<double>(s.arity));
    size_t target = static_cast<size_t>(total * options.fill);
    target = std::min(target, options.max_facts_per_relation);
    if (s.arity == 0) continue;
    std::uniform_int_distribution<int> pick(0, options.domain_size - 1);
    for (size_t k = 0; k < target; ++k) {
      Tuple t;
      t.reserve(s.arity);
      for (size_t a = 0; a < s.arity; ++a) t.push_back(domain[pick(*rng)]);
      rel->Insert(std::move(t));
    }
  }
}

namespace {

/// Renders a relation as a set of strings. The two databases under
/// comparison have independent symbol tables, so raw tuples (which hold
/// intern ids) are not comparable across them — strings are.
std::set<std::string> RenderRelation(const Relation* rel,
                                     const SymbolTable& syms) {
  std::set<std::string> out;
  if (rel == nullptr) return out;
  for (const Tuple& t : rel->rows()) {
    std::string s = "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += ", ";
      s += t[i].ToString(syms);
    }
    out.insert(s + ")");
  }
  return out;
}

/// First element of `a` missing from `b`; empty if none.
std::string FirstMissing(const std::set<std::string>& a,
                         const std::set<std::string>& b) {
  for (const std::string& s : a) {
    if (b.count(s) == 0) return s;
  }
  return "";
}

}  // namespace

Result<EquivalenceReport> CheckEquivalent(std::string_view left_text,
                                          std::string_view right_text,
                                          const EquivalenceOptions& options) {
  // Infer schemas and compare predicates from a scratch parse.
  std::vector<RelationSchema> schemas;
  std::vector<std::string> compare = options.compare;
  {
    Database scratch;
    GRAPHLOG_ASSIGN_OR_RETURN(
        Program left, datalog::ParseProgram(left_text, &scratch.symbols()));
    GRAPHLOG_ASSIGN_OR_RETURN(
        Program right, datalog::ParseProgram(right_text, &scratch.symbols()));
    std::set<Symbol> heads;
    for (const auto& r : left.rules) heads.insert(r.head.predicate);
    for (const auto& r : right.rules) heads.insert(r.head.predicate);
    auto arities = datalog::PredicateArities(left);
    for (const auto& [pred, arity] : arities) {
      if (heads.count(pred) == 0) {
        schemas.push_back({scratch.symbols().name(pred), arity});
      }
    }
    if (compare.empty()) {
      std::set<std::string> seen;
      for (const auto& r : left.rules) {
        std::string name = scratch.symbols().name(r.head.predicate);
        if (seen.insert(name).second) compare.push_back(name);
      }
    }
  }

  std::mt19937_64 rng(options.edb.seed);
  EquivalenceReport report;
  for (int trial = 0; trial < options.trials; ++trial) {
    report.trials_run = trial + 1;
    // Same seed-derived facts for both sides.
    uint64_t trial_seed = rng();
    Database dbl, dbr;
    std::mt19937_64 rl(trial_seed), rr(trial_seed);
    FillRandomEdb(schemas, options.edb, &rl, &dbl);
    FillRandomEdb(schemas, options.edb, &rr, &dbr);

    GRAPHLOG_RETURN_NOT_OK(
        eval::EvaluateText(left_text, &dbl, options.eval).status());
    GRAPHLOG_RETURN_NOT_OK(
        eval::EvaluateText(right_text, &dbr, options.eval).status());

    for (const std::string& pred : compare) {
      std::set<std::string> ra = RenderRelation(dbl.Find(pred), dbl.symbols());
      std::set<std::string> rb = RenderRelation(dbr.Find(pred), dbr.symbols());
      if (ra != rb) {
        report.equivalent = false;
        report.failing_trial = trial;
        std::string missing_r = FirstMissing(ra, rb);
        std::string missing_l = FirstMissing(rb, ra);
        report.detail = "predicate '" + pred + "' differs: left has " +
                        std::to_string(ra.size()) + " facts, right has " +
                        std::to_string(rb.size());
        if (!missing_r.empty()) {
          report.detail += "; left-only fact " + missing_r;
        }
        if (!missing_l.empty()) {
          report.detail += "; right-only fact " + missing_l;
        }
        return report;
      }
    }
  }
  return report;
}

}  // namespace graphlog::testing
