// Random query generators for differential testing.
//
// Two generators back the repository's property sweeps:
//  * RandomLinearProgram — stratified linear Datalog programs built from
//    safe-by-construction rule templates (chain joins, left/right linear
//    recursion, negation of lower strata). Used to fuzz Algorithm 3.1 and
//    the naive/semi-naive engines against each other.
//  * RandomPathExpr — =-free-at-top path regular expressions over a small
//    label alphabet. Used to fuzz the three RPQ evaluation strategies
//    (NFA product, DFA product, Datalog translation) against each other.

#ifndef GRAPHLOG_TESTING_RANDOM_PROGRAMS_H_
#define GRAPHLOG_TESTING_RANDOM_PROGRAMS_H_

#include <random>
#include <string>

#include "common/symbol_table.h"
#include "graphlog/pre.h"

namespace graphlog::testing {

/// \brief Options for RandomLinearProgram.
struct RandomProgramOptions {
  int num_idb_predicates = 4;   ///< p0..p{n-1}, all binary
  double recursion_prob = 0.6;  ///< chance an IDB gets a recursive rule
  double negation_prob = 0.3;   ///< chance a rule negates a lower stratum
  double second_base_prob = 0.5;  ///< chance of a second base rule
};

/// \brief Generates the text of a random stratified linear program over
/// EDB relations e1/2, e2/2 and n1/1. Deterministic in `seed`.
///
/// Guarantees by construction: every rule is safe, at most one recursive
/// subgoal per rule (linear), and negation only reaches strictly lower
/// predicates (stratified).
std::string RandomLinearProgram(const RandomProgramOptions& options,
                                uint64_t seed);

/// \brief Options for RandomPathExpr.
struct RandomPreOptions {
  int max_depth = 4;
  double negation_free = true;  ///< (always true: RPQ fragment)
};

/// \brief Generates a random p.r.e. over labels {p, q} whose top-level
/// expansion has no identity alternative (so all evaluation strategies
/// have identical domains). Deterministic in `seed`.
gl::PathExpr RandomPathExpr(const RandomPreOptions& options, uint64_t seed,
                            SymbolTable* syms);

}  // namespace graphlog::testing

#endif  // GRAPHLOG_TESTING_RANDOM_PROGRAMS_H_
