// Regular path query evaluation by automaton-graph product search.
//
// This is the [MW89]-style evaluator behind the Section 5 prototype's edge
// queries: instead of materializing closure relations through Datalog, it
// BFS-walks the product of the data graph and the query NFA. When an
// endpoint is fixed (the Figure 12 Rome -> Tokyo query) the search touches
// only the reachable part of the product — the asymptotic win the
// benchmark bench_fig12_prototype measures.

#ifndef GRAPHLOG_RPQ_RPQ_EVAL_H_
#define GRAPHLOG_RPQ_RPQ_EVAL_H_

#include <optional>

#include "common/result.h"
#include "graph/data_graph.h"
#include "graphlog/pre.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/nfa.h"
#include "storage/relation.h"

namespace graphlog::gov {
struct GovernorContext;  // gov/governor.h
}

namespace graphlog::rpq {

/// \brief Endpoint restrictions for EvalRpq.
struct RpqOptions {
  /// When set, only paths starting at this node are searched.
  std::optional<Value> source;
  /// When set, only pairs ending at this node are reported.
  std::optional<Value> target;
  /// When set, the evaluator records an "rpq" span (automaton size,
  /// endpoint restrictions, product-search effort); null costs one
  /// pointer test. See obs/trace.h.
  obs::Tracer* tracer = nullptr;
  /// When set, the evaluator folds `rpq.invocations`,
  /// `rpq.product_states_visited`, and `rpq.edge_traversals` counters plus
  /// the `rpq.result_pairs` distribution into this registry at the same
  /// site the tracer's "rpq" span closes; null costs one pointer test.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, the product search is governed: the cancellation token is
  /// polled every product-state pop, and every ~256 pops the deadline,
  /// any armed `rpq.step` fault, and the max_result_rows / max_bytes
  /// budgets (against the result relation) are checked. A budget trip
  /// fails with kBudgetExceeded, or with return_partial stops the search
  /// and returns the pairs found so far with RpqStats::truncated set.
  /// The search is single-threaded and its order deterministic, so
  /// partial results are reproducible. Null costs one pointer test.
  /// (EvalRpqWitnesses is not governed — bound it via EvalRpq first.)
  const gov::GovernorContext* governor = nullptr;
};

/// \brief Search-effort counters.
struct RpqStats {
  uint64_t product_states_visited = 0;
  uint64_t edge_traversals = 0;
  /// True when a governed search stopped early on a return_partial
  /// budget trip; the returned relation holds the pairs found so far.
  bool truncated = false;
};

/// \brief Evaluates `expr` over `g`, returning the binary relation of
/// (source, target) node values connected by a matching path.
///
/// Zero-length matches (from `=`, `*`, `?`) relate every graph node to
/// itself, subject to the endpoint restrictions.
Result<storage::Relation> EvalRpq(const graph::DataGraph& g,
                                  const gl::PathExpr& expr,
                                  const RpqOptions& options = {},
                                  RpqStats* stats = nullptr);

/// \brief Convenience: parse the expression and evaluate.
Result<storage::Relation> EvalRpqText(const graph::DataGraph& g,
                                      std::string_view expr_text,
                                      SymbolTable* syms,
                                      const RpqOptions& options = {},
                                      RpqStats* stats = nullptr);

/// \brief Table-driven evaluation through the determinized + minimized
/// automaton (see rpq/dfa.h). Same results as EvalRpq for the plain-label
/// fragment; rejects expressions with attribute filters or negation.
Result<storage::Relation> EvalRpqDfa(const graph::DataGraph& g,
                                     const gl::PathExpr& expr,
                                     const RpqOptions& options = {},
                                     RpqStats* stats = nullptr);

/// \brief Columnar product search: per-DFA-label adjacency arrays built
/// once per evaluation, then per-source expansion of one node-bitset
/// frontier per DFA state (columnar/bitset.h) — each round ors whole
/// adjacency spans into the successor state's frontier instead of
/// enqueuing (node, state) pairs one at a time. Same result set as
/// EvalRpqDfa (same fragment restrictions: plain labels only); row
/// insertion order differs (pairs surface in BFS-round, then ascending
/// dense-node order). Effort counters reflect this kernel's own work:
/// product_states_visited counts newly reached (node, state) bits and
/// edge_traversals counts label-matched adjacency entries only, so both
/// are typically far below the NFA/DFA walkers' — that gap is the
/// ablation bench_columnar measures. Governance matches EvalRpqDfa
/// (rpq.step polls inside frontier expansion; budgets against the result
/// relation, truncation stops the search keeping pairs found so far).
Result<storage::Relation> EvalRpqBitset(const graph::DataGraph& g,
                                        const gl::PathExpr& expr,
                                        const RpqOptions& options = {},
                                        RpqStats* stats = nullptr);

/// \brief One answer with a qualifying path: the data-graph edge indices
/// of a shortest matching path from `source` to `target`.
struct RpqWitness {
  Value source, target;
  std::vector<uint32_t> edge_ids;  ///< indices into DataGraph::edges()
};

/// \brief Like EvalRpq, but also returns one (BFS-shortest) qualifying
/// path per answer pair — the Section 5 prototype's "highlighting
/// qualifying paths directly on the database graph".
Result<std::vector<RpqWitness>> EvalRpqWitnesses(
    const graph::DataGraph& g, const gl::PathExpr& expr,
    const RpqOptions& options = {});

}  // namespace graphlog::rpq

#endif  // GRAPHLOG_RPQ_RPQ_EVAL_H_
