// Thompson NFA construction for path regular expressions.
//
// The Section 5 prototype evaluates G+ "edge queries" — a single edge
// labeled by an arbitrary regular expression — by searching the database
// graph directly, following [MW89]. This module provides the automaton
// half: a p.r.e. compiles to an NFA whose transitions match data-graph
// edges by predicate (forward or inverted) with optional constant filters
// on edge attributes.
//
// Supported fragment: atoms with constant/wildcard parameters, inversion,
// alternation, composition, +, *, ?, and `=`. Variable parameters and
// negation are outside the RPQ fragment (use the Datalog translation).

#ifndef GRAPHLOG_RPQ_NFA_H_
#define GRAPHLOG_RPQ_NFA_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "graphlog/pre.h"

namespace graphlog::rpq {

/// \brief One NFA transition.
struct NfaTransition {
  uint32_t to = 0;
  bool epsilon = false;
  Symbol predicate = kNoSymbol;  ///< edge label to match (when !epsilon)
  bool inverted = false;         ///< traverse the data edge backwards
  /// Per-attribute constant filters; nullopt positions match anything.
  std::vector<std::optional<Value>> filters;
};

/// \brief A nondeterministic finite automaton over edge labels.
class Nfa {
 public:
  /// \brief Compiles a p.r.e. into an NFA (Thompson construction).
  /// Fails with kUnsupported on negation or variable parameters.
  static Result<Nfa> Compile(const gl::PathExpr& expr);

  uint32_t start() const { return start_; }
  uint32_t accept() const { return accept_; }
  size_t num_states() const { return transitions_.size(); }

  const std::vector<NfaTransition>& TransitionsFrom(uint32_t state) const {
    return transitions_[state];
  }

  /// \brief States reachable from `states` via epsilon transitions
  /// (including the inputs). `scratch` must be sized num_states().
  void EpsilonClosure(std::vector<uint32_t>* states,
                      std::vector<bool>* scratch) const;

  /// \brief True when the empty path is accepted (start ->eps* accept).
  bool AcceptsEmpty() const;

 private:
  uint32_t NewState() {
    transitions_.emplace_back();
    return static_cast<uint32_t>(transitions_.size() - 1);
  }
  void AddEpsilon(uint32_t from, uint32_t to) {
    NfaTransition t;
    t.to = to;
    t.epsilon = true;
    transitions_[from].push_back(t);
  }

  // Builds expr between fresh (from, to); returns Status.
  Status Build(const gl::PathExpr& expr, bool inverted, uint32_t from,
               uint32_t to);

  uint32_t start_ = 0;
  uint32_t accept_ = 0;
  std::vector<std::vector<NfaTransition>> transitions_;
};

}  // namespace graphlog::rpq

#endif  // GRAPHLOG_RPQ_NFA_H_
