// DFA pipeline for regular path queries.
//
// The NFA product search re-computes epsilon closures and tracks one
// product state per (node, nfa-state). Determinizing (subset construction)
// and minimizing (Moore partition refinement) the automaton first yields a
// table-driven evaluator with fewer product states and no epsilon work —
// the classic automaton-pipeline ablation for the [MW89] evaluator.
//
// Restriction: the DFA alphabet is the set of (predicate, direction)
// pairs, so expressions whose atoms carry attribute filters are rejected
// (overlapping filtered labels would make the "deterministic" table
// ambiguous on a single data edge). Plain-label RPQs — the classic case —
// are exactly what this supports.

#ifndef GRAPHLOG_RPQ_DFA_H_
#define GRAPHLOG_RPQ_DFA_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "rpq/nfa.h"

namespace graphlog::rpq {

/// \brief One DFA alphabet symbol: an edge label with a direction.
struct DfaLabel {
  Symbol predicate = kNoSymbol;
  bool inverted = false;

  bool operator<(const DfaLabel& o) const {
    return predicate != o.predicate ? predicate < o.predicate
                                    : inverted < o.inverted;
  }
  bool operator==(const DfaLabel& o) const {
    return predicate == o.predicate && inverted == o.inverted;
  }
};

/// \brief A deterministic automaton over edge labels.
class Dfa {
 public:
  /// \brief Subset construction from an NFA. Fails with kUnsupported when
  /// the NFA has attribute filters (see header comment).
  static Result<Dfa> Determinize(const Nfa& nfa);

  /// \brief Moore partition refinement; returns an equivalent DFA with a
  /// minimal number of states.
  Dfa Minimize() const;

  uint32_t start() const { return start_; }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }
  size_t num_states() const { return accepting_.size(); }
  const std::vector<DfaLabel>& alphabet() const { return alphabet_; }

  /// \brief Next state on `label_index` (index into alphabet()), or
  /// kNoTransition.
  static constexpr uint32_t kNoTransition = static_cast<uint32_t>(-1);
  uint32_t Next(uint32_t state, size_t label_index) const {
    return table_[state * alphabet_.size() + label_index];
  }

  /// \brief Index of a label in the alphabet, or npos.
  size_t LabelIndex(const DfaLabel& label) const {
    for (size_t i = 0; i < alphabet_.size(); ++i) {
      if (alphabet_[i] == label) return i;
    }
    return static_cast<size_t>(-1);
  }

 private:
  uint32_t start_ = 0;
  std::vector<DfaLabel> alphabet_;
  std::vector<bool> accepting_;
  std::vector<uint32_t> table_;  // num_states x alphabet, kNoTransition holes
};

}  // namespace graphlog::rpq

#endif  // GRAPHLOG_RPQ_DFA_H_
