#include "rpq/rpq_eval.h"

#include <algorithm>
#include <deque>
#include <set>

#include "gov/governor.h"
#include "rpq/dfa.h"

namespace graphlog::rpq {

using graph::DataGraph;
using graph::Edge;
using graph::NodeId;
using storage::Relation;
using storage::Tuple;

namespace {

bool EdgeMatches(const Edge& e, const NfaTransition& t) {
  if (e.predicate != t.predicate) return false;
  if (t.filters.empty()) return true;
  if (t.filters.size() != e.args.size()) return false;
  for (size_t i = 0; i < t.filters.size(); ++i) {
    if (t.filters[i].has_value() && !(e.args[i] == *t.filters[i])) {
      return false;
    }
  }
  return true;
}

/// Governed-search state shared by every per-source product search of
/// one evaluation: a step counter so the periodic full check fires at a
/// bounded interval even across many small sources, plus the truncation
/// flag a return_partial budget trip raises.
struct GovState {
  const gov::GovernorContext* ctx = nullptr;
  uint64_t steps = 0;
  bool truncated = false;

  /// Per-pop poll: the cancellation token every step (one relaxed load),
  /// the full check — deadline, armed rpq.step faults, row/byte budgets
  /// against the result relation — every 256 steps. On a return_partial
  /// trip sets `truncated` and returns OK; the searches then stop and
  /// keep the pairs found so far.
  Status Poll(const Relation& out) {
    if (ctx == nullptr) return Status::OK();
    if (ctx->token.cancelled()) {
      return Status::Cancelled("query cancelled at rpq.step");
    }
    if ((++steps & 255u) != 0) return Status::OK();
    GRAPHLOG_RETURN_NOT_OK(ctx->Check("rpq.step"));
    const gov::ResourceBudget& b = ctx->budget;
    if (b.max_result_rows != 0 && out.size() > b.max_result_rows) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_result_rows", "rpq.step",
                                        out.size(), b.max_result_rows);
      }
      truncated = true;
    } else if (b.max_bytes != 0 && out.MemoryBytes() > b.max_bytes) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_bytes", "rpq.step",
                                        out.MemoryBytes(), b.max_bytes);
      }
      truncated = true;
    }
    return Status::OK();
  }
};

/// BFS over the (node, nfa-state) product from one source node.
Status SearchFrom(const DataGraph& g, const Nfa& nfa, NodeId source,
                  const std::optional<NodeId>& target, Relation* out,
                  RpqStats* stats, GovState* gstate) {
  const size_t ns = nfa.num_states();
  // visited[node * ns + state]
  std::vector<bool> visited(g.num_nodes() * ns, false);
  std::vector<bool> scratch(ns);

  std::deque<std::pair<NodeId, uint32_t>> queue;
  auto enqueue = [&](NodeId n, uint32_t state) {
    // Expand the epsilon closure of `state` at node n.
    std::vector<uint32_t> states{state};
    nfa.EpsilonClosure(&states, &scratch);
    for (uint32_t s : states) {
      size_t idx = static_cast<size_t>(n) * ns + s;
      if (!visited[idx]) {
        visited[idx] = true;
        queue.emplace_back(n, s);
      }
    }
  };

  enqueue(source, nfa.start());
  while (!queue.empty()) {
    if (gstate != nullptr) {
      GRAPHLOG_RETURN_NOT_OK(gstate->Poll(*out));
      if (gstate->truncated) return Status::OK();
    }
    auto [n, state] = queue.front();
    queue.pop_front();
    if (stats != nullptr) ++stats->product_states_visited;
    if (state == nfa.accept()) {
      if (!target.has_value() || n == *target) {
        out->Insert(Tuple{g.node_value(source), g.node_value(n)});
      }
      // Keep searching: other accepting nodes may lie further on.
    }
    for (const NfaTransition& t : nfa.TransitionsFrom(state)) {
      if (t.epsilon) continue;  // covered by closure at enqueue
      const auto& edge_ids = t.inverted ? g.InEdges(n) : g.OutEdges(n);
      for (uint32_t ei : edge_ids) {
        if (stats != nullptr) ++stats->edge_traversals;
        const Edge& e = g.edge(ei);
        if (!EdgeMatches(e, t)) continue;
        NodeId next = t.inverted ? e.from : e.to;
        enqueue(next, t.to);
      }
    }
  }
  return Status::OK();
}

/// Annotates the "rpq" span with automaton shape, endpoint restrictions,
/// and search effort, and folds the kernel counters into the metrics
/// registry, once the product search has finished.
void FinishRpqSpan(obs::SpanGuard& span, std::string_view automaton,
                   size_t automaton_states, const RpqOptions& options,
                   const RpqStats& stats, const Relation& out) {
  if (span.enabled()) {
    span.AddNote("automaton", automaton);
    span.AddAttr("automaton_states", static_cast<int64_t>(automaton_states));
    span.AddAttr("source_fixed", options.source.has_value() ? 1 : 0);
    span.AddAttr("target_fixed", options.target.has_value() ? 1 : 0);
    span.AddAttr("product_states_visited",
                 static_cast<int64_t>(stats.product_states_visited));
    span.AddAttr("edge_traversals",
                 static_cast<int64_t>(stats.edge_traversals));
    span.AddAttr("pairs", static_cast<int64_t>(out.size()));
  }
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.metrics;
    m.counter("rpq.invocations")->Increment();
    m.counter("rpq.product_states_visited")
        ->Add(stats.product_states_visited);
    m.counter("rpq.edge_traversals")->Add(stats.edge_traversals);
    m.histogram("rpq.result_pairs")
        ->Observe(static_cast<int64_t>(out.size()));
  }
}

}  // namespace

Result<Relation> EvalRpq(const DataGraph& g, const gl::PathExpr& expr,
                         const RpqOptions& options, RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  obs::SpanGuard span(options.tracer, "rpq");
  // Effort counters feed the span/registry even when the caller passed no
  // stats; a governed run always tracks them so truncation is reportable.
  RpqStats local;
  if (stats == nullptr && (span.enabled() || options.metrics != nullptr ||
                           options.governor != nullptr)) {
    stats = &local;
  }
  GovState gstate{options.governor};
  // Up-front check so a pre-cancelled token, expired deadline, or armed
  // first-hit fault trips even when the search itself has no work.
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(options.governor, "rpq.step"));

  Relation out(2);
  auto finish = [&]() {
    if (stats != nullptr) {
      stats->truncated = gstate.truncated;
      FinishRpqSpan(span, "nfa", nfa.num_states(), options, *stats, out);
    }
  };
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) {  // unknown node
      finish();
      return out;
    }
    target = t;
  }

  if (options.source.has_value()) {
    NodeId s;
    if (g.FindNode(*options.source, &s)) {
      GRAPHLOG_RETURN_NOT_OK(
          SearchFrom(g, nfa, s, target, &out, stats, &gstate));
    }
    finish();
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    GRAPHLOG_RETURN_NOT_OK(SearchFrom(g, nfa, s, target, &out, stats,
                                      &gstate));
    if (gstate.truncated) break;
  }
  finish();
  return out;
}

Result<Relation> EvalRpqText(const DataGraph& g, std::string_view expr_text,
                             SymbolTable* syms, const RpqOptions& options,
                             RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(gl::PathExpr expr,
                            gl::ParsePathExpr(expr_text, syms));
  return EvalRpq(g, expr, options, stats);
}

namespace {

/// BFS over the (node, dfa-state) product from one source node.
Status SearchFromDfa(const DataGraph& g, const Dfa& dfa, NodeId source,
                     const std::optional<NodeId>& target, Relation* out,
                     RpqStats* stats, GovState* gstate) {
  const size_t ns = dfa.num_states();
  std::vector<bool> visited(g.num_nodes() * ns, false);
  std::deque<std::pair<NodeId, uint32_t>> queue;
  auto enqueue = [&](NodeId n, uint32_t state) {
    size_t idx = static_cast<size_t>(n) * ns + state;
    if (!visited[idx]) {
      visited[idx] = true;
      queue.emplace_back(n, state);
    }
  };
  enqueue(source, dfa.start());
  while (!queue.empty()) {
    if (gstate != nullptr) {
      GRAPHLOG_RETURN_NOT_OK(gstate->Poll(*out));
      if (gstate->truncated) return Status::OK();
    }
    auto [n, state] = queue.front();
    queue.pop_front();
    if (stats != nullptr) ++stats->product_states_visited;
    if (dfa.IsAccepting(state)) {
      if (!target.has_value() || n == *target) {
        out->Insert(Tuple{g.node_value(source), g.node_value(n)});
      }
    }
    for (size_t li = 0; li < dfa.alphabet().size(); ++li) {
      uint32_t next_state = dfa.Next(state, li);
      if (next_state == Dfa::kNoTransition) continue;
      const DfaLabel& label = dfa.alphabet()[li];
      const auto& edge_ids = label.inverted ? g.InEdges(n) : g.OutEdges(n);
      for (uint32_t ei : edge_ids) {
        if (stats != nullptr) ++stats->edge_traversals;
        const Edge& e = g.edge(ei);
        if (e.predicate != label.predicate) continue;
        enqueue(label.inverted ? e.from : e.to, next_state);
      }
    }
  }
  return Status::OK();
}

}  // namespace

namespace {

/// BFS with parent pointers: reconstructs one shortest qualifying path
/// per reached accepting (node, state) pair.
void SearchWitnesses(const DataGraph& g, const Nfa& nfa, NodeId source,
                     const std::optional<NodeId>& target,
                     std::vector<RpqWitness>* out) {
  const size_t ns = nfa.num_states();
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  struct Parent {
    size_t prev = static_cast<size_t>(-1);  // product index
    uint32_t edge = kNone;                  // edge taken (kNone: epsilon)
  };
  std::vector<bool> visited(g.num_nodes() * ns, false);
  std::vector<Parent> parent(g.num_nodes() * ns);
  std::vector<bool> scratch(ns);
  std::set<NodeId> reported;

  std::deque<std::pair<NodeId, uint32_t>> queue;
  auto product = [&](NodeId n, uint32_t s) {
    return static_cast<size_t>(n) * ns + s;
  };
  auto enqueue = [&](NodeId n, uint32_t state, size_t prev, uint32_t edge) {
    // Expand the epsilon closure, recording epsilon parents.
    std::vector<uint32_t> states{state};
    nfa.EpsilonClosure(&states, &scratch);
    for (uint32_t s : states) {
      size_t idx = product(n, s);
      if (visited[idx]) continue;
      visited[idx] = true;
      // Closure-only states chain to the entry state via an edge-less
      // (epsilon) parent; the entry state records the traversed edge.
      parent[idx] =
          (s == state) ? Parent{prev, edge} : Parent{product(n, state), kNone};
      queue.emplace_back(n, s);
    }
  };

  enqueue(source, nfa.start(), static_cast<size_t>(-1), kNone);
  while (!queue.empty()) {
    auto [n, state] = queue.front();
    queue.pop_front();
    if (state == nfa.accept() && reported.insert(n).second) {
      if (!target.has_value() || n == *target) {
        RpqWitness w;
        w.source = g.node_value(source);
        w.target = g.node_value(n);
        size_t idx = product(n, state);
        while (idx != static_cast<size_t>(-1)) {
          const Parent& p = parent[idx];
          if (p.edge != kNone) w.edge_ids.push_back(p.edge);
          idx = p.prev;
        }
        std::reverse(w.edge_ids.begin(), w.edge_ids.end());
        out->push_back(std::move(w));
      }
    }
    for (const NfaTransition& t : nfa.TransitionsFrom(state)) {
      if (t.epsilon) continue;
      const auto& edge_ids = t.inverted ? g.InEdges(n) : g.OutEdges(n);
      for (uint32_t ei : edge_ids) {
        const Edge& e = g.edge(ei);
        if (!EdgeMatches(e, t)) continue;
        NodeId next = t.inverted ? e.from : e.to;
        enqueue(next, t.to, product(n, state), ei);
      }
    }
  }
}

}  // namespace

Result<std::vector<RpqWitness>> EvalRpqWitnesses(const DataGraph& g,
                                                 const gl::PathExpr& expr,
                                                 const RpqOptions& options) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  std::vector<RpqWitness> out;
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) return out;
    target = t;
  }
  if (options.source.has_value()) {
    NodeId s;
    if (!g.FindNode(*options.source, &s)) return out;
    SearchWitnesses(g, nfa, s, target, &out);
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    SearchWitnesses(g, nfa, s, target, &out);
  }
  return out;
}

Result<Relation> EvalRpqDfa(const DataGraph& g, const gl::PathExpr& expr,
                            const RpqOptions& options, RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  GRAPHLOG_ASSIGN_OR_RETURN(Dfa det, Dfa::Determinize(nfa));
  Dfa dfa = det.Minimize();
  obs::SpanGuard span(options.tracer, "rpq");
  RpqStats local;
  if (stats == nullptr && (span.enabled() || options.metrics != nullptr ||
                           options.governor != nullptr)) {
    stats = &local;
  }
  GovState gstate{options.governor};
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(options.governor, "rpq.step"));

  Relation out(2);
  auto finish = [&]() {
    if (stats != nullptr) {
      stats->truncated = gstate.truncated;
      FinishRpqSpan(span, "dfa", dfa.num_states(), options, *stats, out);
    }
  };
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) {
      finish();
      return out;
    }
    target = t;
  }
  if (options.source.has_value()) {
    NodeId s;
    if (g.FindNode(*options.source, &s)) {
      GRAPHLOG_RETURN_NOT_OK(
          SearchFromDfa(g, dfa, s, target, &out, stats, &gstate));
    }
    finish();
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    GRAPHLOG_RETURN_NOT_OK(SearchFromDfa(g, dfa, s, target, &out, stats,
                                         &gstate));
    if (gstate.truncated) break;
  }
  finish();
  return out;
}

}  // namespace graphlog::rpq
