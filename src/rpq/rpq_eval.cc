#include "rpq/rpq_eval.h"

#include <algorithm>
#include <deque>
#include <set>

#include "columnar/bitset.h"
#include "gov/governor.h"
#include "rpq/dfa.h"

namespace graphlog::rpq {

using graph::DataGraph;
using graph::Edge;
using graph::NodeId;
using storage::Relation;
using storage::Tuple;

namespace {

bool EdgeMatches(const Edge& e, const NfaTransition& t) {
  if (e.predicate != t.predicate) return false;
  if (t.filters.empty()) return true;
  if (t.filters.size() != e.args.size()) return false;
  for (size_t i = 0; i < t.filters.size(); ++i) {
    if (t.filters[i].has_value() && !(e.args[i] == *t.filters[i])) {
      return false;
    }
  }
  return true;
}

/// Governed-search state shared by every per-source product search of
/// one evaluation: a step counter so the periodic full check fires at a
/// bounded interval even across many small sources, plus the truncation
/// flag a return_partial budget trip raises.
struct GovState {
  const gov::GovernorContext* ctx = nullptr;
  uint64_t steps = 0;
  bool truncated = false;

  /// Per-pop poll: the cancellation token every step (one relaxed load),
  /// the full check — deadline, armed rpq.step faults, row/byte budgets
  /// against the result relation — every 256 steps. On a return_partial
  /// trip sets `truncated` and returns OK; the searches then stop and
  /// keep the pairs found so far.
  Status Poll(const Relation& out) {
    if (ctx == nullptr) return Status::OK();
    if (ctx->token.cancelled()) {
      return Status::Cancelled("query cancelled at rpq.step");
    }
    if ((++steps & 255u) != 0) return Status::OK();
    GRAPHLOG_RETURN_NOT_OK(ctx->Check("rpq.step"));
    const gov::ResourceBudget& b = ctx->budget;
    if (b.max_result_rows != 0 && out.size() > b.max_result_rows) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_result_rows", "rpq.step",
                                        out.size(), b.max_result_rows);
      }
      truncated = true;
    } else if (b.max_bytes != 0 && out.MemoryBytes() > b.max_bytes) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_bytes", "rpq.step",
                                        out.MemoryBytes(), b.max_bytes);
      }
      truncated = true;
    }
    return Status::OK();
  }
};

/// BFS over the (node, nfa-state) product from one source node.
Status SearchFrom(const DataGraph& g, const Nfa& nfa, NodeId source,
                  const std::optional<NodeId>& target, Relation* out,
                  RpqStats* stats, GovState* gstate) {
  const size_t ns = nfa.num_states();
  // visited[node * ns + state]
  std::vector<bool> visited(g.num_nodes() * ns, false);
  std::vector<bool> scratch(ns);

  std::deque<std::pair<NodeId, uint32_t>> queue;
  auto enqueue = [&](NodeId n, uint32_t state) {
    // Expand the epsilon closure of `state` at node n.
    std::vector<uint32_t> states{state};
    nfa.EpsilonClosure(&states, &scratch);
    for (uint32_t s : states) {
      size_t idx = static_cast<size_t>(n) * ns + s;
      if (!visited[idx]) {
        visited[idx] = true;
        queue.emplace_back(n, s);
      }
    }
  };

  enqueue(source, nfa.start());
  while (!queue.empty()) {
    if (gstate != nullptr) {
      GRAPHLOG_RETURN_NOT_OK(gstate->Poll(*out));
      if (gstate->truncated) return Status::OK();
    }
    auto [n, state] = queue.front();
    queue.pop_front();
    if (stats != nullptr) ++stats->product_states_visited;
    if (state == nfa.accept()) {
      if (!target.has_value() || n == *target) {
        out->Insert(Tuple{g.node_value(source), g.node_value(n)});
      }
      // Keep searching: other accepting nodes may lie further on.
    }
    for (const NfaTransition& t : nfa.TransitionsFrom(state)) {
      if (t.epsilon) continue;  // covered by closure at enqueue
      const auto& edge_ids = t.inverted ? g.InEdges(n) : g.OutEdges(n);
      for (uint32_t ei : edge_ids) {
        if (stats != nullptr) ++stats->edge_traversals;
        const Edge& e = g.edge(ei);
        if (!EdgeMatches(e, t)) continue;
        NodeId next = t.inverted ? e.from : e.to;
        enqueue(next, t.to);
      }
    }
  }
  return Status::OK();
}

/// Annotates the "rpq" span with automaton shape, endpoint restrictions,
/// and search effort, and folds the kernel counters into the metrics
/// registry, once the product search has finished.
void FinishRpqSpan(obs::SpanGuard& span, std::string_view automaton,
                   size_t automaton_states, const RpqOptions& options,
                   const RpqStats& stats, const Relation& out) {
  if (span.enabled()) {
    span.AddNote("automaton", automaton);
    span.AddAttr("automaton_states", static_cast<int64_t>(automaton_states));
    span.AddAttr("source_fixed", options.source.has_value() ? 1 : 0);
    span.AddAttr("target_fixed", options.target.has_value() ? 1 : 0);
    span.AddAttr("product_states_visited",
                 static_cast<int64_t>(stats.product_states_visited));
    span.AddAttr("edge_traversals",
                 static_cast<int64_t>(stats.edge_traversals));
    span.AddAttr("pairs", static_cast<int64_t>(out.size()));
  }
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.metrics;
    m.counter("rpq.invocations")->Increment();
    m.counter("rpq.product_states_visited")
        ->Add(stats.product_states_visited);
    m.counter("rpq.edge_traversals")->Add(stats.edge_traversals);
    m.histogram("rpq.result_pairs")
        ->Observe(static_cast<int64_t>(out.size()));
  }
}

}  // namespace

Result<Relation> EvalRpq(const DataGraph& g, const gl::PathExpr& expr,
                         const RpqOptions& options, RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  obs::SpanGuard span(options.tracer, "rpq");
  // Effort counters feed the span/registry even when the caller passed no
  // stats; a governed run always tracks them so truncation is reportable.
  RpqStats local;
  if (stats == nullptr && (span.enabled() || options.metrics != nullptr ||
                           options.governor != nullptr)) {
    stats = &local;
  }
  GovState gstate{options.governor};
  // Up-front check so a pre-cancelled token, expired deadline, or armed
  // first-hit fault trips even when the search itself has no work.
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(options.governor, "rpq.step"));

  Relation out(2);
  auto finish = [&]() {
    if (stats != nullptr) {
      stats->truncated = gstate.truncated;
      FinishRpqSpan(span, "nfa", nfa.num_states(), options, *stats, out);
    }
  };
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) {  // unknown node
      finish();
      return out;
    }
    target = t;
  }

  if (options.source.has_value()) {
    NodeId s;
    if (g.FindNode(*options.source, &s)) {
      GRAPHLOG_RETURN_NOT_OK(
          SearchFrom(g, nfa, s, target, &out, stats, &gstate));
    }
    finish();
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    GRAPHLOG_RETURN_NOT_OK(SearchFrom(g, nfa, s, target, &out, stats,
                                      &gstate));
    if (gstate.truncated) break;
  }
  finish();
  return out;
}

Result<Relation> EvalRpqText(const DataGraph& g, std::string_view expr_text,
                             SymbolTable* syms, const RpqOptions& options,
                             RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(gl::PathExpr expr,
                            gl::ParsePathExpr(expr_text, syms));
  return EvalRpq(g, expr, options, stats);
}

namespace {

/// BFS over the (node, dfa-state) product from one source node.
Status SearchFromDfa(const DataGraph& g, const Dfa& dfa, NodeId source,
                     const std::optional<NodeId>& target, Relation* out,
                     RpqStats* stats, GovState* gstate) {
  const size_t ns = dfa.num_states();
  std::vector<bool> visited(g.num_nodes() * ns, false);
  std::deque<std::pair<NodeId, uint32_t>> queue;
  auto enqueue = [&](NodeId n, uint32_t state) {
    size_t idx = static_cast<size_t>(n) * ns + state;
    if (!visited[idx]) {
      visited[idx] = true;
      queue.emplace_back(n, state);
    }
  };
  enqueue(source, dfa.start());
  while (!queue.empty()) {
    if (gstate != nullptr) {
      GRAPHLOG_RETURN_NOT_OK(gstate->Poll(*out));
      if (gstate->truncated) return Status::OK();
    }
    auto [n, state] = queue.front();
    queue.pop_front();
    if (stats != nullptr) ++stats->product_states_visited;
    if (dfa.IsAccepting(state)) {
      if (!target.has_value() || n == *target) {
        out->Insert(Tuple{g.node_value(source), g.node_value(n)});
      }
    }
    for (size_t li = 0; li < dfa.alphabet().size(); ++li) {
      uint32_t next_state = dfa.Next(state, li);
      if (next_state == Dfa::kNoTransition) continue;
      const DfaLabel& label = dfa.alphabet()[li];
      const auto& edge_ids = label.inverted ? g.InEdges(n) : g.OutEdges(n);
      for (uint32_t ei : edge_ids) {
        if (stats != nullptr) ++stats->edge_traversals;
        const Edge& e = g.edge(ei);
        if (e.predicate != label.predicate) continue;
        enqueue(label.inverted ? e.from : e.to, next_state);
      }
    }
  }
  return Status::OK();
}

}  // namespace

namespace {

/// BFS with parent pointers: reconstructs one shortest qualifying path
/// per reached accepting (node, state) pair.
void SearchWitnesses(const DataGraph& g, const Nfa& nfa, NodeId source,
                     const std::optional<NodeId>& target,
                     std::vector<RpqWitness>* out) {
  const size_t ns = nfa.num_states();
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  struct Parent {
    size_t prev = static_cast<size_t>(-1);  // product index
    uint32_t edge = kNone;                  // edge taken (kNone: epsilon)
  };
  std::vector<bool> visited(g.num_nodes() * ns, false);
  std::vector<Parent> parent(g.num_nodes() * ns);
  std::vector<bool> scratch(ns);
  std::set<NodeId> reported;

  std::deque<std::pair<NodeId, uint32_t>> queue;
  auto product = [&](NodeId n, uint32_t s) {
    return static_cast<size_t>(n) * ns + s;
  };
  auto enqueue = [&](NodeId n, uint32_t state, size_t prev, uint32_t edge) {
    // Expand the epsilon closure, recording epsilon parents.
    std::vector<uint32_t> states{state};
    nfa.EpsilonClosure(&states, &scratch);
    for (uint32_t s : states) {
      size_t idx = product(n, s);
      if (visited[idx]) continue;
      visited[idx] = true;
      // Closure-only states chain to the entry state via an edge-less
      // (epsilon) parent; the entry state records the traversed edge.
      parent[idx] =
          (s == state) ? Parent{prev, edge} : Parent{product(n, state), kNone};
      queue.emplace_back(n, s);
    }
  };

  enqueue(source, nfa.start(), static_cast<size_t>(-1), kNone);
  while (!queue.empty()) {
    auto [n, state] = queue.front();
    queue.pop_front();
    if (state == nfa.accept() && reported.insert(n).second) {
      if (!target.has_value() || n == *target) {
        RpqWitness w;
        w.source = g.node_value(source);
        w.target = g.node_value(n);
        size_t idx = product(n, state);
        while (idx != static_cast<size_t>(-1)) {
          const Parent& p = parent[idx];
          if (p.edge != kNone) w.edge_ids.push_back(p.edge);
          idx = p.prev;
        }
        std::reverse(w.edge_ids.begin(), w.edge_ids.end());
        out->push_back(std::move(w));
      }
    }
    for (const NfaTransition& t : nfa.TransitionsFrom(state)) {
      if (t.epsilon) continue;
      const auto& edge_ids = t.inverted ? g.InEdges(n) : g.OutEdges(n);
      for (uint32_t ei : edge_ids) {
        const Edge& e = g.edge(ei);
        if (!EdgeMatches(e, t)) continue;
        NodeId next = t.inverted ? e.from : e.to;
        enqueue(next, t.to, product(n, state), ei);
      }
    }
  }
}

}  // namespace

Result<std::vector<RpqWitness>> EvalRpqWitnesses(const DataGraph& g,
                                                 const gl::PathExpr& expr,
                                                 const RpqOptions& options) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  std::vector<RpqWitness> out;
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) return out;
    target = t;
  }
  if (options.source.has_value()) {
    NodeId s;
    if (!g.FindNode(*options.source, &s)) return out;
    SearchWitnesses(g, nfa, s, target, &out);
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    SearchWitnesses(g, nfa, s, target, &out);
  }
  return out;
}

Result<Relation> EvalRpqDfa(const DataGraph& g, const gl::PathExpr& expr,
                            const RpqOptions& options, RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  GRAPHLOG_ASSIGN_OR_RETURN(Dfa det, Dfa::Determinize(nfa));
  Dfa dfa = det.Minimize();
  obs::SpanGuard span(options.tracer, "rpq");
  RpqStats local;
  if (stats == nullptr && (span.enabled() || options.metrics != nullptr ||
                           options.governor != nullptr)) {
    stats = &local;
  }
  GovState gstate{options.governor};
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(options.governor, "rpq.step"));

  Relation out(2);
  auto finish = [&]() {
    if (stats != nullptr) {
      stats->truncated = gstate.truncated;
      FinishRpqSpan(span, "dfa", dfa.num_states(), options, *stats, out);
    }
  };
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) {
      finish();
      return out;
    }
    target = t;
  }
  if (options.source.has_value()) {
    NodeId s;
    if (g.FindNode(*options.source, &s)) {
      GRAPHLOG_RETURN_NOT_OK(
          SearchFromDfa(g, dfa, s, target, &out, stats, &gstate));
    }
    finish();
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    GRAPHLOG_RETURN_NOT_OK(SearchFromDfa(g, dfa, s, target, &out, stats,
                                         &gstate));
    if (gstate.truncated) break;
  }
  finish();
  return out;
}

namespace {

using columnar::Bitset;

/// Per-label successor arrays: adj[li].targets[offsets[n]..offsets[n+1])
/// are the nodes one (alphabet[li])-edge away from n, direction already
/// folded in. Built once per evaluation; every per-source search then
/// only touches label-matched entries.
struct LabelAdj {
  std::vector<uint32_t> offsets;  // num_nodes + 1
  std::vector<uint32_t> targets;
};

std::vector<LabelAdj> BuildLabelAdjacency(const DataGraph& g,
                                          const Dfa& dfa) {
  const size_t n = g.num_nodes();
  std::vector<LabelAdj> adj(dfa.alphabet().size());
  for (size_t li = 0; li < dfa.alphabet().size(); ++li) {
    const DfaLabel& label = dfa.alphabet()[li];
    LabelAdj& a = adj[li];
    a.offsets.assign(n + 1, 0);
    for (const Edge& e : g.edges()) {
      if (e.predicate != label.predicate) continue;
      ++a.offsets[(label.inverted ? e.to : e.from) + 1];
    }
    for (size_t i = 0; i < n; ++i) a.offsets[i + 1] += a.offsets[i];
    a.targets.resize(a.offsets[n]);
    std::vector<uint32_t> cur(a.offsets.begin(), a.offsets.end() - 1);
    for (const Edge& e : g.edges()) {
      if (e.predicate != label.predicate) continue;
      const NodeId from = label.inverted ? e.to : e.from;
      const NodeId to = label.inverted ? e.from : e.to;
      a.targets[cur[from]++] = to;
    }
  }
  return adj;
}

/// One node-bitset per DFA state, three generations (reached, current
/// frontier, next wave), plus the per-source emitted set; all reused
/// across sources.
struct BitsetScratch {
  std::vector<Bitset> reached, frontier, next;
  Bitset emitted;
};

/// Bitset-frontier product search from one source node: each round, for
/// every (state q, label li) with a transition q -> q2, or the adjacency
/// spans of q's frontier nodes into q2's next wave; then the wave minus
/// reached becomes the new frontier. Newly reached nodes in accepting
/// states are emitted as they surface, so governed budget trips keep the
/// pairs found so far.
Status SearchFromBitset(const DataGraph& g, const Dfa& dfa,
                        const std::vector<LabelAdj>& adj, NodeId source,
                        const std::optional<NodeId>& target, Relation* out,
                        RpqStats* stats, GovState* gstate,
                        BitsetScratch* sc) {
  const size_t ns = dfa.num_states();
  for (size_t q = 0; q < ns; ++q) {
    sc->reached[q].Reset();
    sc->frontier[q].Reset();
  }
  sc->emitted.Reset();
  sc->reached[dfa.start()].Set(source);
  sc->frontier[dfa.start()].Set(source);
  if (stats != nullptr) ++stats->product_states_visited;
  // Result pairs bypass the hash-dedup Insert path: `emitted` makes a
  // node's first acceptance the only one per source, and sources differ
  // across calls, so every appended pair is provably new.
  auto emit = [&](NodeId n) {
    if (!sc->emitted.TestAndSet(n)) return;
    if (!target.has_value() || n == *target) {
      out->AppendUnique(Tuple{g.node_value(source), g.node_value(n)});
    }
  };
  if (dfa.IsAccepting(dfa.start())) emit(source);

  bool any = true;
  while (any) {
    for (size_t q = 0; q < ns; ++q) sc->next[q].Reset();
    Status poll_error = Status::OK();
    bool stop = false;
    for (size_t q = 0; q < ns && !stop; ++q) {
      if (!sc->frontier[q].Any()) continue;
      for (size_t li = 0; li < adj.size() && !stop; ++li) {
        const uint32_t q2 = dfa.Next(static_cast<uint32_t>(q), li);
        if (q2 == Dfa::kNoTransition) continue;
        const LabelAdj& a = adj[li];
        Bitset& dst = sc->next[q2];
        sc->frontier[q].ForEachSet([&](uint32_t u) {
          if (stop) return;
          if (gstate != nullptr) {
            Status st = gstate->Poll(*out);
            if (!st.ok() || gstate->truncated) {
              poll_error = std::move(st);
              stop = true;
              return;
            }
          }
          const uint32_t lo = a.offsets[u], hi = a.offsets[u + 1];
          if (stats != nullptr) stats->edge_traversals += hi - lo;
          for (uint32_t k = lo; k < hi; ++k) dst.Set(a.targets[k]);
        });
      }
    }
    if (!poll_error.ok()) return poll_error;
    if (stop) return Status::OK();  // truncated: keep pairs found so far
    any = false;
    for (size_t q = 0; q < ns; ++q) {
      if (sc->next[q].AndNot(sc->reached[q])) {
        sc->reached[q].OrWith(sc->next[q]);
        any = true;
        if (stats != nullptr) {
          stats->product_states_visited += sc->next[q].Count();
        }
        if (dfa.IsAccepting(static_cast<uint32_t>(q))) {
          sc->next[q].ForEachSet([&](uint32_t v) { emit(v); });
        }
      }
      std::swap(sc->frontier[q], sc->next[q]);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Relation> EvalRpqBitset(const DataGraph& g, const gl::PathExpr& expr,
                               const RpqOptions& options, RpqStats* stats) {
  GRAPHLOG_ASSIGN_OR_RETURN(Nfa nfa, Nfa::Compile(expr));
  GRAPHLOG_ASSIGN_OR_RETURN(Dfa det, Dfa::Determinize(nfa));
  Dfa dfa = det.Minimize();
  obs::SpanGuard span(options.tracer, "rpq");
  RpqStats local;
  if (stats == nullptr && (span.enabled() || options.metrics != nullptr ||
                           options.governor != nullptr)) {
    stats = &local;
  }
  GovState gstate{options.governor};
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(options.governor, "rpq.step"));

  const std::vector<LabelAdj> adj = BuildLabelAdjacency(g, dfa);
  BitsetScratch sc;
  sc.reached.resize(dfa.num_states());
  sc.frontier.resize(dfa.num_states());
  sc.next.resize(dfa.num_states());
  for (size_t q = 0; q < dfa.num_states(); ++q) {
    sc.reached[q].ResetTo(g.num_nodes());
    sc.frontier[q].ResetTo(g.num_nodes());
    sc.next[q].ResetTo(g.num_nodes());
  }
  sc.emitted.ResetTo(g.num_nodes());

  Relation out(2);
  auto finish = [&]() {
    if (stats != nullptr) {
      stats->truncated = gstate.truncated;
      FinishRpqSpan(span, "dfa-bitset", dfa.num_states(), options, *stats,
                    out);
    }
  };
  std::optional<NodeId> target;
  if (options.target.has_value()) {
    NodeId t;
    if (!g.FindNode(*options.target, &t)) {
      finish();
      return out;
    }
    target = t;
  }
  if (options.source.has_value()) {
    NodeId s;
    if (g.FindNode(*options.source, &s)) {
      GRAPHLOG_RETURN_NOT_OK(SearchFromBitset(g, dfa, adj, s, target, &out,
                                              stats, &gstate, &sc));
    }
    finish();
    return out;
  }
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    GRAPHLOG_RETURN_NOT_OK(SearchFromBitset(g, dfa, adj, s, target, &out,
                                            stats, &gstate, &sc));
    if (gstate.truncated) break;
  }
  finish();
  return out;
}

}  // namespace graphlog::rpq
