#include "rpq/dfa.h"

#include <algorithm>
#include <set>

namespace graphlog::rpq {

Result<Dfa> Dfa::Determinize(const Nfa& nfa) {
  // Collect the alphabet and reject filtered labels.
  std::set<DfaLabel> labels;
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
      if (t.epsilon) continue;
      for (const auto& f : t.filters) {
        if (f.has_value()) {
          return Status::Unsupported(
              "DFA evaluation supports plain labels only (attribute "
              "filters present)");
        }
      }
      labels.insert(DfaLabel{t.predicate, t.inverted});
    }
  }

  Dfa dfa;
  dfa.alphabet_.assign(labels.begin(), labels.end());
  const size_t na = dfa.alphabet_.size();

  std::vector<bool> scratch(nfa.num_states());
  auto closure = [&](std::vector<uint32_t> states) {
    nfa.EpsilonClosure(&states, &scratch);
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    return states;
  };

  std::map<std::vector<uint32_t>, uint32_t> ids;
  std::vector<std::vector<uint32_t>> subsets;
  auto intern = [&](std::vector<uint32_t> subset) {
    auto [it, inserted] =
        ids.emplace(subset, static_cast<uint32_t>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
      dfa.accepting_.push_back(false);
      dfa.table_.resize(dfa.table_.size() + na, kNoTransition);
    }
    return it->second;
  };

  std::vector<uint32_t> start = closure({nfa.start()});
  dfa.start_ = intern(start);

  for (uint32_t cur = 0; cur < subsets.size(); ++cur) {
    const std::vector<uint32_t> subset = subsets[cur];
    dfa.accepting_[cur] =
        std::binary_search(subset.begin(), subset.end(), nfa.accept());
    for (size_t li = 0; li < na; ++li) {
      const DfaLabel& label = dfa.alphabet_[li];
      std::vector<uint32_t> next;
      for (uint32_t s : subset) {
        for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
          if (t.epsilon) continue;
          if (t.predicate == label.predicate &&
              t.inverted == label.inverted) {
            next.push_back(t.to);
          }
        }
      }
      if (next.empty()) continue;
      uint32_t id = intern(closure(std::move(next)));
      dfa.table_[cur * na + li] = id;
      // Recompute acceptance flag lazily; intern() may have grown tables.
    }
  }
  // Acceptance pass (intern during the loop grew the vectors).
  for (uint32_t s = 0; s < subsets.size(); ++s) {
    dfa.accepting_[s] =
        std::binary_search(subsets[s].begin(), subsets[s].end(),
                           nfa.accept());
  }
  return dfa;
}

Dfa Dfa::Minimize() const {
  const size_t n = num_states();
  const size_t na = alphabet_.size();
  // Moore refinement over a completed automaton: treat kNoTransition as a
  // virtual dead class.
  std::vector<uint32_t> cls(n);
  for (size_t s = 0; s < n; ++s) cls[s] = accepting_[s] ? 1 : 0;

  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (class, successor classes).
    std::map<std::vector<uint32_t>, uint32_t> sig_ids;
    std::vector<uint32_t> next_cls(n);
    for (size_t s = 0; s < n; ++s) {
      std::vector<uint32_t> sig;
      sig.reserve(na + 1);
      sig.push_back(cls[s]);
      for (size_t li = 0; li < na; ++li) {
        uint32_t t = Next(static_cast<uint32_t>(s), li);
        sig.push_back(t == kNoTransition ? static_cast<uint32_t>(-1)
                                         : cls[t]);
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig),
                          static_cast<uint32_t>(sig_ids.size()));
      next_cls[s] = it->second;
    }
    if (next_cls != cls) {
      changed = true;
      cls = std::move(next_cls);
    }
  }

  uint32_t num_classes = 0;
  for (uint32_t c : cls) num_classes = std::max(num_classes, c + 1);

  Dfa out;
  out.alphabet_ = alphabet_;
  out.start_ = cls[start_];
  out.accepting_.assign(num_classes, false);
  out.table_.assign(static_cast<size_t>(num_classes) * na, kNoTransition);
  for (size_t s = 0; s < n; ++s) {
    if (accepting_[s]) out.accepting_[cls[s]] = true;
    for (size_t li = 0; li < na; ++li) {
      uint32_t t = Next(static_cast<uint32_t>(s), li);
      if (t != kNoTransition) {
        out.table_[cls[s] * na + li] = cls[t];
      }
    }
  }
  return out;
}

}  // namespace graphlog::rpq
