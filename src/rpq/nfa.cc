#include "rpq/nfa.h"

#include <algorithm>

namespace graphlog::rpq {

using gl::PathExpr;

Result<Nfa> Nfa::Compile(const PathExpr& expr) {
  Nfa nfa;
  nfa.start_ = nfa.NewState();
  nfa.accept_ = nfa.NewState();
  GRAPHLOG_RETURN_NOT_OK(
      nfa.Build(expr, /*inverted=*/false, nfa.start_, nfa.accept_));
  return nfa;
}

Status Nfa::Build(const PathExpr& e, bool inverted, uint32_t from,
                  uint32_t to) {
  switch (e.kind) {
    case PathExpr::Kind::kAtom: {
      NfaTransition t;
      t.to = to;
      t.epsilon = false;
      t.predicate = e.predicate;
      t.inverted = inverted;
      for (const auto& p : e.params) {
        if (p.is_constant()) {
          t.filters.push_back(p.value());
        } else if (p.is_wildcard()) {
          t.filters.push_back(std::nullopt);
        } else {
          return Status::Unsupported(
              "variable parameters are outside the RPQ fragment; use the "
              "Datalog translation");
        }
      }
      transitions_[from].push_back(std::move(t));
      return Status::OK();
    }
    case PathExpr::Kind::kEquals:
      AddEpsilon(from, to);
      return Status::OK();
    case PathExpr::Kind::kInverse:
      // -(E) flips every atom's direction and reverses composition order
      // (-(E1 E2) == (-E2)(-E1)); both effects are carried by `inverted`.
      return Build(e.children[0], !inverted, from, to);
    case PathExpr::Kind::kNegate:
      return Status::Unsupported(
          "negation is outside the RPQ fragment; use the Datalog "
          "translation");
    case PathExpr::Kind::kAlt: {
      for (const PathExpr& c : e.children) {
        uint32_t s = NewState(), t = NewState();
        AddEpsilon(from, s);
        GRAPHLOG_RETURN_NOT_OK(Build(c, inverted, s, t));
        AddEpsilon(t, to);
      }
      return Status::OK();
    }
    case PathExpr::Kind::kSeq: {
      // Under inversion the composition applies in reverse order.
      uint32_t cur = from;
      for (size_t k = 0; k < e.children.size(); ++k) {
        size_t i = inverted ? e.children.size() - 1 - k : k;
        uint32_t next = (k + 1 == e.children.size()) ? to : NewState();
        GRAPHLOG_RETURN_NOT_OK(Build(e.children[i], inverted, cur, next));
        cur = next;
      }
      return Status::OK();
    }
    case PathExpr::Kind::kPlus: {
      uint32_t s = NewState(), t = NewState();
      AddEpsilon(from, s);
      GRAPHLOG_RETURN_NOT_OK(Build(e.children[0], inverted, s, t));
      AddEpsilon(t, s);  // repeat
      AddEpsilon(t, to);
      return Status::OK();
    }
    case PathExpr::Kind::kStar: {
      uint32_t s = NewState(), t = NewState();
      AddEpsilon(from, s);
      AddEpsilon(from, to);  // zero occurrences
      GRAPHLOG_RETURN_NOT_OK(Build(e.children[0], inverted, s, t));
      AddEpsilon(t, s);
      AddEpsilon(t, to);
      return Status::OK();
    }
    case PathExpr::Kind::kOptional: {
      AddEpsilon(from, to);
      return Build(e.children[0], inverted, from, to);
    }
  }
  return Status::Internal("unknown PathExpr kind in NFA construction");
}

void Nfa::EpsilonClosure(std::vector<uint32_t>* states,
                         std::vector<bool>* scratch) const {
  std::fill(scratch->begin(), scratch->end(), false);
  std::vector<uint32_t> stack(*states);
  for (uint32_t s : *states) (*scratch)[s] = true;
  while (!stack.empty()) {
    uint32_t s = stack.back();
    stack.pop_back();
    for (const NfaTransition& t : transitions_[s]) {
      if (t.epsilon && !(*scratch)[t.to]) {
        (*scratch)[t.to] = true;
        states->push_back(t.to);
        stack.push_back(t.to);
      }
    }
  }
}

bool Nfa::AcceptsEmpty() const {
  std::vector<uint32_t> states{start_};
  std::vector<bool> scratch(num_states());
  EpsilonClosure(&states, &scratch);
  return std::find(states.begin(), states.end(), accept_) != states.end();
}

}  // namespace graphlog::rpq
