// ResultCache: a sharded, byte-bounded LRU of finished query responses,
// invalidated by per-relation generation counters.
//
// An entry records, for every relation the query read or wrote, the
// relation's state *before* the run (pre-deps) and *after* it
// (post-deps), where a state is the (exists, uid, data_generation, size)
// quadruple — uid is never reused by a Database, and data_generation
// counts only data changes (insert/clear/truncate), so equal quadruples
// on the same database imply equal contents. Serving has two tiers:
//
//   * post-state hit — every dep matches its recorded post state: the
//     query's materializations are still in place, so the stored response
//     is returned with no database mutation at all;
//   * pre-state hit (replay) — every dep matches its recorded pre state:
//     the database looks exactly like it did before the original run, so
//     the stored novel rows are replayed in their original insertion
//     order. Replay reproduces the original run bit-for-bit (contents,
//     insertion order, data_generation arithmetic) because identical
//     pre-state contents make every replayed insert novel again.
//
// Anything else is a miss; the caller re-evaluates and Record()
// overwrites the entry. Entries are bounded in bytes (tuple payloads
// estimated with the same deterministic arithmetic as
// Relation::MemoryBytes) across N shards, each with its own mutex and
// LRU list, so concurrent lookups from different sessions contend only
// per shard.
//
// The cache is database-agnostic: keys must be scoped by Database::uid()
// (graphlog::Run does this) so two databases never trade entries.

#ifndef GRAPHLOG_CACHE_RESULT_CACHE_H_
#define GRAPHLOG_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "graphlog/api.h"
#include "storage/database.h"

namespace graphlog::cache {

/// \brief One relation's identity + data state at an instant.
struct RelationState {
  bool exists = false;
  uint64_t uid = 0;
  uint64_t data_generation = 0;
  size_t size = 0;

  bool operator==(const RelationState& o) const {
    return exists == o.exists && uid == o.uid &&
           data_generation == o.data_generation && size == o.size;
  }
  bool operator!=(const RelationState& o) const { return !(*this == o); }
};

/// \brief Current state of `pred` in `db`.
RelationState StateOf(const storage::Database& db, Symbol pred);

/// \brief State of every relation in `db`; the pre-run snapshot Record()
/// diffs against. O(#relations), no row data copied.
using DbSnapshot = std::map<Symbol, RelationState>;
DbSnapshot SnapshotDatabase(const storage::Database& db);

/// \brief Cumulative cache counters (process lifetime of the cache).
struct ResultCacheStats {
  uint64_t hits = 0;       ///< post-state hits + replays
  uint64_t replays = 0;    ///< pre-state hits served by replaying rows
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;
  uint64_t rejected = 0;   ///< entries larger than a whole shard's budget
  uint64_t bytes = 0;      ///< resident entry bytes right now
  uint64_t entries = 0;    ///< resident entries right now
};

class ResultCache {
 public:
  static constexpr size_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

  explicit ResultCache(size_t max_bytes = kDefaultMaxBytes,
                       size_t num_shards = 8);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// \brief Tries to serve `key` against `db`; fills `*resp` (with
  /// cache_hit set) and returns true on a post-state hit or a pre-state
  /// replay. Counts a miss and returns false otherwise.
  bool TryServe(const std::string& key, storage::Database* db,
                QueryResponse* resp);

  /// \brief Records a finished miss-run: `pre` is the whole-database
  /// snapshot taken before evaluation, `touched` the predicates the query
  /// read or wrote, `resp` the finished response. Replaces any entry
  /// under `key`. Truncated responses and runs that shrank or replaced a
  /// touched relation are not cacheable and are ignored.
  void Record(const std::string& key, const storage::Database& db,
              const DbSnapshot& pre, const std::set<Symbol>& touched,
              const QueryResponse& resp);

  /// \brief Drops every entry (counters are kept).
  void Clear();

  ResultCacheStats Stats() const;

  /// \brief Publishes `cache.hits/replays/misses/evictions/inserts/bytes/
  /// entries` gauges into `registry` (absolute values, like the `db.*`
  /// resource gauges); no-op when null.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  size_t max_bytes() const { return max_bytes_; }

 private:
  /// Per-relation dependency: pre/post states plus the rows the run
  /// appended (used by replay; post_size - pre_size rows in insertion
  /// order — empty for read-only deps).
  struct RelDep {
    Symbol pred = kNoSymbol;
    size_t arity = 0;
    RelationState pre;
    RelationState post;
    std::vector<storage::Tuple> novel_rows;
  };

  struct Entry {
    std::string key;
    std::vector<RelDep> deps;
    QueryResponse response;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // most-recently-used first
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    // Shard-local counters, summed by Stats().
    uint64_t hits = 0, replays = 0, misses = 0, evictions = 0, inserts = 0,
             rejected = 0;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  static size_t EntryBytes(const Entry& e);
  /// Evicts LRU entries until the shard fits its budget. Caller holds
  /// `shard.mu`.
  void EvictLocked(Shard* shard, size_t budget);

  const size_t max_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace graphlog::cache

#endif  // GRAPHLOG_CACHE_RESULT_CACHE_H_
