// ViewCatalog: named materialized views over GraphLog queries, kept
// consistent with the base facts by incremental maintenance.
//
// A view is a lambda-translated GraphLog query whose IDB predicates
// (distinguished + translation auxiliaries) are materialized in the
// Database and whose base-relation states are tracked with the same
// (uid, data_generation, size) quadruples the result cache uses. When
// base facts change, Refresh() picks the cheapest sound maintenance
// path:
//
//   * incremental — when every changed base relation only *grew*
//     (detected by data_generation delta == size delta, so the new rows
//     are exactly the insertion-order suffix) and no affected stratum
//     contains negation or aggregation: the affected strata re-run
//     semi-naively seeded from the delta rows. Under set semantics a
//     delta-substituted occurrence joined against current (old ∪ new)
//     state over-enumerates but never under-enumerates, and relation
//     dedup absorbs the overlap, so the maintained view is set-equal to
//     a from-scratch evaluation.
//   * full — otherwise (shrunk/replaced base, tampered view output, or
//     deletion-sensitive operators in an affected stratum): the view's
//     IDB relations are cleared and the program re-evaluated.
//
// The negation/aggregation fallback is decided *before* any mutation by
// a static pass over the stratification: starting from the changed base
// predicates, strata whose rules read a (transitively) changed predicate
// are potentially affected; if any of their rules negates a subgoal or
// aggregates in the head, insertion deltas can retract derived tuples
// and only full recomputation is sound.
//
// Serving: graphlog::Run() matches a request's canonical fingerprint
// (cache/fingerprint.h) against the catalog, refreshes the view if
// stale, and answers from the materialized distinguished relation.
//
// A catalog is bound to one Database (symbols and uids are meaningless
// across databases); Define() records the database uid and every other
// operation checks it.

#ifndef GRAPHLOG_CACHE_VIEW_CATALOG_H_
#define GRAPHLOG_CACHE_VIEW_CATALOG_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cache/result_cache.h"
#include "datalog/ast.h"
#include "eval/engine.h"
#include "graphlog/api.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace graphlog::cache {

/// \brief A view's static definition; build with graphlog::
/// MakeViewDefinition (the parse/validate/translate half lives in the
/// front-door library so this one depends only on datalog + eval).
struct ViewDefinition {
  std::string name;
  std::string source_text;    ///< the defining GraphLog query text
  /// Canonical fingerprint (CanonicalQueryKey) under which Run() serves
  /// this view; captures the translation/eval options baked into
  /// `program` and `eval`.
  std::string canonical_key;
  /// The combined translated program, query graphs in topological order.
  datalog::Program program;
  Symbol distinguished = kNoSymbol;     ///< the view's output predicate
  std::vector<Symbol> idb_predicates;   ///< all head preds (incl. aux)
  std::vector<Symbol> edb_predicates;   ///< base preds the program reads
  /// Distinguished predicates of every query graph — what Run() counts
  /// as result_tuples (matches RunGraphLog's IdbPredicates sum).
  std::vector<Symbol> result_predicates;
  uint64_t graphs = 0;                  ///< query graphs translated
  /// Engine options used for (re)materialization. Observability members
  /// (tracer/metrics/governor) are not retained by the catalog.
  eval::EvalOptions eval;
};

/// \brief Per-view maintenance counters and freshness.
struct ViewStats {
  uint64_t full_refreshes = 0;         ///< incl. the Define() one
  uint64_t incremental_refreshes = 0;
  uint64_t served = 0;                 ///< queries answered by this view
  uint64_t last_refresh_rows = 0;      ///< novel tuples of the last refresh
  uint64_t last_refresh_ns = 0;
  uint64_t result_rows = 0;            ///< distinguished relation size
  bool fresh = false;                  ///< deps unchanged since last refresh
};

class ViewCatalog {
 public:
  ViewCatalog() = default;
  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// \brief Installs `def` and fully materializes it against `db`.
  /// Replaces an existing view of the same name; fails when another view
  /// already owns one of the definition's IDB predicates (two views may
  /// not write the same relations). `metrics`, when set, receives the
  /// view.* instruments.
  Status Define(ViewDefinition def, storage::Database* db,
                obs::MetricsRegistry* metrics = nullptr);

  /// \brief Forgets the view (its materialized relations stay in the
  /// database; they are ordinary relations). Returns false when unknown.
  bool Drop(std::string_view name);

  /// \brief Refreshes one view: no-op when fresh, incremental when the
  /// base delta is grow-only and maintenance-safe, full otherwise (or
  /// when `force_full`).
  Status Refresh(std::string_view name, storage::Database* db,
                 obs::MetricsRegistry* metrics = nullptr,
                 bool force_full = false);

  /// \brief Refreshes every stale view (definition order).
  Status RefreshAll(storage::Database* db,
                    obs::MetricsRegistry* metrics = nullptr);

  /// \brief Serves a request whose canonical fingerprint is
  /// `canonical_key`: refreshes the matching view if stale, then fills
  /// `*resp` (served_from_view, accumulated materialization stats,
  /// result_tuples = view size). Returns false when no view matches.
  bool TryServe(const std::string& canonical_key, storage::Database* db,
                obs::MetricsRegistry* metrics, QueryResponse* resp);

  /// \brief View names in definition order.
  std::vector<std::string> Names() const;
  const ViewDefinition* Find(std::string_view name) const;
  /// \brief Stats of `name` (freshness recomputed against `db` when
  /// given); nullopt-like default when unknown.
  ViewStats StatsOf(std::string_view name,
                    const storage::Database* db = nullptr) const;
  size_t size() const { return views_.size(); }

 private:
  struct View {
    ViewDefinition def;
    /// Base-relation states at last refresh, keyed by predicate.
    std::map<Symbol, RelationState> edb_state;
    /// View-output states at last refresh; a mismatch (someone else wrote
    /// into our relations) forces a full refresh.
    std::map<Symbol, RelationState> idb_state;
    /// Stats of the Define() materialization merged with every refresh —
    /// the cumulative cost of keeping the view, reported on serves.
    eval::EvalStats accumulated;
    ViewStats stats;
    bool materialized = false;
  };

  /// Classifies the work a refresh needs.
  enum class RefreshKind { kFresh, kIncremental, kFull };
  /// Decides the refresh kind and, for kIncremental, the per-predicate
  /// delta row ranges [old_size, current_size) of changed base relations.
  RefreshKind Classify(const View& v, const storage::Database& db,
                       std::map<Symbol, size_t>* delta_from) const;

  Status FullRefresh(View* v, storage::Database* db,
                     obs::MetricsRegistry* metrics);
  Status IncrementalRefresh(View* v, storage::Database* db,
                            const std::map<Symbol, size_t>& delta_from,
                            obs::MetricsRegistry* metrics);
  /// True when the insertion-only delta of `changed` preds can be
  /// maintained without full recomputation (no negation/aggregation in
  /// any transitively affected stratum).
  bool IncrementalSafe(const View& v, const storage::Database& db,
                       const std::set<Symbol>& changed) const;
  void RecordStates(View* v, const storage::Database& db);
  Status RefreshView(View* v, storage::Database* db,
                     obs::MetricsRegistry* metrics, bool force_full);

  std::vector<View> views_;  // definition order
  uint64_t db_uid_ = 0;      // bound database; 0 = not bound yet
};

}  // namespace graphlog::cache

#endif  // GRAPHLOG_CACHE_VIEW_CATALOG_H_
