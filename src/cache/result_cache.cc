#include "cache/result_cache.h"

#include <algorithm>

#include "cache/fingerprint.h"

namespace graphlog::cache {

using storage::Database;
using storage::Relation;
using storage::Tuple;

RelationState StateOf(const Database& db, Symbol pred) {
  RelationState s;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return s;
  s.exists = true;
  s.uid = rel->uid();
  s.data_generation = rel->data_generation();
  s.size = rel->size();
  return s;
}

DbSnapshot SnapshotDatabase(const Database& db) {
  DbSnapshot snap;
  for (const auto& [name, rel] : db.relations()) {
    RelationState s;
    s.exists = true;
    s.uid = rel.uid();
    s.data_generation = rel.data_generation();
    s.size = rel.size();
    snap.emplace(name, s);
  }
  return snap;
}

ResultCache::ResultCache(size_t max_bytes, size_t num_shards)
    : max_bytes_(max_bytes == 0 ? 1 : max_bytes) {
  const size_t n = num_shards == 0 ? 1 : num_shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[FingerprintKey(key) % shards_.size()];
}
const ResultCache::Shard& ResultCache::ShardFor(const std::string& key) const {
  return *shards_[FingerprintKey(key) % shards_.size()];
}

size_t ResultCache::EntryBytes(const Entry& e) {
  // Deterministic structural estimate, same spirit as
  // Relation::MemoryBytes: payload plus flat per-object overheads.
  size_t bytes = 256 + 2 * e.key.size();
  for (const RelDep& d : e.deps) {
    bytes += 64 + d.novel_rows.size() *
                      (sizeof(Tuple) + d.arity * sizeof(Value));
  }
  const QueryResponse& r = e.response;
  bytes += r.explain.size() + r.truncated_by.size();
  bytes += r.stats.programs.size() * 160;     // rules kept for provenance ids
  bytes += r.trace.spans.size() * 256;        // usually zero (tracing off)
  return bytes;
}

bool ResultCache::TryServe(const std::string& key, Database* db,
                           QueryResponse* resp) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  Entry& entry = *it->second;

  bool post_match = true;
  for (const RelDep& d : entry.deps) {
    if (StateOf(*db, d.pred) != d.post) {
      post_match = false;
      break;
    }
  }
  if (post_match) {
    *resp = entry.response;
    resp->cache_hit = true;
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return true;
  }

  bool pre_match = true;
  for (const RelDep& d : entry.deps) {
    if (StateOf(*db, d.pred) != d.pre) {
      pre_match = false;
      break;
    }
  }
  if (!pre_match) {
    // Entry is stale for this database state; leave it in place — the
    // caller's Record() after re-evaluation overwrites it.
    ++shard.misses;
    return false;
  }

  // Replay: the database is bit-identical to the original pre-run state,
  // so re-inserting the recorded novel rows (original insertion order)
  // reproduces the original run exactly — every row is novel again, so
  // sizes and data_generations advance by the same arithmetic. Relations
  // the run created get fresh uids; re-snapshot the post states so the
  // next lookup post-matches.
  for (RelDep& d : entry.deps) {
    if (!d.post.exists) continue;  // read-only dep on a missing relation
    Relation* rel = nullptr;
    if (auto r = db->Declare(d.pred, d.arity); r.ok()) {
      rel = *r;
    } else {
      // Arity conflict can only mean the pre-state check above raced with
      // a concurrent mutation of this database; treat as a miss.
      ++shard.misses;
      return false;
    }
    for (const Tuple& t : d.novel_rows) rel->Insert(t);
    d.post = StateOf(*db, d.pred);
  }
  *resp = entry.response;
  resp->cache_hit = true;
  ++shard.hits;
  ++shard.replays;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return true;
}

void ResultCache::Record(const std::string& key, const Database& db,
                         const DbSnapshot& pre,
                         const std::set<Symbol>& touched,
                         const QueryResponse& resp) {
  if (resp.truncated || resp.cache_hit || resp.served_from_view) return;

  Entry entry;
  entry.key = key;
  for (Symbol p : touched) {
    RelDep d;
    d.pred = p;
    auto pit = pre.find(p);
    if (pit != pre.end()) d.pre = pit->second;
    d.post = StateOf(db, p);
    if (!d.pre.exists && !d.post.exists) {
      entry.deps.push_back(std::move(d));
      continue;
    }
    // Cacheable runs only ever grow relations in place. Anything else —
    // a shrink, a drop, a replacement under the same name, or data
    // churn beyond pure inserts — means replay could not reproduce the
    // run, so the response is not recorded.
    if (d.pre.exists &&
        (!d.post.exists || d.post.uid != d.pre.uid ||
         d.post.size < d.pre.size)) {
      return;
    }
    const uint64_t novel = d.post.size - d.pre.size;
    if (d.post.data_generation - d.pre.data_generation != novel) return;
    const Relation* rel = db.Find(p);
    d.arity = rel->arity();
    if (novel > 0) {
      d.novel_rows.assign(
          rel->rows().begin() + static_cast<ptrdiff_t>(d.pre.size),
          rel->rows().end());
    }
    entry.deps.push_back(std::move(d));
  }
  entry.response = resp;
  entry.response.cache_hit = false;
  entry.bytes = EntryBytes(entry);

  Shard& shard = ShardFor(key);
  const size_t budget = max_bytes_ / shards_.size();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (entry.bytes > budget) {
    ++shard.rejected;
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.bytes += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.inserts;
  EvictLocked(&shard, budget);
}

void ResultCache::EvictLocked(Shard* shard, size_t budget) {
  while (shard->bytes > budget && shard->lru.size() > 1) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    ++shard->evictions;
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.replays += shard->replays;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.inserts += shard->inserts;
    s.rejected += shard->rejected;
    s.bytes += shard->bytes;
    s.entries += shard->lru.size();
  }
  return s;
}

void ResultCache::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const ResultCacheStats s = Stats();
  registry->gauge("cache.hits")->Set(static_cast<int64_t>(s.hits));
  registry->gauge("cache.replays")->Set(static_cast<int64_t>(s.replays));
  registry->gauge("cache.misses")->Set(static_cast<int64_t>(s.misses));
  registry->gauge("cache.evictions")->Set(static_cast<int64_t>(s.evictions));
  registry->gauge("cache.inserts")->Set(static_cast<int64_t>(s.inserts));
  registry->gauge("cache.bytes")->Set(static_cast<int64_t>(s.bytes));
  registry->gauge("cache.entries")->Set(static_cast<int64_t>(s.entries));
}

}  // namespace graphlog::cache
