#include "cache/view_catalog.h"

#include <utility>

#include "datalog/analysis.h"
#include "eval/compiled_rule.h"
#include "obs/trace.h"

namespace graphlog::cache {

using datalog::Program;
using storage::Database;
using storage::Relation;
using storage::Tuple;

Status ViewCatalog::Define(ViewDefinition def, Database* db,
                           obs::MetricsRegistry* metrics) {
  if (!views_.empty() && db_uid_ != db->uid()) {
    return Status::InvalidArgument(
        "view catalog is bound to a different database");
  }
  for (const View& w : views_) {
    if (w.def.name == def.name) continue;  // replacement is allowed
    for (Symbol p : w.def.idb_predicates) {
      for (Symbol q : def.idb_predicates) {
        if (p == q) {
          return Status::InvalidArgument(
              "view '" + def.name + "' would write relation '" +
              db->symbols().name(q) + "' already owned by view '" +
              w.def.name + "'");
        }
      }
    }
  }
  View v;
  v.def = std::move(def);
  GRAPHLOG_RETURN_NOT_OK(FullRefresh(&v, db, metrics));
  db_uid_ = db->uid();
  for (View& w : views_) {
    if (w.def.name == v.def.name) {
      w = std::move(v);
      return Status::OK();
    }
  }
  views_.push_back(std::move(v));
  return Status::OK();
}

bool ViewCatalog::Drop(std::string_view name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if (it->def.name == name) {
      views_.erase(it);
      return true;
    }
  }
  return false;
}

Status ViewCatalog::Refresh(std::string_view name, Database* db,
                            obs::MetricsRegistry* metrics, bool force_full) {
  for (View& v : views_) {
    if (v.def.name == name) return RefreshView(&v, db, metrics, force_full);
  }
  return Status::NotFound("no view named '" + std::string(name) + "'");
}

Status ViewCatalog::RefreshAll(Database* db, obs::MetricsRegistry* metrics) {
  for (View& v : views_) {
    GRAPHLOG_RETURN_NOT_OK(RefreshView(&v, db, metrics, false));
  }
  return Status::OK();
}

Status ViewCatalog::RefreshView(View* v, Database* db,
                                obs::MetricsRegistry* metrics,
                                bool force_full) {
  if (db->uid() != db_uid_) {
    return Status::InvalidArgument(
        "view catalog is bound to a different database");
  }
  std::map<Symbol, size_t> delta_from;
  const RefreshKind kind =
      force_full ? RefreshKind::kFull : Classify(*v, *db, &delta_from);
  switch (kind) {
    case RefreshKind::kFresh:
      return Status::OK();
    case RefreshKind::kIncremental:
      return IncrementalRefresh(v, db, delta_from, metrics);
    case RefreshKind::kFull:
      return FullRefresh(v, db, metrics);
  }
  return Status::OK();
}

ViewCatalog::RefreshKind ViewCatalog::Classify(
    const View& v, const Database& db,
    std::map<Symbol, size_t>* delta_from) const {
  if (!v.materialized) return RefreshKind::kFull;
  // Someone wrote into the view's output relations (e.g. the same query
  // ran outside the view, or a cache replay landed there): the recorded
  // baseline no longer describes them, so only full recomputation is
  // sound.
  for (const auto& [p, st] : v.idb_state) {
    if (StateOf(db, p) != st) return RefreshKind::kFull;
  }
  std::set<Symbol> changed;
  for (const auto& [p, st] : v.edb_state) {
    const RelationState cur = StateOf(db, p);
    if (cur == st) continue;
    if (!cur.exists) return RefreshKind::kFull;  // base dropped
    if (st.exists && cur.uid != st.uid) return RefreshKind::kFull;
    // Grow-only detection: inserts bump data_generation once per novel
    // row, Clear/TruncateTo bump it without the matching size move, so
    // "generation delta == size delta, size grew" certifies the change
    // is exactly the insertion-order suffix [st.size, cur.size).
    if (cur.size <= st.size) return RefreshKind::kFull;
    if (cur.data_generation - st.data_generation != cur.size - st.size) {
      return RefreshKind::kFull;
    }
    (*delta_from)[p] = st.size;
    changed.insert(p);
  }
  if (changed.empty()) return RefreshKind::kFresh;
  if (!IncrementalSafe(v, db, changed)) return RefreshKind::kFull;
  return RefreshKind::kIncremental;
}

bool ViewCatalog::IncrementalSafe(const View& v, const Database& db,
                                  const std::set<Symbol>& changed) const {
  auto strat = datalog::Stratify(v.def.program, db.symbols());
  if (!strat.ok()) return false;
  const Program& prog = v.def.program;
  // `pc` = predicates whose extension may have changed: the grown bases,
  // plus (stratum by stratum) every head derived from them. Insertion
  // deltas stay insertion deltas through positive rules; through a
  // negated subgoal or an aggregate they can *retract* derived tuples,
  // which incremental insertion cannot express.
  std::set<Symbol> pc = changed;
  for (const auto& group : strat->rule_groups) {
    std::set<int> affected;
    bool grew = true;
    while (grew) {
      grew = false;
      for (int i : group) {
        if (affected.count(i) > 0) continue;
        for (const auto& l : prog.rules[i].body) {
          if (l.is_relational() && pc.count(l.atom.predicate) > 0) {
            affected.insert(i);
            pc.insert(prog.rules[i].head.predicate);
            grew = true;
            break;
          }
        }
      }
    }
    for (int i : affected) {
      if (prog.rules[i].head.has_aggregates()) return false;
      for (const auto& l : prog.rules[i].body) {
        if (l.is_negated_atom() && pc.count(l.atom.predicate) > 0) {
          return false;
        }
      }
    }
  }
  return true;
}

Status ViewCatalog::FullRefresh(View* v, Database* db,
                                obs::MetricsRegistry* metrics) {
  const uint64_t t0 = obs::NowNs();
  for (Symbol p : v->def.idb_predicates) {
    if (Relation* rel = db->FindMutable(p)) rel->Clear();
  }
  GRAPHLOG_ASSIGN_OR_RETURN(
      eval::EvalStats es, eval::Evaluate(v->def.program, db, v->def.eval));
  v->accumulated.Merge(es);
  ++v->stats.full_refreshes;
  v->stats.last_refresh_rows = es.tuples_derived;
  v->stats.last_refresh_ns = obs::NowNs() - t0;
  v->materialized = true;
  RecordStates(v, *db);
  if (metrics != nullptr) {
    metrics->counter("view.refreshes_full")->Increment();
    metrics->histogram("view.refresh_rows")
        ->Observe(static_cast<int64_t>(es.tuples_derived));
    metrics->histogram("view.refresh_ns")
        ->Observe(static_cast<int64_t>(v->stats.last_refresh_ns));
  }
  return Status::OK();
}

Status ViewCatalog::IncrementalRefresh(
    View* v, Database* db, const std::map<Symbol, size_t>& delta_from,
    obs::MetricsRegistry* metrics) {
  const uint64_t t0 = obs::NowNs();
  const SymbolTable& syms = db->symbols();
  const Program& prog = v->def.program;
  GRAPHLOG_ASSIGN_OR_RETURN(datalog::Stratification strat,
                            datalog::Stratify(prog, syms));

  // Delta relations: the insertion-order suffix each changed base
  // relation gained since the last refresh. Lower strata append their
  // own growth here for the strata above.
  std::map<Symbol, Relation> changed;
  for (const auto& [p, from] : delta_from) {
    const Relation* rel = db->Find(p);
    Relation d(rel->arity());
    for (size_t i = from; i < rel->size(); ++i) d.Insert(rel->row(i));
    changed.emplace(p, std::move(d));
  }

  uint64_t novel_total = 0, rounds = 0, firings = 0;
  eval::CardinalityFn card;
  if (v->def.eval.cardinality_join_ordering) {
    card = eval::MakeDbCardinality(db);
  }

  for (const auto& group : strat.rule_groups) {
    std::map<int, eval::CompiledRule> compiled;
    std::map<Symbol, size_t> head_pre;  // pre-refresh sizes of local heads
    for (int i : group) {
      GRAPHLOG_ASSIGN_OR_RETURN(
          eval::CompiledRule c,
          eval::CompiledRule::Compile(prog.rules[i], syms, card));
      compiled.emplace(i, std::move(c));
      GRAPHLOG_ASSIGN_OR_RETURN(
          Relation * rel,
          db->Declare(prog.rules[i].head.predicate,
                      prog.rules[i].head.arity()));
      head_pre.emplace(prog.rules[i].head.predicate, rel->size());
    }

    // Round 1 substitutes the external deltas (grown bases and lower
    // strata); later rounds this stratum's own growth — classic
    // semi-naive, seeded from the delta instead of the full extension.
    // The delta-substituted occurrence joins against *current* (old plus
    // new) state everywhere else, which over-enumerates combinations of
    // old rows already derived — dedup absorbs those — but covers every
    // combination involving at least one new row.
    const std::map<Symbol, Relation>* source = &changed;
    std::map<Symbol, Relation> frontier;
    while (true) {
      struct Task {
        int rule;
        Symbol pred;
        int occ;
      };
      std::vector<Task> tasks;
      for (int i : group) {
        const eval::CompiledRule& c = compiled.at(i);
        for (const auto& [p, d] : *source) {
          if (d.empty()) continue;
          for (int occ : c.OccurrencesOf(p)) {
            if (c.has_aggregates()) {
              // IncrementalSafe() bars aggregate rules from reading any
              // changed predicate; reaching here means the safety pass
              // and the execution pass disagree.
              return Status::Internal(
                  "incremental view maintenance reached an aggregate rule");
            }
            tasks.push_back({i, p, occ});
          }
        }
      }
      if (tasks.empty()) break;
      ++rounds;
      std::map<Symbol, Relation> next;
      for (const auto& [h, _] : head_pre) {
        next.emplace(h, Relation(db->Find(h)->arity()));
      }
      size_t added = 0;
      for (const Task& task : tasks) {
        const eval::CompiledRule& c = compiled.at(task.rule);
        const std::map<Symbol, Relation>& deltas = *source;
        eval::RelationResolver resolver =
            [&deltas, db, &task](Symbol pred,
                                 int occurrence) -> const Relation* {
          if (pred == task.pred && occurrence == task.occ) {
            auto it = deltas.find(pred);
            return it == deltas.end() ? nullptr : &it->second;
          }
          return db->Find(pred);
        };
        // Buffer derivations: the plan may read the very head relation
        // it grows (self-joins), and Insert invalidates live probes.
        std::vector<Tuple> derived;
        c.Execute(resolver, [&](const std::vector<Value>& slots) {
          ++firings;
          derived.push_back(c.EmitHead(slots));
        });
        Relation* head_rel = db->FindMutable(c.head_predicate());
        Relation* next_rel = &next.at(c.head_predicate());
        for (Tuple& t : derived) {
          if (head_rel->Insert(t)) {
            ++added;
            next_rel->Insert(std::move(t));
          }
        }
      }
      novel_total += added;
      frontier = std::move(next);
      source = &frontier;
      if (added == 0) break;
    }

    // This stratum's growth is the delta the strata above maintain from.
    for (const auto& [h, pre] : head_pre) {
      const Relation* rel = db->Find(h);
      if (rel->size() <= pre) continue;
      Relation d(rel->arity());
      for (size_t i = pre; i < rel->size(); ++i) d.Insert(rel->row(i));
      changed.insert_or_assign(h, std::move(d));
    }
  }

  eval::EvalStats es;
  es.iterations = rounds;
  es.rule_firings = firings;
  es.tuples_derived = novel_total;
  v->accumulated.Merge(es);
  ++v->stats.incremental_refreshes;
  v->stats.last_refresh_rows = novel_total;
  v->stats.last_refresh_ns = obs::NowNs() - t0;
  RecordStates(v, *db);
  if (metrics != nullptr) {
    metrics->counter("view.refreshes_incremental")->Increment();
    metrics->histogram("view.refresh_rows")
        ->Observe(static_cast<int64_t>(novel_total));
    metrics->histogram("view.refresh_ns")
        ->Observe(static_cast<int64_t>(v->stats.last_refresh_ns));
  }
  return Status::OK();
}

void ViewCatalog::RecordStates(View* v, const Database& db) {
  v->edb_state.clear();
  v->idb_state.clear();
  for (Symbol p : v->def.edb_predicates) {
    v->edb_state.emplace(p, StateOf(db, p));
  }
  for (Symbol p : v->def.idb_predicates) {
    v->idb_state.emplace(p, StateOf(db, p));
  }
  uint64_t rows = 0;
  for (Symbol p : v->def.result_predicates) {
    const Relation* rel = db.Find(p);
    if (rel != nullptr) rows += rel->size();
  }
  v->stats.result_rows = rows;
  v->stats.fresh = true;
}

bool ViewCatalog::TryServe(const std::string& canonical_key, Database* db,
                           obs::MetricsRegistry* metrics,
                           QueryResponse* resp) {
  for (View& v : views_) {
    if (v.def.canonical_key != canonical_key) continue;
    if (db->uid() != db_uid_) return false;
    // A failed refresh falls back to normal evaluation (the caller will
    // then write into the view's relations, which Classify() detects and
    // answers with a full refresh next time).
    if (!RefreshView(&v, db, metrics, false).ok()) return false;
    resp->stats.datalog = v.accumulated;
    resp->stats.programs = v.def.program;
    resp->stats.graphs_translated = v.def.graphs;
    uint64_t rows = 0;
    for (Symbol p : v.def.result_predicates) {
      const Relation* rel = db->Find(p);
      if (rel != nullptr) rows += rel->size();
    }
    resp->stats.result_tuples = rows;
    resp->served_from_view = true;
    resp->explain =
        "served from materialized view '" + v.def.name + "'\n";
    ++v.stats.served;
    v.stats.result_rows = rows;
    if (metrics != nullptr) metrics->counter("view.served")->Increment();
    return true;
  }
  return false;
}

std::vector<std::string> ViewCatalog::Names() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const View& v : views_) out.push_back(v.def.name);
  return out;
}

const ViewDefinition* ViewCatalog::Find(std::string_view name) const {
  for (const View& v : views_) {
    if (v.def.name == name) return &v.def;
  }
  return nullptr;
}

ViewStats ViewCatalog::StatsOf(std::string_view name,
                               const Database* db) const {
  for (const View& v : views_) {
    if (v.def.name != name) continue;
    ViewStats s = v.stats;
    if (db != nullptr) {
      std::map<Symbol, size_t> scratch;
      s.fresh = Classify(v, *db, &scratch) == RefreshKind::kFresh;
    }
    return s;
  }
  return ViewStats{};
}

}  // namespace graphlog::cache
