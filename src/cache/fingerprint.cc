#include "cache/fingerprint.h"

namespace graphlog::cache {

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;  // a whitespace/comment run awaits emission
  size_t i = 0;
  auto emit = [&](char c) {
    if (pending_space) {
      if (!out.empty()) out += ' ';
      pending_space = false;
    }
    out += c;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      // String literal: copy verbatim through the closing quote; a '\'
      // escapes the next byte (matching the lexer), so an escaped quote
      // does not terminate the literal.
      emit('"');
      ++i;
      while (i < text.size()) {
        const char d = text[i];
        out += d;
        ++i;
        if (d == '\\' && i < text.size()) {
          out += text[i];
          ++i;
          continue;
        }
        if (d == '"') break;
      }
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
      // Comment to end of line; counts as whitespace.
      while (i < text.size() && text[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      pending_space = true;
      ++i;
      continue;
    }
    emit(c);
    ++i;
  }
  return out;
}

std::string CanonicalQueryKey(std::string_view text,
                              const QueryKeyOptions& options) {
  std::string key = "v1;lang=";
  key += std::to_string(options.language);
  key += ";strategy=";
  key += std::to_string(static_cast<int>(options.strategy));
  key += ";card=";
  key += options.cardinality_join_ordering ? '1' : '0';
  key += ";maxit=";
  key += std::to_string(options.max_iterations);
  key += ";magic=";
  key += options.specialize_bound_closures ? '1' : '0';
  key += ";text=";
  key += NormalizeQueryText(text);
  return key;
}

uint64_t FingerprintKey(std::string_view canonical_key) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : canonical_key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace graphlog::cache
