// Canonical query fingerprinting for the result cache and the view
// catalog.
//
// Two requests should share a cache entry exactly when they denote the
// same computation. The canonical key is therefore built from:
//   * the *normalized* program text — comments stripped, whitespace runs
//     collapsed to one space (but preserved verbatim inside string
//     literals, where whitespace is data), and
//   * every option that can change the materialized result or its
//     insertion order: the source language, the evaluation strategy, the
//     join-ordering mode, max_iterations, and the bound-closure
//     specialization rewrite.
//
// Deliberately excluded: num_threads (the engine's partition-ordered
// merge makes results bit-identical across lane counts), and every
// observability knob (tracing/explain/metrics/slow-log change what is
// *recorded*, never what is *computed*).
//
// The canonical key is used for exact-match equality — a 64-bit hash
// alone could silently serve a colliding query's results, so the hash
// (FingerprintKey) only selects shards and prefilters comparisons.

#ifndef GRAPHLOG_CACHE_FINGERPRINT_H_
#define GRAPHLOG_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "eval/engine.h"

namespace graphlog::cache {

/// \brief The result-affecting option subset of a QueryRequest.
struct QueryKeyOptions {
  /// 0 = GraphLog surface text, 1 = raw Datalog (QueryRequest::Language).
  uint8_t language = 0;
  eval::Strategy strategy = eval::Strategy::kSemiNaive;
  bool cardinality_join_ordering = true;
  uint64_t max_iterations = 0;
  bool specialize_bound_closures = false;
};

/// \brief Normalizes program text: strips `#` / `//` comments, collapses
/// whitespace runs to a single space, trims the ends. Content inside
/// double-quoted string literals (including `\`-escapes) is preserved
/// byte-for-byte — `"a  b"` and `"a b"` are different constants.
std::string NormalizeQueryText(std::string_view text);

/// \brief The full canonical key: an options prefix + the normalized
/// text. Key equality is the cache's notion of "same query".
std::string CanonicalQueryKey(std::string_view text,
                              const QueryKeyOptions& options);

/// \brief FNV-1a 64-bit hash of a canonical key; used for shard selection
/// and cheap prefilters, never as the equality witness.
uint64_t FingerprintKey(std::string_view canonical_key);

}  // namespace graphlog::cache

#endif  // GRAPHLOG_CACHE_FINGERPRINT_H_
