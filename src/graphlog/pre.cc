#include "graphlog/pre.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "datalog/lexer.h"

namespace graphlog::gl {

using datalog::Term;
using datalog::Token;
using datalog::TokenKind;

// ---------------------------------------------------------------------------
// Variable analysis

namespace {

void AppendUnique(std::vector<Symbol>* out, Symbol v) {
  if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
}

void CollectAllVars(const PathExpr& e, std::vector<Symbol>* out) {
  if (e.kind == PathExpr::Kind::kAtom) {
    for (const Term& t : e.params) {
      if (t.is_variable()) AppendUnique(out, t.var());
    }
    return;
  }
  for (const PathExpr& c : e.children) CollectAllVars(c, out);
}

}  // namespace

std::vector<Symbol> PathExpr::Variables() const {
  std::vector<Symbol> out;
  CollectAllVars(*this, &out);
  return out;
}

std::vector<Symbol> PathExpr::SharedVariables() const {
  switch (kind) {
    case Kind::kAtom: {
      std::vector<Symbol> out;
      for (const Term& t : params) {
        if (t.is_variable()) AppendUnique(&out, t.var());
      }
      return out;
    }
    case Kind::kEquals:
      return {};
    case Kind::kAlt: {
      // Only variables exported by every branch survive; the rest are
      // ghosts whose scope is this alternation.
      std::vector<Symbol> out;
      if (children.empty()) return out;
      std::vector<Symbol> first = children[0].SharedVariables();
      for (Symbol v : first) {
        bool in_all = true;
        for (size_t i = 1; i < children.size(); ++i) {
          auto vs = children[i].SharedVariables();
          if (std::find(vs.begin(), vs.end(), v) == vs.end()) {
            in_all = false;
            break;
          }
        }
        if (in_all) out.push_back(v);
      }
      return out;
    }
    case Kind::kSeq: {
      std::vector<Symbol> out;
      for (const PathExpr& c : children) {
        for (Symbol v : c.SharedVariables()) AppendUnique(&out, v);
      }
      return out;
    }
    case Kind::kPlus:
    case Kind::kStar:
    case Kind::kOptional:
    case Kind::kInverse:
    case Kind::kNegate:
      return children[0].SharedVariables();
  }
  return {};
}

std::vector<Symbol> PathExpr::GhostVariables() const {
  std::vector<Symbol> all = Variables();
  std::vector<Symbol> shared = SharedVariables();
  std::vector<Symbol> out;
  for (Symbol v : all) {
    if (std::find(shared.begin(), shared.end(), v) == shared.end()) {
      out.push_back(v);
    }
  }
  return out;
}

namespace {

bool HasNegationAnywhere(const PathExpr& e) {
  if (e.kind == PathExpr::Kind::kNegate) return true;
  for (const PathExpr& c : e.children) {
    if (HasNegationAnywhere(c)) return true;
  }
  return false;
}

}  // namespace

bool PathExpr::HasNestedNegation() const {
  const PathExpr& body = kind == Kind::kNegate ? children[0] : *this;
  return HasNegationAnywhere(body);
}

std::string PathExpr::ToString(const SymbolTable& syms) const {
  auto wrap = [&](const PathExpr& c) {
    std::string s = c.ToString(syms);
    if (c.kind == Kind::kAtom || c.kind == Kind::kEquals) return s;
    return "(" + s + ")";
  };
  switch (kind) {
    case Kind::kAtom: {
      std::string s = syms.name(predicate);
      if (!params.empty()) {
        std::vector<std::string> parts;
        for (const Term& t : params) parts.push_back(t.ToString(syms));
        s += "(" + Join(parts, ", ") + ")";
      }
      return s;
    }
    case Kind::kEquals:
      return "=";
    case Kind::kPlus:
      return wrap(children[0]) + "+";
    case Kind::kStar:
      return wrap(children[0]) + "*";
    case Kind::kOptional:
      return wrap(children[0]) + "?";
    case Kind::kInverse:
      return "-" + wrap(children[0]);
    case Kind::kNegate:
      return "!" + wrap(children[0]);
    case Kind::kAlt: {
      std::vector<std::string> parts;
      for (const PathExpr& c : children) parts.push_back(c.ToString(syms));
      return Join(parts, " | ");
    }
    case Kind::kSeq: {
      std::vector<std::string> parts;
      for (const PathExpr& c : children) {
        parts.push_back(c.kind == Kind::kAlt ? "(" + c.ToString(syms) + ")"
                                             : c.ToString(syms));
      }
      return Join(parts, " ");
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Equality elimination

namespace {

PathExpr MakeAltOrSingle(std::vector<PathExpr> alts) {
  if (alts.size() == 1) return std::move(alts[0]);
  return PathExpr::Alt(std::move(alts));
}

ExpandedPre CombineSeq(ExpandedPre a, ExpandedPre b) {
  ExpandedPre out;
  out.has_identity = a.has_identity && b.has_identity;
  for (const PathExpr& x : a.alternatives) {
    for (const PathExpr& y : b.alternatives) {
      std::vector<PathExpr> parts;
      // Flatten nested sequences for readability.
      if (x.kind == PathExpr::Kind::kSeq) {
        parts.insert(parts.end(), x.children.begin(), x.children.end());
      } else {
        parts.push_back(x);
      }
      if (y.kind == PathExpr::Kind::kSeq) {
        parts.insert(parts.end(), y.children.begin(), y.children.end());
      } else {
        parts.push_back(y);
      }
      out.alternatives.push_back(PathExpr::Seq(std::move(parts)));
    }
  }
  if (b.has_identity) {
    for (const PathExpr& x : a.alternatives) out.alternatives.push_back(x);
  }
  if (a.has_identity) {
    for (const PathExpr& y : b.alternatives) out.alternatives.push_back(y);
  }
  return out;
}

}  // namespace

Result<ExpandedPre> ExpandEquality(const PathExpr& e) {
  switch (e.kind) {
    case PathExpr::Kind::kAtom: {
      ExpandedPre out;
      out.alternatives.push_back(e);
      return out;
    }
    case PathExpr::Kind::kEquals: {
      ExpandedPre out;
      out.has_identity = true;
      return out;
    }
    case PathExpr::Kind::kAlt: {
      ExpandedPre out;
      for (const PathExpr& c : e.children) {
        GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(c));
        out.has_identity = out.has_identity || x.has_identity;
        for (PathExpr& a : x.alternatives) {
          out.alternatives.push_back(std::move(a));
        }
      }
      return out;
    }
    case PathExpr::Kind::kSeq: {
      ExpandedPre acc;
      acc.has_identity = true;  // empty sequence == identity
      for (const PathExpr& c : e.children) {
        GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(c));
        acc = CombineSeq(std::move(acc), std::move(x));
      }
      return acc;
    }
    case PathExpr::Kind::kPlus: {
      // (= | A)+ == = | A+  and  (A+)+ == A+.
      GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(e.children[0]));
      ExpandedPre out;
      out.has_identity = x.has_identity;
      if (!x.alternatives.empty()) {
        PathExpr inner = MakeAltOrSingle(std::move(x.alternatives));
        while (inner.kind == PathExpr::Kind::kPlus) {
          inner = std::move(inner.children[0]);
        }
        out.alternatives.push_back(PathExpr::Plus(std::move(inner)));
      }
      return out;
    }
    case PathExpr::Kind::kStar: {
      GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(e.children[0]));
      ExpandedPre out;
      out.has_identity = true;
      if (!x.alternatives.empty()) {
        PathExpr inner = MakeAltOrSingle(std::move(x.alternatives));
        while (inner.kind == PathExpr::Kind::kPlus) {
          inner = std::move(inner.children[0]);
        }
        out.alternatives.push_back(PathExpr::Plus(std::move(inner)));
      }
      return out;
    }
    case PathExpr::Kind::kOptional: {
      GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(e.children[0]));
      x.has_identity = true;
      return x;
    }
    case PathExpr::Kind::kInverse: {
      // -(=) == = ; inversion distributes over union.
      GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(e.children[0]));
      ExpandedPre out;
      out.has_identity = x.has_identity;
      for (PathExpr& a : x.alternatives) {
        out.alternatives.push_back(PathExpr::Inverse(std::move(a)));
      }
      return out;
    }
    case PathExpr::Kind::kNegate:
      return Status::InvalidArgument(
          "ExpandEquality: negation must be stripped by the caller");
  }
  return Status::Internal("unknown PathExpr kind");
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class PreParser {
 public:
  PreParser(const std::vector<Token>& tokens, SymbolTable* syms,
            size_t pos = 0)
      : tokens_(tokens), syms_(syms), pos_(pos) {}

  Result<PathExpr> Parse() {
    GRAPHLOG_ASSIGN_OR_RETURN(PathExpr e, ParseAlt());
    if (!At(TokenKind::kEnd)) {
      return Error("trailing input after path expression");
    }
    return e;
  }

  size_t position() const { return pos_; }

  Result<PathExpr> ParseAlt() {
    std::vector<PathExpr> parts;
    GRAPHLOG_ASSIGN_OR_RETURN(PathExpr first, ParseSeq());
    parts.push_back(std::move(first));
    while (Accept(TokenKind::kPipe)) {
      GRAPHLOG_ASSIGN_OR_RETURN(PathExpr next, ParseSeq());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return PathExpr::Alt(std::move(parts));
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool Accept(TokenKind k) {
    if (!At(k)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Cur().line) +
                              ", column " + std::to_string(Cur().column));
  }

  bool AtPrimaryStart() const {
    switch (Cur().kind) {
      case TokenKind::kIdent:
      case TokenKind::kEq:
      case TokenKind::kLParen:
      case TokenKind::kMinus:
      case TokenKind::kBang:
        return true;
      default:
        return false;
    }
  }

  Result<PathExpr> ParseSeq() {
    std::vector<PathExpr> parts;
    GRAPHLOG_ASSIGN_OR_RETURN(PathExpr first, ParsePostfix());
    parts.push_back(std::move(first));
    while (AtPrimaryStart()) {
      GRAPHLOG_ASSIGN_OR_RETURN(PathExpr next, ParsePostfix());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return PathExpr::Seq(std::move(parts));
  }

  Result<PathExpr> ParsePostfix() {
    GRAPHLOG_ASSIGN_OR_RETURN(PathExpr e, ParsePrefix());
    while (true) {
      if (Accept(TokenKind::kPlus)) {
        e = PathExpr::Plus(std::move(e));
      } else if (Accept(TokenKind::kStar)) {
        e = PathExpr::Star(std::move(e));
      } else if (Accept(TokenKind::kQuestion)) {
        e = PathExpr::Optional(std::move(e));
      } else {
        break;
      }
    }
    return e;
  }

  Result<PathExpr> ParsePrefix() {
    if (Accept(TokenKind::kMinus)) {
      GRAPHLOG_ASSIGN_OR_RETURN(PathExpr e, ParsePostfix());
      return PathExpr::Inverse(std::move(e));
    }
    if (Accept(TokenKind::kBang)) {
      GRAPHLOG_ASSIGN_OR_RETURN(PathExpr e, ParsePostfix());
      return PathExpr::Negate(std::move(e));
    }
    return ParsePrimary();
  }

  Result<PathExpr> ParsePrimary() {
    if (Accept(TokenKind::kEq)) return PathExpr::Equals();
    if (Accept(TokenKind::kLParen)) {
      GRAPHLOG_ASSIGN_OR_RETURN(PathExpr e, ParseAlt());
      if (!Accept(TokenKind::kRParen)) return Error("expected ')'");
      return e;
    }
    if (!At(TokenKind::kIdent)) {
      return Error("expected predicate, '=', or '(' in path expression");
    }
    Token ident = Cur();
    ++pos_;
    PathExpr atom = PathExpr::Atom(syms_->Intern(ident.text));
    // A parameter list must open *immediately* after the identifier
    // (no whitespace): `p(D)` is an atom with parameters, `p (D)` would be
    // a composition — which is ill-formed since (D) is not a p.r.e., but
    // `p (q)` composes p with q.
    bool adjacent =
        At(TokenKind::kLParen) && Cur().line == ident.line &&
        Cur().column == ident.column + static_cast<int>(ident.text.size());
    if (adjacent) {
      ++pos_;  // '('
      if (!Accept(TokenKind::kRParen)) {
        do {
          GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
          atom.params.push_back(t);
        } while (Accept(TokenKind::kComma));
        if (!Accept(TokenKind::kRParen)) {
          return Error("expected ')' after parameters");
        }
      }
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kVariable)) {
      std::string name = Cur().text;
      ++pos_;
      if (name == "_") return Term::Wildcard();
      return Term::Var(syms_->Intern(name));
    }
    if (At(TokenKind::kIdent) || At(TokenKind::kString)) {
      Symbol s = syms_->Intern(Cur().text);
      ++pos_;
      return Term::Const(Value::Sym(s));
    }
    if (At(TokenKind::kInt)) {
      int64_t v = Cur().int_value;
      ++pos_;
      return Term::Const(Value::Int(v));
    }
    if (At(TokenKind::kFloat)) {
      double v = Cur().float_value;
      ++pos_;
      return Term::Const(Value::Double(v));
    }
    return Error("expected parameter term");
  }

  const std::vector<Token>& tokens_;
  SymbolTable* syms_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpr> ParsePathExpr(std::string_view text, SymbolTable* syms) {
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                            datalog::Tokenize(text));
  PreParser p(tokens, syms);
  return p.Parse();
}

Result<PathExpr> ParsePathExprTokens(const std::vector<Token>& tokens,
                                     size_t* pos, SymbolTable* syms) {
  PreParser p(tokens, syms, *pos);
  GRAPHLOG_ASSIGN_OR_RETURN(PathExpr e, p.ParseAlt());
  *pos = p.position();
  return e;
}

}  // namespace graphlog::gl
