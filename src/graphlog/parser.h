// Textual surface syntax for graphical queries.
//
// The paper's prototype is a visual editor (Section 5); this parser is its
// textual stand-in: each `query` block is one query graph drawn in words.
//
//   query not-desc-of {
//     node P2 [person];
//     edge P1 -> P3 : descendant+;
//     edge P2 -> P3 : !descendant+;
//     distinguished P1 -> P3 : not-desc-of(P2);
//   }
//
//   query feasible {
//     edge F1 -> A1 : arrival;
//     edge F2 -> D2 : departure;
//     edge A1 -> D2 : <;                      // comparison edge
//     edge F1 -> C : to;
//     edge F2 -> C : from;
//     distinguished F1 -> F2 : feasible;
//   }
//
//   query earlier-start {
//     summarize E = max<sum<D>> over affects-d(D);
//     distinguished T1 -> T2 : earlier-start(E);
//   }
//
// Statements:
//   node <endpoint> [ '[' [!]pred {, [!]pred} ']' ] ';'   node + predicates
//   edge <endpoint> -> <endpoint> : <p.r.e. | cmp-op> ';'
//   where <builtin literal> {, <builtin literal>} ';'      comparisons and
//                                                          X := arithmetic
//   summarize VAR = AGG<AGG<VAR>> over <base literal> ';'
//   distinguished <endpoint> -> <endpoint> : name[(params)] ';'
//
// An <endpoint> is a term (variable or constant) or a parenthesized term
// sequence; nodes are identified by their label, so mentioning the same
// label twice refers to the same node (the one-to-one correspondence the
// paper recommends in footnote 2).

#ifndef GRAPHLOG_GRAPHLOG_PARSER_H_
#define GRAPHLOG_GRAPHLOG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "common/symbol_table.h"
#include "graphlog/query_graph.h"

namespace graphlog::gl {

/// \brief Parses a sequence of `query` blocks into a GraphicalQuery.
/// The result is parsed only; call ValidateGraphicalQuery (or just
/// Translate / the engine, which validate) before use.
Result<GraphicalQuery> ParseGraphicalQuery(std::string_view text,
                                           SymbolTable* syms);

/// \brief Parses a single `query` block.
Result<QueryGraph> ParseQueryGraph(std::string_view text, SymbolTable* syms);

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_PARSER_H_
