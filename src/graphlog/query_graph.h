// Query graphs and graphical queries (Definitions 2.2 - 2.7).
//
// A QueryGraph is a graph pattern: nodes labeled by sequences of terms
// (variables, per the paper; constants are also allowed, as the prototype's
// Rome/Tokyo query of Figure 12 requires), edges labeled by path regular
// expressions, and one distinguished edge labeled by a positive non-closure
// literal that defines a new relation whenever the pattern matches.
//
// Beyond the paper's core we support, as explicit extensions used by the
// paper's own examples:
//   * node predicates — unary literals attached to nodes (person, capital),
//   * comparison edges — edges labeled <, <=, >, >=, =, != between value
//     nodes (Figure 4's "arrival before departure"),
//   * constraint literals — rule-level builtins (Figure 11's arithmetic),
//   * a path-summarization spec on the distinguished edge (Section 4).
//
// A GraphicalQuery is a set of query graphs; it is a valid GraphLog
// expression when its dependence graph (Definition 2.6) is acyclic
// (Definition 2.7).

#ifndef GRAPHLOG_GRAPHLOG_QUERY_GRAPH_H_
#define GRAPHLOG_GRAPHLOG_QUERY_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"
#include "graphlog/pre.h"

namespace graphlog::gl {

/// \brief A unary literal attached to a node (e.g. person, capital).
struct NodePredicate {
  bool positive = true;
  Symbol predicate = kNoSymbol;
};

/// \brief A pattern node: a sequence of terms plus node predicates.
struct QueryNode {
  std::vector<datalog::Term> label;
  std::vector<NodePredicate> predicates;

  size_t arity() const { return label.size(); }
};

/// \brief A non-distinguished pattern edge labeled by a p.r.e., or a
/// comparison edge.
struct QueryEdge {
  int from = 0;  ///< index into QueryGraph::nodes
  int to = 0;

  /// When set, this is a comparison edge: label is the operator applied
  /// componentwise between the endpoint labels (Definition 2.4 case 2
  /// generalized to all comparison operators).
  std::optional<datalog::CmpOp> comparison;

  /// Otherwise the edge is labeled by this path regular expression
  /// (a plain literal and a closure literal are the special cases
  /// PathExpr::kAtom and kPlus(kAtom)).
  PathExpr expr;
};

/// \brief Path summarization attached to a distinguished edge (Section 4):
/// "output_var is the <across> over all paths of the <along> of the values
/// of value position along a <base>-path".
struct PathSummarySpec {
  datalog::AggKind along = datalog::AggKind::kSum;   ///< per-path fold
  datalog::AggKind across = datalog::AggKind::kMin;  ///< across paths
  PathExpr base;          ///< kAtom with exactly one variable parameter
  Symbol value_var = kNoSymbol;   ///< the summed variable in `base`
  Symbol output_var = kNoSymbol;  ///< receives the summarized value
};

/// \brief The distinguished edge: defines predicate(from.., to.., params..).
///
/// Parameters are head terms: plain terms, or aggregates (Section 4), e.g.
/// `distinguished R -> C : total(sum<V>)` groups by the endpoint labels
/// and sums V over the pattern's matches. A query graph whose
/// distinguished edge aggregates must have exactly one rule variant (no
/// identity alternatives from =, *, ? on its edges).
struct DistinguishedEdge {
  int from = 0;
  int to = 0;
  Symbol predicate = kNoSymbol;
  std::vector<datalog::HeadTerm> params;

  bool has_aggregates() const {
    for (const datalog::HeadTerm& h : params) {
      if (h.is_aggregate) return true;
    }
    return false;
  }
};

/// \brief One query graph (Definition 2.3).
struct QueryGraph {
  std::vector<QueryNode> nodes;
  std::vector<QueryEdge> edges;
  DistinguishedEdge distinguished;
  /// Rule-level builtin constraints (comparisons / assignments).
  std::vector<datalog::Literal> constraints;
  /// Optional summarization; when set, `edges` must form the closure base
  /// context and the output variable appears in distinguished.params.
  std::optional<PathSummarySpec> summary;

  /// \brief Pretty-prints the pattern (a textual stand-in for drawing it).
  std::string ToString(const SymbolTable& syms) const;
};

/// \brief A graphical query: a set of query graphs (Definition 2.5).
struct GraphicalQuery {
  std::vector<QueryGraph> graphs;

  /// \brief IDB predicates: labels of distinguished edges (Definition 2.5).
  std::vector<Symbol> IdbPredicates() const;

  /// \brief EDB predicates: all others used on edges/nodes.
  std::vector<Symbol> EdbPredicates() const;

  std::string ToString(const SymbolTable& syms) const;
};

/// \brief Validates a single query graph:
///  * no isolated nodes; node labels non-empty; indices in range,
///  * the distinguished edge label is a positive non-closure literal by
///    construction; its predicate must not also label a non-distinguished
///    edge *of arity-incompatible shape* (arity checks happen at
///    translation),
///  * closure/p.r.e. edges connect equal-arity endpoints (Definition 2.3);
///    plain (possibly inverted, possibly negated) literals may connect any
///    arities,
///  * negation appears only outermost in edge labels (footnote 4),
///  * ghost variables never occur outside their alternation's scope.
Status ValidateQueryGraph(const QueryGraph& g, const SymbolTable& syms);

/// \brief Builds the dependence graph of the query (Definition 2.6) and
/// checks it is acyclic (Definition 2.7), after validating each graph.
Status ValidateGraphicalQuery(const GraphicalQuery& q,
                              const SymbolTable& syms);

/// \brief Edges q -> p of the dependence graph (Definition 2.6).
std::vector<std::pair<Symbol, Symbol>> DependenceEdges(
    const GraphicalQuery& q);

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_QUERY_GRAPH_H_
