// Deprecated wrappers over the unified API (graphlog/api.h). The pipeline
// itself lives in graphlog/api.cc.

#include "graphlog/engine.h"

namespace graphlog::gl {

using storage::Database;

namespace {

Result<QueryStats> RunAndTakeStats(QueryRequest req, Database* db) {
  GRAPHLOG_ASSIGN_OR_RETURN(QueryResponse resp, Run(req, db));
  return std::move(resp.stats);
}

}  // namespace

// The definitions below implement the deprecated surface; suppress the
// self-referential warnings.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

Result<QueryStats> EvaluateGraphicalQuery(const GraphicalQuery& q,
                                          Database* db,
                                          const eval::EvalOptions& options) {
  QueryRequest req = QueryRequest::Graphical(q);
  req.options.eval = options;
  return RunAndTakeStats(std::move(req), db);
}

Result<QueryStats> EvaluateGraphicalQuery(const GraphicalQuery& q,
                                          Database* db,
                                          const GraphLogOptions& options) {
  QueryRequest req = QueryRequest::Graphical(q);
  req.options.eval = options.eval;
  req.options.translation.specialize_bound_closures =
      options.specialize_bound_closures;
  return RunAndTakeStats(std::move(req), db);
}

Result<QueryStats> EvaluateGraphLogText(std::string_view text, Database* db,
                                        const eval::EvalOptions& options) {
  QueryRequest req = QueryRequest::GraphLog(std::string(text));
  req.options.eval = options;
  return RunAndTakeStats(std::move(req), db);
}

#pragma GCC diagnostic pop

}  // namespace graphlog::gl
