#include "graphlog/engine.h"

#include <algorithm>
#include <map>
#include <set>

#include "aggr/path_summary.h"
#include "eval/provenance.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "translate/magic_tc.h"

namespace graphlog::gl {

using datalog::Term;
using storage::Database;
using storage::Relation;
using storage::Tuple;

namespace {

/// Orders graphs so every graph runs after all graphs defining the IDB
/// predicates it uses (Kahn's algorithm over the graph-level dependence;
/// acyclicity was validated).
Result<std::vector<int>> TopoOrderGraphs(const GraphicalQuery& q) {
  std::vector<Symbol> idb_list = q.IdbPredicates();
  std::set<Symbol> idb(idb_list.begin(), idb_list.end());

  // Predicates used by each graph.
  auto deps = DependenceEdges(q);
  std::map<Symbol, std::set<Symbol>> uses;  // head -> used IDB preds
  for (const auto& [from, to] : deps) {
    if (idb.count(from) > 0) uses[to].insert(from);
  }

  std::vector<int> order;
  std::set<Symbol> done_preds;
  std::vector<bool> emitted(q.graphs.size(), false);
  // A predicate is done when all graphs defining it have run.
  while (order.size() < q.graphs.size()) {
    bool progress = false;
    // First emit every ready graph.
    for (size_t i = 0; i < q.graphs.size(); ++i) {
      if (emitted[i]) continue;
      const std::set<Symbol>& u = uses[q.graphs[i].distinguished.predicate];
      bool ready = std::all_of(u.begin(), u.end(), [&](Symbol p) {
        return done_preds.count(p) > 0;
      });
      if (ready) {
        emitted[i] = true;
        order.push_back(static_cast<int>(i));
        progress = true;
      }
    }
    // Then mark fully-defined predicates done.
    for (Symbol p : idb) {
      if (done_preds.count(p) > 0) continue;
      bool all = true;
      for (size_t i = 0; i < q.graphs.size(); ++i) {
        if (q.graphs[i].distinguished.predicate == p && !emitted[i]) {
          all = false;
          break;
        }
      }
      if (all) done_preds.insert(p);
    }
    if (!progress) {
      return Status::CyclicDependence(
          "could not order query graphs (cyclic dependence)");
    }
  }
  return order;
}

/// Evaluates a summarization graph (Section 4).
Status RunSummaryGraph(const QueryGraph& g, Database* db,
                       QueryStats* stats) {
  const PathSummarySpec& spec = *g.summary;
  const SymbolTable& syms = db->symbols();

  if (!g.edges.empty() || !g.constraints.empty()) {
    return Status::Unsupported(
        "a summarization query graph may contain only the summarized "
        "distinguished edge");
  }
  const QueryNode& from = g.nodes[g.distinguished.from];
  const QueryNode& to = g.nodes[g.distinguished.to];
  if (from.arity() != 1 || to.arity() != 1) {
    return Status::Unsupported(
        "summarization endpoints must be single-variable nodes");
  }
  if (g.distinguished.params.size() != 1 ||
      g.distinguished.params[0].is_aggregate ||
      !g.distinguished.params[0].term.is_variable() ||
      g.distinguished.params[0].term.var() != spec.output_var) {
    return Status::InvalidArgument(
        "summarized distinguished edge must carry exactly the output "
        "variable as its parameter");
  }

  const Relation* base = db->Find(spec.base.predicate);
  if (base == nullptr) {
    return Status::NotFound("summarization base relation '" +
                            syms.name(spec.base.predicate) +
                            "' does not exist");
  }
  if (base->arity() != 2 + spec.base.params.size()) {
    return Status::ArityMismatch(
        "summarization base literal arity mismatch for '" +
        syms.name(spec.base.predicate) + "'");
  }

  // Restrict the base by any constant parameters, and locate the weight
  // column (the summed variable's position).
  uint32_t weight_col = 0;
  Relation filtered(base->arity());
  const Relation* effective = base;
  bool need_filter = false;
  for (size_t i = 0; i < spec.base.params.size(); ++i) {
    if (spec.base.params[i].is_constant()) need_filter = true;
  }
  if (need_filter) {
    for (const Tuple& t : base->rows()) {
      bool keep = true;
      for (size_t i = 0; i < spec.base.params.size(); ++i) {
        const Term& p = spec.base.params[i];
        if (p.is_constant() && !(t[2 + i] == p.value())) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.Insert(t);
    }
    effective = &filtered;
  }
  for (size_t i = 0; i < spec.base.params.size(); ++i) {
    const Term& p = spec.base.params[i];
    if (p.is_variable() && p.var() == spec.value_var) {
      weight_col = static_cast<uint32_t>(2 + i);
    }
  }

  aggr::PathSummaryOptions options;
  options.along = spec.along;
  options.across = spec.across;
  options.weight_column = weight_col;
  GRAPHLOG_ASSIGN_OR_RETURN(Relation summary,
                            aggr::PathSummarize(*effective, options));

  // Materialize under the distinguished predicate, honoring constant
  // endpoints (e.g. `distinguished "source" -> T : dist(E)`).
  GRAPHLOG_ASSIGN_OR_RETURN(
      Relation * out, db->Declare(g.distinguished.predicate, 3));
  const Term& from_t = from.label[0];
  const Term& to_t = to.label[0];
  for (const Tuple& t : summary.rows()) {
    if (from_t.is_constant() && !(t[0] == from_t.value())) continue;
    if (to_t.is_constant() && !(t[1] == to_t.value())) continue;
    if (out->Insert(t)) ++stats->datalog.tuples_derived;
  }
  ++stats->graphs_summarized;
  return Status::OK();
}

}  // namespace

Result<QueryStats> EvaluateGraphicalQuery(const GraphicalQuery& q,
                                          Database* db,
                                          const eval::EvalOptions& options) {
  GraphLogOptions full;
  full.eval = options;
  return EvaluateGraphicalQuery(q, db, full);
}

Result<QueryStats> EvaluateGraphicalQuery(const GraphicalQuery& q,
                                          Database* db,
                                          const GraphLogOptions& options) {
  GRAPHLOG_RETURN_NOT_OK(ValidateGraphicalQuery(q, db->symbols()));
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrderGraphs(q));

  QueryStats stats;
  for (int i : order) {
    const QueryGraph& g = q.graphs[i];
    if (g.summary.has_value()) {
      GRAPHLOG_RETURN_NOT_OK(RunSummaryGraph(g, db, &stats));
      continue;
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Translation t,
                              TranslateQueryGraph(g, &db->symbols()));
    if (options.specialize_bound_closures) {
      GRAPHLOG_ASSIGN_OR_RETURN(
          t.program,
          translate::SpecializeBoundClosures(
              t.program, &db->symbols(), {g.distinguished.predicate}));
    }
    if (options.eval.provenance != nullptr) {
      // Keep justification rule indexes valid into stats.programs.
      options.eval.provenance->set_rule_offset(
          static_cast<int>(stats.programs.size()));
    }
    GRAPHLOG_ASSIGN_OR_RETURN(eval::EvalStats es,
                              eval::Evaluate(t.program, db, options.eval));
    stats.programs.Append(t.program);
    stats.datalog.iterations += es.iterations;
    stats.datalog.rule_firings += es.rule_firings;
    stats.datalog.tuples_derived += es.tuples_derived;
    stats.datalog.strata += es.strata;
    ++stats.graphs_translated;
  }
  for (Symbol p : q.IdbPredicates()) {
    const Relation* rel = db->Find(p);
    if (rel != nullptr) stats.result_tuples += rel->size();
  }
  return stats;
}

Result<QueryStats> EvaluateGraphLogText(std::string_view text, Database* db,
                                        const eval::EvalOptions& options) {
  GRAPHLOG_ASSIGN_OR_RETURN(GraphicalQuery q,
                            ParseGraphicalQuery(text, &db->symbols()));
  return EvaluateGraphicalQuery(q, db, options);
}

}  // namespace graphlog::gl
