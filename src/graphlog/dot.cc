#include "graphlog/dot.h"

#include "common/strings.h"

namespace graphlog::gl {

namespace {

std::string NodeLabel(const QueryNode& n, const SymbolTable& syms) {
  std::vector<std::string> parts;
  for (const datalog::Term& t : n.label) parts.push_back(t.ToString(syms));
  std::string label =
      n.label.size() == 1 ? parts[0] : "(" + Join(parts, ", ") + ")";
  if (!n.predicates.empty()) {
    std::vector<std::string> preds;
    for (const NodePredicate& p : n.predicates) {
      preds.push_back((p.positive ? "" : "¬") + syms.name(p.predicate));
    }
    label += "\\n[" + Join(preds, ", ") + "]";
  }
  return label;
}

/// Whether the expression is a closure (possibly under negation), which
/// the paper draws as a dashed edge.
bool IsClosureLike(const PathExpr& e) {
  const PathExpr* core = &e;
  while (core->kind == PathExpr::Kind::kNegate ||
         core->kind == PathExpr::Kind::kInverse) {
    core = &core->children[0];
  }
  switch (core->kind) {
    case PathExpr::Kind::kPlus:
    case PathExpr::Kind::kStar:
      return true;
    case PathExpr::Kind::kSeq:
    case PathExpr::Kind::kAlt: {
      for (const PathExpr& c : core->children) {
        if (IsClosureLike(c)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

void RenderInto(const QueryGraph& g, const SymbolTable& syms,
                const std::string& prefix, std::string* out) {
  for (size_t i = 0; i < g.nodes.size(); ++i) {
    *out += "    " + prefix + "n" + std::to_string(i) + " [label=\"" +
            EscapeQuoted(NodeLabel(g.nodes[i], syms)) + "\"];\n";
  }
  for (const QueryEdge& e : g.edges) {
    std::string label, style;
    if (e.comparison.has_value()) {
      label = std::string(datalog::CmpOpToString(*e.comparison));
      style = "style=dotted";
    } else {
      bool negated = e.expr.kind == PathExpr::Kind::kNegate;
      label = (negated ? "¬" : "") +
              (negated ? e.expr.children[0] : e.expr).ToString(syms);
      style = IsClosureLike(e.expr) ? "style=dashed" : "style=solid";
      if (negated) style += ", color=red";
    }
    *out += "    " + prefix + "n" + std::to_string(e.from) + " -> " +
            prefix + "n" + std::to_string(e.to) + " [label=\"" +
            EscapeQuoted(label) + "\", " + style + "];\n";
  }
  if (g.summary.has_value()) {
    const PathSummarySpec& s = *g.summary;
    std::string label =
        syms.name(s.output_var) + " = " +
        std::string(datalog::AggKindToString(s.across)) + "<" +
        std::string(datalog::AggKindToString(s.along)) + "<" +
        syms.name(s.value_var) + ">> over " + s.base.ToString(syms) + "+";
    *out += "    " + prefix + "n" + std::to_string(g.distinguished.from) +
            " -> " + prefix + "n" + std::to_string(g.distinguished.to) +
            " [label=\"" + EscapeQuoted(label) +
            "\", style=dashed, color=blue];\n";
  }
  // The distinguished edge: bold, as in Example 2.2.
  std::string dist_label = syms.name(g.distinguished.predicate);
  if (!g.distinguished.params.empty()) {
    std::vector<std::string> parts;
    for (const datalog::HeadTerm& h : g.distinguished.params) {
      parts.push_back(h.ToString(syms));
    }
    dist_label += "(" + Join(parts, ", ") + ")";
  }
  *out += "    " + prefix + "n" + std::to_string(g.distinguished.from) +
          " -> " + prefix + "n" + std::to_string(g.distinguished.to) +
          " [label=\"" + EscapeQuoted(dist_label) +
          "\", style=bold, penwidth=2.5];\n";
  for (const datalog::Literal& l : g.constraints) {
    *out += "    // where " + l.ToString(syms) + "\n";
  }
}

}  // namespace

std::string RenderQueryGraph(const QueryGraph& g, const SymbolTable& syms) {
  std::string out = "digraph query {\n  rankdir=LR;\n";
  RenderInto(g, syms, "", &out);
  out += "}\n";
  return out;
}

std::string RenderGraphicalQuery(const GraphicalQuery& q,
                                 const SymbolTable& syms) {
  std::string out = "digraph graphical_query {\n  rankdir=LR;\n";
  for (size_t i = 0; i < q.graphs.size(); ++i) {
    out += "  subgraph cluster_" + std::to_string(i) + " {\n";
    out += "    label=\"" +
           EscapeQuoted(syms.name(q.graphs[i].distinguished.predicate)) +
           "\";\n";
    RenderInto(q.graphs[i], syms, "g" + std::to_string(i) + "_", &out);
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace graphlog::gl
