// The logical translation function lambda (Definition 2.4), generalized to
// path regular expressions.
//
// A query graph maps to one or more Datalog rules (one per combination of
// identity alternatives contributed by `=`/*/? operators) plus auxiliary
// rules defining:
//   * closure predicates — the TC rule pairs (2)-(3) of Definition 2.4;
//     a closure over predicate `p` is named `p-tc`, matching Figure 3,
//   * composition ("path") predicates for sequenced sub-expressions,
//   * alternation ("alt") predicates, with ghost variables projected away.
//
// Inversion needs no auxiliary predicate: -(E) between U and V is E between
// V and U, recursively.
//
// A graphical query translates to the union of its query graphs' programs
// (Definition 2.5); the result is stratified Datalog whose only recursion
// is through generalized TC rules — i.e. GraphLog lands inside
// STC-DATALOG, which Section 3 shows is no accident.

#ifndef GRAPHLOG_GRAPHLOG_TRANSLATE_H_
#define GRAPHLOG_GRAPHLOG_TRANSLATE_H_

#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"
#include "graphlog/query_graph.h"

namespace graphlog::gl {

/// \brief Output of the translation.
struct Translation {
  datalog::Program program;
  /// Auxiliary predicates introduced (closure / path / alt predicates).
  std::vector<Symbol> aux_predicates;
};

/// \brief Translates a single validated query graph. Fails with
/// kUnsupported when the graph carries a summarization spec (those are
/// evaluated by the summarization operator, not by Datalog — Section 4).
Result<Translation> TranslateQueryGraph(const QueryGraph& g,
                                        SymbolTable* syms);

/// \brief Validates and translates a graphical query; summary graphs are
/// skipped when `skip_summaries` (the engine evaluates them separately),
/// otherwise their presence is an error.
Result<Translation> Translate(const GraphicalQuery& q, SymbolTable* syms,
                              bool skip_summaries = false);

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_TRANSLATE_H_
