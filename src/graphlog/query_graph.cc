#include "graphlog/query_graph.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace graphlog::gl {

using datalog::Term;

namespace {

std::string LabelToString(const std::vector<Term>& label,
                          const SymbolTable& syms) {
  if (label.size() == 1) return label[0].ToString(syms);
  std::vector<std::string> parts;
  for (const Term& t : label) parts.push_back(t.ToString(syms));
  return "(" + Join(parts, ", ") + ")";
}

/// Collects the predicates used by an expression into `out`.
void CollectExprPredicates(const PathExpr& e, std::set<Symbol>* out) {
  if (e.kind == PathExpr::Kind::kAtom) {
    out->insert(e.predicate);
    return;
  }
  for (const PathExpr& c : e.children) CollectExprPredicates(c, out);
}

/// Collects every variable occurrence (with multiplicity) in a term list.
void CountTermVars(const std::vector<Term>& terms,
                   std::map<Symbol, int>* counts) {
  for (const Term& t : terms) {
    if (t.is_variable()) (*counts)[t.var()]++;
  }
}

void CountExprVars(const PathExpr& e, std::map<Symbol, int>* counts) {
  if (e.kind == PathExpr::Kind::kAtom) {
    CountTermVars(e.params, counts);
    return;
  }
  for (const PathExpr& c : e.children) CountExprVars(c, counts);
}

/// Finds every alternation node in `e` and calls `fn(alt)`.
template <typename Fn>
void ForEachAlt(const PathExpr& e, Fn&& fn) {
  if (e.kind == PathExpr::Kind::kAlt) fn(e);
  for (const PathExpr& c : e.children) ForEachAlt(c, fn);
}

}  // namespace

std::string QueryGraph::ToString(const SymbolTable& syms) const {
  std::string out;
  out += "query " + syms.name(distinguished.predicate) + " {\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].predicates.empty()) {
      out += "  node " + LabelToString(nodes[i].label, syms) + " [";
      std::vector<std::string> parts;
      for (const NodePredicate& p : nodes[i].predicates) {
        parts.push_back((p.positive ? "" : "!") + syms.name(p.predicate));
      }
      out += Join(parts, ", ") + "];\n";
    }
  }
  for (const QueryEdge& e : edges) {
    out += "  edge " + LabelToString(nodes[e.from].label, syms) + " -> " +
           LabelToString(nodes[e.to].label, syms) + " : ";
    if (e.comparison.has_value()) {
      out += std::string(datalog::CmpOpToString(*e.comparison));
    } else {
      out += e.expr.ToString(syms);
    }
    out += ";\n";
  }
  for (const datalog::Literal& l : constraints) {
    out += "  where " + l.ToString(syms) + ";\n";
  }
  if (summary.has_value()) {
    out += "  summarize " + syms.name(summary->output_var) + " = " +
           std::string(datalog::AggKindToString(summary->across)) + "<" +
           std::string(datalog::AggKindToString(summary->along)) + "<" +
           syms.name(summary->value_var) + ">> over " +
           summary->base.ToString(syms) + "+;\n";
  }
  out += "  distinguished " + LabelToString(nodes[distinguished.from].label,
                                            syms) +
         " -> " + LabelToString(nodes[distinguished.to].label, syms) + " : " +
         syms.name(distinguished.predicate);
  if (!distinguished.params.empty()) {
    std::vector<std::string> parts;
    for (const datalog::HeadTerm& h : distinguished.params) {
      parts.push_back(h.ToString(syms));
    }
    out += "(" + Join(parts, ", ") + ")";
  }
  out += ";\n}\n";
  return out;
}

std::vector<Symbol> GraphicalQuery::IdbPredicates() const {
  std::set<Symbol> seen;
  std::vector<Symbol> out;
  for (const QueryGraph& g : graphs) {
    if (seen.insert(g.distinguished.predicate).second) {
      out.push_back(g.distinguished.predicate);
    }
  }
  return out;
}

std::vector<Symbol> GraphicalQuery::EdbPredicates() const {
  std::set<Symbol> idb;
  for (const QueryGraph& g : graphs) idb.insert(g.distinguished.predicate);
  std::set<Symbol> used;
  for (const QueryGraph& g : graphs) {
    for (const QueryEdge& e : g.edges) {
      if (!e.comparison.has_value()) CollectExprPredicates(e.expr, &used);
    }
    for (const QueryNode& n : g.nodes) {
      for (const NodePredicate& p : n.predicates) used.insert(p.predicate);
    }
    if (g.summary.has_value()) CollectExprPredicates(g.summary->base, &used);
  }
  std::vector<Symbol> out;
  for (Symbol p : used) {
    if (idb.count(p) == 0) out.push_back(p);
  }
  return out;
}

std::string GraphicalQuery::ToString(const SymbolTable& syms) const {
  std::string out;
  for (const QueryGraph& g : graphs) out += g.ToString(syms);
  return out;
}

Status ValidateQueryGraph(const QueryGraph& g, const SymbolTable& syms) {
  int n = static_cast<int>(g.nodes.size());
  if (n == 0) return Status::InvalidArgument("query graph has no nodes");
  auto in_range = [&](int i) { return i >= 0 && i < n; };

  for (const QueryNode& node : g.nodes) {
    if (node.label.empty()) {
      return Status::InvalidArgument("query node with empty label");
    }
  }
  if (!in_range(g.distinguished.from) || !in_range(g.distinguished.to)) {
    return Status::InvalidArgument("distinguished edge endpoint out of range");
  }

  // No isolated nodes (Definition 2.3): every node touches some edge
  // (including the distinguished one).
  std::vector<bool> touched(n, false);
  touched[g.distinguished.from] = touched[g.distinguished.to] = true;
  for (const QueryEdge& e : g.edges) {
    if (!in_range(e.from) || !in_range(e.to)) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    touched[e.from] = touched[e.to] = true;
  }
  for (int i = 0; i < n; ++i) {
    if (!touched[i]) {
      return Status::InvalidArgument("isolated node in query graph (node " +
                                     std::to_string(i) + ")");
    }
  }

  // Per-edge structural checks.
  for (const QueryEdge& e : g.edges) {
    size_t k1 = g.nodes[e.from].arity();
    size_t k2 = g.nodes[e.to].arity();
    if (e.comparison.has_value()) {
      if (k1 != k2) {
        return Status::ArityMismatch(
            "comparison edge between nodes of different arity");
      }
      continue;
    }
    const PathExpr& expr = e.expr;
    // Negation only outermost (footnote 4 of the paper).
    if (expr.HasNestedNegation()) {
      return Status::UnsafeRule(
          "negation must be the outermost operator of an edge label: " +
          expr.ToString(syms));
    }
    // Plain (possibly negated / inverted) literals may connect nodes of any
    // arities; everything else requires equal-arity endpoints
    // (Definition 2.3's closure-literal restriction, extended to p.r.e.s).
    const PathExpr* core = &expr;
    while (core->kind == PathExpr::Kind::kNegate ||
           core->kind == PathExpr::Kind::kInverse) {
      core = &core->children[0];
    }
    if (core->kind != PathExpr::Kind::kAtom && k1 != k2) {
      return Status::ArityMismatch(
          "path-expression edge between nodes labeled by sequences of "
          "different length: " +
          expr.ToString(syms));
    }
  }

  // Ghost-variable scoping: a variable that occurs in some but not all
  // branches of an alternation must not occur anywhere outside that
  // alternation (Section 2). We count occurrences: ghost var total count
  // in the whole graph must equal its count within the alternation.
  std::map<Symbol, int> total;
  for (const QueryNode& node : g.nodes) CountTermVars(node.label, &total);
  for (const QueryEdge& e : g.edges) {
    if (!e.comparison.has_value()) CountExprVars(e.expr, &total);
  }
  for (const datalog::HeadTerm& h : g.distinguished.params) {
    if (h.is_aggregate) {
      if (h.agg_var != kNoSymbol) total[h.agg_var]++;
    } else if (h.term.is_variable()) {
      total[h.term.var()]++;
    }
  }
  for (const datalog::Literal& l : g.constraints) {
    std::vector<Symbol> vars;
    l.CollectVariables(&vars);
    for (Symbol v : vars) total[v]++;
  }
  if (g.summary.has_value()) {
    CountExprVars(g.summary->base, &total);
    total[g.summary->output_var]++;
  }

  Status ghost_status = Status::OK();
  for (const QueryEdge& e : g.edges) {
    if (e.comparison.has_value()) continue;
    ForEachAlt(e.expr, [&](const PathExpr& alt) {
      if (!ghost_status.ok()) return;
      std::vector<Symbol> ghosts = alt.GhostVariables();
      std::map<Symbol, int> inside;
      CountExprVars(alt, &inside);
      for (Symbol v : ghosts) {
        auto it = total.find(v);
        if (it != total.end() && it->second != inside[v]) {
          ghost_status = Status::GhostVariable(
              "ghost variable '" + syms.name(v) +
              "' escapes its alternation scope in " +
              e.expr.ToString(syms));
          return;
        }
      }
    });
    GRAPHLOG_RETURN_NOT_OK(ghost_status);
  }

  // Summarization well-formedness.
  if (g.summary.has_value()) {
    const PathSummarySpec& s = *g.summary;
    if (s.base.kind != PathExpr::Kind::kAtom) {
      return Status::Unsupported(
          "path summarization base must be a single literal");
    }
    int var_params = 0;
    bool found = false;
    for (const Term& t : s.base.params) {
      if (t.is_variable()) {
        ++var_params;
        if (t.var() == s.value_var) found = true;
      }
    }
    if (!found || var_params != 1) {
      return Status::InvalidArgument(
          "summarization base literal must carry exactly the summed "
          "variable as its parameter");
    }
    bool out_in_params = false;
    for (const datalog::HeadTerm& h : g.distinguished.params) {
      if (!h.is_aggregate && h.term.is_variable() &&
          h.term.var() == s.output_var) {
        out_in_params = true;
      }
    }
    if (!out_in_params) {
      return Status::InvalidArgument(
          "summarization output variable must appear in the distinguished "
          "edge parameters");
    }
  }

  return Status::OK();
}

std::vector<std::pair<Symbol, Symbol>> DependenceEdges(
    const GraphicalQuery& q) {
  std::set<std::pair<Symbol, Symbol>> edges;
  for (const QueryGraph& g : q.graphs) {
    Symbol head = g.distinguished.predicate;
    std::set<Symbol> used;
    for (const QueryEdge& e : g.edges) {
      if (!e.comparison.has_value()) CollectExprPredicates(e.expr, &used);
    }
    for (const QueryNode& n : g.nodes) {
      for (const NodePredicate& p : n.predicates) used.insert(p.predicate);
    }
    if (g.summary.has_value()) CollectExprPredicates(g.summary->base, &used);
    for (Symbol p : used) edges.insert({p, head});
  }
  return std::vector<std::pair<Symbol, Symbol>>(edges.begin(), edges.end());
}

Status ValidateGraphicalQuery(const GraphicalQuery& q,
                              const SymbolTable& syms) {
  if (q.graphs.empty()) {
    return Status::InvalidArgument("graphical query has no query graphs");
  }
  for (const QueryGraph& g : q.graphs) {
    GRAPHLOG_RETURN_NOT_OK(ValidateQueryGraph(g, syms));
  }

  // Acyclic dependence graph (Definition 2.7). DFS cycle detection over
  // the IDB-restricted dependence edges.
  std::vector<Symbol> idb_list = q.IdbPredicates();
  std::set<Symbol> idb(idb_list.begin(), idb_list.end());
  std::map<Symbol, std::vector<Symbol>> succ;
  for (const auto& [from, to] : DependenceEdges(q)) {
    if (idb.count(from) > 0) succ[from].push_back(to);
  }
  std::map<Symbol, int> state;  // 0 unvisited, 1 in-progress, 2 done
  std::vector<std::pair<Symbol, size_t>> stack;
  for (Symbol root : idb) {
    if (state[root] != 0) continue;
    stack.push_back({root, 0});
    state[root] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      auto& next = succ[v];
      if (i < next.size()) {
        Symbol w = next[i++];
        if (idb.count(w) == 0) continue;
        if (state[w] == 1) {
          return Status::CyclicDependence(
              "graphical query has a cyclic dependence graph through '" +
              syms.name(w) + "' (recursion must use closure literals)");
        }
        if (state[w] == 0) {
          state[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        state[v] = 2;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

}  // namespace graphlog::gl
