// Deprecated GraphLog entry points.
//
// The pipeline (validate -> order query graphs -> per graph, translate via
// lambda and run the stratified Datalog engine, or run the
// path-summarization operator) now lives behind the unified
// QueryRequest/QueryResponse API in graphlog/api.h. Everything below is a
// one-line wrapper kept so existing callers migrate incrementally; new
// code should call graphlog::Run().

#ifndef GRAPHLOG_GRAPHLOG_ENGINE_H_
#define GRAPHLOG_GRAPHLOG_ENGINE_H_

#include "common/result.h"
#include "eval/engine.h"
#include "graphlog/api.h"
#include "graphlog/query_graph.h"
#include "storage/database.h"

namespace graphlog::gl {

/// \brief Evaluation knobs for the GraphLog engine.
///
/// \deprecated Merged into graphlog::QueryOptions (api.h), whose nested
/// `eval` / `translation` sections carry these fields; kept only so old
/// call sites compile.
struct [[deprecated(
    "use graphlog::QueryOptions (graphlog/api.h)")]] GraphLogOptions {
  eval::EvalOptions eval;
  /// See QueryOptions::Translation::specialize_bound_closures.
  bool specialize_bound_closures = false;
};

/// \brief Evaluates a graphical query against `db`, materializing each
/// IDB predicate (including translation auxiliaries) as a relation.
///
/// \deprecated Wrapper over graphlog::Run(); use QueryRequest::Graphical.
[[deprecated("use graphlog::Run with QueryRequest::Graphical")]]
Result<QueryStats> EvaluateGraphicalQuery(
    const GraphicalQuery& q, storage::Database* db,
    const eval::EvalOptions& options = {});

/// \brief Overload with the full option set.
///
/// \deprecated Wrapper over graphlog::Run(); use QueryRequest::Graphical.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
[[deprecated("use graphlog::Run with QueryRequest::Graphical")]]
Result<QueryStats> EvaluateGraphicalQuery(const GraphicalQuery& q,
                                          storage::Database* db,
                                          const GraphLogOptions& options);
#pragma GCC diagnostic pop

/// \brief Parses the GraphLog surface syntax and evaluates it.
///
/// \deprecated Wrapper over graphlog::Run(); use QueryRequest::GraphLog.
[[deprecated("use graphlog::Run with QueryRequest::GraphLog")]]
Result<QueryStats> EvaluateGraphLogText(std::string_view text,
                                        storage::Database* db,
                                        const eval::EvalOptions& options = {});

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_ENGINE_H_
