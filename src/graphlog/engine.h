// End-to-end GraphLog query evaluation.
//
// Pipeline: validate (Definitions 2.3 / 2.7) -> order query graphs along
// the dependence graph (Definition 2.6) -> per graph, either translate via
// lambda (Definition 2.4) and run the stratified Datalog engine, or run the
// path-summarization operator (Section 4). Results are materialized into
// the Database under the distinguished-edge predicates.

#ifndef GRAPHLOG_GRAPHLOG_ENGINE_H_
#define GRAPHLOG_GRAPHLOG_ENGINE_H_

#include "common/result.h"
#include "eval/engine.h"
#include "graphlog/query_graph.h"
#include "storage/database.h"

namespace graphlog::gl {

/// \brief Statistics for one graphical-query evaluation.
struct QueryStats {
  eval::EvalStats datalog;       ///< accumulated Datalog engine stats
  uint64_t graphs_translated = 0;
  uint64_t graphs_summarized = 0;
  uint64_t result_tuples = 0;    ///< tuples across all IDB predicates
  /// Every rule the query translated to (in evaluation order) — the rule
  /// universe that provenance justifications index into.
  datalog::Program programs;
};

/// \brief Evaluation knobs for the GraphLog engine.
struct GraphLogOptions {
  eval::EvalOptions eval;
  /// Apply the bound-closure (magic-TC) specialization of
  /// translate/magic_tc.h to each translated graph: closures whose every
  /// use fixes an endpoint constant evaluate as seeded reachability
  /// instead of full closure materialization (the Figure 12 win).
  bool specialize_bound_closures = false;
};

/// \brief Evaluates a graphical query against `db`, materializing each
/// IDB predicate (including translation auxiliaries) as a relation.
Result<QueryStats> EvaluateGraphicalQuery(
    const GraphicalQuery& q, storage::Database* db,
    const eval::EvalOptions& options = {});

/// \brief Overload with the full option set.
Result<QueryStats> EvaluateGraphicalQuery(const GraphicalQuery& q,
                                          storage::Database* db,
                                          const GraphLogOptions& options);

/// \brief Parses the GraphLog surface syntax and evaluates it.
Result<QueryStats> EvaluateGraphLogText(std::string_view text,
                                        storage::Database* db,
                                        const eval::EvalOptions& options = {});

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_ENGINE_H_
