// The unified query API: one request in, one response out.
//
// Historically the front door was a sprawl of overloads —
// gl::EvaluateGraphicalQuery(.., EvalOptions) / (.., GraphLogOptions),
// gl::EvaluateGraphLogText, eval::EvaluateText — with two parallel options
// structs. This header replaces all of them with a single entry point:
//
//   QueryRequest req = QueryRequest::GraphLog(text);
//   req.options.eval.num_threads = 4;
//   req.options.observability.tracing = true;
//   GRAPHLOG_ASSIGN_OR_RETURN(QueryResponse resp, Run(req, &db));
//   // resp.stats, resp.trace.ToJson(), resp.explain
//
// A request names the query (GraphLog surface text, a parsed
// GraphicalQuery, or raw Datalog text) and carries every knob in one
// nested QueryOptions; the response carries the stats, the observability
// artifacts (span tree + metrics, see obs/trace.h), and the EXPLAIN
// rendering when requested. The deprecated free-function sprawl is gone.
//
// For concurrent callers, the server layer (server/server.h, re-exported
// at the bottom of this header so one include is the whole public
// surface) wraps the same pipeline in Server/Session handles with
// epoch-snapshot isolation; Run() itself is a thin wrapper over a
// single-session in-process server.

#ifndef GRAPHLOG_GRAPHLOG_API_H_
#define GRAPHLOG_GRAPHLOG_API_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "eval/engine.h"
#include "graphlog/query_graph.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "storage/database.h"

namespace graphlog {

namespace cache {
class ResultCache;       // cache/result_cache.h
class ViewCatalog;       // cache/view_catalog.h
struct ViewDefinition;   // cache/view_catalog.h
}  // namespace cache

namespace gl {

/// \brief Statistics for one query evaluation.
struct QueryStats {
  eval::EvalStats datalog;       ///< accumulated Datalog engine stats
  uint64_t graphs_translated = 0;
  uint64_t graphs_summarized = 0;
  uint64_t result_tuples = 0;    ///< tuples across all IDB predicates
  /// Every rule the query translated to (in evaluation order) — the rule
  /// universe that provenance justifications index into.
  datalog::Program programs;
};

}  // namespace gl

/// \brief Every knob of a query evaluation, in one place.
///
/// The former gl::GraphLogOptions / eval::EvalOptions split is merged
/// here: engine knobs (strategy, num_threads, provenance, ...) live under
/// `eval`, translation-time rewrites under `translation`, and the
/// observability layer under `observability`.
struct QueryOptions {
  /// Datalog engine knobs (eval/engine.h); `eval.tracer` is managed by
  /// Run() when `observability.tracing` is set. `eval.governor` is the
  /// query governor (gov/governor.h): set it to bound the query by a
  /// cancellation token, a deadline, and resource budgets — Run() threads
  /// it into every fixpoint loop and checks it between query graphs, and
  /// governed aborts surface as kCancelled / kDeadlineExceeded /
  /// kBudgetExceeded with the Database rolled back per engine run.
  eval::EvalOptions eval;

  struct Translation {
    /// Apply the bound-closure (magic-TC) specialization of
    /// translate/magic_tc.h to each translated graph: closures whose
    /// every use fixes an endpoint constant evaluate as seeded
    /// reachability instead of full closure materialization (the
    /// Figure 12 win).
    bool specialize_bound_closures = false;
  } translation;

  struct Observability {
    /// Record a hierarchical span tree (parse -> translate -> stratify ->
    /// per-stratum fixpoint rounds -> summarize) plus counters/histograms
    /// into QueryResponse::trace. Off by default; the disabled path costs
    /// one pointer test per instrumentation site.
    bool tracing = false;
    /// Render the translated program, stratum order, and chosen join
    /// plans into QueryResponse::explain before execution. Join-plan
    /// lines of rules in strata above already-materialized IDBs are
    /// labeled "(pre-run)": their estimates cannot see the lower strata's
    /// results yet; EXPLAIN ANALYZE (`profile`) reports the post-run
    /// actuals.
    bool explain = false;
    /// EXPLAIN ANALYZE: fill QueryResponse::profile with plan-level
    /// execution counters — per rule, per plan step (atom), and per
    /// fixpoint round: probes issued, rows matched, dedup-rejected rows,
    /// estimated vs actual cardinality, CSR-vs-row-path served counts,
    /// and per-rule wall-clock. The logical sections are bit-identical
    /// across num_threads and columnar on/off; with `explain` also set,
    /// the text rendering is appended to QueryResponse::explain. Off by
    /// default (zero overhead). See obs/profile.h.
    bool profile = false;
    /// With `explain`: stop after planning — parse, validate, translate,
    /// and plan, but do not execute. The response carries no stats.
    bool explain_only = false;
    /// When set, Run() folds cumulative process-wide metrics into this
    /// registry: `query.runs` / `query.errors` / `query.result_tuples`
    /// counters, the `query.duration_ns` wall-clock histogram (a timing
    /// metric — excluded from the deterministic snapshot projection), the
    /// engine/kernel counters (threaded through eval.metrics), and the
    /// post-run `db.*` resource gauges. Null (the default) is the
    /// zero-overhead path. See obs/metrics.h.
    obs::MetricsRegistry* metrics = nullptr;
    /// When `slow_query_log` is set and a query's wall-clock time reaches
    /// `slow_query_threshold_ns`, Run() captures the request text, the
    /// EXPLAIN rendering (forced on internally; the response's `explain`
    /// stays empty unless the caller asked for it), the stats, and — when
    /// tracing is on — the trace JSON into the log's bounded ring.
    /// Failed queries past the threshold are captured too, with the error.
    /// Governed aborts (kCancelled / kDeadlineExceeded / kBudgetExceeded)
    /// are always captured when a log is set, regardless of the
    /// threshold; with a zero threshold they are the only entries.
    /// See obs/slow_query_log.h.
    uint64_t slow_query_threshold_ns = 0;
    obs::SlowQueryLog* slow_query_log = nullptr;
    /// Attribution fields stamped into slow-query records: the session
    /// name and server epoch the query ran under. Session::Run fills them
    /// for detached sessions; they stay empty/zero for graphlog::Run and
    /// attached sessions (which run raw against the caller's Database).
    std::string session;
    uint64_t server_epoch = 0;
  } observability;

  struct Cache {
    /// When set, Run() first looks the request up in this cache and, on a
    /// hit, returns the recorded response (bit-identical to recomputation
    /// at any num_threads) without evaluating; on a miss the finished
    /// response is recorded, keyed by the canonical query fingerprint and
    /// invalidated by per-relation generation counters. Bypassed when
    /// `eval.provenance` is set (a served hit cannot populate a
    /// ProvenanceStore) and for explain_only requests. Truncated
    /// (return_partial) responses are never recorded or served, and cache
    /// lookups charge no governor budget. See cache/result_cache.h.
    cache::ResultCache* result_cache = nullptr;
    /// When set, a GraphLog request whose canonical fingerprint matches a
    /// defined materialized view is answered from the view's relations
    /// (refreshing it first when base facts changed — incrementally when
    /// possible). Same bypass rules as `result_cache`. See
    /// cache/view_catalog.h.
    cache::ViewCatalog* views = nullptr;
  } cache;
};

/// \brief One query to run: the text (or pre-parsed graph) plus options.
struct QueryRequest {
  enum class Language : uint8_t {
    kGraphLog,  ///< GraphLog surface syntax (graphlog/parser.h)
    kDatalog,   ///< raw Datalog program text (datalog/parser.h)
  };

  Language language = Language::kGraphLog;
  std::string text;
  /// When set, evaluated instead of `text` (language must be kGraphLog).
  const gl::GraphicalQuery* graphical = nullptr;
  QueryOptions options;

  static QueryRequest GraphLog(std::string query_text) {
    QueryRequest req;
    req.language = Language::kGraphLog;
    req.text = std::move(query_text);
    return req;
  }
  static QueryRequest Datalog(std::string program_text) {
    QueryRequest req;
    req.language = Language::kDatalog;
    req.text = std::move(program_text);
    return req;
  }
  static QueryRequest Graphical(const gl::GraphicalQuery& q) {
    QueryRequest req;
    req.language = Language::kGraphLog;
    req.graphical = &q;
    return req;
  }
};

/// \brief Everything a query evaluation produced.
struct QueryResponse {
  gl::QueryStats stats;
  /// Span tree + metrics; empty unless options.observability.tracing.
  /// `trace.ToJson(false)` is byte-identical across num_threads settings.
  obs::TraceReport trace;
  /// EXPLAIN rendering; empty unless options.observability.explain.
  std::string explain;
  /// EXPLAIN ANALYZE profile; empty unless options.observability.profile.
  /// `profile.ToJson(false)` — the logical projection — is byte-identical
  /// across num_threads and columnar on/off. Cached responses carry the
  /// profile recorded by the run that populated the entry.
  obs::QueryProfile profile;
  /// True when a governed query stopped early on a resource-budget trip
  /// with ResourceBudget::return_partial set: the materialized relations
  /// hold a deterministic partial fixpoint (bit-identical across
  /// num_threads), and query graphs after the tripping one were not run.
  bool truncated = false;
  /// Which budget tripped and where; empty unless `truncated`.
  std::string truncated_by;
  /// True when the response was served by QueryOptions::cache.result_cache
  /// instead of evaluation. Stats/explain/trace are those recorded by the
  /// run that populated the entry.
  bool cache_hit = false;
  /// True when the response was answered from a materialized view
  /// (QueryOptions::cache.views). Stats are the view's accumulated
  /// materialization stats; result_tuples reflects the current view size.
  bool served_from_view = false;
};

/// \brief Evaluates `req` against `db`, materializing each IDB predicate
/// (including translation auxiliaries) as a relation. The single-caller
/// front door: parse -> validate -> order query graphs -> per graph,
/// lambda-translate (Definition 2.4) and run the stratified engine or
/// the path-summarization operator (Section 4).
///
/// Implemented (in graphlog_server) as a thin wrapper over a
/// single-session in-process Server attached to `db`, so the same code
/// path serves one caller and many; semantics and overhead match calling
/// the pipeline directly. Concurrent callers should hold a Server and
/// open a Session per thread instead (server/server.h).
Result<QueryResponse> Run(const QueryRequest& req, storage::Database* db);

namespace detail {

/// \brief The raw query pipeline Run() and Session::Run() share: cache /
/// view serving, evaluation, metrics, slow-log capture — everything
/// except session bookkeeping. Not part of the public surface; call
/// graphlog::Run or Session::Run.
Result<QueryResponse> RunPipeline(const QueryRequest& req,
                                  storage::Database* db);

}  // namespace detail

/// \brief Builds a materialized-view definition named `name` from a
/// GraphLog query: parses and validates `text`, orders and
/// lambda-translates every query graph into one combined program, and
/// records the canonical fingerprint under which Run() will serve the
/// view. The view's output is the last graph's distinguished predicate.
/// Summarization graphs are rejected (the Section 4 operator has no
/// incremental maintenance story). Install the result with
/// cache::ViewCatalog::Define. `translation` applies the same rewrites
/// Run() would (so the fingerprint matches equally-configured requests).
Result<cache::ViewDefinition> MakeViewDefinition(
    std::string name, std::string text, storage::Database* db,
    const QueryOptions& options = {});

}  // namespace graphlog

// Re-export the server layer: including graphlog/api.h is the whole
// public surface. server/server.h only needs declarations above this
// line, and its own include of this header is satisfied by the guard in
// either inclusion order.
#include "server/server.h"

#endif  // GRAPHLOG_GRAPHLOG_API_H_
