#include "graphlog/api.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "aggr/path_summary.h"
#include "cache/fingerprint.h"
#include "cache/result_cache.h"
#include "cache/view_catalog.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/compiled_rule.h"
#include "eval/provenance.h"
#include "gov/governor.h"
#include "graphlog/parser.h"
#include "graphlog/translate.h"
#include "translate/magic_tc.h"

namespace graphlog {

using datalog::Term;
using gl::GraphicalQuery;
using gl::PathSummarySpec;
using gl::QueryGraph;
using gl::QueryNode;
using gl::QueryStats;
using gl::Translation;
using storage::Database;
using storage::Relation;
using storage::Tuple;

namespace {

/// Orders graphs so every graph runs after all graphs defining the IDB
/// predicates it uses (Kahn's algorithm over the graph-level dependence;
/// acyclicity was validated).
Result<std::vector<int>> TopoOrderGraphs(const GraphicalQuery& q) {
  std::vector<Symbol> idb_list = q.IdbPredicates();
  std::set<Symbol> idb(idb_list.begin(), idb_list.end());

  // Predicates used by each graph.
  auto deps = DependenceEdges(q);
  std::map<Symbol, std::set<Symbol>> uses;  // head -> used IDB preds
  for (const auto& [from, to] : deps) {
    if (idb.count(from) > 0) uses[to].insert(from);
  }

  std::vector<int> order;
  std::set<Symbol> done_preds;
  std::vector<bool> emitted(q.graphs.size(), false);
  // A predicate is done when all graphs defining it have run.
  while (order.size() < q.graphs.size()) {
    bool progress = false;
    // First emit every ready graph.
    for (size_t i = 0; i < q.graphs.size(); ++i) {
      if (emitted[i]) continue;
      const std::set<Symbol>& u = uses[q.graphs[i].distinguished.predicate];
      bool ready = std::all_of(u.begin(), u.end(), [&](Symbol p) {
        return done_preds.count(p) > 0;
      });
      if (ready) {
        emitted[i] = true;
        order.push_back(static_cast<int>(i));
        progress = true;
      }
    }
    // Then mark fully-defined predicates done.
    for (Symbol p : idb) {
      if (done_preds.count(p) > 0) continue;
      bool all = true;
      for (size_t i = 0; i < q.graphs.size(); ++i) {
        if (q.graphs[i].distinguished.predicate == p && !emitted[i]) {
          all = false;
          break;
        }
      }
      if (all) done_preds.insert(p);
    }
    if (!progress) {
      return Status::CyclicDependence(
          "could not order query graphs (cyclic dependence)");
    }
  }
  return order;
}

/// Evaluates a summarization graph (Section 4).
Status RunSummaryGraph(const QueryGraph& g, Database* db,
                       QueryStats* stats) {
  const PathSummarySpec& spec = *g.summary;
  const SymbolTable& syms = db->symbols();

  if (!g.edges.empty() || !g.constraints.empty()) {
    return Status::Unsupported(
        "a summarization query graph may contain only the summarized "
        "distinguished edge");
  }
  const QueryNode& from = g.nodes[g.distinguished.from];
  const QueryNode& to = g.nodes[g.distinguished.to];
  if (from.arity() != 1 || to.arity() != 1) {
    return Status::Unsupported(
        "summarization endpoints must be single-variable nodes");
  }
  if (g.distinguished.params.size() != 1 ||
      g.distinguished.params[0].is_aggregate ||
      !g.distinguished.params[0].term.is_variable() ||
      g.distinguished.params[0].term.var() != spec.output_var) {
    return Status::InvalidArgument(
        "summarized distinguished edge must carry exactly the output "
        "variable as its parameter");
  }

  const Relation* base = db->Find(spec.base.predicate);
  if (base == nullptr) {
    return Status::NotFound("summarization base relation '" +
                            syms.name(spec.base.predicate) +
                            "' does not exist");
  }
  if (base->arity() != 2 + spec.base.params.size()) {
    return Status::ArityMismatch(
        "summarization base literal arity mismatch for '" +
        syms.name(spec.base.predicate) + "'");
  }

  // Restrict the base by any constant parameters, and locate the weight
  // column (the summed variable's position).
  uint32_t weight_col = 0;
  Relation filtered(base->arity());
  const Relation* effective = base;
  bool need_filter = false;
  for (size_t i = 0; i < spec.base.params.size(); ++i) {
    if (spec.base.params[i].is_constant()) need_filter = true;
  }
  if (need_filter) {
    for (const Tuple& t : base->rows()) {
      bool keep = true;
      for (size_t i = 0; i < spec.base.params.size(); ++i) {
        const Term& p = spec.base.params[i];
        if (p.is_constant() && !(t[2 + i] == p.value())) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.Insert(t);
    }
    effective = &filtered;
  }
  for (size_t i = 0; i < spec.base.params.size(); ++i) {
    const Term& p = spec.base.params[i];
    if (p.is_variable() && p.var() == spec.value_var) {
      weight_col = static_cast<uint32_t>(2 + i);
    }
  }

  aggr::PathSummaryOptions options;
  options.along = spec.along;
  options.across = spec.across;
  options.weight_column = weight_col;
  GRAPHLOG_ASSIGN_OR_RETURN(Relation summary,
                            aggr::PathSummarize(*effective, options));

  // Materialize under the distinguished predicate, honoring constant
  // endpoints (e.g. `distinguished "source" -> T : dist(E)`).
  GRAPHLOG_ASSIGN_OR_RETURN(
      Relation * out, db->Declare(g.distinguished.predicate, 3));
  const Term& from_t = from.label[0];
  const Term& to_t = to.label[0];
  for (const Tuple& t : summary.rows()) {
    if (from_t.is_constant() && !(t[0] == from_t.value())) continue;
    if (to_t.is_constant() && !(t[1] == to_t.value())) continue;
    if (out->Insert(t)) ++stats->datalog.tuples_derived;
  }
  ++stats->graphs_summarized;
  return Status::OK();
}

/// Renders one translated program for EXPLAIN: the rules (numbered in the
/// provenance rule universe), the stratum order, and the join plan each
/// rule would compile to against the *current* relation statistics. Rules
/// in strata above the first plan against IDBs the run has not
/// materialized yet — those lines are labeled "(pre-run)"; the
/// per-stratum trace notes record the plans actually chosen at execution
/// time, and EXPLAIN ANALYZE (observability.profile) reports the
/// post-stratum actuals per atom.
std::string RenderProgramExplain(const datalog::Program& prog,
                                 size_t rule_offset, Database* db) {
  const SymbolTable& syms = db->symbols();
  std::string out = "  program:\n";
  for (size_t i = 0; i < prog.rules.size(); ++i) {
    out += "    [" + std::to_string(rule_offset + i) + "] " +
           prog.rules[i].ToString(syms) + "\n";
  }
  auto strat = datalog::Stratify(prog, syms);
  if (!strat.ok()) {
    return out + "  stratification: " + strat.status().ToString() + "\n";
  }
  out += "  stratification: " + std::to_string(strat->num_strata) +
         " strata\n";
  std::map<size_t, size_t> stratum_of;  // rule index -> stratum
  for (size_t s = 0; s < strat->rule_groups.size(); ++s) {
    out += "    stratum " + std::to_string(s) + ": rules";
    for (int i : strat->rule_groups[s]) {
      out += " " + std::to_string(rule_offset + static_cast<size_t>(i));
      stratum_of[static_cast<size_t>(i)] = s;
    }
    out += "\n";
  }
  out += "  join plans (pre-run cardinality estimates):\n";
  eval::CardinalityFn card = eval::MakeDbCardinality(db);
  for (size_t i = 0; i < prog.rules.size(); ++i) {
    auto compiled = eval::CompiledRule::Compile(prog.rules[i], syms, card);
    out += "    [" + std::to_string(rule_offset + i) + "] ";
    out += compiled.ok() ? compiled->PlanToString(syms)
                         : compiled.status().ToString();
    // Strata above the first read IDBs this run has not materialized
    // yet, so their estimates (and possibly the plans themselves) will
    // differ at execution time.
    if (auto it = stratum_of.find(i); it != stratum_of.end() &&
                                      it->second > 0) {
      out += " (pre-run)";
    }
    out += "\n";
  }
  return out;
}

/// The result-affecting option subset of a request — what the cache and
/// view fingerprints are built from (cache/fingerprint.h).
cache::QueryKeyOptions KeyOptionsFor(QueryRequest::Language language,
                                     const QueryOptions& options) {
  cache::QueryKeyOptions ko;
  ko.language = language == QueryRequest::Language::kDatalog ? 1 : 0;
  ko.strategy = options.eval.strategy;
  ko.cardinality_join_ordering = options.eval.cardinality_join_ordering;
  ko.max_iterations = options.eval.max_iterations;
  ko.specialize_bound_closures = options.translation.specialize_bound_closures;
  // eval.columnar is deliberately NOT part of the fingerprint: the
  // columnar path produces bit-identical rows and provenance, so a
  // cached row-path answer may serve a columnar query and vice versa.
  // observability.* (including profile) is likewise excluded — profiling
  // never changes results, so a profiled run may serve an unprofiled
  // request and vice versa (the hit carries the recorded profile, which
  // the caller is free to ignore).
  return ko;
}

Status RunGraphLog(const QueryRequest& req, const QueryOptions& options,
                   obs::Tracer* tracer, Database* db, QueryResponse* resp,
                   std::set<Symbol>* touched) {
  obs::SpanGuard query_span(tracer, "query");
  query_span.AddNote("language", "graphlog");

  GraphicalQuery parsed;
  const GraphicalQuery* q = req.graphical;
  if (q == nullptr) {
    obs::SpanGuard span(tracer, "parse");
    GRAPHLOG_ASSIGN_OR_RETURN(
        parsed, gl::ParseGraphicalQuery(req.text, &db->symbols()));
    span.AddAttr("graphs", static_cast<int64_t>(parsed.graphs.size()));
    q = &parsed;
  }
  {
    obs::SpanGuard span(tracer, "validate");
    GRAPHLOG_RETURN_NOT_OK(gl::ValidateGraphicalQuery(*q, db->symbols()));
  }
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrderGraphs(*q));

  const bool explain = options.observability.explain ||
                       options.observability.explain_only;
  const bool execute = !options.observability.explain_only;
  QueryStats& stats = resp->stats;
  size_t rule_offset = 0;  // position in the query's rule universe
  for (int i : order) {
    // Between graphs: a cheap cancellation/deadline check so a
    // multi-graph query cannot outlive its governor in the gaps the
    // engine does not cover (translation, planning, summarization).
    if (execute && options.eval.governor != nullptr) {
      GRAPHLOG_RETURN_NOT_OK(
          options.eval.governor->CheckInterrupts("query.graph"));
    }
    const QueryGraph& g = q->graphs[i];
    const std::string head = db->symbols().name(g.distinguished.predicate);
    if (g.summary.has_value()) {
      if (touched != nullptr) {
        touched->insert(g.summary->base.predicate);
        touched->insert(g.distinguished.predicate);
      }
      if (explain) {
        resp->explain +=
            "graph " + head + ": path summarization (Section 4 operator)\n";
      }
      if (!execute) continue;
      obs::SpanGuard span(tracer, "summarize");
      span.AddNote("graph", head);
      GRAPHLOG_RETURN_NOT_OK(RunSummaryGraph(g, db, &stats));
      continue;
    }
    Translation t;
    {
      obs::SpanGuard span(tracer, "translate");
      span.AddNote("graph", head);
      GRAPHLOG_ASSIGN_OR_RETURN(t,
                                gl::TranslateQueryGraph(g, &db->symbols()));
      span.AddAttr("rules", static_cast<int64_t>(t.program.size()));
      span.AddAttr("aux_predicates",
                   static_cast<int64_t>(t.aux_predicates.size()));
    }
    if (options.translation.specialize_bound_closures) {
      obs::SpanGuard span(tracer, "specialize");
      span.AddNote("graph", head);
      GRAPHLOG_ASSIGN_OR_RETURN(
          t.program,
          translate::SpecializeBoundClosures(t.program, &db->symbols(),
                                             {g.distinguished.predicate}));
      span.AddAttr("rules", static_cast<int64_t>(t.program.size()));
    }
    if (touched != nullptr) {
      for (Symbol p : t.program.AllPredicates()) touched->insert(p);
    }
    if (explain) {
      resp->explain += "graph " + head + ":\n" +
                       RenderProgramExplain(t.program, rule_offset, db);
    }
    rule_offset += t.program.size();
    if (!execute) continue;
    if (options.eval.provenance != nullptr) {
      // Keep justification rule indexes valid into stats.programs.
      options.eval.provenance->set_rule_offset(
          static_cast<int>(stats.programs.size()));
    }
    eval::EvalStats es;
    {
      obs::SpanGuard span(tracer, "evaluate");
      span.AddNote("graph", head);
      // Each engine run profiles into a fresh per-graph buffer; AppendRun
      // concatenates rule profiles at the response level following the
      // same rule_offset discipline as stats.programs.
      eval::EvalOptions eopts = options.eval;
      obs::QueryProfile run_profile;
      const bool prof =
          options.observability.profile && eopts.profile == nullptr;
      if (prof) eopts.profile = &run_profile;
      Result<eval::EvalStats> r = eval::Evaluate(t.program, db, eopts);
      // Append even on a governed abort: the profile of the rounds that
      // did complete is what the slow-query log captures for the abort.
      if (prof && !run_profile.empty()) {
        resp->profile.AppendRun(run_profile);
      }
      if (!r.ok()) return r.status();
      es = std::move(*r);
    }
    stats.programs.Append(t.program);
    stats.datalog.Merge(es);
    ++stats.graphs_translated;
    // A budget trip with return_partial ends the whole query at this
    // graph: downstream graphs would read the truncated fixpoint and
    // silently compound the gap.
    if (stats.datalog.truncated) break;
  }
  if (!execute) return Status::OK();
  for (Symbol p : q->IdbPredicates()) {
    const Relation* rel = db->Find(p);
    if (rel != nullptr) stats.result_tuples += rel->size();
  }
  if (tracer != nullptr) {
    obs::Metrics& m = tracer->metrics();
    m.Count("query.graphs_translated", stats.graphs_translated);
    m.Count("query.graphs_summarized", stats.graphs_summarized);
    m.Count("query.result_tuples", stats.result_tuples);
  }
  return Status::OK();
}

Status RunDatalog(const QueryRequest& req, const QueryOptions& options,
                  obs::Tracer* tracer, Database* db, QueryResponse* resp,
                  std::set<Symbol>* touched) {
  obs::SpanGuard query_span(tracer, "query");
  query_span.AddNote("language", "datalog");

  datalog::Program prog;
  {
    obs::SpanGuard span(tracer, "parse");
    GRAPHLOG_ASSIGN_OR_RETURN(
        prog, datalog::ParseProgram(req.text, &db->symbols()));
    span.AddAttr("rules", static_cast<int64_t>(prog.size()));
  }
  if (touched != nullptr) {
    for (Symbol p : prog.AllPredicates()) touched->insert(p);
  }
  const bool explain = options.observability.explain ||
                       options.observability.explain_only;
  if (explain) resp->explain += RenderProgramExplain(prog, 0, db);
  if (options.observability.explain_only) return Status::OK();

  if (options.eval.provenance != nullptr) {
    options.eval.provenance->set_rule_offset(0);
  }
  eval::EvalStats es;
  {
    obs::SpanGuard span(tracer, "evaluate");
    eval::EvalOptions eopts = options.eval;
    obs::QueryProfile run_profile;
    const bool prof =
        options.observability.profile && eopts.profile == nullptr;
    if (prof) eopts.profile = &run_profile;
    Result<eval::EvalStats> r = eval::Evaluate(prog, db, eopts);
    if (prof && !run_profile.empty()) {
      resp->profile.AppendRun(run_profile);
    }
    if (!r.ok()) return r.status();
    es = std::move(*r);
  }
  resp->stats.datalog.Merge(es);
  for (Symbol p : prog.HeadPredicates()) {
    const Relation* rel = db->Find(p);
    if (rel != nullptr) resp->stats.result_tuples += rel->size();
  }
  resp->stats.programs = std::move(prog);
  if (tracer != nullptr) {
    tracer->metrics().Count("query.result_tuples",
                            resp->stats.result_tuples);
  }
  return Status::OK();
}

}  // namespace

Result<QueryResponse> detail::RunPipeline(const QueryRequest& req,
                                          Database* db) {
  QueryResponse resp;
  QueryOptions options = req.options;
  obs::Tracer local_tracer;
  if (options.observability.tracing && options.eval.tracer == nullptr) {
    options.eval.tracer = &local_tracer;
  }
  obs::Tracer* tracer = options.eval.tracer;

  obs::MetricsRegistry* metrics = options.observability.metrics;
  if (metrics != nullptr && options.eval.metrics == nullptr) {
    options.eval.metrics = metrics;
  }

  obs::SlowQueryLog* slow_log = options.observability.slow_query_log;
  const bool slow_log_armed =
      slow_log != nullptr && options.observability.slow_query_threshold_ns > 0;
  const bool caller_explain = options.observability.explain;

  // Caching eligibility. Pre-parsed graphical requests have no canonical
  // text to fingerprint; explain_only runs compute nothing servable; a
  // provenance-armed run must execute (a served hit cannot populate a
  // ProvenanceStore).
  cache::ResultCache* rcache = options.cache.result_cache;
  cache::ViewCatalog* views = options.cache.views;
  const bool cache_eligible =
      (rcache != nullptr || views != nullptr) && req.graphical == nullptr &&
      !options.observability.explain_only &&
      options.eval.provenance == nullptr;
  std::string canonical_key;  // db-agnostic; the view catalog is db-bound
  std::string cache_key;      // canonical key scoped by Database::uid
  if (cache_eligible) {
    canonical_key =
        cache::CanonicalQueryKey(req.text, KeyOptionsFor(req.language, options));
    cache_key = canonical_key + ";db=" + std::to_string(db->uid());
  }
  const bool record_armed = cache_eligible && rcache != nullptr;
  // The plan is only renderable while the query runs, so a slow log
  // forces EXPLAIN on (even below-threshold, a governed abort must be
  // capturable) — and so does an armed result cache, so a recorded entry
  // can satisfy a later explain-requesting hit. The response's rendering
  // is stripped below when the caller did not ask for it.
  if (slow_log != nullptr || record_armed) options.observability.explain = true;

  const auto started = std::chrono::steady_clock::now();
  Status st = Status::OK();
  // Cache/view lookups honor cancellation and the deadline but charge no
  // resource budget: serving is O(result), not a recomputation.
  if (cache_eligible && options.eval.governor != nullptr) {
    st = options.eval.governor->CheckInterrupts("cache.lookup");
  }
  if (st.ok() && cache_eligible && views != nullptr) {
    views->TryServe(canonical_key, db, metrics, &resp);
  }
  if (st.ok() && !resp.served_from_view && cache_eligible &&
      rcache != nullptr) {
    rcache->TryServe(cache_key, db, &resp);
  }
  const bool served = resp.served_from_view || resp.cache_hit;
  const bool will_record = st.ok() && !served && record_armed;
  cache::DbSnapshot pre_snapshot;
  std::set<Symbol> touched;
  if (will_record) pre_snapshot = cache::SnapshotDatabase(*db);
  if (st.ok() && !served) {
    std::set<Symbol>* tp = will_record ? &touched : nullptr;
    st = req.language == QueryRequest::Language::kDatalog
             ? RunDatalog(req, options, tracer, db, &resp, tp)
             : RunGraphLog(req, options, tracer, db, &resp, tp);
  }
  const uint64_t duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  // Harvest the trace even on failure: a span tree that ends at the
  // failing stage is exactly what one wants when debugging — but an error
  // Status is all the Result can carry, so only success returns it. A
  // served response keeps the stored trace of the run that recorded it.
  if (tracer == &local_tracer && !served) {
    resp.trace = local_tracer.TakeReport();
  }

  resp.truncated = resp.stats.datalog.truncated;
  resp.truncated_by = resp.stats.datalog.truncated_by;

  // EXPLAIN ANALYZE: append the profile's actuals to the plan rendering
  // (before recording/slow-log capture, so both carry it). A served
  // response keeps the profile and rendering of the run that recorded it.
  if (!served && !resp.profile.empty() && options.observability.explain) {
    resp.explain += resp.profile.ToText();
  }

  // Record the finished miss-run (before the explain strip, so stored
  // entries always carry the rendering). Record() itself refuses
  // truncated responses and non-grow-only runs.
  if (will_record && st.ok() && !resp.truncated) {
    rcache->Record(cache_key, *db, pre_snapshot, touched, resp);
  }

  // Governed aborts get their own taxonomy counters and are always
  // captured by the slow-query log: a query someone had to kill — or that
  // ran into its budget — is interesting at any duration.
  const bool governed_abort = st.code() == StatusCode::kCancelled ||
                              st.code() == StatusCode::kDeadlineExceeded ||
                              st.code() == StatusCode::kBudgetExceeded;
  if (metrics != nullptr) {
    metrics->counter("query.runs")->Increment();
    if (!st.ok()) metrics->counter("query.errors")->Increment();
    switch (st.code()) {
      case StatusCode::kCancelled:
        metrics->counter("query.cancelled")->Increment();
        break;
      case StatusCode::kDeadlineExceeded:
        metrics->counter("query.deadline_exceeded")->Increment();
        break;
      case StatusCode::kBudgetExceeded:
        metrics->counter("query.budget_exceeded")->Increment();
        break;
      default:
        break;
    }
    if (resp.truncated) metrics->counter("query.truncated")->Increment();
    metrics->counter("query.result_tuples")->Add(resp.stats.result_tuples);
    metrics->histogram("query.duration_ns")
        ->Observe(static_cast<int64_t>(duration_ns));
    db->ExportResourceMetrics(metrics);
    if (rcache != nullptr) rcache->ExportMetrics(metrics);
  }

  if ((slow_log_armed &&
       duration_ns >= options.observability.slow_query_threshold_ns) ||
      (slow_log != nullptr && governed_abort)) {
    obs::SlowQueryRecord rec;
    rec.language = req.language == QueryRequest::Language::kDatalog
                       ? "datalog"
                       : "graphlog";
    rec.text = req.graphical != nullptr ? "<graphical>" : req.text;
    rec.session = options.observability.session;
    rec.server_epoch = options.observability.server_epoch;
    rec.duration_ns = duration_ns;
    rec.threshold_ns = options.observability.slow_query_threshold_ns;
    if (!st.ok()) rec.error = st.ToString();
    rec.cache_hit = resp.cache_hit;
    rec.served_from_view = resp.served_from_view;
    rec.explain = resp.explain;
    if (options.observability.tracing) rec.trace_json = resp.trace.ToJson();
    // Captures the profile of governed aborts too — where the query was
    // when it died is exactly what the record is for.
    if (!resp.profile.empty()) rec.profile_json = resp.profile.ToJson();
    rec.tuples_derived = resp.stats.datalog.tuples_derived;
    rec.rule_firings = resp.stats.datalog.rule_firings;
    rec.iterations = resp.stats.datalog.iterations;
    rec.result_tuples = resp.stats.result_tuples;
    rec.peak_delta_rows = resp.stats.datalog.peak_delta_rows;
    rec.peak_delta_bytes = resp.stats.datalog.peak_delta_bytes;
    slow_log->Record(std::move(rec));
  }
  if (!caller_explain &&
      (slow_log != nullptr || record_armed || served)) {
    resp.explain.clear();
  }

  GRAPHLOG_RETURN_NOT_OK(st);
  return resp;
}

Result<cache::ViewDefinition> MakeViewDefinition(std::string name,
                                                 std::string text,
                                                 Database* db,
                                                 const QueryOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  cache::ViewDefinition def;
  def.name = std::move(name);
  def.source_text = text;

  GRAPHLOG_ASSIGN_OR_RETURN(GraphicalQuery q,
                            gl::ParseGraphicalQuery(text, &db->symbols()));
  GRAPHLOG_RETURN_NOT_OK(gl::ValidateGraphicalQuery(q, db->symbols()));
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrderGraphs(q));
  for (int i : order) {
    const QueryGraph& g = q.graphs[i];
    if (g.summary.has_value()) {
      return Status::Unsupported(
          "a materialized view cannot contain a summarization graph (the "
          "Section 4 operator has no incremental maintenance)");
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Translation t,
                              gl::TranslateQueryGraph(g, &db->symbols()));
    if (options.translation.specialize_bound_closures) {
      GRAPHLOG_ASSIGN_OR_RETURN(
          t.program,
          translate::SpecializeBoundClosures(t.program, &db->symbols(),
                                             {g.distinguished.predicate}));
    }
    def.program.Append(t.program);
    ++def.graphs;
  }
  def.distinguished = q.graphs.back().distinguished.predicate;
  def.idb_predicates = def.program.HeadPredicates();
  def.edb_predicates = def.program.EdbPredicates();
  def.result_predicates = q.IdbPredicates();
  def.eval = options.eval;
  // The catalog owns refresh scheduling; per-request observability and
  // governance do not belong in a persistent definition.
  def.eval.tracer = nullptr;
  def.eval.metrics = nullptr;
  def.eval.governor = nullptr;
  def.eval.provenance = nullptr;
  def.canonical_key = cache::CanonicalQueryKey(
      text, KeyOptionsFor(QueryRequest::Language::kGraphLog, options));
  return def;
}

}  // namespace graphlog
