#include "graphlog/parser.h"

#include <optional>

#include "datalog/lexer.h"
#include "graphlog/pre.h"

namespace graphlog::gl {

using datalog::AggKind;
using datalog::ArithExpr;
using datalog::ArithOp;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Term;
using datalog::Token;
using datalog::TokenKind;

namespace {

std::optional<AggKind> AggFromName(const std::string& s) {
  if (s == "count") return AggKind::kCount;
  if (s == "sum") return AggKind::kSum;
  if (s == "min") return AggKind::kMin;
  if (s == "max") return AggKind::kMax;
  if (s == "avg") return AggKind::kAvg;
  return std::nullopt;
}

class QueryParser {
 public:
  QueryParser(const std::vector<Token>& tokens, SymbolTable* syms)
      : tokens_(tokens), syms_(syms) {}

  Result<GraphicalQuery> ParseAll() {
    GraphicalQuery q;
    while (!At(TokenKind::kEnd)) {
      GRAPHLOG_ASSIGN_OR_RETURN(QueryGraph g, ParseOne());
      q.graphs.push_back(std::move(g));
    }
    if (q.graphs.empty()) {
      return Status::ParseError("no query graphs in input");
    }
    return q;
  }

  Result<QueryGraph> ParseOne() {
    GRAPHLOG_RETURN_NOT_OK(ExpectKeyword("query"));
    if (!At(TokenKind::kIdent)) {
      return Error("expected query name after 'query'");
    }
    Symbol name = syms_->Intern(Cur().text);
    ++pos_;
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kLBrace));

    QueryGraph g;
    bool have_distinguished = false;
    while (!Accept(TokenKind::kRBrace)) {
      if (At(TokenKind::kEnd)) return Error("unterminated query block");
      if (AtKeyword("node")) {
        ++pos_;
        GRAPHLOG_RETURN_NOT_OK(ParseNodeStmt(&g));
      } else if (AtKeyword("edge")) {
        ++pos_;
        GRAPHLOG_RETURN_NOT_OK(ParseEdgeStmt(&g));
      } else if (AtKeyword("where")) {
        ++pos_;
        GRAPHLOG_RETURN_NOT_OK(ParseWhereStmt(&g));
      } else if (AtKeyword("summarize")) {
        ++pos_;
        GRAPHLOG_RETURN_NOT_OK(ParseSummarizeStmt(&g));
      } else if (AtKeyword("distinguished")) {
        ++pos_;
        GRAPHLOG_RETURN_NOT_OK(ParseDistinguishedStmt(&g, name));
        have_distinguished = true;
      } else {
        return Error("expected node/edge/where/summarize/distinguished");
      }
    }
    if (!have_distinguished) {
      return Error("query '" + syms_->name(name) +
                   "' has no distinguished edge");
    }
    return g;
  }

  bool AtEnd() const { return At(TokenKind::kEnd); }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool AtKeyword(std::string_view kw) const {
    return At(TokenKind::kIdent) && Cur().text == kw;
  }
  bool Accept(TokenKind k) {
    if (!At(k)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenKind k) {
    if (Accept(k)) return Status::OK();
    return Error("expected " + std::string(TokenKindToString(k)) +
                 ", found " + std::string(TokenKindToString(Cur().kind)));
  }
  Status ExpectKeyword(std::string_view kw) {
    if (AtKeyword(kw)) {
      ++pos_;
      return Status::OK();
    }
    return Error("expected keyword '" + std::string(kw) + "'");
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Cur().line) +
                              ", column " + std::to_string(Cur().column));
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kVariable)) {
      std::string name = Cur().text;
      ++pos_;
      if (name == "_") {
        return Term::Var(syms_->Fresh("_w"));
      }
      return Term::Var(syms_->Intern(name));
    }
    if (At(TokenKind::kIdent) || At(TokenKind::kString)) {
      Symbol s = syms_->Intern(Cur().text);
      ++pos_;
      return Term::Const(Value::Sym(s));
    }
    if (At(TokenKind::kInt)) {
      int64_t v = Cur().int_value;
      ++pos_;
      return Term::Const(Value::Int(v));
    }
    if (At(TokenKind::kFloat)) {
      double v = Cur().float_value;
      ++pos_;
      return Term::Const(Value::Double(v));
    }
    if (Accept(TokenKind::kMinus)) {
      if (At(TokenKind::kInt)) {
        int64_t v = Cur().int_value;
        ++pos_;
        return Term::Const(Value::Int(-v));
      }
      if (At(TokenKind::kFloat)) {
        double v = Cur().float_value;
        ++pos_;
        return Term::Const(Value::Double(-v));
      }
      return Error("expected number after '-'");
    }
    return Error("expected term");
  }

  /// endpoint := term | '(' term {',' term} ')'
  Result<std::vector<Term>> ParseEndpoint() {
    std::vector<Term> label;
    if (Accept(TokenKind::kLParen)) {
      do {
        GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
        label.push_back(t);
      } while (Accept(TokenKind::kComma));
      GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return label;
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
    label.push_back(t);
    return label;
  }

  /// Finds the node with this label, creating it if needed.
  int NodeFor(QueryGraph* g, const std::vector<Term>& label) {
    for (size_t i = 0; i < g->nodes.size(); ++i) {
      if (g->nodes[i].label == label) return static_cast<int>(i);
    }
    QueryNode n;
    n.label = label;
    g->nodes.push_back(std::move(n));
    return static_cast<int>(g->nodes.size() - 1);
  }

  Status ParseNodeStmt(QueryGraph* g) {
    GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Term> label, ParseEndpoint());
    int idx = NodeFor(g, label);
    if (Accept(TokenKind::kLBracket)) {
      do {
        NodePredicate p;
        p.positive = !Accept(TokenKind::kBang);
        if (!At(TokenKind::kIdent)) {
          return Error("expected node predicate name");
        }
        p.predicate = syms_->Intern(Cur().text);
        ++pos_;
        g->nodes[idx].predicates.push_back(p);
      } while (Accept(TokenKind::kComma));
      GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
    }
    return Expect(TokenKind::kSemicolon);
  }

  Status ParseEdgeStmt(QueryGraph* g) {
    GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Term> from, ParseEndpoint());
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kArrow));
    GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Term> to, ParseEndpoint());
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kColon));

    QueryEdge e;
    e.from = NodeFor(g, from);
    e.to = NodeFor(g, to);

    // Comparison edge?
    std::optional<CmpOp> cmp;
    switch (Cur().kind) {
      case TokenKind::kLt:
        cmp = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        cmp = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        cmp = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        cmp = CmpOp::kGe;
        break;
      case TokenKind::kNe:
        cmp = CmpOp::kNe;
        break;
      default:
        break;
    }
    // `=` alone is a comparison edge; `=` starting a longer p.r.e. (e.g.
    // `= | friend`) is an equality alternative, so only treat a lone `=`
    // followed by ';' as comparison.
    if (!cmp.has_value() && At(TokenKind::kEq) &&
        tokens_[pos_ + 1].kind == TokenKind::kSemicolon) {
      cmp = CmpOp::kEq;
    }
    if (cmp.has_value()) {
      ++pos_;
      e.comparison = cmp;
      g->edges.push_back(std::move(e));
      return Expect(TokenKind::kSemicolon);
    }

    GRAPHLOG_ASSIGN_OR_RETURN(
        e.expr, ParsePathExprTokens(tokens_, &pos_, syms_));
    g->edges.push_back(std::move(e));
    return Expect(TokenKind::kSemicolon);
  }

  Status ParseWhereStmt(QueryGraph* g) {
    do {
      GRAPHLOG_ASSIGN_OR_RETURN(Literal l, ParseBuiltinLiteral());
      g->constraints.push_back(std::move(l));
    } while (Accept(TokenKind::kComma));
    return Expect(TokenKind::kSemicolon);
  }

  Result<Literal> ParseBuiltinLiteral() {
    GRAPHLOG_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Accept(TokenKind::kAssign)) {
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr e, ParseArith());
      return Literal::Assignment(lhs, std::move(e));
    }
    CmpOp op;
    if (Accept(TokenKind::kEq)) {
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr e, ParseArith());
      if (e.is_leaf) return Literal::Comparison(CmpOp::kEq, lhs, e.leaf);
      return Literal::Assignment(lhs, std::move(e));
    } else if (Accept(TokenKind::kNe)) {
      op = CmpOp::kNe;
    } else if (Accept(TokenKind::kLt)) {
      op = CmpOp::kLt;
    } else if (Accept(TokenKind::kLe)) {
      op = CmpOp::kLe;
    } else if (Accept(TokenKind::kGt)) {
      op = CmpOp::kGt;
    } else if (Accept(TokenKind::kGe)) {
      op = CmpOp::kGe;
    } else {
      return Error("expected comparison or ':=' in where clause");
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Literal::Comparison(op, lhs, rhs);
  }

  Result<ArithExpr> ParseArith() {
    GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr lhs, ParseArithTerm());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      ArithOp op =
          At(TokenKind::kPlus) ? ArithOp::kAdd : ArithOp::kSub;
      ++pos_;
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr rhs, ParseArithTerm());
      lhs = ArithExpr::Node(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ArithExpr> ParseArithTerm() {
    GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr lhs, ParseArithFactor());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) ||
           At(TokenKind::kPercent)) {
      ArithOp op = At(TokenKind::kStar)    ? ArithOp::kMul
                   : At(TokenKind::kSlash) ? ArithOp::kDiv
                                           : ArithOp::kMod;
      ++pos_;
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr rhs, ParseArithFactor());
      lhs = ArithExpr::Node(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ArithExpr> ParseArithFactor() {
    if (Accept(TokenKind::kLParen)) {
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr e, ParseArith());
      GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return e;
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
    return ArithExpr::Leaf(t);
  }

  /// summarize VAR = AGG '<' AGG '<' VAR '>' '>' over <base literal> ';'
  Status ParseSummarizeStmt(QueryGraph* g) {
    if (g->summary.has_value()) {
      return Error("duplicate summarize statement");
    }
    PathSummarySpec spec;
    if (!At(TokenKind::kVariable)) {
      return Error("expected output variable after 'summarize'");
    }
    spec.output_var = syms_->Intern(Cur().text);
    ++pos_;
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kEq));

    auto parse_agg = [&](AggKind* out) -> Status {
      if (!At(TokenKind::kIdent)) return Error("expected aggregate name");
      auto a = AggFromName(Cur().text);
      if (!a.has_value()) {
        return Error("unknown aggregate '" + Cur().text + "'");
      }
      *out = *a;
      ++pos_;
      return Status::OK();
    };
    GRAPHLOG_RETURN_NOT_OK(parse_agg(&spec.across));
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kLt));
    GRAPHLOG_RETURN_NOT_OK(parse_agg(&spec.along));
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kLt));
    if (!At(TokenKind::kVariable)) {
      return Error("expected summed variable");
    }
    spec.value_var = syms_->Intern(Cur().text);
    ++pos_;
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kGt));
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kGt));
    GRAPHLOG_RETURN_NOT_OK(ExpectKeyword("over"));
    GRAPHLOG_ASSIGN_OR_RETURN(PathExpr base,
                              ParsePathExprTokens(tokens_, &pos_, syms_));
    // Accept `p(D)` or `p(D)+` (the closure is implied by summarization).
    if (base.kind == PathExpr::Kind::kPlus) base = base.children[0];
    spec.base = std::move(base);
    g->summary = std::move(spec);
    return Expect(TokenKind::kSemicolon);
  }

  Status ParseDistinguishedStmt(QueryGraph* g, Symbol query_name) {
    GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Term> from, ParseEndpoint());
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kArrow));
    GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Term> to, ParseEndpoint());
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kColon));
    if (!At(TokenKind::kIdent)) {
      return Error("expected distinguished predicate name");
    }
    Symbol pred = syms_->Intern(Cur().text);
    ++pos_;
    if (pred != query_name) {
      return Error("distinguished predicate '" + syms_->name(pred) +
                   "' does not match query name '" +
                   syms_->name(query_name) + "'");
    }
    g->distinguished.predicate = pred;
    g->distinguished.from = NodeFor(g, from);
    g->distinguished.to = NodeFor(g, to);
    if (Accept(TokenKind::kLParen)) {
      if (!Accept(TokenKind::kRParen)) {
        do {
          // Aggregate parameter: AGG '<' VAR '>' or count '<' '*' '>'
          // (Section 4); otherwise a plain term.
          if (At(TokenKind::kIdent) &&
              tokens_[pos_ + 1].kind == TokenKind::kLt &&
              AggFromName(Cur().text).has_value()) {
            datalog::AggKind agg = *AggFromName(Cur().text);
            ++pos_;  // name
            ++pos_;  // '<'
            Symbol var = kNoSymbol;
            if (Accept(TokenKind::kStar)) {
              if (agg != datalog::AggKind::kCount) {
                return Error("'*' is only valid in count<*>");
              }
            } else if (At(TokenKind::kVariable)) {
              var = syms_->Intern(Cur().text);
              ++pos_;
            } else {
              return Error("expected variable in aggregate parameter");
            }
            GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kGt));
            g->distinguished.params.push_back(
                datalog::HeadTerm::Aggregate(agg, var));
          } else {
            GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
            g->distinguished.params.push_back(datalog::HeadTerm::Plain(t));
          }
        } while (Accept(TokenKind::kComma));
        GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      }
    }
    return Expect(TokenKind::kSemicolon);
  }

  const std::vector<Token>& tokens_;
  SymbolTable* syms_;
  size_t pos_ = 0;
};

}  // namespace

Result<GraphicalQuery> ParseGraphicalQuery(std::string_view text,
                                           SymbolTable* syms) {
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                            datalog::Tokenize(text));
  QueryParser p(tokens, syms);
  return p.ParseAll();
}

Result<QueryGraph> ParseQueryGraph(std::string_view text, SymbolTable* syms) {
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                            datalog::Tokenize(text));
  QueryParser p(tokens, syms);
  GRAPHLOG_ASSIGN_OR_RETURN(QueryGraph g, p.ParseOne());
  if (!p.AtEnd()) return Status::ParseError("trailing input after query");
  return g;
}

}  // namespace graphlog::gl
