#include "graphlog/translate.h"

#include <string>

#include "graphlog/pre.h"

namespace graphlog::gl {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Head;
using datalog::HeadTerm;
using datalog::Literal;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

namespace {

/// Shared state for translating one query graph.
class GraphTranslator {
 public:
  GraphTranslator(const QueryGraph& g, SymbolTable* syms)
      : g_(g), syms_(syms) {}

  Result<Translation> Run() {
    GRAPHLOG_RETURN_NOT_OK(ValidateQueryGraph(g_, *syms_));
    if (g_.summary.has_value()) {
      return Status::Unsupported(
          "query graph with path summarization cannot be translated to "
          "Datalog; evaluate it with the summarization engine");
    }

    // Each edge yields one or more conjunct options (identity alternatives
    // from =, *, ? produce a second, equality-atom option). One rule is
    // emitted per combination.
    std::vector<std::vector<std::vector<Literal>>> edge_options;
    for (const QueryEdge& e : g_.edges) {
      GRAPHLOG_ASSIGN_OR_RETURN(auto options, EdgeOptions(e));
      edge_options.push_back(std::move(options));
    }

    // Node predicates and constraints appear in every rule.
    std::vector<Literal> common;
    for (const QueryNode& n : g_.nodes) {
      for (const NodePredicate& p : n.predicates) {
        Atom a;
        a.predicate = p.predicate;
        a.args = n.label;
        common.push_back(p.positive ? Literal::Positive(std::move(a))
                                    : Literal::Negative(std::move(a)));
      }
    }
    for (const Literal& l : g_.constraints) common.push_back(l);

    // Head: predicate(from-label, to-label, params) — rule (1) of
    // Definition 2.4.
    Head head;
    head.predicate = g_.distinguished.predicate;
    auto push_head = [&](const Term& t) {
      head.args.push_back(HeadTerm::Plain(t));
    };
    for (const Term& t : g_.nodes[g_.distinguished.from].label) push_head(t);
    for (const Term& t : g_.nodes[g_.distinguished.to].label) push_head(t);
    for (const HeadTerm& h : g_.distinguished.params) head.args.push_back(h);

    // Aggregate heads must compile to a single rule: per-rule grouping
    // across several rule variants would aggregate each variant
    // separately (Section 4 semantics are per-pattern).
    if (g_.distinguished.has_aggregates()) {
      size_t variants = 1;
      for (const auto& options : edge_options) variants *= options.size();
      if (variants != 1) {
        return Status::Unsupported(
            "a query graph with aggregate parameters cannot use edges "
            "with identity alternatives (=, *, ?)");
      }
    }

    // Cross product of edge options.
    std::vector<size_t> choice(edge_options.size(), 0);
    while (true) {
      Rule rule;
      rule.head = head;
      for (size_t i = 0; i < edge_options.size(); ++i) {
        const auto& lits = edge_options[i][choice[i]];
        rule.body.insert(rule.body.end(), lits.begin(), lits.end());
      }
      rule.body.insert(rule.body.end(), common.begin(), common.end());
      out_.program.rules.insert(out_.program.rules.begin() + main_rules_++,
                                std::move(rule));
      // Advance the odometer.
      size_t i = 0;
      for (; i < choice.size(); ++i) {
        if (++choice[i] < edge_options[i].size()) break;
        choice[i] = 0;
      }
      if (i == choice.size()) break;
      if (edge_options.empty()) break;
    }
    return std::move(out_);
  }

 private:
  Term FreshVar(const char* base) {
    return Term::Var(syms_->Fresh(std::string("_") + base +
                                  std::to_string(fresh_counter_++)));
  }

  /// A vector of k fresh variables (an endpoint of an auxiliary rule).
  std::vector<Term> FreshVars(size_t k, const char* base) {
    std::vector<Term> out;
    out.reserve(k);
    for (size_t i = 0; i < k; ++i) out.push_back(FreshVar(base));
    return out;
  }

  /// Replaces wildcards in a parameter list by fresh variables (the
  /// underscore projection of Section 2).
  std::vector<Term> FreshenParams(const std::vector<Term>& params) {
    std::vector<Term> out;
    out.reserve(params.size());
    for (const Term& t : params) {
      out.push_back(t.is_wildcard() ? FreshVar("u") : t);
    }
    return out;
  }

  /// Builds the body literal representing "E holds from U to V".
  /// Atoms inline; inversion swaps endpoints recursively; alternation,
  /// composition and closure compile to auxiliary predicates.
  Result<Literal> BodyLiteral(const PathExpr& e, const std::vector<Term>& U,
                              const std::vector<Term>& V) {
    switch (e.kind) {
      case PathExpr::Kind::kAtom: {
        Atom a;
        a.predicate = e.predicate;
        a.args = U;
        a.args.insert(a.args.end(), V.begin(), V.end());
        for (const Term& t : FreshenParams(e.params)) a.args.push_back(t);
        return Literal::Positive(std::move(a));
      }
      case PathExpr::Kind::kInverse:
        return BodyLiteral(e.children[0], V, U);
      case PathExpr::Kind::kAlt:
      case PathExpr::Kind::kSeq:
      case PathExpr::Kind::kPlus: {
        GRAPHLOG_ASSIGN_OR_RETURN(Compiled c, CompileExpr(e, U.size()));
        Atom a;
        a.predicate = c.pred;
        a.args = U;
        a.args.insert(a.args.end(), V.begin(), V.end());
        for (Symbol v : c.vars) a.args.push_back(Term::Var(v));
        return Literal::Positive(std::move(a));
      }
      default:
        return Status::Internal(
            "BodyLiteral on non-normalized path expression: " +
            e.ToString(*syms_));
    }
  }

  struct Compiled {
    Symbol pred = kNoSymbol;
    std::vector<Symbol> vars;  // exported (shared) variables, in order
  };

  /// Compiles a normalized (=-free, negation-free) non-atom expression to
  /// an auxiliary predicate of arity 2k + |vars|.
  Result<Compiled> CompileExpr(const PathExpr& e, size_t k) {
    Compiled c;
    c.vars = e.SharedVariables();
    switch (e.kind) {
      case PathExpr::Kind::kInverse: {
        // Only reached as a closure base (see kPlus); a standalone
        // inverse is inlined by BodyLiteral with swapped endpoints.
        c.pred = syms_->Fresh(
            e.children[0].is_atom()
                ? syms_->name(e.children[0].predicate) + "-inv"
                : BaseName() + "-inv");
        std::vector<Term> X = FreshVars(k, "X"), Y = FreshVars(k, "Y");
        GRAPHLOG_ASSIGN_OR_RETURN(Literal body,
                                  BodyLiteral(e.children[0], Y, X));
        AddAuxRule(c, X, Y, {std::move(body)});
        break;
      }
      case PathExpr::Kind::kAlt: {
        c.pred = syms_->Fresh(BaseName() + "-alt");
        for (const PathExpr& child : e.children) {
          std::vector<Term> X = FreshVars(k, "X"), Y = FreshVars(k, "Y");
          GRAPHLOG_ASSIGN_OR_RETURN(Literal body, BodyLiteral(child, X, Y));
          AddAuxRule(c, X, Y, {std::move(body)});
        }
        break;
      }
      case PathExpr::Kind::kSeq: {
        c.pred = syms_->Fresh(BaseName() + "-path");
        std::vector<Term> X = FreshVars(k, "X"), Y = FreshVars(k, "Y");
        std::vector<Literal> body;
        std::vector<Term> cur = X;
        for (size_t i = 0; i < e.children.size(); ++i) {
          std::vector<Term> next =
              (i + 1 == e.children.size()) ? Y : FreshVars(k, "Z");
          GRAPHLOG_ASSIGN_OR_RETURN(Literal l,
                                    BodyLiteral(e.children[i], cur, next));
          body.push_back(std::move(l));
          cur = next;
        }
        AddAuxRule(c, X, Y, std::move(body));
        break;
      }
      case PathExpr::Kind::kPlus: {
        // Rules (2) and (3) of Definition 2.4. A closure of a plain
        // predicate p is named p-tc, as in Figure 3. A compound child is
        // compiled ONCE so both TC rules reference the same base
        // predicate — keeping the output inside STC-DATALOG (its
        // recursion is exactly a generalized TC pair).
        const PathExpr& child = e.children[0];
        // Only a direct atom stays inline; even an inverted atom gets an
        // auxiliary predicate so the TC pair has the canonical
        // q(X,Z),t(Z,Y) orientation (recognizable STC-DATALOG).
        bool plain = child.is_atom();
        const PathExpr* base_expr = &child;
        PathExpr compiled_child;
        if (!plain) {
          GRAPHLOG_ASSIGN_OR_RETURN(Compiled cc,
                                    CompileExpr(child, k));
          compiled_child = PathExpr::Atom(cc.pred);
          for (Symbol v : cc.vars) {
            compiled_child.params.push_back(Term::Var(v));
          }
          // The compiled predicate's first 2k columns are the endpoints,
          // so it reads as a (k-endpoint) atom with |vars| parameters.
          base_expr = &compiled_child;
        }
        c.pred = syms_->Fresh(child.is_atom()
                                  ? syms_->name(child.predicate) + "-tc"
                                  : BaseName() + "-tc");
        {
          std::vector<Term> X = FreshVars(k, "X"), Y = FreshVars(k, "Y");
          GRAPHLOG_ASSIGN_OR_RETURN(Literal base,
                                    BodyLiteral(*base_expr, X, Y));
          AddAuxRule(c, X, Y, {std::move(base)});
        }
        {
          std::vector<Term> X = FreshVars(k, "X"), Y = FreshVars(k, "Y"),
                            Z = FreshVars(k, "Z");
          GRAPHLOG_ASSIGN_OR_RETURN(Literal step,
                                    BodyLiteral(*base_expr, X, Z));
          Atom rec;
          rec.predicate = c.pred;
          rec.args = Z;
          rec.args.insert(rec.args.end(), Y.begin(), Y.end());
          for (Symbol v : c.vars) rec.args.push_back(Term::Var(v));
          AddAuxRule(c, X, Y,
                     {std::move(step), Literal::Positive(std::move(rec))});
        }
        break;
      }
      default:
        return Status::Internal("CompileExpr on unexpected kind");
    }
    out_.aux_predicates.push_back(c.pred);
    return c;
  }

  /// Emits `c.pred(X, Y, c.vars) :- body.` into the auxiliary rule block.
  void AddAuxRule(const Compiled& c, const std::vector<Term>& X,
                  const std::vector<Term>& Y, std::vector<Literal> body) {
    Rule r;
    r.head.predicate = c.pred;
    for (const Term& t : X) r.head.args.push_back(HeadTerm::Plain(t));
    for (const Term& t : Y) r.head.args.push_back(HeadTerm::Plain(t));
    for (Symbol v : c.vars) {
      r.head.args.push_back(HeadTerm::Plain(Term::Var(v)));
    }
    r.body = std::move(body);
    out_.program.rules.push_back(std::move(r));
  }

  /// Componentwise comparison literals between two equal-length labels
  /// (footnote 3 of the paper).
  static std::vector<Literal> ComparisonLiterals(CmpOp op,
                                                 const std::vector<Term>& U,
                                                 const std::vector<Term>& V) {
    std::vector<Literal> out;
    for (size_t i = 0; i < U.size(); ++i) {
      out.push_back(Literal::Comparison(op, U[i], V[i]));
    }
    return out;
  }

  /// The conjunct options for one edge. Most edges have exactly one
  /// option; an identity alternative (from =, *, ?) adds an equality
  /// option; a negated edge conjoins the negations of all alternatives.
  Result<std::vector<std::vector<Literal>>> EdgeOptions(const QueryEdge& e) {
    const std::vector<Term>& U = g_.nodes[e.from].label;
    const std::vector<Term>& V = g_.nodes[e.to].label;

    if (e.comparison.has_value()) {
      return std::vector<std::vector<Literal>>{
          ComparisonLiterals(*e.comparison, U, V)};
    }

    bool negated = e.expr.kind == PathExpr::Kind::kNegate;
    const PathExpr& body = negated ? e.expr.children[0] : e.expr;
    GRAPHLOG_ASSIGN_OR_RETURN(ExpandedPre x, ExpandEquality(body));

    if (negated) {
      // ¬(=|a1|...|am): conjunction U != V (componentwise), ¬a1, ..., ¬am.
      std::vector<Literal> lits;
      if (x.has_identity) {
        for (Literal& l : ComparisonLiterals(CmpOp::kNe, U, V)) {
          lits.push_back(std::move(l));
        }
      }
      for (const PathExpr& a : x.alternatives) {
        GRAPHLOG_ASSIGN_OR_RETURN(Literal pos, BodyLiteral(a, U, V));
        if (pos.kind != Literal::Kind::kAtom) {
          return Status::Internal("negated edge produced non-atom literal");
        }
        lits.push_back(Literal::Negative(std::move(pos.atom)));
      }
      return std::vector<std::vector<Literal>>{std::move(lits)};
    }

    std::vector<std::vector<Literal>> options;
    if (!x.alternatives.empty()) {
      PathExpr positive = x.alternatives.size() == 1
                              ? std::move(x.alternatives[0])
                              : PathExpr::Alt(std::move(x.alternatives));
      GRAPHLOG_ASSIGN_OR_RETURN(Literal l, BodyLiteral(positive, U, V));
      options.push_back({std::move(l)});
    }
    if (x.has_identity) {
      options.push_back(ComparisonLiterals(CmpOp::kEq, U, V));
    }
    if (options.empty()) {
      return Status::InvalidArgument("edge label denotes the empty language");
    }
    return options;
  }

  std::string BaseName() const {
    return syms_->name(g_.distinguished.predicate);
  }

  const QueryGraph& g_;
  SymbolTable* syms_;
  Translation out_;
  size_t main_rules_ = 0;  // main rules precede aux rules in the output
  int fresh_counter_ = 0;
};

}  // namespace

Result<Translation> TranslateQueryGraph(const QueryGraph& g,
                                        SymbolTable* syms) {
  GraphTranslator t(g, syms);
  return t.Run();
}

Result<Translation> Translate(const GraphicalQuery& q, SymbolTable* syms,
                              bool skip_summaries) {
  GRAPHLOG_RETURN_NOT_OK(ValidateGraphicalQuery(q, *syms));
  Translation out;
  for (const QueryGraph& g : q.graphs) {
    if (g.summary.has_value()) {
      if (skip_summaries) continue;
      return Status::Unsupported(
          "graphical query contains a summarization graph; evaluate with "
          "the GraphLog engine (Section 4 semantics)");
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Translation t, TranslateQueryGraph(g, syms));
    out.program.Append(t.program);
    out.aux_predicates.insert(out.aux_predicates.end(),
                              t.aux_predicates.begin(),
                              t.aux_predicates.end());
  }
  return out;
}

}  // namespace graphlog::gl
