// DOT rendering of query graphs — drawing the visual formalism.
//
// The paper's figures draw query graphs with specific conventions
// (Example 2.2):
//   * the distinguished edge is a bold line,
//   * closure-literal edges are dashed,
//   * negative literals cross the edge (rendered here as red with the
//     label prefixed by ¬),
//   * node predicates annotate the node label.
//
// RenderQueryGraph reproduces those conventions so that `dot -Tpng`
// regenerates pictures in the style of Figures 2, 4, 5, 6 and 11.

#ifndef GRAPHLOG_GRAPHLOG_DOT_H_
#define GRAPHLOG_GRAPHLOG_DOT_H_

#include <string>

#include "common/symbol_table.h"
#include "graphlog/query_graph.h"

namespace graphlog::gl {

/// \brief Renders one query graph in Graphviz DOT syntax.
std::string RenderQueryGraph(const QueryGraph& g, const SymbolTable& syms);

/// \brief Renders a graphical query: one cluster per query graph, in the
/// style of Figure 4's boxed regions.
std::string RenderGraphicalQuery(const GraphicalQuery& q,
                                 const SymbolTable& syms);

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_DOT_H_
