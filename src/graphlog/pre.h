// Path regular expressions (Definition 2.8 of the paper).
//
//   E <- S ; (E)+ ; -(E) ; ¬(E) ; (E|E) ; (E E)
//
// plus the two derived operators: Kleene closure (E)* == (= | (E)+) and
// optional (E)? == (= | E), and the equality edge `=` itself.
//
// Atoms S are literals: a predicate applied to parameter terms (variables,
// constants, or the underscore). Surface syntax examples:
//
//   descendant+                          closure literal (Figure 2)
//   (father | mother(_))* friend        Figure 5's edge
//   (-from) feasible+ to                 inverse and composition
//   !descendant+                         negation (outermost only)
//   in-module (calls-local* calls-extn in-module)+    Figure 6
//
// Juxtaposition is composition; `|` is alternation (lowest precedence);
// postfix +, *, ? bind tightest; prefix `-` inverts and `!` (or `¬`)
// negates.

#ifndef GRAPHLOG_GRAPHLOG_PRE_H_
#define GRAPHLOG_GRAPHLOG_PRE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"
#include "datalog/lexer.h"

namespace graphlog::gl {

/// \brief AST of a path regular expression.
struct PathExpr {
  enum class Kind : uint8_t {
    kAtom,      ///< predicate literal p(params...)
    kEquals,    ///< the equality edge `=`
    kPlus,      ///< positive closure (E)+
    kStar,      ///< Kleene closure (E)* — derived
    kOptional,  ///< (E)? — derived
    kInverse,   ///< -(E)
    kNegate,    ///< ¬(E); valid only outermost
    kAlt,       ///< (E|E)
    kSeq,       ///< (E E) composition
  };

  Kind kind = Kind::kAtom;
  Symbol predicate = kNoSymbol;       // kAtom
  std::vector<datalog::Term> params;  // kAtom
  std::vector<PathExpr> children;     // 1 for unary, 2+ for kAlt/kSeq

  static PathExpr Atom(Symbol pred, std::vector<datalog::Term> params = {}) {
    PathExpr e;
    e.kind = Kind::kAtom;
    e.predicate = pred;
    e.params = std::move(params);
    return e;
  }
  static PathExpr Equals() {
    PathExpr e;
    e.kind = Kind::kEquals;
    return e;
  }
  static PathExpr Unary(Kind k, PathExpr child) {
    PathExpr e;
    e.kind = k;
    e.children.push_back(std::move(child));
    return e;
  }
  static PathExpr Plus(PathExpr c) { return Unary(Kind::kPlus, std::move(c)); }
  static PathExpr Star(PathExpr c) { return Unary(Kind::kStar, std::move(c)); }
  static PathExpr Optional(PathExpr c) {
    return Unary(Kind::kOptional, std::move(c));
  }
  static PathExpr Inverse(PathExpr c) {
    return Unary(Kind::kInverse, std::move(c));
  }
  static PathExpr Negate(PathExpr c) {
    return Unary(Kind::kNegate, std::move(c));
  }
  static PathExpr Alt(std::vector<PathExpr> cs) {
    PathExpr e;
    e.kind = Kind::kAlt;
    e.children = std::move(cs);
    return e;
  }
  static PathExpr Seq(std::vector<PathExpr> cs) {
    PathExpr e;
    e.kind = Kind::kSeq;
    e.children = std::move(cs);
    return e;
  }

  bool is_atom() const { return kind == Kind::kAtom; }

  /// \brief Distinct variables (no wildcards) in order of first appearance.
  std::vector<Symbol> Variables() const;

  /// \brief Shared variables: for kAlt, only variables occurring in every
  /// branch (the rest are ghosts); recursively for other nodes. These are
  /// the variables the compiled predicate for this expression exports.
  std::vector<Symbol> SharedVariables() const;

  /// \brief Ghost variables: variables that occur in the expression but are
  /// not exported (they occur in some but not all branches of an
  /// alternation). Their scope is that alternation (Section 2).
  std::vector<Symbol> GhostVariables() const;

  /// \brief True if a kNegate appears anywhere not at the root — disallowed
  /// for safety (footnote 4 of the paper).
  bool HasNestedNegation() const;

  std::string ToString(const SymbolTable& syms) const;
};

/// \brief Result of eliminating `=` (and the derived *, ? operators):
/// a union of =-free alternatives, plus an optional identity alternative.
///
/// (E)* == (= | (E)+) and (E)? == (= | E), and `=` is the identity of
/// composition, so every p.r.e. normalizes to `[=|] e1 | ... | em` where
/// each e_i contains only atoms, +, -, | and composition.
struct ExpandedPre {
  bool has_identity = false;         ///< the `=` alternative is present
  std::vector<PathExpr> alternatives;  ///< =-free, negation-free exprs
};

/// \brief Normalizes `e` (which must be negation-free) per the rules above.
Result<ExpandedPre> ExpandEquality(const PathExpr& e);

/// \brief Parses a p.r.e. from text. See the header comment for syntax.
Result<PathExpr> ParsePathExpr(std::string_view text, SymbolTable* syms);

/// \brief Parses a p.r.e. from a token stream starting at *pos; on success
/// *pos is advanced past the expression. Used by the graphical-query
/// parser, which embeds p.r.e.s as edge labels.
Result<PathExpr> ParsePathExprTokens(const std::vector<datalog::Token>& tokens,
                                     size_t* pos, SymbolTable* syms);

}  // namespace graphlog::gl

#endif  // GRAPHLOG_GRAPHLOG_PRE_H_
