// DataGraph: the directed labeled multigraph data model of Definition 2.1.
//
// Nodes are identified by a Value (the object of interest: a city, a
// flight, a person). Edges carry a predicate label plus an optional tuple
// of extra attributes — the paper's  P(c_1,...,c_k)  edge labels. Unary
// predicates (capital, person) attach to nodes as *node predicates*.
//
// A DataGraph and a relational Database are two views of the same
// information (Section 2 of the paper): a binary-or-wider relation
// P(a, b, c...) is the edge a -> b labeled P(c...), and a unary relation
// is a node predicate. ToDatabase()/FromDatabase() realize the mapping.

#ifndef GRAPHLOG_GRAPH_DATA_GRAPH_H_
#define GRAPHLOG_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "storage/database.h"
#include "storage/tuple.h"

namespace graphlog::graph {

/// \brief Dense node identifier within one DataGraph.
using NodeId = uint32_t;

/// \brief An edge of the multigraph.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  Symbol predicate = kNoSymbol;
  storage::Tuple args;  ///< extra attributes on the edge label
};

/// \brief Directed labeled multigraph (Definition 2.1).
class DataGraph {
 public:
  DataGraph() = default;

  /// \brief Interns a node for `v` (idempotent).
  NodeId AddNode(const Value& v) {
    auto it = node_ids_.find(v);
    if (it != node_ids_.end()) return it->second;
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(v);
    node_ids_.emplace(v, id);
    out_.emplace_back();
    in_.emplace_back();
    return id;
  }

  /// \brief The node for `v`, or nullopt-like flag via found=false.
  bool FindNode(const Value& v, NodeId* out) const {
    auto it = node_ids_.find(v);
    if (it == node_ids_.end()) return false;
    *out = it->second;
    return true;
  }

  /// \brief Adds a labeled edge, creating nodes as needed. Duplicate
  /// parallel edges with identical labels are kept once.
  void AddEdge(const Value& from, const Value& to, Symbol predicate,
               storage::Tuple args = {});

  /// \brief Marks `node` with a unary predicate (e.g. capital, person).
  void AddNodePredicate(const Value& node, Symbol predicate) {
    node_predicates_[predicate].push_back(AddNode(node));
  }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const Value& node_value(NodeId id) const { return nodes_[id]; }
  const std::vector<Value>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// \brief Outgoing edge indices of `n`.
  const std::vector<uint32_t>& OutEdges(NodeId n) const { return out_[n]; }
  /// \brief Incoming edge indices of `n`.
  const std::vector<uint32_t>& InEdges(NodeId n) const { return in_[n]; }
  const Edge& edge(uint32_t i) const { return edges_[i]; }

  /// \brief Nodes carrying unary predicate `p`.
  const std::vector<NodeId>& NodesWith(Symbol p) const {
    static const std::vector<NodeId> kEmpty;
    auto it = node_predicates_.find(p);
    return it == node_predicates_.end() ? kEmpty : it->second;
  }
  bool NodeHas(Symbol p, NodeId n) const;

  /// \brief Edge predicates present in the graph.
  std::vector<Symbol> EdgePredicates() const;

  /// \brief Materializes the relational view into `db`: each edge becomes
  /// P(from, to, args...), each node predicate a unary fact.
  ///
  /// `source_syms` is the symbol table the graph's Symbols and symbol
  /// Values were interned in; names are re-interned into `db`'s table, so
  /// the target database is self-contained.
  Status ToDatabase(const SymbolTable& source_syms,
                    storage::Database* db) const;

  /// \brief Builds the graph view of `db`: relations of arity >= 2 map
  /// (col0 -> col1, rest as edge args); unary relations become node
  /// predicates. The Database's symbols are the namespace for labels.
  static DataGraph FromDatabase(const storage::Database& db);

 private:
  std::vector<Value> nodes_;
  std::unordered_map<Value, NodeId, ValueHash> node_ids_;
  std::vector<Edge> edges_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
  std::map<Symbol, std::vector<NodeId>> node_predicates_;
};

/// \brief Options for DOT rendering.
struct DotOptions {
  std::string graph_name = "G";
  /// Edge indices to render bold/red — used to "highlight qualifying
  /// paths directly on the database graph" like the Section 5 prototype.
  std::vector<uint32_t> highlight_edges;
  bool show_edge_args = true;
};

/// \brief Renders the graph in Graphviz DOT syntax (the stand-in for the
/// prototype's display window).
std::string ToDot(const DataGraph& g, const SymbolTable& syms,
                  const DotOptions& options = {});

}  // namespace graphlog::graph

#endif  // GRAPHLOG_GRAPH_DATA_GRAPH_H_
