#include "graph/data_graph.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace graphlog::graph {

using storage::Database;
using storage::Relation;
using storage::Tuple;

void DataGraph::AddEdge(const Value& from, const Value& to, Symbol predicate,
                        Tuple args) {
  NodeId f = AddNode(from);
  NodeId t = AddNode(to);
  // Deduplicate identical parallel edges.
  for (uint32_t i : out_[f]) {
    const Edge& e = edges_[i];
    if (e.to == t && e.predicate == predicate && e.args == args) return;
  }
  uint32_t idx = static_cast<uint32_t>(edges_.size());
  edges_.push_back(Edge{f, t, predicate, std::move(args)});
  out_[f].push_back(idx);
  in_[t].push_back(idx);
}

bool DataGraph::NodeHas(Symbol p, NodeId n) const {
  const std::vector<NodeId>& with = NodesWith(p);
  return std::find(with.begin(), with.end(), n) != with.end();
}

std::vector<Symbol> DataGraph::EdgePredicates() const {
  std::set<Symbol> seen;
  std::vector<Symbol> out;
  for (const Edge& e : edges_) {
    if (seen.insert(e.predicate).second) out.push_back(e.predicate);
  }
  return out;
}

Status DataGraph::ToDatabase(const SymbolTable& source_syms,
                             Database* db) const {
  auto xlate = [&](const Value& v) {
    if (!v.is_symbol()) return v;
    return Value::Sym(db->Intern(source_syms.name(v.AsSymbol())));
  };
  for (const Edge& e : edges_) {
    Tuple t;
    t.reserve(2 + e.args.size());
    t.push_back(xlate(nodes_[e.from]));
    t.push_back(xlate(nodes_[e.to]));
    for (const Value& v : e.args) t.push_back(xlate(v));
    GRAPHLOG_RETURN_NOT_OK(
        db->AddFact(source_syms.name(e.predicate), std::move(t)));
  }
  for (const auto& [pred, ids] : node_predicates_) {
    for (NodeId n : ids) {
      GRAPHLOG_RETURN_NOT_OK(
          db->AddFact(source_syms.name(pred), Tuple{xlate(nodes_[n])}));
    }
  }
  return Status::OK();
}

DataGraph DataGraph::FromDatabase(const Database& db) {
  DataGraph g;
  for (const auto& [pred, rel] : db.relations()) {
    if (rel.arity() == 0) continue;
    if (rel.arity() == 1) {
      for (const Tuple& t : rel.rows()) g.AddNodePredicate(t[0], pred);
      continue;
    }
    for (const Tuple& t : rel.rows()) {
      Tuple args(t.begin() + 2, t.end());
      g.AddEdge(t[0], t[1], pred, std::move(args));
    }
  }
  return g;
}

std::string ToDot(const DataGraph& g, const SymbolTable& syms,
                  const DotOptions& options) {
  std::set<uint32_t> hi(options.highlight_edges.begin(),
                        options.highlight_edges.end());
  std::string out = "digraph " + options.graph_name + " {\n";
  out += "  rankdir=LR;\n  node [shape=ellipse];\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out += "  n" + std::to_string(n) + " [label=\"" +
           EscapeQuoted(g.node_value(n).ToString(syms)) + "\"];\n";
  }
  for (uint32_t i = 0; i < g.num_edges(); ++i) {
    const Edge& e = g.edge(i);
    std::string label = syms.name(e.predicate);
    if (options.show_edge_args && !e.args.empty()) {
      std::vector<std::string> parts;
      for (const Value& v : e.args) parts.push_back(v.ToString(syms));
      label += "(" + Join(parts, ",") + ")";
    }
    out += "  n" + std::to_string(e.from) + " -> n" + std::to_string(e.to) +
           " [label=\"" + EscapeQuoted(label) + "\"";
    if (hi.count(i) > 0) out += ", color=red, penwidth=2.5";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace graphlog::graph
