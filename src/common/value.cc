#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace graphlog {

std::string Value::ToString(const SymbolTable& syms) const {
  switch (kind_) {
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kDouble: {
      // Integral doubles render with a trailing ".0" to stay parseable as
      // doubles.
      double d = double_;
      if (std::floor(d) == d && std::isfinite(d) &&
          std::abs(d) < 1e15) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      return buf;
    }
    case ValueKind::kSymbol:
      return syms.Contains(sym_) ? syms.name(sym_)
                                 : "<sym#" + std::to_string(sym_) + ">";
  }
  return "<?>";
}

}  // namespace graphlog
