// SymbolTable: string interning.
//
// All identifiers and string constants flowing through the engine (predicate
// names, variable names, string values) are interned into 32-bit Symbol ids
// so that tuples are flat integer records and joins hash machine words.

#ifndef GRAPHLOG_COMMON_SYMBOL_TABLE_H_
#define GRAPHLOG_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace graphlog {

/// \brief Interned string id. Valid ids are dense, starting at 0.
using Symbol = uint32_t;

/// \brief Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = static_cast<Symbol>(-1);

/// \brief Bidirectional string <-> Symbol map.
///
/// Not thread-safe; each Database owns one. Interning the same string twice
/// returns the same Symbol, and symbols are never released.
class SymbolTable {
 public:
  SymbolTable() = default;

  // Movable but not copyable: Symbols are only meaningful relative to the
  // table that issued them, so accidental copies invite mixed-table ids.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  /// \brief Explicit deep copy. Copying is otherwise deleted to keep
  /// mixed-table ids impossible; snapshot materialization (the server
  /// layer) deliberately clones so a session's ids start as an identical
  /// prefix of the server's — every Symbol the server ever issued means
  /// the same string in the clone, and ids the clone interns afterwards
  /// stay session-local.
  SymbolTable Clone() const {
    SymbolTable t;
    t.strings_ = strings_;
    t.ids_ = ids_;
    return t;
  }

  /// \brief Interns `s`, returning its Symbol (creating it if new).
  Symbol Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    Symbol id = static_cast<Symbol>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// \brief Looks up `s` without interning; kNoSymbol if absent.
  Symbol Lookup(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? kNoSymbol : it->second;
  }

  /// \brief The string for an id issued by this table.
  const std::string& name(Symbol id) const { return strings_[id]; }

  bool Contains(Symbol id) const { return id < strings_.size(); }

  size_t size() const { return strings_.size(); }

  /// \brief Interns a name not currently in the table, derived from `base`.
  ///
  /// Used to generate auxiliary predicate names (p.r.e. compilation,
  /// Algorithm 3.1 signatures) that cannot clash with user predicates.
  Symbol Fresh(std::string_view base) {
    std::string candidate(base);
    int n = 0;
    while (ids_.count(candidate) > 0) {
      candidate = std::string(base) + "_" + std::to_string(n++);
    }
    return Intern(candidate);
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Symbol> ids_;
};

}  // namespace graphlog

#endif  // GRAPHLOG_COMMON_SYMBOL_TABLE_H_
