// Status: lightweight error propagation without exceptions.
//
// The library follows the Arrow/RocksDB idiom: fallible operations return a
// Status (or Result<T>, see result.h) rather than throwing. A Status is
// either OK or carries an error code plus a human-readable message.

#ifndef GRAPHLOG_COMMON_STATUS_H_
#define GRAPHLOG_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace graphlog {

/// \brief Category of a Status error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kParseError = 2,        ///< textual input failed to parse
  kNotFound = 3,          ///< named entity does not exist
  kAlreadyExists = 4,     ///< named entity clashes with an existing one
  kUnstratifiable = 5,    ///< program has no stratification
  kUnsafeRule = 6,        ///< rule violates safety / range restriction
  kNotLinear = 7,         ///< program is outside the linear fragment
  kCyclicDependence = 8,  ///< graphical query has a cyclic dependence graph
  kGhostVariable = 9,     ///< ghost variable escapes its scope (Section 2)
  kArityMismatch = 10,    ///< predicate used with inconsistent arities
  kTypeError = 11,        ///< value of the wrong runtime type
  kUnsupported = 12,      ///< feature intentionally out of scope
  kInternal = 13,         ///< invariant violation inside the library
  kCycleInPath = 14,      ///< path summarization hit an unbounded cycle
  kCancelled = 15,        ///< cooperative cancellation (gov/governor.h)
  kDeadlineExceeded = 16, ///< wall-clock deadline tripped mid-query
  kBudgetExceeded = 17,   ///< resource budget (rows/rounds/bytes) tripped
  kCorruptedLog = 18,     ///< WAL/checkpoint bytes fail integrity checks
  kOverloaded = 19,       ///< admission control shed the request (net/)
};

/// \brief Human-readable name of a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: OK, or an error code + message.
///
/// Statuses are cheap to move and to copy in the OK case (a single pointer).
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unstratifiable(std::string msg) {
    return Status(StatusCode::kUnstratifiable, std::move(msg));
  }
  static Status UnsafeRule(std::string msg) {
    return Status(StatusCode::kUnsafeRule, std::move(msg));
  }
  static Status NotLinear(std::string msg) {
    return Status(StatusCode::kNotLinear, std::move(msg));
  }
  static Status CyclicDependence(std::string msg) {
    return Status(StatusCode::kCyclicDependence, std::move(msg));
  }
  static Status GhostVariable(std::string msg) {
    return Status(StatusCode::kGhostVariable, std::move(msg));
  }
  static Status ArityMismatch(std::string msg) {
    return Status(StatusCode::kArityMismatch, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CycleInPath(std::string msg) {
    return Status(StatusCode::kCycleInPath, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }
  static Status CorruptedLog(std::string msg) {
    return Status(StatusCode::kCorruptedLog, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  /// \brief "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace graphlog

/// \brief Propagates a non-OK Status to the caller.
#define GRAPHLOG_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::graphlog::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // GRAPHLOG_COMMON_STATUS_H_
