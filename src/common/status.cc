#include "common/status.h"

namespace graphlog {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnstratifiable:
      return "Unstratifiable";
    case StatusCode::kUnsafeRule:
      return "UnsafeRule";
    case StatusCode::kNotLinear:
      return "NotLinear";
    case StatusCode::kCyclicDependence:
      return "CyclicDependence";
    case StatusCode::kGhostVariable:
      return "GhostVariable";
    case StatusCode::kArityMismatch:
      return "ArityMismatch";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCycleInPath:
      return "CycleInPath";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kCorruptedLog:
      return "CorruptedLog";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace graphlog
