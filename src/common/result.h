// Result<T>: a value or a Status error, in the style of arrow::Result.

#ifndef GRAPHLOG_COMMON_RESULT_H_
#define GRAPHLOG_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace graphlog {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
///
/// Usage:
/// \code
///   Result<Program> r = ParseProgram(text);
///   if (!r.ok()) return r.status();
///   Program p = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from error Status. Constructing from an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Implicit from value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Access the held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace graphlog

/// \brief Assigns the value of a Result expression to `lhs`, or propagates
/// its error Status to the caller.
#define GRAPHLOG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueOrDie()

#define GRAPHLOG_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define GRAPHLOG_ASSIGN_OR_RETURN_NAME(a, b) \
  GRAPHLOG_ASSIGN_OR_RETURN_CONCAT(a, b)

#define GRAPHLOG_ASSIGN_OR_RETURN(lhs, rexpr)                                \
  GRAPHLOG_ASSIGN_OR_RETURN_IMPL(                                            \
      GRAPHLOG_ASSIGN_OR_RETURN_NAME(_graphlog_result_, __LINE__), lhs, rexpr)

#endif  // GRAPHLOG_COMMON_RESULT_H_
