// Value: the runtime datum type of the engine.
//
// A Value is a small tagged union over 64-bit integers, doubles, and
// interned string symbols. Comparison establishes a total order across
// types (by tag, then by payload), which gives relations a canonical sort
// order and makes "ordering on the domain" (Section 3 of the paper)
// available to evaluation.

#ifndef GRAPHLOG_COMMON_VALUE_H_
#define GRAPHLOG_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/symbol_table.h"

namespace graphlog {

/// \brief Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  kInt = 0,
  kDouble = 1,
  kSymbol = 2,  ///< interned string
};

/// \brief A single datum: int64, double, or interned string.
class Value {
 public:
  /// Default: integer 0.
  Value() : kind_(ValueKind::kInt), int_(0) {}

  static Value Int(int64_t v) {
    Value x;
    x.kind_ = ValueKind::kInt;
    x.int_ = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.kind_ = ValueKind::kDouble;
    x.double_ = v;
    return x;
  }
  static Value Sym(Symbol s) {
    Value x;
    x.kind_ = ValueKind::kSymbol;
    x.sym_ = s;
    return x;
  }

  ValueKind kind() const { return kind_; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_double() const { return kind_ == ValueKind::kDouble; }
  bool is_symbol() const { return kind_ == ValueKind::kSymbol; }

  int64_t AsInt() const { return int_; }
  double AsDouble() const { return double_; }
  Symbol AsSymbol() const { return sym_; }

  /// \brief Numeric view: ints widen to double; symbols are 0 (callers must
  /// type-check first via is_numeric()).
  bool is_numeric() const { return is_int() || is_double(); }
  double ToDouble() const {
    return kind_ == ValueKind::kInt ? static_cast<double>(int_) : double_;
  }

  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
      case ValueKind::kInt:
        return int_ == o.int_;
      case ValueKind::kDouble:
        return double_ == o.double_;
      case ValueKind::kSymbol:
        return sym_ == o.sym_;
    }
    return false;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// \brief Total order: by kind tag, then by payload. Numerics of the same
  /// kind compare numerically; symbols compare by intern id.
  bool operator<(const Value& o) const {
    if (kind_ != o.kind_) return kind_ < o.kind_;
    switch (kind_) {
      case ValueKind::kInt:
        return int_ < o.int_;
      case ValueKind::kDouble:
        return double_ < o.double_;
      case ValueKind::kSymbol:
        return sym_ < o.sym_;
    }
    return false;
  }

  size_t Hash() const {
    uint64_t h = 0;
    switch (kind_) {
      case ValueKind::kInt:
        h = static_cast<uint64_t>(int_);
        break;
      case ValueKind::kDouble: {
        double d = double_;
        // Normalize -0.0 so equal doubles hash equal.
        if (d == 0.0) d = 0.0;
        static_assert(sizeof(double) == sizeof(uint64_t));
        __builtin_memcpy(&h, &d, sizeof(h));
        break;
      }
      case ValueKind::kSymbol:
        h = sym_;
        break;
    }
    // Mix tag and payload (splitmix64 finalizer).
    h += 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(kind_);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }

  /// \brief Renders the value, resolving symbols through `syms`.
  std::string ToString(const SymbolTable& syms) const;

 private:
  ValueKind kind_;
  union {
    int64_t int_;
    double double_;
    Symbol sym_;
  };
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace graphlog

#endif  // GRAPHLOG_COMMON_VALUE_H_
