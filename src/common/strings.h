// Small string helpers shared across modules.

#ifndef GRAPHLOG_COMMON_STRINGS_H_
#define GRAPHLOG_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace graphlog {

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits `s` on `sep`, trimming nothing; empty fields preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Escapes a string for inclusion in a double-quoted literal.
std::string EscapeQuoted(std::string_view s);

}  // namespace graphlog

#endif  // GRAPHLOG_COMMON_STRINGS_H_
