#include "common/strings.h"

namespace graphlog {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string EscapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace graphlog
