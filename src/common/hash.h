// Hash combinators for composite keys.

#ifndef GRAPHLOG_COMMON_HASH_H_
#define GRAPHLOG_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace graphlog {

/// \brief Mixes `v` into the running hash `seed` (boost::hash_combine
/// with a 64-bit constant).
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// \brief splitmix64 finalizer; good avalanche for integer keys.
inline uint64_t Mix64(uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace graphlog

#endif  // GRAPHLOG_COMMON_HASH_H_
