#include "datalog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace graphlog::datalog {

std::string_view TokenKindToString(TokenKind k) {
  switch (k) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kImplies:
      return "':-'";
    case TokenKind::kAssign:
      return "':='";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kQuestion:
      return "'?'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kDoubleArrow:
      return "'=>'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < in.size(); ++k) {
      if (in[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t off) -> char {
    return i + off < in.size() ? in[i + off] : '\0';
  };
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              ", column " + std::to_string(col));
  };
  auto push = [&](TokenKind k, std::string text, size_t len) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    t.column = col;
    out.push_back(std::move(t));
    advance(len);
  };

  while (i < in.size()) {
    char c = in[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Comments: '#' or '//' to end of line. ('%' is the mod operator.)
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < in.size() && in[i] != '\n') advance(1);
      continue;
    }
    // Identifiers and variables. Hyphens are absorbed into lowercase
    // identifiers when immediately followed by a letter, so the paper's
    // `not-desc-of` lexes as a single identifier.
    if (IsIdentStart(c)) {
      bool is_var = std::isupper(static_cast<unsigned char>(c)) || c == '_';
      size_t start = i;
      int tline = line, tcol = col;
      advance(1);
      while (i < in.size()) {
        if (IsIdentChar(in[i])) {
          advance(1);
        } else if (!is_var && in[i] == '-' && i + 1 < in.size() &&
                   std::isalpha(static_cast<unsigned char>(in[i + 1]))) {
          advance(2);
        } else {
          break;
        }
      }
      Token t;
      t.text = std::string(in.substr(start, i - start));
      t.kind = (is_var ? TokenKind::kVariable : TokenKind::kIdent);
      t.line = tline;
      t.column = tcol;
      out.push_back(std::move(t));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int tline = line, tcol = col;
      while (i < in.size() && std::isdigit(static_cast<unsigned char>(in[i])))
        advance(1);
      bool is_float = false;
      if (i < in.size() && in[i] == '.' && i + 1 < in.size() &&
          std::isdigit(static_cast<unsigned char>(in[i + 1]))) {
        is_float = true;
        advance(1);
        while (i < in.size() &&
               std::isdigit(static_cast<unsigned char>(in[i])))
          advance(1);
      }
      Token t;
      t.text = std::string(in.substr(start, i - start));
      t.line = tline;
      t.column = tcol;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      int tline = line, tcol = col;
      advance(1);
      std::string text;
      bool closed = false;
      while (i < in.size()) {
        char d = in[i];
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (d == '\\' && i + 1 < in.size()) {
          char e = in[i + 1];
          if (e == 'n')
            text += '\n';
          else if (e == 't')
            text += '\t';
          else
            text += e;
          advance(2);
          continue;
        }
        text += d;
        advance(1);
      }
      if (!closed) return error("unterminated string literal");
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.line = tline;
      t.column = tcol;
      out.push_back(std::move(t));
      continue;
    }
    // Punctuation and operators.
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", 1);
        continue;
      case ')':
        push(TokenKind::kRParen, ")", 1);
        continue;
      case '{':
        push(TokenKind::kLBrace, "{", 1);
        continue;
      case '}':
        push(TokenKind::kRBrace, "}", 1);
        continue;
      case '[':
        push(TokenKind::kLBracket, "[", 1);
        continue;
      case ']':
        push(TokenKind::kRBracket, "]", 1);
        continue;
      case ',':
        push(TokenKind::kComma, ",", 1);
        continue;
      case '.':
        push(TokenKind::kDot, ".", 1);
        continue;
      case ';':
        push(TokenKind::kSemicolon, ";", 1);
        continue;
      case ':':
        if (peek(1) == '-') {
          push(TokenKind::kImplies, ":-", 2);
        } else if (peek(1) == '=') {
          push(TokenKind::kAssign, ":=", 2);
        } else {
          push(TokenKind::kColon, ":", 1);
        }
        continue;
      case '!':
        if (peek(1) == '=') {
          push(TokenKind::kNe, "!=", 2);
        } else {
          push(TokenKind::kBang, "!", 1);
        }
        continue;
      case '=':
        if (peek(1) == '>') {
          push(TokenKind::kDoubleArrow, "=>", 2);
        } else {
          push(TokenKind::kEq, "=", 1);
        }
        continue;
      case '<':
        if (peek(1) == '=') {
          push(TokenKind::kLe, "<=", 2);
        } else {
          push(TokenKind::kLt, "<", 1);
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          push(TokenKind::kGe, ">=", 2);
        } else {
          push(TokenKind::kGt, ">", 1);
        }
        continue;
      case '+':
        push(TokenKind::kPlus, "+", 1);
        continue;
      case '-':
        if (peek(1) == '>') {
          push(TokenKind::kArrow, "->", 2);
        } else {
          push(TokenKind::kMinus, "-", 1);
        }
        continue;
      case '*':
        push(TokenKind::kStar, "*", 1);
        continue;
      case '/':
        push(TokenKind::kSlash, "/", 1);
        continue;
      case '%':
        push(TokenKind::kPercent, "%", 1);
        continue;
      case '|':
        push(TokenKind::kPipe, "|", 1);
        continue;
      case '?':
        push(TokenKind::kQuestion, "?", 1);
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  out.push_back(end);
  return out;
}

}  // namespace graphlog::datalog
