// Datalog abstract syntax.
//
// This is the target language of the GraphLog logical translation function
// lambda (Definition 2.4 of the paper) and the input/output language of
// Algorithm 3.1 (SL-DATALOG -> STC-DATALOG). The dialect is stratified
// Datalog extended with:
//   * negated body atoms (stratified semantics),
//   * comparison builtins  (=, !=, <, <=, >, >=),
//   * arithmetic assignment builtins  (X = Y + Z, ...),
//   * aggregate head terms (count/sum/min/max/avg), stratified like
//     negation — the Section 4 extension of the paper.
//
// Predicates are identified by interned name; arity is checked for
// consistency by analysis passes.

#ifndef GRAPHLOG_DATALOG_AST_H_
#define GRAPHLOG_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/symbol_table.h"
#include "common/value.h"

namespace graphlog::datalog {

// ---------------------------------------------------------------------------
// Terms

/// \brief A term: variable, constant, or the anonymous wildcard `_`.
///
/// The wildcard is the paper's "underscore" projection device (Section 2);
/// the parser replaces each occurrence with a fresh variable, but builder
/// APIs may construct wildcards directly and normalize later.
class Term {
 public:
  enum class Kind : uint8_t { kVariable, kConstant, kWildcard };

  static Term Var(Symbol name) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.var_ = name;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.value_ = v;
    return t;
  }
  static Term Wildcard() {
    Term t;
    t.kind_ = Kind::kWildcard;
    return t;
  }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_wildcard() const { return kind_ == Kind::kWildcard; }

  Symbol var() const { return var_; }
  const Value& value() const { return value_; }

  bool operator==(const Term& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
      case Kind::kVariable:
        return var_ == o.var_;
      case Kind::kConstant:
        return value_ == o.value_;
      case Kind::kWildcard:
        return true;
    }
    return false;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  std::string ToString(const SymbolTable& syms) const;

 private:
  Kind kind_ = Kind::kWildcard;
  Symbol var_ = kNoSymbol;
  Value value_;
};

// ---------------------------------------------------------------------------
// Atoms

/// \brief A predicate applied to terms: p(t1, ..., tn).
struct Atom {
  Symbol predicate = kNoSymbol;
  std::vector<Term> args;

  size_t arity() const { return args.size(); }

  bool operator==(const Atom& o) const {
    return predicate == o.predicate && args == o.args;
  }

  std::string ToString(const SymbolTable& syms) const;
};

// ---------------------------------------------------------------------------
// Arithmetic expressions (builtin assignment bodies)

/// \brief Binary arithmetic operator.
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };

std::string_view ArithOpToString(ArithOp op);

/// \brief An arithmetic expression tree over terms.
///
/// Leaves are terms (variables or numeric constants); interior nodes apply
/// a binary ArithOp. Used on the right-hand side of assignment literals,
/// e.g. NS = S + E - DS (Figure 11 of the paper).
struct ArithExpr {
  // Leaf when op is unset (children empty).
  bool is_leaf = true;
  Term leaf;                 // valid when is_leaf
  ArithOp op = ArithOp::kAdd;
  std::vector<ArithExpr> children;  // exactly 2 when !is_leaf

  static ArithExpr Leaf(Term t) {
    ArithExpr e;
    e.is_leaf = true;
    e.leaf = t;
    return e;
  }
  static ArithExpr Node(ArithOp op, ArithExpr lhs, ArithExpr rhs) {
    ArithExpr e;
    e.is_leaf = false;
    e.op = op;
    e.children.push_back(std::move(lhs));
    e.children.push_back(std::move(rhs));
    return e;
  }

  /// \brief Appends all variables occurring in the expression to `out`.
  void CollectVariables(std::vector<Symbol>* out) const;

  std::string ToString(const SymbolTable& syms) const;
};

// ---------------------------------------------------------------------------
// Body literals

/// \brief Comparison operator for builtin comparison literals.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CmpOpToString(CmpOp op);

/// \brief Evaluates `lhs op rhs` on concrete values (numeric comparison
/// across int/double; symbols compare by the Value total order).
bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs);

/// \brief A body literal.
///
/// One of:
///  * kAtom          p(t...)           — positive relational subgoal
///  * kNegatedAtom   !p(t...)          — stratified negation
///  * kComparison    t1 op t2          — builtin comparison
///  * kAssignment    X = <arith expr>  — builtin arithmetic binding
struct Literal {
  enum class Kind : uint8_t { kAtom, kNegatedAtom, kComparison, kAssignment };

  Kind kind = Kind::kAtom;
  Atom atom;          // kAtom / kNegatedAtom
  CmpOp cmp = CmpOp::kEq;  // kComparison
  Term lhs, rhs;      // kComparison operands
  Term assign_target;      // kAssignment: the bound variable
  ArithExpr assign_expr;   // kAssignment: the expression

  static Literal Positive(Atom a) {
    Literal l;
    l.kind = Kind::kAtom;
    l.atom = std::move(a);
    return l;
  }
  static Literal Negative(Atom a) {
    Literal l;
    l.kind = Kind::kNegatedAtom;
    l.atom = std::move(a);
    return l;
  }
  static Literal Comparison(CmpOp op, Term lhs, Term rhs) {
    Literal l;
    l.kind = Kind::kComparison;
    l.cmp = op;
    l.lhs = lhs;
    l.rhs = rhs;
    return l;
  }
  static Literal Assignment(Term target, ArithExpr expr) {
    Literal l;
    l.kind = Kind::kAssignment;
    l.assign_target = target;
    l.assign_expr = std::move(expr);
    return l;
  }

  bool is_relational() const {
    return kind == Kind::kAtom || kind == Kind::kNegatedAtom;
  }
  bool is_positive_atom() const { return kind == Kind::kAtom; }
  bool is_negated_atom() const { return kind == Kind::kNegatedAtom; }

  /// \brief Appends every variable occurring in the literal to `out`
  /// (wildcards excluded).
  void CollectVariables(std::vector<Symbol>* out) const;

  std::string ToString(const SymbolTable& syms) const;
};

// ---------------------------------------------------------------------------
// Head terms and aggregates

/// \brief Aggregate function kinds for head terms (Section 4).
enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggKindToString(AggKind k);

/// \brief A head argument: a plain term or an aggregate over a variable,
/// e.g. sum<D> in  total(X, sum<D>) :- f(X, D).
struct HeadTerm {
  bool is_aggregate = false;
  Term term;            // valid when !is_aggregate
  AggKind agg = AggKind::kCount;
  Symbol agg_var = kNoSymbol;  // the aggregated variable; kNoSymbol for count(*)

  static HeadTerm Plain(Term t) {
    HeadTerm h;
    h.is_aggregate = false;
    h.term = t;
    return h;
  }
  static HeadTerm Aggregate(AggKind k, Symbol var) {
    HeadTerm h;
    h.is_aggregate = true;
    h.agg = k;
    h.agg_var = var;
    return h;
  }

  std::string ToString(const SymbolTable& syms) const;
};

/// \brief A rule head: predicate + head terms (plain or aggregate).
struct Head {
  Symbol predicate = kNoSymbol;
  std::vector<HeadTerm> args;

  size_t arity() const { return args.size(); }
  bool has_aggregates() const;

  /// \brief The head viewed as a plain atom; only valid when
  /// !has_aggregates().
  Atom ToAtom() const;

  std::string ToString(const SymbolTable& syms) const;
};

// ---------------------------------------------------------------------------
// Rules and programs

/// \brief A Datalog rule: head :- body.  A fact is a rule with empty body
/// and all-constant head.
struct Rule {
  Head head;
  std::vector<Literal> body;

  bool is_fact() const { return body.empty(); }

  std::string ToString(const SymbolTable& syms) const;
};

/// \brief A Datalog program: an ordered list of rules.
///
/// The program does not own the SymbolTable: programs, databases, and
/// queries that must interoperate share one table.
struct Program {
  std::vector<Rule> rules;

  void Add(Rule r) { rules.push_back(std::move(r)); }
  void Append(const Program& other) {
    rules.insert(rules.end(), other.rules.begin(), other.rules.end());
  }
  size_t size() const { return rules.size(); }

  /// \brief Set of predicates appearing in some rule head (the IDBs).
  std::vector<Symbol> HeadPredicates() const;

  /// \brief Set of predicates appearing only in bodies (the EDBs).
  std::vector<Symbol> EdbPredicates() const;

  /// \brief All predicates appearing anywhere in the program.
  std::vector<Symbol> AllPredicates() const;

  std::string ToString(const SymbolTable& syms) const;
};

}  // namespace graphlog::datalog

#endif  // GRAPHLOG_DATALOG_AST_H_
