#include "datalog/analysis.h"

#include <algorithm>
#include <functional>
#include <optional>

namespace graphlog::datalog {

// ---------------------------------------------------------------------------
// DependenceGraph

DependenceGraph DependenceGraph::Build(const Program& prog) {
  DependenceGraph g;
  std::set<Symbol> seen;
  auto add_node = [&](Symbol p) {
    if (seen.insert(p).second) {
      g.predicates_.push_back(p);
      g.succ_[p];
      g.pred_[p];
    }
  };
  for (const Rule& r : prog.rules) {
    add_node(r.head.predicate);
    bool agg_head = r.head.has_aggregates();
    for (const Literal& l : r.body) {
      if (!l.is_relational()) continue;
      Symbol q = l.atom.predicate;
      add_node(q);
      auto key = std::make_pair(q, r.head.predicate);
      if (g.edges_.insert(key).second) {
        g.succ_[q].push_back(r.head.predicate);
        g.pred_[r.head.predicate].push_back(q);
      }
      if (l.is_negated_atom() || agg_head) {
        g.negative_edges_.insert(key);
      }
    }
  }
  return g;
}

const std::vector<Symbol>& DependenceGraph::SuccessorsOf(Symbol p) const {
  static const std::vector<Symbol> kEmpty;
  auto it = succ_.find(p);
  return it == succ_.end() ? kEmpty : it->second;
}

const std::vector<Symbol>& DependenceGraph::PredecessorsOf(Symbol p) const {
  static const std::vector<Symbol> kEmpty;
  auto it = pred_.find(p);
  return it == pred_.end() ? kEmpty : it->second;
}

bool DependenceGraph::HasEdge(Symbol from, Symbol to) const {
  return edges_.count({from, to}) > 0;
}

bool DependenceGraph::HasNegativeEdge(Symbol from, Symbol to) const {
  return negative_edges_.count({from, to}) > 0;
}

std::vector<std::vector<Symbol>>
DependenceGraph::StronglyConnectedComponents() const {
  // Iterative Tarjan.
  std::vector<std::vector<Symbol>> components;
  std::map<Symbol, int> index, lowlink;
  std::map<Symbol, bool> on_stack;
  std::vector<Symbol> stack;
  int next_index = 0;

  struct Frame {
    Symbol v;
    size_t child = 0;
  };

  for (Symbol root : predicates_) {
    if (index.count(root)) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::vector<Symbol>& succ = SuccessorsOf(f.v);
      if (f.child < succ.size()) {
        Symbol w = succ[f.child++];
        if (!index.count(w)) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<Symbol> comp;
          Symbol w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
          } while (w != f.v);
          components.push_back(std::move(comp));
        }
        Symbol v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
  return components;
}

std::map<Symbol, int> DependenceGraph::ComponentIndex() const {
  std::map<Symbol, int> idx;
  auto comps = StronglyConnectedComponents();
  for (size_t i = 0; i < comps.size(); ++i) {
    for (Symbol p : comps[i]) idx[p] = static_cast<int>(i);
  }
  return idx;
}

bool DependenceGraph::IsAcyclic() const {
  // Acyclic iff every SCC is a single node without a self loop.
  for (const auto& comp : StronglyConnectedComponents()) {
    if (comp.size() > 1) return false;
    if (HasEdge(comp[0], comp[0])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Stratification

Result<Stratification> Stratify(const Program& prog, const SymbolTable& syms) {
  DependenceGraph g = DependenceGraph::Build(prog);
  std::set<Symbol> idbs;
  for (const Rule& r : prog.rules) idbs.insert(r.head.predicate);

  // stratum(p) starts at 0 for every predicate; EDBs stay at 0.
  std::map<Symbol, int> stratum;
  for (Symbol p : g.predicates()) stratum[p] = 0;

  const int kMax = static_cast<int>(g.predicates().size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : prog.rules) {
      Symbol h = r.head.predicate;
      bool agg = r.head.has_aggregates();
      for (const Literal& l : r.body) {
        if (!l.is_relational()) continue;
        Symbol q = l.atom.predicate;
        int need = stratum[q] + ((l.is_negated_atom() || agg) ? 1 : 0);
        if (stratum[h] < need) {
          stratum[h] = need;
          if (stratum[h] > kMax) {
            std::string who = syms.Contains(h) ? syms.name(h) : "?";
            return Status::Unstratifiable(
                "program recurses through negation or aggregation at "
                "predicate '" +
                who + "'");
          }
          changed = true;
        }
      }
    }
  }

  Stratification s;
  int max_stratum = 0;
  for (Symbol p : idbs) {
    s.stratum_of[p] = stratum[p];
    max_stratum = std::max(max_stratum, stratum[p]);
  }
  s.num_strata = max_stratum + 1;
  s.rule_groups.assign(s.num_strata, {});
  for (size_t i = 0; i < prog.rules.size(); ++i) {
    s.rule_groups[stratum[prog.rules[i].head.predicate]].push_back(
        static_cast<int>(i));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Safety

namespace {

Status CheckRuleSafety(const Rule& r, const SymbolTable& syms) {
  // Compute the limited variables to a fixpoint.
  std::set<Symbol> limited;
  for (const Literal& l : r.body) {
    if (l.is_positive_atom()) {
      for (const Term& t : l.atom.args) {
        if (t.is_variable()) limited.insert(t.var());
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : r.body) {
      if (l.kind == Literal::Kind::kComparison && l.cmp == CmpOp::kEq) {
        // Equality propagates limitedness either way.
        auto bound = [&](const Term& t) {
          return t.is_constant() ||
                 (t.is_variable() && limited.count(t.var()) > 0);
        };
        if (bound(l.lhs) && l.rhs.is_variable() &&
            limited.insert(l.rhs.var()).second) {
          changed = true;
        }
        if (bound(l.rhs) && l.lhs.is_variable() &&
            limited.insert(l.lhs.var()).second) {
          changed = true;
        }
      } else if (l.kind == Literal::Kind::kAssignment) {
        std::vector<Symbol> inputs;
        l.assign_expr.CollectVariables(&inputs);
        bool all = std::all_of(inputs.begin(), inputs.end(), [&](Symbol v) {
          return limited.count(v) > 0;
        });
        if (all && l.assign_target.is_variable() &&
            limited.insert(l.assign_target.var()).second) {
          changed = true;
        }
      }
    }
  }

  auto require = [&](Symbol v, const char* where) -> Status {
    if (limited.count(v) > 0) return Status::OK();
    return Status::UnsafeRule("variable '" + syms.name(v) + "' in " + where +
                              " is not limited in rule '" +
                              r.ToString(syms) + "'");
  };

  for (const HeadTerm& h : r.head.args) {
    if (h.is_aggregate) {
      if (h.agg_var != kNoSymbol) {
        GRAPHLOG_RETURN_NOT_OK(require(h.agg_var, "aggregate"));
      }
    } else if (h.term.is_variable()) {
      GRAPHLOG_RETURN_NOT_OK(require(h.term.var(), "head"));
    }
  }
  // A variable in a negated subgoal may be unlimited only when it is local
  // to that single literal — then it reads existentially ("no tuple with
  // any value here"), which is how the paper's underscore projects closure
  // parameters out of negated edges.
  std::map<Symbol, int> occurrences;
  {
    std::vector<Symbol> vars;
    for (const HeadTerm& h : r.head.args) {
      if (!h.is_aggregate && h.term.is_variable()) vars.push_back(h.term.var());
      if (h.is_aggregate && h.agg_var != kNoSymbol) vars.push_back(h.agg_var);
    }
    for (const Literal& l : r.body) l.CollectVariables(&vars);
    for (Symbol v : vars) occurrences[v]++;
  }

  for (const Literal& l : r.body) {
    switch (l.kind) {
      case Literal::Kind::kNegatedAtom: {
        std::map<Symbol, int> local;
        for (const Term& t : l.atom.args) {
          if (t.is_variable()) local[t.var()]++;
        }
        for (const auto& [v, n] : local) {
          if (limited.count(v) > 0) continue;
          if (occurrences[v] == n) continue;  // local to this literal
          GRAPHLOG_RETURN_NOT_OK(require(v, "negated subgoal"));
        }
        break;
      }
      case Literal::Kind::kComparison:
        if (l.lhs.is_variable()) {
          GRAPHLOG_RETURN_NOT_OK(require(l.lhs.var(), "comparison"));
        }
        if (l.rhs.is_variable()) {
          GRAPHLOG_RETURN_NOT_OK(require(l.rhs.var(), "comparison"));
        }
        break;
      case Literal::Kind::kAssignment: {
        std::vector<Symbol> inputs;
        l.assign_expr.CollectVariables(&inputs);
        for (Symbol v : inputs) {
          GRAPHLOG_RETURN_NOT_OK(require(v, "arithmetic expression"));
        }
        break;
      }
      case Literal::Kind::kAtom:
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Status CheckSafety(const Program& prog, const SymbolTable& syms) {
  for (const Rule& r : prog.rules) {
    GRAPHLOG_RETURN_NOT_OK(CheckRuleSafety(r, syms));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Arity checks

std::map<Symbol, size_t> PredicateArities(const Program& prog) {
  std::map<Symbol, size_t> arity;
  for (const Rule& r : prog.rules) {
    arity.emplace(r.head.predicate, r.head.arity());
    for (const Literal& l : r.body) {
      if (l.is_relational()) arity.emplace(l.atom.predicate, l.atom.arity());
    }
  }
  return arity;
}

Status CheckArities(const Program& prog, const SymbolTable& syms) {
  std::map<Symbol, size_t> arity;
  auto check = [&](Symbol p, size_t a) -> Status {
    auto [it, inserted] = arity.emplace(p, a);
    if (!inserted && it->second != a) {
      return Status::ArityMismatch(
          "predicate '" + syms.name(p) + "' used with arity " +
          std::to_string(a) + " and " + std::to_string(it->second));
    }
    return Status::OK();
  };
  for (const Rule& r : prog.rules) {
    GRAPHLOG_RETURN_NOT_OK(check(r.head.predicate, r.head.arity()));
    for (const Literal& l : r.body) {
      if (l.is_relational()) {
        GRAPHLOG_RETURN_NOT_OK(check(l.atom.predicate, l.atom.arity()));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Linearity and TC shape

bool IsLinear(const Program& prog) {
  return CheckLinear(prog, SymbolTable()).ok();
}

Status CheckLinear(const Program& prog, const SymbolTable& syms) {
  DependenceGraph g = DependenceGraph::Build(prog);
  std::map<Symbol, int> comp = g.ComponentIndex();
  for (const Rule& r : prog.rules) {
    int head_comp = comp[r.head.predicate];
    // Whether the head is actually recursive: its component has >1 member
    // or a self-loop.
    int count = 0;
    for (const Literal& l : r.body) {
      if (!l.is_relational()) continue;
      if (comp.count(l.atom.predicate) &&
          comp[l.atom.predicate] == head_comp) {
        ++count;
      }
    }
    if (count > 1) {
      std::string name =
          syms.Contains(r.head.predicate) ? syms.name(r.head.predicate) : "?";
      return Status::NotLinear("rule for '" + name +
                               "' has " + std::to_string(count) +
                               " recursive subgoals");
    }
  }
  return Status::OK();
}

bool IsRecursivePredicate(const Program& prog, Symbol p) {
  DependenceGraph g = DependenceGraph::Build(prog);
  auto comps = g.StronglyConnectedComponents();
  for (const auto& comp : comps) {
    if (std::find(comp.begin(), comp.end(), p) == comp.end()) continue;
    if (comp.size() > 1) return true;
    return g.HasEdge(p, p);
  }
  return false;
}

namespace {

// Checks that `args` is a sequence of pairwise-distinct variables; returns
// them, or nullopt.
std::optional<std::vector<Symbol>> DistinctVars(const std::vector<Term>& args) {
  std::vector<Symbol> vars;
  std::set<Symbol> seen;
  for (const Term& t : args) {
    if (!t.is_variable()) return std::nullopt;
    if (!seen.insert(t.var()).second) return std::nullopt;
    vars.push_back(t.var());
  }
  return vars;
}

}  // namespace

Result<TcShape> MatchTcRules(const Program& prog, Symbol p) {
  std::vector<const Rule*> rules;
  for (const Rule& r : prog.rules) {
    if (r.head.predicate == p) rules.push_back(&r);
  }
  if (rules.size() != 2) {
    return Status::InvalidArgument("TC predicate must have exactly 2 rules");
  }
  if (rules[0]->head.has_aggregates() || rules[1]->head.has_aggregates()) {
    return Status::InvalidArgument("TC rules cannot aggregate");
  }

  // Identify base rule (1 subgoal) and recursive rule (2 subgoals).
  const Rule* base = nullptr;
  const Rule* rec = nullptr;
  for (const Rule* r : rules) {
    if (r->body.size() == 1) base = r;
    if (r->body.size() == 2) rec = r;
  }
  if (base == nullptr || rec == nullptr) {
    return Status::InvalidArgument("TC rules must have 1 and 2 subgoals");
  }
  for (const Literal& l : base->body) {
    if (!l.is_positive_atom())
      return Status::InvalidArgument("TC subgoals must be positive atoms");
  }
  for (const Literal& l : rec->body) {
    if (!l.is_positive_atom())
      return Status::InvalidArgument("TC subgoals must be positive atoms");
  }

  // Base: p(H...) :- q(H...), same distinct-variable vector.
  Symbol q = base->body[0].atom.predicate;
  if (q == p) return Status::InvalidArgument("TC base rule is recursive");
  auto head_vars = DistinctVars(base->head.ToAtom().args);
  auto base_vars = DistinctVars(base->body[0].atom.args);
  if (!head_vars || !base_vars || *head_vars != *base_vars) {
    return Status::InvalidArgument("TC base rule shape mismatch");
  }

  // Recursive: p(X,Y,W) :- q(X,Z,W), p(Z,Y,W). Either subgoal order.
  const Atom* qa = nullptr;
  const Atom* pa = nullptr;
  for (const Literal& l : rec->body) {
    if (l.atom.predicate == p) pa = &l.atom;
    if (l.atom.predicate == q) qa = &l.atom;
  }
  if (qa == nullptr || pa == nullptr || qa == pa) {
    return Status::InvalidArgument("TC recursive rule must use q and p");
  }
  auto rhead = DistinctVars(rec->head.ToAtom().args);
  auto qvars = DistinctVars(qa->args);
  auto pvars = DistinctVars(pa->args);
  if (!rhead || !qvars || !pvars) {
    return Status::InvalidArgument("TC recursive rule args must be vars");
  }
  size_t total = rhead->size();
  if (qvars->size() != total || pvars->size() != total) {
    return Status::InvalidArgument("TC arities disagree");
  }

  // Try every (n, w) split with 2n + w == total, n >= 1.
  for (size_t n = 1; 2 * n <= total; ++n) {
    size_t w = total - 2 * n;
    auto X = std::vector<Symbol>(rhead->begin(), rhead->begin() + n);
    auto Y = std::vector<Symbol>(rhead->begin() + n, rhead->begin() + 2 * n);
    auto W = std::vector<Symbol>(rhead->begin() + 2 * n, rhead->end());
    // q must be (X, Z, W); p must be (Z, Y, W) for some Z.
    auto qX = std::vector<Symbol>(qvars->begin(), qvars->begin() + n);
    auto qZ = std::vector<Symbol>(qvars->begin() + n, qvars->begin() + 2 * n);
    auto qW = std::vector<Symbol>(qvars->begin() + 2 * n, qvars->end());
    auto pZ = std::vector<Symbol>(pvars->begin(), pvars->begin() + n);
    auto pY = std::vector<Symbol>(pvars->begin() + n, pvars->begin() + 2 * n);
    auto pW = std::vector<Symbol>(pvars->begin() + 2 * n, pvars->end());
    if (qX == X && qW == W && pW == W && pY == Y && qZ == pZ) {
      // Z must be fresh (disjoint from X, Y, W).
      std::set<Symbol> head_set(rhead->begin(), rhead->end());
      bool fresh = std::all_of(qZ.begin(), qZ.end(), [&](Symbol z) {
        return head_set.count(z) == 0;
      });
      if (fresh) {
        TcShape shape;
        shape.base = q;
        shape.n = n;
        shape.w = w;
        return shape;
      }
    }
  }
  return Status::InvalidArgument("no (n, w) split matches TC shape");
}

bool IsTcProgram(const Program& prog) {
  DependenceGraph g = DependenceGraph::Build(prog);
  auto comps = g.StronglyConnectedComponents();
  for (const auto& comp : comps) {
    bool recursive =
        comp.size() > 1 || g.HasEdge(comp[0], comp[0]);
    if (!recursive) continue;
    if (comp.size() > 1) return false;  // mutual recursion is not TC shape
    if (!MatchTcRules(prog, comp[0]).ok()) return false;
  }
  return true;
}

}  // namespace graphlog::datalog
