#include "datalog/ast.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"

namespace graphlog::datalog {

std::string Term::ToString(const SymbolTable& syms) const {
  switch (kind_) {
    case Kind::kVariable:
      return syms.name(var_);
    case Kind::kConstant:
      if (value_.is_symbol()) {
        // Symbols that look like lowercase identifiers print bare; anything
        // else prints quoted so the output re-parses.
        const std::string& s = syms.name(value_.AsSymbol());
        bool bare = !s.empty() && (std::islower(static_cast<unsigned char>(s[0])));
        if (bare) {
          for (char c : s) {
            if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == '-')) {
              bare = false;
              break;
            }
          }
        }
        if (bare) return s;
        return "\"" + EscapeQuoted(s) + "\"";
      }
      return value_.ToString(syms);
    case Kind::kWildcard:
      return "_";
  }
  return "<?>";
}

std::string Atom::ToString(const SymbolTable& syms) const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const Term& t : args) parts.push_back(t.ToString(syms));
  return syms.name(predicate) + "(" + Join(parts, ", ") + ")";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

void ArithExpr::CollectVariables(std::vector<Symbol>* out) const {
  if (is_leaf) {
    if (leaf.is_variable()) out->push_back(leaf.var());
    return;
  }
  for (const ArithExpr& c : children) c.CollectVariables(out);
}

std::string ArithExpr::ToString(const SymbolTable& syms) const {
  if (is_leaf) return leaf.ToString(syms);
  return "(" + children[0].ToString(syms) + " " +
         std::string(ArithOpToString(op)) + " " + children[1].ToString(syms) +
         ")";
}

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs) {
  // Equality is value identity — the same relation the join machinery
  // uses, so `X = Y` behaves identically whether it runs as a filter or
  // as a binding (3 and 3.0 are distinct domain values). Ordering
  // comparisons are numeric across int/double; non-numeric operands fall
  // back to the Value total order.
  if (op == CmpOp::kEq) return lhs == rhs;
  if (op == CmpOp::kNe) return !(lhs == rhs);
  bool lt, eq;
  if (lhs.is_numeric() && rhs.is_numeric()) {
    if (lhs.is_int() && rhs.is_int()) {
      lt = lhs.AsInt() < rhs.AsInt();
      eq = lhs.AsInt() == rhs.AsInt();
    } else {
      lt = lhs.ToDouble() < rhs.ToDouble();
      eq = lhs.ToDouble() == rhs.ToDouble();
    }
  } else {
    lt = lhs < rhs;
    eq = lhs == rhs;
  }
  switch (op) {
    case CmpOp::kEq:
    case CmpOp::kNe:
      return false;  // handled above
    case CmpOp::kLt:
      return lt;
    case CmpOp::kLe:
      return lt || eq;
    case CmpOp::kGt:
      return !lt && !eq;
    case CmpOp::kGe:
      return !lt;
  }
  return false;
}

void Literal::CollectVariables(std::vector<Symbol>* out) const {
  switch (kind) {
    case Kind::kAtom:
    case Kind::kNegatedAtom:
      for (const Term& t : atom.args) {
        if (t.is_variable()) out->push_back(t.var());
      }
      break;
    case Kind::kComparison:
      if (lhs.is_variable()) out->push_back(lhs.var());
      if (rhs.is_variable()) out->push_back(rhs.var());
      break;
    case Kind::kAssignment:
      if (assign_target.is_variable()) out->push_back(assign_target.var());
      assign_expr.CollectVariables(out);
      break;
  }
}

std::string Literal::ToString(const SymbolTable& syms) const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString(syms);
    case Kind::kNegatedAtom:
      return "!" + atom.ToString(syms);
    case Kind::kComparison:
      return lhs.ToString(syms) + " " + std::string(CmpOpToString(cmp)) + " " +
             rhs.ToString(syms);
    case Kind::kAssignment:
      return assign_target.ToString(syms) + " := " +
             assign_expr.ToString(syms);
  }
  return "<?>";
}

std::string_view AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

std::string HeadTerm::ToString(const SymbolTable& syms) const {
  if (!is_aggregate) return term.ToString(syms);
  std::string out(AggKindToString(agg));
  out += "<";
  out += agg_var == kNoSymbol ? "*" : syms.name(agg_var);
  out += ">";
  return out;
}

bool Head::has_aggregates() const {
  return std::any_of(args.begin(), args.end(),
                     [](const HeadTerm& h) { return h.is_aggregate; });
}

Atom Head::ToAtom() const {
  Atom a;
  a.predicate = predicate;
  a.args.reserve(args.size());
  for (const HeadTerm& h : args) a.args.push_back(h.term);
  return a;
}

std::string Head::ToString(const SymbolTable& syms) const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const HeadTerm& h : args) parts.push_back(h.ToString(syms));
  return syms.name(predicate) + "(" + Join(parts, ", ") + ")";
}

std::string Rule::ToString(const SymbolTable& syms) const {
  std::string out = head.ToString(syms);
  if (!body.empty()) {
    out += " :- ";
    std::vector<std::string> parts;
    parts.reserve(body.size());
    for (const Literal& l : body) parts.push_back(l.ToString(syms));
    out += Join(parts, ", ");
  }
  out += ".";
  return out;
}

std::vector<Symbol> Program::HeadPredicates() const {
  std::set<Symbol> seen;
  std::vector<Symbol> out;
  for (const Rule& r : rules) {
    if (seen.insert(r.head.predicate).second) out.push_back(r.head.predicate);
  }
  return out;
}

std::vector<Symbol> Program::EdbPredicates() const {
  std::set<Symbol> heads;
  for (const Rule& r : rules) heads.insert(r.head.predicate);
  std::set<Symbol> seen;
  std::vector<Symbol> out;
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) {
      if (!l.is_relational()) continue;
      Symbol p = l.atom.predicate;
      if (heads.count(p) == 0 && seen.insert(p).second) out.push_back(p);
    }
  }
  return out;
}

std::vector<Symbol> Program::AllPredicates() const {
  std::set<Symbol> seen;
  std::vector<Symbol> out;
  auto add = [&](Symbol p) {
    if (seen.insert(p).second) out.push_back(p);
  };
  for (const Rule& r : rules) {
    add(r.head.predicate);
    for (const Literal& l : r.body) {
      if (l.is_relational()) add(l.atom.predicate);
    }
  }
  return out;
}

std::string Program::ToString(const SymbolTable& syms) const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString(syms);
    out += "\n";
  }
  return out;
}

}  // namespace graphlog::datalog
