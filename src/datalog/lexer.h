// Tokenizer shared by the Datalog and GraphLog text parsers.

#ifndef GRAPHLOG_DATALOG_LEXER_H_
#define GRAPHLOG_DATALOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace graphlog::datalog {

/// \brief Token categories.
enum class TokenKind : uint8_t {
  kIdent,      ///< lowercase-initial identifier (predicate / constant symbol)
  kVariable,   ///< uppercase-initial identifier or bare `_`
  kInt,        ///< integer literal
  kFloat,      ///< floating-point literal
  kString,     ///< double-quoted string literal (content unescaped)
  kLParen,     ///< (
  kRParen,     ///< )
  kLBrace,     ///< {
  kRBrace,     ///< }
  kLBracket,   ///< [
  kRBracket,   ///< ]
  kComma,      ///< ,
  kDot,        ///< .
  kColon,      ///< :
  kSemicolon,  ///< ;
  kImplies,    ///< :-
  kAssign,     ///< :=
  kBang,       ///< !
  kEq,         ///< =
  kNe,         ///< !=
  kLt,         ///< <
  kLe,         ///< <=
  kGt,         ///< >
  kGe,         ///< >=
  kPlus,       ///< +
  kMinus,      ///< -
  kStar,       ///< *
  kSlash,      ///< /
  kPercent,    ///< %
  kPipe,       ///< |
  kQuestion,   ///< ?
  kArrow,      ///< ->
  kDoubleArrow,  ///< =>
  kEnd,        ///< end of input
};

std::string_view TokenKindToString(TokenKind k);

/// \brief A lexed token with source position for error messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier / literal text (strings unescaped)
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;
};

/// \brief Tokenizes `input`. `%` starts a line comment (Prolog style); `//`
/// and `#` line comments are accepted too. Hyphens are allowed *inside*
/// identifiers (the paper writes predicate names like `not-desc-of`), so
/// `a-b` lexes as one identifier while `a - b` is a subtraction.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace graphlog::datalog

#endif  // GRAPHLOG_DATALOG_LEXER_H_
