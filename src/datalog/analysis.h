// Static analysis of Datalog programs.
//
// Implements the machinery the paper relies on:
//  * the predicate dependence graph (Definition 2.6 generalizes this to
//    graphical queries; here it is the classic rule-level version),
//  * strongly connected components (used per-SCC by Algorithm 3.1),
//  * stratification with negation and aggregates,
//  * safety / range restriction,
//  * linearity (Definition 3.2: at most one recursive subgoal per rule) and
//    TC-rule shape recognition (rules r1/r2 of Definition 3.2, generalized
//    with the parameter block W of Definition 2.4 rules (2)-(3)).

#ifndef GRAPHLOG_DATALOG_ANALYSIS_H_
#define GRAPHLOG_DATALOG_ANALYSIS_H_

#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"

namespace graphlog::datalog {

/// \brief Dependence graph over the predicates of a program.
///
/// There is an edge q -> p when q occurs in the body of a rule with head p.
/// The edge is *negative* when some such occurrence is negated, or when the
/// rule's head carries an aggregate (aggregation stratifies like negation,
/// per Section 4 of the paper).
class DependenceGraph {
 public:
  /// \brief Builds the dependence graph of `prog`.
  static DependenceGraph Build(const Program& prog);

  const std::vector<Symbol>& predicates() const { return predicates_; }

  /// \brief Successors of `p`: predicates whose rules use `p`.
  const std::vector<Symbol>& SuccessorsOf(Symbol p) const;

  /// \brief Predecessors of `p`: predicates used by the rules of `p`.
  const std::vector<Symbol>& PredecessorsOf(Symbol p) const;

  bool HasEdge(Symbol from, Symbol to) const;
  bool HasNegativeEdge(Symbol from, Symbol to) const;

  /// \brief True when the graph has no directed cycle.
  bool IsAcyclic() const;

  /// \brief Strongly connected components in *reverse topological order* of
  /// the condensation: every edge goes from an earlier-or-same component to
  /// a later-or-same one... precisely, component i can only depend on
  /// components j <= i. (Tarjan's order.)
  std::vector<std::vector<Symbol>> StronglyConnectedComponents() const;

  /// \brief Component index of each predicate, aligned with
  /// StronglyConnectedComponents().
  std::map<Symbol, int> ComponentIndex() const;

 private:
  std::vector<Symbol> predicates_;
  std::map<Symbol, std::vector<Symbol>> succ_;
  std::map<Symbol, std::vector<Symbol>> pred_;
  std::set<std::pair<Symbol, Symbol>> edges_;
  std::set<std::pair<Symbol, Symbol>> negative_edges_;
};

/// \brief A stratification: stratum number per IDB predicate, and rules
/// grouped by stratum in evaluation order.
struct Stratification {
  std::map<Symbol, int> stratum_of;          // IDB predicates only
  std::vector<std::vector<int>> rule_groups;  // rule indices per stratum
  int num_strata = 0;
};

/// \brief Computes a stratification of `prog`.
///
/// Fails with kUnstratifiable when the program recurses through negation or
/// through aggregation. EDB predicates implicitly live in stratum 0.
Result<Stratification> Stratify(const Program& prog, const SymbolTable& syms);

/// \brief Checks safety / range restriction of every rule.
///
/// A rule is safe when every variable occurring in its head, in a negated
/// subgoal, in a comparison, or in an arithmetic expression is *limited*:
/// bound by a positive relational subgoal, by equality with a limited term,
/// or as the target of an assignment whose inputs are limited.
Status CheckSafety(const Program& prog, const SymbolTable& syms);

/// \brief Checks that each predicate is used with a single arity everywhere.
Status CheckArities(const Program& prog, const SymbolTable& syms);

/// \brief Convenience: arity of every predicate in the program (first use
/// wins; call CheckArities to validate consistency).
std::map<Symbol, size_t> PredicateArities(const Program& prog);

/// \brief True when every rule of `prog` has at most one recursive subgoal
/// (a positive or negative body predicate in the same SCC as the rule's
/// head) — Definition 3.2's linear programs.
bool IsLinear(const Program& prog);

/// \brief Returns OK when linear; otherwise kNotLinear naming an offending
/// rule.
Status CheckLinear(const Program& prog, const SymbolTable& syms);

/// \brief Decides whether `p` is recursive in `prog` (depends on itself
/// directly or transitively).
bool IsRecursivePredicate(const Program& prog, Symbol p);

/// \brief Recognizes the generalized TC-rule pair for predicate `p`:
///
///   p(X..., Y..., W...) :- q(X..., Y..., W...).
///   p(X..., Y..., W...) :- q(X..., Z..., W...), p(Z..., Y..., W...).
///
/// with |X|=|Y|=|Z|=n, |W|=w (possibly 0), all variables distinct, and q
/// not recursive with p. Returns the pair (n, w) block sizes.
struct TcShape {
  Symbol base = kNoSymbol;  ///< the q predicate
  size_t n = 0;             ///< closure block width
  size_t w = 0;             ///< parameter block width
};
Result<TcShape> MatchTcRules(const Program& prog, Symbol p);

/// \brief True when every recursive predicate of `prog` is defined by
/// exactly a generalized TC-rule pair — the STC-DATALOG target fragment of
/// Algorithm 3.1.
bool IsTcProgram(const Program& prog);

}  // namespace graphlog::datalog

#endif  // GRAPHLOG_DATALOG_ANALYSIS_H_
