// Recursive-descent parser for textual Datalog.
//
// Grammar (EBNF, whitespace/comments between tokens):
//
//   program     := { rule } ;
//   rule        := head [ ":-" body ] "." ;
//   head        := IDENT "(" headterm { "," headterm } ")" ;
//   headterm    := term
//                | AGGNAME "<" VARIABLE ">"       (* sum<D>, min<D>, ... *)
//                | "count" "<" "*" ">" ;
//   body        := literal { "," literal } ;
//   literal     := [ "!" ] atom
//                | term CMPOP term                (* = != < <= > >= *)
//                | term ":=" arith                (* explicit assignment *)
//                | term "=" arith                 (* assignment when arith
//                                                    is compound *)
//   atom        := IDENT "(" [ term { "," term } ] ")" ;
//   term        := VARIABLE | "_" | constant ;
//   constant    := INT | FLOAT | STRING | IDENT | "-" (INT|FLOAT) ;
//   arith       := arith ("+"|"-") arithterm | arithterm ;
//   arithterm   := arithterm ("*"|"/"|"%") arithfac | arithfac ;
//   arithfac    := term | "(" arith ")" ;
//
// Wildcards `_` are replaced by fresh variables during parsing (the paper's
// underscore projection). Aggregate names (count/sum/min/max/avg) are only
// reserved in head-term position.

#ifndef GRAPHLOG_DATALOG_PARSER_H_
#define GRAPHLOG_DATALOG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"

namespace graphlog::datalog {

/// \brief Parses a full program. Symbols are interned into `syms`.
Result<Program> ParseProgram(std::string_view text, SymbolTable* syms);

/// \brief Parses a single rule (terminating '.').
Result<Rule> ParseRule(std::string_view text, SymbolTable* syms);

}  // namespace graphlog::datalog

#endif  // GRAPHLOG_DATALOG_PARSER_H_
