#include "datalog/parser.h"

#include <optional>

#include "datalog/lexer.h"

namespace graphlog::datalog {

namespace {

/// Token-stream cursor with error helpers.
class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* syms)
      : tokens_(std::move(tokens)), syms_(syms) {}

  Result<Program> ParseProgram() {
    Program prog;
    while (!At(TokenKind::kEnd)) {
      GRAPHLOG_ASSIGN_OR_RETURN(Rule r, ParseRule());
      prog.Add(std::move(r));
    }
    return prog;
  }

  Result<Rule> ParseRule() {
    Rule rule;
    GRAPHLOG_ASSIGN_OR_RETURN(rule.head, ParseHead());
    if (Accept(TokenKind::kImplies)) {
      do {
        GRAPHLOG_ASSIGN_OR_RETURN(Literal l, ParseLiteral());
        rule.body.push_back(std::move(l));
      } while (Accept(TokenKind::kComma));
    }
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kDot));
    return rule;
  }

  bool AtEnd() const { return At(TokenKind::kEnd); }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Next() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool Accept(TokenKind k) {
    if (!At(k)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenKind k) {
    if (Accept(k)) return Status::OK();
    return Error("expected " + std::string(TokenKindToString(k)) +
                 ", found " + std::string(TokenKindToString(Cur().kind)));
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Cur().line) +
                              ", column " + std::to_string(Cur().column));
  }

  Symbol FreshWildcardVar() {
    return syms_->Fresh("_w" + std::to_string(wildcard_counter_++));
  }

  static std::optional<AggKind> AggKindFromName(const std::string& s) {
    if (s == "count") return AggKind::kCount;
    if (s == "sum") return AggKind::kSum;
    if (s == "min") return AggKind::kMin;
    if (s == "max") return AggKind::kMax;
    if (s == "avg") return AggKind::kAvg;
    return std::nullopt;
  }

  Result<Head> ParseHead() {
    if (!At(TokenKind::kIdent)) {
      return Error("expected predicate name in rule head");
    }
    Head head;
    head.predicate = syms_->Intern(Cur().text);
    ++pos_;
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    if (!Accept(TokenKind::kRParen)) {
      do {
        GRAPHLOG_ASSIGN_OR_RETURN(HeadTerm h, ParseHeadTerm());
        head.args.push_back(std::move(h));
      } while (Accept(TokenKind::kComma));
      GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    }
    return head;
  }

  Result<HeadTerm> ParseHeadTerm() {
    // Aggregate: AGGNAME '<' VAR '>'  or  count '<' '*' '>'.
    if (At(TokenKind::kIdent) && Next().kind == TokenKind::kLt) {
      auto agg = AggKindFromName(Cur().text);
      if (agg.has_value()) {
        ++pos_;  // agg name
        ++pos_;  // '<'
        Symbol var = kNoSymbol;
        if (Accept(TokenKind::kStar)) {
          if (*agg != AggKind::kCount) {
            return Error("'*' is only valid in count<*>");
          }
        } else if (At(TokenKind::kVariable)) {
          var = syms_->Intern(Cur().text);
          ++pos_;
        } else {
          return Error("expected variable in aggregate");
        }
        GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kGt));
        return HeadTerm::Aggregate(*agg, var);
      }
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
    return HeadTerm::Plain(t);
  }

  Result<Literal> ParseLiteral() {
    // Negated atom.
    if (Accept(TokenKind::kBang)) {
      GRAPHLOG_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      return Literal::Negative(std::move(a));
    }
    // Positive atom: IDENT '('.
    if (At(TokenKind::kIdent) && Next().kind == TokenKind::kLParen) {
      GRAPHLOG_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      return Literal::Positive(std::move(a));
    }
    // Comparison or assignment: starts with a term.
    GRAPHLOG_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Accept(TokenKind::kAssign)) {
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr e, ParseArith());
      return Literal::Assignment(lhs, std::move(e));
    }
    CmpOp op;
    if (Accept(TokenKind::kEq)) {
      // `X = <compound arith>` is an assignment; `X = t` is a comparison.
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr e, ParseArith());
      if (e.is_leaf) {
        return Literal::Comparison(CmpOp::kEq, lhs, e.leaf);
      }
      return Literal::Assignment(lhs, std::move(e));
    } else if (Accept(TokenKind::kNe)) {
      op = CmpOp::kNe;
    } else if (Accept(TokenKind::kLt)) {
      op = CmpOp::kLt;
    } else if (Accept(TokenKind::kLe)) {
      op = CmpOp::kLe;
    } else if (Accept(TokenKind::kGt)) {
      op = CmpOp::kGt;
    } else if (Accept(TokenKind::kGe)) {
      op = CmpOp::kGe;
    } else {
      return Error("expected comparison operator or ':=' after term");
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Literal::Comparison(op, lhs, rhs);
  }

  Result<Atom> ParseAtom() {
    if (!At(TokenKind::kIdent)) return Error("expected predicate name");
    Atom a;
    a.predicate = syms_->Intern(Cur().text);
    ++pos_;
    GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    if (!Accept(TokenKind::kRParen)) {
      do {
        GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
        a.args.push_back(t);
      } while (Accept(TokenKind::kComma));
      GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    }
    return a;
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kVariable)) {
      std::string name = Cur().text;
      ++pos_;
      if (name == "_") return Term::Var(FreshWildcardVar());
      return Term::Var(syms_->Intern(name));
    }
    if (At(TokenKind::kIdent)) {
      Symbol s = syms_->Intern(Cur().text);
      ++pos_;
      return Term::Const(Value::Sym(s));
    }
    if (At(TokenKind::kString)) {
      Symbol s = syms_->Intern(Cur().text);
      ++pos_;
      return Term::Const(Value::Sym(s));
    }
    if (At(TokenKind::kInt)) {
      int64_t v = Cur().int_value;
      ++pos_;
      return Term::Const(Value::Int(v));
    }
    if (At(TokenKind::kFloat)) {
      double v = Cur().float_value;
      ++pos_;
      return Term::Const(Value::Double(v));
    }
    if (Accept(TokenKind::kMinus)) {
      if (At(TokenKind::kInt)) {
        int64_t v = Cur().int_value;
        ++pos_;
        return Term::Const(Value::Int(-v));
      }
      if (At(TokenKind::kFloat)) {
        double v = Cur().float_value;
        ++pos_;
        return Term::Const(Value::Double(-v));
      }
      return Error("expected numeric literal after unary '-'");
    }
    return Error("expected term, found " +
                 std::string(TokenKindToString(Cur().kind)));
  }

  // arith := arithterm { (+|-) arithterm }
  Result<ArithExpr> ParseArith() {
    GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr lhs, ParseArithTerm());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      ArithOp op = At(TokenKind::kPlus) ? ArithOp::kAdd : ArithOp::kSub;
      ++pos_;
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr rhs, ParseArithTerm());
      lhs = ArithExpr::Node(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // arithterm := arithfac { (*|/|%) arithfac }
  Result<ArithExpr> ParseArithTerm() {
    GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr lhs, ParseArithFactor());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) ||
           At(TokenKind::kPercent)) {
      ArithOp op = At(TokenKind::kStar)    ? ArithOp::kMul
                   : At(TokenKind::kSlash) ? ArithOp::kDiv
                                           : ArithOp::kMod;
      ++pos_;
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr rhs, ParseArithFactor());
      lhs = ArithExpr::Node(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ArithExpr> ParseArithFactor() {
    if (Accept(TokenKind::kLParen)) {
      GRAPHLOG_ASSIGN_OR_RETURN(ArithExpr e, ParseArith());
      GRAPHLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return e;
    }
    GRAPHLOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
    return ArithExpr::Leaf(t);
  }

  std::vector<Token> tokens_;
  SymbolTable* syms_;
  size_t pos_ = 0;
  int wildcard_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text, SymbolTable* syms) {
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens), syms);
  return p.ParseProgram();
}

Result<Rule> ParseRule(std::string_view text, SymbolTable* syms) {
  GRAPHLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens), syms);
  GRAPHLOG_ASSIGN_OR_RETURN(Rule r, p.ParseRule());
  if (!p.AtEnd()) {
    return Status::ParseError("trailing input after rule");
  }
  return r;
}

}  // namespace graphlog::datalog
