// Textual database I/O.
//
// Facts are stored in Datalog fact syntax, one per line:
//
//   from(106, toronto).
//   departure(106, 1305).
//
// which makes database dumps valid Datalog programs and vice versa.

#ifndef GRAPHLOG_STORAGE_IO_H_
#define GRAPHLOG_STORAGE_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/database.h"

namespace graphlog::storage {

/// \brief Parses `text` as a list of ground facts and inserts them into
/// `db`, declaring relations on first use. Non-ground rules are rejected.
Result<size_t> LoadFacts(std::string_view text, Database* db);

/// \brief Reads a fact file from disk into `db`.
Result<size_t> LoadFactsFile(const std::string& path, Database* db);

/// \brief Renders every relation of `db` (sorted by name, facts sorted
/// lexicographically) as a fact program.
std::string DumpFacts(const Database& db);

/// \brief Writes DumpFacts(db) to `path`.
Status SaveFactsFile(const std::string& path, const Database& db);

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_IO_H_
