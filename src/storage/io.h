// Textual database I/O.
//
// Facts are stored in Datalog fact syntax, one per line:
//
//   from(106, toronto).
//   departure(106, 1305).
//
// which makes database dumps valid Datalog programs and vice versa.
//
// Loading is strict and transactional: malformed lines, oversized
// tokens, non-fact rules, non-constant arguments, arity conflicts, and
// truncated reads all fail with a Status that names the file (and, for
// parse-level errors, the line) — and a failed load applies NOTHING.
// Every fact of the input is validated before the first one is inserted,
// so a Database never observes a partially-applied fact file.

#ifndef GRAPHLOG_STORAGE_IO_H_
#define GRAPHLOG_STORAGE_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/database.h"

namespace graphlog::gov {
struct GovernorContext;  // gov/governor.h
}

namespace graphlog::storage {

/// \brief Parses `text` as a list of ground facts and inserts them into
/// `db`, declaring relations on first use. Non-ground rules are rejected.
///
/// All-or-nothing: the whole text is parsed and every fact validated
/// (ground, constant arguments, arity consistent with the database and
/// within the batch) before any insert happens; on any error the
/// database is unchanged. When `governor` is set, the `io.load`
/// injection point and the cancellation token/deadline are checked
/// before the validated batch is applied. Data stamps are published at
/// commit: each relation the batch grows takes exactly one
/// data_generation bump after every row is in place, so a failed load
/// can never leave a stamp that certifies a partially-applied state to
/// the cache layer.
Result<size_t> LoadFacts(std::string_view text, Database* db,
                         const gov::GovernorContext* governor = nullptr);

/// \brief Reads a fact file from disk into `db`. Same transactional
/// contract as LoadFacts; error messages are prefixed with the file path
/// (parse errors already carry the line), oversized tokens (> 64 KiB,
/// a corrupt or binary file in practice) are rejected with their line
/// number before parsing, and a read that fails mid-file is an error,
/// not a silently-truncated load. When `contents` is non-null it
/// receives the raw text the load actually parsed (after any successful
/// read, even if parsing then failed), so a caller can re-apply the
/// exact bytes later without re-reading a file that may have changed on
/// disk in the meantime.
Result<size_t> LoadFactsFile(const std::string& path, Database* db,
                             const gov::GovernorContext* governor = nullptr,
                             std::string* contents = nullptr);

/// \brief Renders every relation of `db` (sorted by name, facts sorted
/// lexicographically) as a fact program.
std::string DumpFacts(const Database& db);

/// \brief Writes DumpFacts(db) to `path`.
Status SaveFactsFile(const std::string& path, const Database& db);

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_IO_H_
