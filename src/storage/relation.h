// Relation: a deduplicated set of tuples with lazy hash indexes.
//
// Relations preserve insertion order for deterministic iteration, maintain
// a hash set for O(1) duplicate elimination and membership tests, and build
// hash indexes over column subsets on demand (invalidated on insert).

#ifndef GRAPHLOG_STORAGE_RELATION_H_
#define GRAPHLOG_STORAGE_RELATION_H_

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace graphlog::storage {

/// \brief A set of same-arity tuples.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// \brief Inserts `t`; returns true when the tuple is new.
  /// The tuple's size must equal arity().
  bool Insert(Tuple t) {
    if (set_.insert(t).second) {
      rows_.push_back(std::move(t));
      indexes_.clear();
      return true;
    }
    return false;
  }

  /// \brief Inserts every tuple of `other`; returns the number actually new.
  size_t InsertAll(const Relation& other) {
    size_t added = 0;
    for (const Tuple& t : other.rows_) {
      if (Insert(t)) ++added;
    }
    return added;
  }

  bool Contains(const Tuple& t) const { return set_.count(t) > 0; }

  /// \brief Insertion-ordered rows.
  const std::vector<Tuple>& rows() const { return rows_; }

  /// \brief Rows in canonical (lexicographic) order; for diffing and
  /// printing.
  std::vector<Tuple> SortedRows() const {
    std::vector<Tuple> out = rows_;
    std::sort(out.begin(), out.end(), TupleLess());
    return out;
  }

  void Clear() {
    rows_.clear();
    set_.clear();
    indexes_.clear();
  }

  /// \brief Row indices whose values at `cols` equal `key` (parallel
  /// vectors). Builds a hash index over `cols` on first use.
  ///
  /// `cols` must be strictly increasing column positions < arity().
  const std::vector<uint32_t>& Probe(const std::vector<uint32_t>& cols,
                                     const Tuple& key) const {
    static const std::vector<uint32_t> kEmpty;
    auto& index = EnsureIndex(cols);
    auto it = index.find(key);
    return it == index.end() ? kEmpty : it->second;
  }

  const Tuple& row(uint32_t i) const { return rows_[i]; }

  /// \brief True when the two relations hold the same set of tuples.
  bool SetEquals(const Relation& other) const {
    if (size() != other.size()) return false;
    for (const Tuple& t : rows_) {
      if (!other.Contains(t)) return false;
    }
    return true;
  }

 private:
  using Index = std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash>;

  Index& EnsureIndex(const std::vector<uint32_t>& cols) const {
    auto it = indexes_.find(cols);
    if (it != indexes_.end()) return it->second;
    Index index;
    index.reserve(rows_.size());
    for (uint32_t i = 0; i < rows_.size(); ++i) {
      Tuple key;
      key.reserve(cols.size());
      for (uint32_t c : cols) key.push_back(rows_[i][c]);
      index[std::move(key)].push_back(i);
    }
    return indexes_.emplace(cols, std::move(index)).first->second;
  }

  size_t arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> set_;
  // Lazily built; cleared on insert. Keyed by the column subset.
  mutable std::map<std::vector<uint32_t>, Index> indexes_;
};

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_RELATION_H_
