// Relation: a deduplicated set of tuples with incrementally maintained
// hash indexes.
//
// Relations preserve insertion order for deterministic iteration, maintain
// a hash set for O(1) duplicate elimination and membership tests, and build
// hash indexes over column subsets on demand. Once built, an index is kept
// current incrementally: Insert appends the new row id to the matching
// posting list of every built index instead of discarding them, so a
// fixpoint loop that alternates inserts and probes pays O(new rows) per
// round instead of O(relation) index rebuilds.
//
// Invalidation contract: Probe returns a ProbeResult view into an index
// posting list. The view is valid until the next structural change of the
// relation — any successful Insert/InsertAll (the posting list may grow
// and reallocate), Clear, or DropIndexes. Using a stale view is undefined
// behavior; each access asserts validity in debug builds, and valid() can
// be queried in any build. Relations are not internally synchronized:
// concurrent const access (Probe on already-built indexes, Contains,
// rows) is safe, concurrent mutation is not — parallel evaluation
// pre-builds indexes with BuildIndex and keeps the fan-out read-only.

#ifndef GRAPHLOG_STORAGE_RELATION_H_
#define GRAPHLOG_STORAGE_RELATION_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace graphlog::storage {

class Relation;

/// \brief View over the row indices matching a Probe().
///
/// Holds the relation's structure generation at probe time; any later
/// structural change (insert, clear, index drop) invalidates the view.
/// Accessors assert validity in debug builds.
class ProbeResult {
 public:
  ProbeResult() = default;

  /// \brief True while the underlying relation is structurally unchanged
  /// since this result was probed.
  bool valid() const;

  size_t size() const {
    CheckValid();
    return hits_ == nullptr ? 0 : hits_->size();
  }
  bool empty() const { return size() == 0; }
  const uint32_t* begin() const {
    CheckValid();
    return hits_ == nullptr ? nullptr : hits_->data();
  }
  const uint32_t* end() const {
    CheckValid();
    return hits_ == nullptr ? nullptr : hits_->data() + hits_->size();
  }
  uint32_t operator[](size_t i) const {
    CheckValid();
    return (*hits_)[i];
  }

 private:
  friend class Relation;
  ProbeResult(const std::vector<uint32_t>* hits, const Relation* rel,
              uint64_t generation)
      : hits_(hits), rel_(rel), generation_(generation) {}

  void CheckValid() const {
    assert(valid() && "ProbeResult used after a structural change of the "
                      "relation (insert/clear/index drop)");
  }

  const std::vector<uint32_t>* hits_ = nullptr;  // nullptr: no matches
  const Relation* rel_ = nullptr;                // nullptr: detached view
  uint64_t generation_ = 0;
};

/// \brief A set of same-arity tuples.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// \brief Inserts `t`; returns true when the tuple is new. Appends the
  /// new row to every built index; invalidates outstanding ProbeResults.
  /// The tuple's size must equal arity().
  bool Insert(Tuple t) {
    SyncSet();
    if (!set_.insert(t).second) return false;
    const uint32_t row_id = static_cast<uint32_t>(rows_.size());
    rows_.push_back(std::move(t));
    AppendToIndexes(rows_.back(), row_id);
    ++generation_;
    ++data_generation_;
    memory_dirty_ = true;
    return true;
  }

  /// \brief Appends `t` without consulting the dedup set: the bulk-load
  /// path for kernels whose output is provably duplicate-free (the
  /// columnar TC/RPQ kernels emit each pair exactly once). Skips the
  /// per-row hash insert and tuple copy that dominate materialization;
  /// the set is rebuilt lazily by the next operation that needs it
  /// (Insert / Contains / TruncateTo / SetEquals) — until that happens,
  /// those calls are not safe to run concurrently. Feeding a duplicate
  /// is a caller bug (asserted at the next sync in debug builds).
  void AppendUnique(Tuple t) {
    const uint32_t row_id = static_cast<uint32_t>(rows_.size());
    rows_.push_back(std::move(t));
    AppendToIndexes(rows_.back(), row_id);
    set_stale_ = true;
    ++generation_;
    ++data_generation_;
    memory_dirty_ = true;
  }

  /// \brief Inserts `t` like Insert() but WITHOUT bumping data_generation():
  /// the staging half of a multi-relation atomic write. The structural
  /// generation still advances (outstanding ProbeResults are invalidated),
  /// but the relation's cache stamp is frozen until CommitStamp() — so an
  /// aborted batch can undo its staged rows with RollbackStagedTo() without
  /// ever having published a stamp readers could cache a half-applied
  /// state under.
  bool InsertStaged(Tuple t) {
    SyncSet();
    if (!set_.insert(t).second) return false;
    const uint32_t row_id = static_cast<uint32_t>(rows_.size());
    rows_.push_back(std::move(t));
    AppendToIndexes(rows_.back(), row_id);
    ++generation_;
    memory_dirty_ = true;
    return true;
  }

  /// \brief Publishes the data stamp for a run of InsertStaged() calls:
  /// exactly one data_generation() bump per touched relation per committed
  /// batch, however many rows the batch staged.
  void CommitStamp() { ++data_generation_; }

  /// \brief Undoes staged rows: TruncateTo without the data_generation()
  /// bump, legitimate only because rows staged by InsertStaged() since
  /// size `n` was recorded never published a stamp for anyone to observe.
  void RollbackStagedTo(size_t n) {
    if (n >= rows_.size()) return;
    SyncSet();
    for (size_t i = n; i < rows_.size(); ++i) set_.erase(rows_[i]);
    rows_.resize(n);
    indexes_.clear();
    ++generation_;
    ++shrinks_;
    memory_dirty_ = true;
  }

  /// \brief Restores the committed data stamp after a transactional
  /// rollback has returned the contents to exactly the state that carried
  /// stamp `g`. The caller must guarantee that match — the
  /// (uid, data_generation, size) ⇒ equal-contents contract depends on it.
  void RestoreDataGeneration(uint64_t g) { data_generation_ = g; }

  /// \brief Inserts every tuple of `other`; returns the number actually new.
  size_t InsertAll(const Relation& other) {
    Reserve(rows_.size() + other.size());
    size_t added = 0;
    for (const Tuple& t : other.rows_) {
      if (Insert(t)) ++added;
    }
    return added;
  }

  /// \brief Pre-sizes the row store and dedup set for `n` total tuples.
  void Reserve(size_t n) {
    rows_.reserve(n);
    set_.reserve(n);
  }

  bool Contains(const Tuple& t) const {
    SyncSet();
    return set_.count(t) > 0;
  }

  /// \brief Insertion-ordered rows.
  const std::vector<Tuple>& rows() const { return rows_; }

  /// \brief Rows in canonical (lexicographic) order; for diffing and
  /// printing.
  std::vector<Tuple> SortedRows() const {
    std::vector<Tuple> out = rows_;
    std::sort(out.begin(), out.end(), TupleLess());
    return out;
  }

  void Clear() {
    rows_.clear();
    set_.clear();
    set_stale_ = false;
    indexes_.clear();
    ++generation_;
    ++data_generation_;
    ++shrinks_;
    memory_dirty_ = true;
  }

  /// \brief Removes every row past the first `n` (insertion order),
  /// erasing them from the dedup set and discarding built indexes (the
  /// next Probe rebuilds). The rollback primitive for governed aborts:
  /// truncating to a pre-run size restores the relation's exact pre-run
  /// contents and iteration order. No-op when n >= size(). Invalidates
  /// outstanding ProbeResults.
  void TruncateTo(size_t n) {
    if (n >= rows_.size()) return;
    SyncSet();
    for (size_t i = n; i < rows_.size(); ++i) set_.erase(rows_[i]);
    rows_.resize(n);
    indexes_.clear();
    ++generation_;
    ++data_generation_;
    ++shrinks_;
    memory_dirty_ = true;
  }

  /// \brief Discards every built index (releases memory; the next Probe
  /// over a column set rebuilds from scratch). Invalidates outstanding
  /// ProbeResults.
  void DropIndexes() const {
    indexes_.clear();
    ++generation_;
    memory_dirty_ = true;
  }

  /// \brief Row indices whose values at `cols` equal `key` (parallel
  /// vectors). Builds a hash index over `cols` on first use; the index is
  /// maintained incrementally by subsequent inserts.
  ///
  /// `cols` must be strictly increasing column positions < arity(). See
  /// the file comment for the returned view's invalidation contract.
  ProbeResult Probe(const std::vector<uint32_t>& cols,
                    const Tuple& key) const {
    const Index& index = EnsureIndex(cols);
    auto it = index.find(key);
    return ProbeResult(it == index.end() ? nullptr : &it->second, this,
                       generation_);
  }

  /// \brief Ensures the hash index over `cols` exists without probing it.
  /// Parallel evaluation pre-builds every index a join plan needs so the
  /// subsequent multi-threaded Probe()s are pure reads.
  void BuildIndex(const std::vector<uint32_t>& cols) const {
    EnsureIndex(cols);
  }

  const Tuple& row(uint32_t i) const { return rows_[i]; }

  /// \brief True when the two relations hold the same set of tuples.
  bool SetEquals(const Relation& other) const {
    if (size() != other.size()) return false;
    for (const Tuple& t : rows_) {
      if (!other.Contains(t)) return false;
    }
    return true;
  }

  /// \brief Monotonic counter bumped by every structural change (insert,
  /// clear, index drop); backs ProbeResult::valid().
  uint64_t generation() const { return generation_; }

  /// \brief Monotonic counter bumped only by *data* changes — successful
  /// Insert, Clear, TruncateTo — never by index maintenance (DropIndexes
  /// bumps generation() but not this). The cache layer's invalidation key:
  /// equal (uid, data_generation, size) implies equal contents whenever
  /// the relation has only grown since the last observation.
  uint64_t data_generation() const { return data_generation_; }

  /// \brief Monotonic counter bumped only by *destructive* data changes —
  /// Clear, TruncateTo, RollbackStagedTo — never by inserts or index
  /// maintenance. The grow-only witness for incremental consumers
  /// (relation_stats.h): with uid and shrinks() unchanged and size() not
  /// smaller, every previously-observed row prefix is still intact and
  /// only appended rows need to be absorbed.
  uint64_t shrinks() const { return shrinks_; }

  /// \brief Process-unique id assigned by Database::Declare; never reused,
  /// so a Remove + re-Declare under the same name is distinguishable from
  /// the original relation even when counters coincide. 0 = unassigned
  /// (relation not owned by a Database).
  uint64_t uid() const { return uid_; }
  void set_uid(uint64_t uid) { uid_ = uid; }

  /// \brief Number of full from-scratch index builds (first Probe over a
  /// column set).
  uint64_t index_builds() const { return index_builds_; }
  /// \brief Number of incremental row appends into already-built indexes.
  uint64_t index_appends() const { return index_appends_; }

  /// \brief Estimated resident bytes of this relation: row store, dedup
  /// set, and built indexes.
  ///
  /// A *structural* estimate, deliberately computed from deterministic
  /// quantities only (row count, arity, built-index key counts) rather
  /// than allocator capacities, so resource gauges derived from it are
  /// byte-identical across num_threads settings — the same contract as
  /// EvalStats and the deterministic trace projection.
  ///
  /// Cached: mutations (insert, clear, truncate, index build/drop) mark
  /// the estimate dirty and the next call recomputes, so per-round
  /// resource gauges and metrics exports stop paying a full recompute
  /// over every unchanged relation.
  size_t MemoryBytes() const {
    if (!memory_dirty_) return memory_bytes_;
    // Row store: one Tuple header + arity values per row.
    size_t bytes = rows_.size() * (sizeof(Tuple) + arity_ * sizeof(Value));
    // Dedup set: per entry, a copy of the tuple plus ~2 words of
    // hash-table overhead (bucket slot + node link).
    bytes += rows_.size() *
             (sizeof(Tuple) + arity_ * sizeof(Value) + 2 * sizeof(void*));
    for (const auto& [cols, index] : indexes_) {
      // Per distinct key: the key tuple and a posting-list header.
      bytes += index.size() * (sizeof(Tuple) + cols.size() * sizeof(Value) +
                               sizeof(std::vector<uint32_t>) +
                               2 * sizeof(void*));
      // Every row appears in exactly one posting list of each index.
      bytes += rows_.size() * sizeof(uint32_t);
    }
    memory_bytes_ = bytes;
    memory_dirty_ = false;
    return bytes;
  }

 private:
  using Index = std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash>;

  /// \brief Rebuilds the lazily-deferred tail of the dedup set after a
  /// run of AppendUnique() calls. The loop starts at the current set
  /// size: rows below it were inserted through the tracked path.
  void SyncSet() const {
    if (!set_stale_) return;
    set_.reserve(rows_.size());
    for (size_t i = set_.size(); i < rows_.size(); ++i) set_.insert(rows_[i]);
    assert(set_.size() == rows_.size() &&
           "AppendUnique was fed a duplicate row");
    set_stale_ = false;
  }

  const Index& EnsureIndex(const std::vector<uint32_t>& cols) const {
    auto it = indexes_.find(cols);
    if (it != indexes_.end()) return it->second;
    ++index_builds_;
    memory_dirty_ = true;
    Index index;
    index.reserve(rows_.size());
    for (uint32_t i = 0; i < rows_.size(); ++i) {
      Tuple key;
      key.reserve(cols.size());
      for (uint32_t c : cols) key.push_back(rows_[i][c]);
      index[std::move(key)].push_back(i);
    }
    return indexes_.emplace(cols, std::move(index)).first->second;
  }

  void AppendToIndexes(const Tuple& t, uint32_t row_id) {
    for (auto& [cols, index] : indexes_) {
      Tuple key;
      key.reserve(cols.size());
      for (uint32_t c : cols) key.push_back(t[c]);
      index[std::move(key)].push_back(row_id);
      ++index_appends_;
    }
  }

  size_t arity_;
  std::vector<Tuple> rows_;
  mutable std::unordered_set<Tuple, TupleHash> set_;
  /// True while rows appended by AppendUnique() are missing from set_.
  mutable bool set_stale_ = false;
  // Built lazily on first probe, then maintained incrementally on insert.
  // Keyed by the column subset.
  mutable std::map<std::vector<uint32_t>, Index> indexes_;
  mutable uint64_t generation_ = 0;
  uint64_t data_generation_ = 0;
  uint64_t shrinks_ = 0;
  uint64_t uid_ = 0;
  mutable uint64_t index_builds_ = 0;
  uint64_t index_appends_ = 0;
  /// MemoryBytes() cache; dirtied by every mutation that changes the
  /// estimate (data changes and index builds/drops).
  mutable size_t memory_bytes_ = 0;
  mutable bool memory_dirty_ = true;
};

inline bool ProbeResult::valid() const {
  return rel_ == nullptr || rel_->generation() == generation_;
}

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_RELATION_H_
