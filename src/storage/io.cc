#include "storage/io.h"

#include <fstream>
#include <sstream>

#include "datalog/ast.h"
#include "datalog/parser.h"

namespace graphlog::storage {

Result<size_t> LoadFacts(std::string_view text, Database* db) {
  GRAPHLOG_ASSIGN_OR_RETURN(
      datalog::Program prog, datalog::ParseProgram(text, &db->symbols()));
  size_t added = 0;
  for (const datalog::Rule& r : prog.rules) {
    if (!r.is_fact() || r.head.has_aggregates()) {
      return Status::InvalidArgument(
          "fact file contains a non-fact rule: " +
          r.ToString(db->symbols()));
    }
    Tuple t;
    t.reserve(r.head.arity());
    for (const datalog::HeadTerm& h : r.head.args) {
      if (!h.term.is_constant()) {
        return Status::InvalidArgument(
            "fact with a non-constant argument: " +
            r.ToString(db->symbols()));
      }
      t.push_back(h.term.value());
    }
    GRAPHLOG_RETURN_NOT_OK(db->AddFact(r.head.predicate, std::move(t)));
    ++added;
  }
  return added;
}

Result<size_t> LoadFactsFile(const std::string& path, Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open fact file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadFacts(buf.str(), db);
}

std::string DumpFacts(const Database& db) {
  std::string out;
  for (const auto& [name, rel] : db.relations()) {
    (void)rel;
    out += db.RelationToString(name);
  }
  return out;
}

Status SaveFactsFile(const std::string& path, const Database& db) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << DumpFacts(db);
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

}  // namespace graphlog::storage
