#include "storage/io.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "datalog/parser.h"
#include "gov/governor.h"

namespace graphlog::storage {

namespace {

/// Longest token a well-formed fact file can plausibly contain. Anything
/// beyond this is a corrupt or binary file; rejecting it up front (with
/// a line number) beats feeding megabytes into the lexer.
constexpr size_t kMaxTokenBytes = 64 * 1024;

/// Scans for runs of non-delimiter bytes longer than kMaxTokenBytes.
/// Returns 0 when none, else the 1-based line of the first offender.
size_t FindOversizedToken(std::string_view text) {
  size_t line = 1;
  size_t run = 0;
  for (char c : text) {
    if (c == '\n') {
      ++line;
      run = 0;
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '(' || c == ')' ||
               c == ',' || c == '.') {
      run = 0;
    } else if (++run > kMaxTokenBytes) {
      return line;
    }
  }
  return 0;
}

}  // namespace

Result<size_t> LoadFacts(std::string_view text, Database* db,
                         const gov::GovernorContext* governor) {
  if (size_t line = FindOversizedToken(text); line != 0) {
    return Status::ParseError("oversized token (> " +
                              std::to_string(kMaxTokenBytes) +
                              " bytes) at line " + std::to_string(line));
  }
  GRAPHLOG_ASSIGN_OR_RETURN(
      datalog::Program prog, datalog::ParseProgram(text, &db->symbols()));

  // Phase 1: validate every rule and stage the batch. Nothing touches
  // the database until the whole input is known good, so a bad line
  // never leaves a partially-applied file behind.
  std::vector<std::pair<Symbol, Tuple>> batch;
  batch.reserve(prog.rules.size());
  std::map<Symbol, size_t> arities;
  for (size_t i = 0; i < prog.rules.size(); ++i) {
    const datalog::Rule& r = prog.rules[i];
    if (!r.is_fact() || r.head.has_aggregates()) {
      return Status::ParseError("fact " + std::to_string(i + 1) +
                                " is not a ground fact: " +
                                r.ToString(db->symbols()));
    }
    Tuple t;
    t.reserve(r.head.arity());
    for (const datalog::HeadTerm& h : r.head.args) {
      if (!h.term.is_constant()) {
        return Status::ParseError("fact " + std::to_string(i + 1) +
                                  " has a non-constant argument: " +
                                  r.ToString(db->symbols()));
      }
      t.push_back(h.term.value());
    }
    // Arity must agree with any existing relation and with every earlier
    // fact of the batch.
    const Symbol pred = r.head.predicate;
    size_t expected = 0;
    if (auto it = arities.find(pred); it != arities.end()) {
      expected = it->second;
    } else if (const Relation* rel = db->Find(pred); rel != nullptr) {
      expected = rel->arity();
      arities.emplace(pred, expected);
    } else {
      arities.emplace(pred, t.size());
      expected = t.size();
    }
    if (t.size() != expected) {
      return Status::ArityMismatch(
          "fact " + std::to_string(i + 1) + " declares '" +
          db->symbols().name(pred) + "' with arity " +
          std::to_string(t.size()) + " but it has arity " +
          std::to_string(expected));
    }
    batch.emplace_back(pred, std::move(t));
  }

  // Phase 2: the batch is valid; one governed checkpoint, then apply.
  // Rows are staged without touching data stamps, and every relation that
  // actually gained rows gets exactly one data_generation bump at commit:
  // the loader never publishes a stamp for a partially-applied batch, so
  // stamp-keyed caches (result cache, CSR cache) can never certify a
  // mid-load state. Phase-1 validation guarantees the Declare calls below
  // cannot fail (arity was checked against both the database and the
  // batch), so the staged rows are never abandoned half-applied.
  GRAPHLOG_RETURN_NOT_OK(gov::CheckPoint(governor, "io.load"));
  std::set<Relation*> dirty;
  for (auto& [pred, t] : batch) {
    GRAPHLOG_ASSIGN_OR_RETURN(Relation * rel, db->Declare(pred, t.size()));
    if (rel->InsertStaged(std::move(t))) dirty.insert(rel);
  }
  for (Relation* rel : dirty) rel->CommitStamp();
  return batch.size();
}

Result<size_t> LoadFactsFile(const std::string& path, Database* db,
                             const gov::GovernorContext* governor,
                             std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open fact file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  // Note: inserting an empty rdbuf sets failbit by itself ("no characters
  // inserted"); an empty fact file is fine, a half-read one is not.
  if (in.bad() || (buf.fail() && !buf.str().empty())) {
    return Status::Internal("read of fact file '" + path +
                            "' failed mid-stream (truncated load rejected)");
  }
  std::string text = buf.str();
  Result<size_t> loaded = LoadFacts(text, db, governor);
  if (contents != nullptr) *contents = std::move(text);
  if (!loaded.ok()) {
    // Prefix the file; parse-level messages already carry the line.
    return Status(loaded.status().code(),
                  path + ": " + loaded.status().message());
  }
  return loaded;
}

std::string DumpFacts(const Database& db) {
  std::string out;
  for (const auto& [name, rel] : db.relations()) {
    (void)rel;
    out += db.RelationToString(name);
  }
  return out;
}

Status SaveFactsFile(const std::string& path, const Database& db) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << DumpFacts(db);
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

}  // namespace graphlog::storage
