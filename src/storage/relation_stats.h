// RelationStats: per-relation column statistics maintained incrementally.
//
// For each column of a relation the stats track the number of distinct
// values and the largest and mean group size (rows sharing one value) —
// the degree distribution when the relation is a graph edge set. The
// planner consumes them through eval::CardinalityFn to estimate how many
// rows a probe bound on a column subset will match (rows divided by the
// product of the bound columns' distinct counts), replacing the blind
// fixed-fanout discount; EXPLAIN renders the same estimates and
// Database::ExportResourceMetrics publishes them as
// `db.relation.<name>.distinct.<col>` gauges.
//
// Invalidation follows the CSR-cache contract exactly
// (columnar/csr_cache.h): a computed entry is stamped with the relation's
// (uid, data_generation, size) and served only while all three match.
// DropIndexes bumps the structural generation but neither the stamp nor
// the contents, so it does not invalidate stats. Relations with uid 0 —
// the engine's per-round delta relations, not owned by a Database — are
// never cached.
//
// Unlike the CSR cache, a stale entry is usually not recomputed from
// scratch: the per-column value->count maps are retained, and when the
// relation has only grown since the last refresh (same uid, shrinks()
// unchanged, size not smaller — inserts only ever append) just the new
// row suffix is absorbed. A fixpoint loop therefore pays O(new rows) per
// refresh, the same complexity class as incremental index maintenance.
// Clear/TruncateTo/RollbackStagedTo bump shrinks() and force a full
// recompute. Not internally synchronized, like Relation itself.

#ifndef GRAPHLOG_STORAGE_RELATION_STATS_H_
#define GRAPHLOG_STORAGE_RELATION_STATS_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"

namespace graphlog::storage {

/// \brief Column statistics for one relation.
class RelationStats {
 public:
  /// \brief True while the stats describe `r`'s current contents — the
  /// (uid, data_generation, size) stamp matches.
  bool CurrentFor(const Relation& r) const {
    return uid_ == r.uid() && uid_ != 0 &&
           data_generation_ == r.data_generation() && rows_ == r.size();
  }

  /// \brief Brings the stats up to date with `r`: a no-op when current,
  /// an absorb of the appended suffix when `r` has only grown, a full
  /// recompute otherwise.
  void Refresh(const Relation& r);

  size_t arity() const { return counts_.size(); }
  size_t rows() const { return rows_; }

  /// \brief Number of distinct values in column `col`.
  uint64_t distinct(uint32_t col) const {
    return col < counts_.size() ? counts_[col].size() : 0;
  }

  /// \brief Largest number of rows sharing one value in column `col`.
  uint64_t max_degree(uint32_t col) const {
    return col < max_group_.size() ? max_group_[col] : 0;
  }

  /// \brief Mean rows per distinct value in column `col` (0 when empty).
  double mean_degree(uint32_t col) const {
    const uint64_t d = distinct(col);
    return d == 0 ? 0.0 : static_cast<double>(rows_) / static_cast<double>(d);
  }

  /// \brief Estimated rows matching a probe bound on `bound_cols`:
  /// rows / prod(distinct(col)), at least 1 while the relation is
  /// non-empty (a probe may always hit). Empty `bound_cols` is a scan —
  /// the full row count. Deterministic: computed from row contents only.
  uint64_t EstimateMatches(const std::vector<uint32_t>& bound_cols) const {
    if (rows_ == 0) return 0;
    uint64_t est = rows_;
    for (uint32_t c : bound_cols) {
      const uint64_t d = distinct(c);
      if (d > 1) est /= d;
    }
    return est == 0 ? 1 : est;
  }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  using Counts = std::unordered_map<Value, uint32_t, ValueHash>;

  /// Absorbs rows [from, r.size()) into the per-column maps.
  void Absorb(const Relation& r, size_t from);

  uint64_t uid_ = 0;
  uint64_t data_generation_ = 0;
  uint64_t shrinks_ = 0;
  size_t rows_ = 0;
  std::vector<Counts> counts_;      // per column: value -> group size
  std::vector<uint64_t> max_group_; // per column: largest group size
};

/// \brief Per-database catalog of RelationStats, keyed by relation uid
/// (uids are process-unique and never reused, so a dropped-and-redeclared
/// relation can never be served its predecessor's stats). Owned by
/// Database; see Database::StatsFor.
class StatsCatalog {
 public:
  /// \brief Stats for `r`, refreshed to its current contents. Returns
  /// nullptr for uid-0 relations (engine-internal deltas, never cached).
  const RelationStats* Get(const Relation& r) {
    if (r.uid() == 0) return nullptr;
    RelationStats& st = by_uid_[r.uid()];
    st.Refresh(r);
    return &st;
  }

  /// \brief The cached stats for `r` only if already computed AND still
  /// current; never triggers computation. Nullptr otherwise.
  const RelationStats* Peek(const Relation& r) const {
    auto it = by_uid_.find(r.uid());
    if (it == by_uid_.end() || !it->second.CurrentFor(r)) return nullptr;
    return &it->second;
  }

  size_t size() const { return by_uid_.size(); }

 private:
  std::map<uint64_t, RelationStats> by_uid_;
};

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_RELATION_STATS_H_
