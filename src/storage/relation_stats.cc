#include "storage/relation_stats.h"

namespace graphlog::storage {

void RelationStats::Refresh(const Relation& r) {
  if (CurrentFor(r)) return;
  // Grow-only fast path: same relation instance, no destructive ops since
  // the last refresh, and at least as many rows — the previously-absorbed
  // prefix is intact, only the appended suffix is new. (InsertStaged rows
  // land here too: they change size without bumping data_generation, and
  // the stamp re-freezes on the eventual CommitStamp refresh.)
  const bool grown_only =
      uid_ == r.uid() && shrinks_ == r.shrinks() && r.size() >= rows_;
  if (!grown_only) {
    counts_.assign(r.arity(), Counts());
    max_group_.assign(r.arity(), 0);
    rows_ = 0;
  }
  Absorb(r, rows_);
  uid_ = r.uid();
  data_generation_ = r.data_generation();
  shrinks_ = r.shrinks();
  rows_ = r.size();
}

void RelationStats::Absorb(const Relation& r, size_t from) {
  const size_t arity = r.arity();
  if (counts_.size() != arity) {
    counts_.assign(arity, Counts());
    max_group_.assign(arity, 0);
  }
  const std::vector<Tuple>& rows = r.rows();
  for (size_t i = from; i < rows.size(); ++i) {
    const Tuple& t = rows[i];
    for (size_t c = 0; c < arity; ++c) {
      const uint32_t n = ++counts_[c][t[c]];
      if (n > max_group_[c]) max_group_[c] = n;
    }
  }
}

}  // namespace graphlog::storage
