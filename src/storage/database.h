// Database: the catalog of named relations plus the symbol table.

#ifndef GRAPHLOG_STORAGE_DATABASE_H_
#define GRAPHLOG_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/symbol_table.h"
#include "storage/relation.h"
#include "storage/relation_stats.h"

namespace graphlog::obs {
class MetricsRegistry;  // obs/metrics.h
}

namespace graphlog::storage {

/// \brief An extensional database: named relations over interned symbols.
///
/// The Database owns the SymbolTable through which all programs and queries
/// that run against it must intern their identifiers.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  SymbolTable& symbols() { return syms_; }
  const SymbolTable& symbols() const { return syms_; }

  /// \brief Process-unique id of this Database instance. Code keying
  /// state across databases (the result cache) scopes its keys by this
  /// id, so two databases never share cache entries even when they hold
  /// copies of the same relations — sessions intern query-local symbols
  /// after cloning a snapshot, and entries recorded under one session's
  /// symbol ids must not replay into another.
  uint64_t uid() const { return uid_; }

  /// \brief Interns a string (convenience passthrough).
  Symbol Intern(std::string_view s) { return syms_.Intern(s); }

  /// \brief Declares `name` with the given arity; returns the existing
  /// relation if already declared with the same arity.
  Result<Relation*> Declare(std::string_view name, size_t arity) {
    return Declare(syms_.Intern(name), arity);
  }
  Result<Relation*> Declare(Symbol name, size_t arity) {
    auto it = relations_.find(name);
    if (it != relations_.end()) {
      if (it->second.arity() != arity) {
        return Status::ArityMismatch(
            "relation '" + syms_.name(name) + "' declared with arity " +
            std::to_string(arity) + " but exists with arity " +
            std::to_string(it->second.arity()));
      }
      return &it->second;
    }
    Relation* rel = &relations_.emplace(name, Relation(arity)).first->second;
    rel->set_uid(next_relation_uid_.fetch_add(1, std::memory_order_relaxed) +
                 1);
    return rel;
  }

  /// \brief The relation for `name`, or nullptr.
  const Relation* Find(Symbol name) const {
    auto it = relations_.find(name);
    return it == relations_.end() ? nullptr : &it->second;
  }
  Relation* FindMutable(Symbol name) {
    auto it = relations_.find(name);
    return it == relations_.end() ? nullptr : &it->second;
  }
  const Relation* Find(std::string_view name) const {
    Symbol s = syms_.Lookup(name);
    return s == kNoSymbol ? nullptr : Find(s);
  }

  bool Contains(Symbol name) const { return relations_.count(name) > 0; }

  /// \brief Adds a fact, declaring the relation on first use.
  Status AddFact(std::string_view name, Tuple t) {
    GRAPHLOG_ASSIGN_OR_RETURN(Relation * rel, Declare(name, t.size()));
    rel->Insert(std::move(t));
    return Status::OK();
  }
  Status AddFact(Symbol name, Tuple t) {
    GRAPHLOG_ASSIGN_OR_RETURN(Relation * rel, Declare(name, t.size()));
    rel->Insert(std::move(t));
    return Status::OK();
  }

  /// \brief Convenience: adds a fact whose arguments are strings interned
  /// as symbols.
  Status AddSymFact(std::string_view name,
                    std::initializer_list<std::string_view> args) {
    Tuple t;
    t.reserve(args.size());
    for (std::string_view a : args) t.push_back(Value::Sym(syms_.Intern(a)));
    return AddFact(name, std::move(t));
  }

  const std::map<Symbol, Relation>& relations() const { return relations_; }
  std::map<Symbol, Relation>& relations() { return relations_; }

  /// \brief Total number of tuples across all relations.
  size_t TotalTuples() const {
    size_t n = 0;
    for (const auto& [_, rel] : relations_) n += rel.size();
    return n;
  }

  /// \brief Estimated resident bytes across all relations (see
  /// Relation::MemoryBytes for the determinism contract).
  size_t TotalBytes() const {
    size_t n = 0;
    for (const auto& [_, rel] : relations_) n += rel.MemoryBytes();
    return n;
  }

  /// \brief Column statistics for the named relation, refreshed to its
  /// current contents (incrementally when it has only grown — see
  /// relation_stats.h). Nullptr when the relation does not exist. The
  /// planner's cardinality oracle and EXPLAIN both read estimates here.
  const RelationStats* StatsFor(Symbol name) const {
    const Relation* rel = Find(name);
    return rel == nullptr ? nullptr : stats_.Get(*rel);
  }
  const RelationStats* StatsFor(std::string_view name) const {
    const Relation* rel = Find(name);
    return rel == nullptr ? nullptr : stats_.Get(*rel);
  }

  /// \brief The stats catalog itself (Peek without forcing computation).
  const StatsCatalog& stats_catalog() const { return stats_; }

  /// \brief Publishes per-relation row/byte gauges
  /// (`db.relation.<name>.{rows,bytes}`) plus catalog totals
  /// (`db.relations`, `db.rows`, `db.bytes`) into `registry`; no-op when
  /// null. Also refreshes and publishes the column statistics of every
  /// relation as `db.relation.<name>.distinct.<col>` and
  /// `db.relation.<name>.max_degree.<col>` gauges (incremental per
  /// refresh — O(rows inserted since the last export)). Gauges for
  /// dropped relations are not retracted — a service snapshotting between
  /// queries sees the last published level.
  void ExportResourceMetrics(obs::MetricsRegistry* registry) const;

  /// \brief Drops the named relation entirely; returns true when it
  /// existed. Used by governed-abort rollback to remove relations a
  /// failed run created.
  bool Remove(Symbol name) { return relations_.erase(name) > 0; }

  /// \brief Drops every relation whose name is not in `keep`; used to
  /// strip IDB results between runs.
  void RetainOnly(const std::set<Symbol>& keep) {
    for (auto it = relations_.begin(); it != relations_.end();) {
      if (keep.count(it->first) == 0) {
        it = relations_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// \brief Renders the named relation sorted, one fact per line.
  std::string RelationToString(Symbol name) const;

 private:
  SymbolTable syms_;
  std::map<Symbol, Relation> relations_;
  // Lazily-computed, incrementally-refreshed column statistics; mutable
  // because refreshing on read is a cache fill, not a data change (the
  // same discipline as Relation's lazily-built indexes).
  mutable StatsCatalog stats_;
  // Source of Relation::uid values: process-global (one counter across
  // every Database) and never decremented, so (a) a relation dropped and
  // re-declared under the same name gets a fresh uid the cache layer
  // cannot confuse with its predecessor, and (b) relations declared in
  // *different* databases never collide — a session database copied from
  // a server snapshot keeps the server-issued uids on the copies, and any
  // relation it declares locally gets an id no other database will ever
  // issue, which is what lets stamp-keyed caches serve sessions safely.
  static inline std::atomic<uint64_t> next_relation_uid_{0};
  static inline std::atomic<uint64_t> next_db_uid_{0};
  uint64_t uid_ = ++next_db_uid_;
};

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_DATABASE_H_
