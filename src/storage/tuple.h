// Tuples: the flat records stored in relations.

#ifndef GRAPHLOG_STORAGE_TUPLE_H_
#define GRAPHLOG_STORAGE_TUPLE_H_

#include <vector>

#include "common/hash.h"
#include "common/value.h"

namespace graphlog::storage {

/// \brief A database tuple: a fixed-arity vector of values.
using Tuple = std::vector<Value>;

/// \brief Hash functor over whole tuples.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x51ed270b;
    for (const Value& v : t) h = HashCombine(h, v.Hash());
    return h;
  }
};

/// \brief Lexicographic comparison using the Value total order; used to
/// produce canonical sorted listings.
struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

}  // namespace graphlog::storage

#endif  // GRAPHLOG_STORAGE_TUPLE_H_
