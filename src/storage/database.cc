#include "storage/database.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "obs/metrics.h"

namespace graphlog::storage {

namespace {

/// Renders a value as a Datalog constant: symbols that are not bare
/// lowercase identifiers are quoted so the output re-parses as facts.
std::string RenderConstant(const Value& v, const SymbolTable& syms) {
  if (!v.is_symbol()) return v.ToString(syms);
  const std::string& s = syms.name(v.AsSymbol());
  bool bare = !s.empty() && std::islower(static_cast<unsigned char>(s[0]));
  if (bare) {
    for (size_t i = 0; i < s.size() && bare; ++i) {
      char c = s[i];
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            (c == '-' && i + 1 < s.size() &&
             std::isalpha(static_cast<unsigned char>(s[i + 1]))))) {
        bare = false;
      }
    }
  }
  if (bare) return s;
  return "\"" + EscapeQuoted(s) + "\"";
}

}  // namespace

std::string Database::RelationToString(Symbol name) const {
  const Relation* rel = Find(name);
  if (rel == nullptr) return "";
  // Sort rendered lines: the Value total order sorts symbols by intern id,
  // which is meaningless to a reader.
  std::vector<std::string> lines;
  lines.reserve(rel->size());
  for (const Tuple& t : rel->rows()) {
    std::vector<std::string> parts;
    parts.reserve(t.size());
    for (const Value& v : t) parts.push_back(RenderConstant(v, syms_));
    lines.push_back(syms_.name(name) + "(" + Join(parts, ", ") + ").\n");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) out += l;
  return out;
}

void Database::ExportResourceMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  size_t total_rows = 0;
  size_t total_bytes = 0;
  for (const auto& [sym, rel] : relations_) {
    const std::string base = "db.relation." + syms_.name(sym);
    const size_t bytes = rel.MemoryBytes();
    registry->gauge(base + ".rows")->Set(static_cast<int64_t>(rel.size()));
    registry->gauge(base + ".bytes")->Set(static_cast<int64_t>(bytes));
    if (const RelationStats* st = stats_.Get(rel); st != nullptr) {
      for (uint32_t c = 0; c < rel.arity(); ++c) {
        const std::string col = std::to_string(c);
        registry->gauge(base + ".distinct." + col)
            ->Set(static_cast<int64_t>(st->distinct(c)));
        registry->gauge(base + ".max_degree." + col)
            ->Set(static_cast<int64_t>(st->max_degree(c)));
      }
    }
    total_rows += rel.size();
    total_bytes += bytes;
  }
  registry->gauge("db.relations")
      ->Set(static_cast<int64_t>(relations_.size()));
  registry->gauge("db.rows")->Set(static_cast<int64_t>(total_rows));
  registry->gauge("db.bytes")->Set(static_cast<int64_t>(total_bytes));
}

}  // namespace graphlog::storage
