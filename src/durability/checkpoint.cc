#include "durability/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/value.h"
#include "durability/wal.h"  // Crc32

namespace graphlog::durability {

namespace {

constexpr char kMagic[8] = {'G', 'L', 'C', 'K', 'P', 'T', '1', '\n'};

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool GetU8(uint8_t* v) {
    if (data.size() - pos < 1) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (data.size() - pos < 4) return false;
    std::memcpy(v, data.data() + pos, 4);
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (data.size() - pos < 8) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  }
  bool GetStr(std::string* s) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (data.size() - pos < n) return false;
    s->assign(data.data() + pos, n);
    pos += n;
    return true;
  }
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::CorruptedLog("checkpoint '" + path + "': " + what);
}

// Writes `contents` to `path` and fsyncs it before returning.
Status WriteFileDurably(const std::string& path, const std::string& contents) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::Internal(Errno("failed opening", path));
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(Errno("failed writing", path));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal(Errno("failed fsync of", path));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const std::string& path, const storage::Database& db,
                       uint64_t epoch, gov::FaultInjector* faults,
                       obs::MetricsRegistry* metrics) {
  const auto started = std::chrono::steady_clock::now();
  if (faults != nullptr) {
    // Consulted before any byte reaches disk: an injected abort here
    // models a crash mid-checkpoint and must leave the previous valid
    // checkpoint file untouched.
    GRAPHLOG_RETURN_NOT_OK(faults->Hit("checkpoint.write"));
  }
  std::string payload;
  PutU64(&payload, epoch);
  PutU32(&payload, static_cast<uint32_t>(db.relations().size()));
  const SymbolTable& syms = db.symbols();
  for (const auto& [sym, rel] : db.relations()) {
    PutStr(&payload, syms.name(sym));
    PutU32(&payload, static_cast<uint32_t>(rel.arity()));
    PutU64(&payload, rel.size());
    for (const storage::Tuple& row : rel.rows()) {
      for (const Value& v : row) {
        payload.push_back(static_cast<char>(v.kind()));
        switch (v.kind()) {
          case ValueKind::kInt:
            PutU64(&payload, static_cast<uint64_t>(v.AsInt()));
            break;
          case ValueKind::kDouble: {
            uint64_t bits = 0;
            const double d = v.AsDouble();
            std::memcpy(&bits, &d, 8);
            PutU64(&payload, bits);
            break;
          }
          case ValueKind::kSymbol:
            PutStr(&payload, syms.name(v.AsSymbol()));
            break;
        }
      }
    }
  }
  std::string file;
  file.reserve(sizeof(kMagic) + payload.size() + 4);
  file.append(kMagic, sizeof(kMagic));
  file += payload;
  PutU32(&file, Crc32(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  GRAPHLOG_RETURN_NOT_OK(WriteFileDurably(tmp, file));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(Errno("failed renaming checkpoint into", path));
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  if (metrics != nullptr) {
    metrics->counter("checkpoint.writes")->Increment();
    metrics->counter("checkpoint.bytes")
        ->Add(static_cast<int64_t>(file.size()));
    metrics->histogram("checkpoint.write_ns")
        ->Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - started)
                      .count());
  }
  return Status::OK();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  CheckpointData out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;  // fresh directory: no checkpoint yet
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal(Errno("failed reading checkpoint", path));
  }
  if (file.size() < sizeof(kMagic) + 4 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "missing or wrong magic");
  }
  const std::string_view payload(file.data() + sizeof(kMagic),
                                 file.size() - sizeof(kMagic) - 4);
  uint32_t crc = 0;
  std::memcpy(&crc, file.data() + file.size() - 4, 4);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Corrupt(path, "checksum mismatch");
  }
  Cursor c{payload};
  uint32_t n_rel = 0;
  if (!c.GetU64(&out.epoch) || !c.GetU32(&n_rel)) {
    return Corrupt(path, "truncated header");
  }
  for (uint32_t r = 0; r < n_rel; ++r) {
    std::string name;
    uint32_t arity = 0;
    uint64_t n_rows = 0;
    if (!c.GetStr(&name) || !c.GetU32(&arity) || !c.GetU64(&n_rows)) {
      return Corrupt(path, "truncated relation header");
    }
    Result<storage::Relation*> declared = out.db.Declare(name, arity);
    if (!declared.ok()) return Corrupt(path, declared.status().message());
    storage::Relation* rel = *declared;
    for (uint64_t i = 0; i < n_rows; ++i) {
      storage::Tuple row;
      row.reserve(arity);
      for (uint32_t col = 0; col < arity; ++col) {
        uint8_t kind = 0;
        if (!c.GetU8(&kind)) return Corrupt(path, "truncated value tag");
        switch (kind) {
          case static_cast<uint8_t>(ValueKind::kInt): {
            uint64_t v = 0;
            if (!c.GetU64(&v)) return Corrupt(path, "truncated int value");
            row.push_back(Value::Int(static_cast<int64_t>(v)));
            break;
          }
          case static_cast<uint8_t>(ValueKind::kDouble): {
            uint64_t bits = 0;
            if (!c.GetU64(&bits)) {
              return Corrupt(path, "truncated double value");
            }
            double d = 0;
            std::memcpy(&d, &bits, 8);
            row.push_back(Value::Double(d));
            break;
          }
          case static_cast<uint8_t>(ValueKind::kSymbol): {
            std::string s;
            if (!c.GetStr(&s)) return Corrupt(path, "truncated symbol value");
            row.push_back(Value::Sym(out.db.Intern(s)));
            break;
          }
          default:
            return Corrupt(path, "unknown value tag " + std::to_string(kind));
        }
      }
      rel->Insert(std::move(row));
    }
  }
  if (c.pos != payload.size()) {
    return Corrupt(path, "trailing bytes after last relation");
  }
  out.found = true;
  return out;
}

}  // namespace graphlog::durability
