#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

namespace graphlog::durability {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

// Little-endian wire primitives (the repo only targets little-endian
// Linux, but going through memcpy keeps the layout explicit and the
// access alignment-safe).
void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Cursor over an encoded payload; every Get checks bounds so a decoder
// can never read past a (checksum-valid but logically malformed) buffer.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool GetU32(uint32_t* v) {
    if (data.size() - pos < 4) return false;
    std::memcpy(v, data.data() + pos, 4);
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (data.size() - pos < 8) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  }
  bool GetStr(std::string* s) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (data.size() - pos < n) return false;
    s->assign(data.data() + pos, n);
    pos += n;
    return true;
  }
  bool done() const { return pos == data.size(); }
};

Status Malformed(const std::string& what) {
  return Status::CorruptedLog("WAL payload malformed: " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// CRC-32

uint32_t Crc32(const void* data, size_t len) {
  // Table-driven reflected CRC-32 (IEEE), table built on first use.
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Batch codec

Status BatchCodec::Encode(const WriteBatch& batch,
                          const std::vector<std::string>& files,
                          std::string* out) {
  size_t n_load = 0;
  for (const WriteBatch::Op& op : batch.ops_) {
    if (op.kind == WriteBatch::Op::kLoadFile) ++n_load;
  }
  if (n_load != files.size()) {
    return Status::Internal("batch has " + std::to_string(n_load) +
                            " kLoadFile ops but " +
                            std::to_string(files.size()) +
                            " captured contents");
  }
  PutU32(out, static_cast<uint32_t>(batch.ops_.size()));
  size_t file_idx = 0;
  for (const WriteBatch::Op& op : batch.ops_) {
    out->push_back(static_cast<char>(op.kind));
    PutStr(out, op.text);
    PutU32(out, static_cast<uint32_t>(op.args.size()));
    for (const std::string& a : op.args) PutStr(out, a);
    if (op.kind == WriteBatch::Op::kLoadFile) {
      PutStr(out, files[file_idx++]);
    }
  }
  return Status::OK();
}

Status BatchCodec::Decode(std::string_view data, WriteBatch* batch,
                          std::vector<std::string>* files) {
  Cursor c{data};
  uint32_t n_ops = 0;
  if (!c.GetU32(&n_ops)) return Malformed("truncated op count");
  batch->ops_.clear();
  batch->ops_.reserve(n_ops);
  files->clear();
  for (uint32_t i = 0; i < n_ops; ++i) {
    if (c.pos >= data.size()) return Malformed("truncated op kind");
    const uint8_t kind = static_cast<uint8_t>(data[c.pos++]);
    if (kind > WriteBatch::Op::kClear) {
      return Malformed("unknown op kind " + std::to_string(kind));
    }
    WriteBatch::Op op;
    op.kind = static_cast<WriteBatch::Op::Kind>(kind);
    if (!c.GetStr(&op.text)) return Malformed("truncated op text");
    uint32_t n_args = 0;
    if (!c.GetU32(&n_args)) return Malformed("truncated arg count");
    op.args.reserve(n_args);
    for (uint32_t a = 0; a < n_args; ++a) {
      std::string arg;
      if (!c.GetStr(&arg)) return Malformed("truncated op arg");
      op.args.push_back(std::move(arg));
    }
    if (op.kind == WriteBatch::Op::kLoadFile) {
      std::string contents;
      if (!c.GetStr(&contents)) {
        return Malformed("truncated kLoadFile contents");
      }
      files->push_back(std::move(contents));
    }
    batch->ops_.push_back(std::move(op));
  }
  if (!c.done()) return Malformed("trailing bytes after last op");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scan

Result<WalScan> ScanWal(const std::string& path) {
  WalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return scan;  // no log yet == empty log
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal(Errno("failed reading WAL", path));
  }
  const size_t size = contents.size();
  scan.file_bytes = size;
  size_t pos = 0;
  while (pos < size) {
    if (size - pos < 8) {  // trailing fragment shorter than a header
      scan.torn = true;
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, contents.data() + pos, 4);
    std::memcpy(&crc, contents.data() + pos + 4, 4);
    if (len > size - pos - 8) {  // declared extent runs past EOF
      scan.torn = true;
      break;
    }
    const std::string_view payload(contents.data() + pos + 8, len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      if (pos + 8 + len == size) {
        // Complete record, bad checksum, nothing after it: the tail
        // block a crashed write left half-flushed. Torn, not corrupt.
        scan.torn = true;
        break;
      }
      return Status::CorruptedLog(
          "WAL '" + path + "': record at offset " + std::to_string(pos) +
          " fails its checksum with " +
          std::to_string(size - pos - 8 - len) +
          " byte(s) following it — interior corruption, refusing to "
          "replay");
    }
    WalRecord rec;
    Cursor c{payload};
    if (!c.GetU64(&rec.epoch)) {
      return Status::CorruptedLog("WAL '" + path + "': record at offset " +
                                  std::to_string(pos) +
                                  " too short for an epoch stamp");
    }
    Status decoded = BatchCodec::Decode(payload.substr(c.pos), &rec.batch,
                                        &rec.files);
    if (!decoded.ok()) {
      return Status::CorruptedLog("WAL '" + path + "': record at offset " +
                                  std::to_string(pos) + ": " +
                                  decoded.message());
    }
    scan.records.push_back(std::move(rec));
    pos += 8 + len;
    scan.valid_prefix_bytes = pos;
  }
  return scan;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal(Errno("failed truncating", path));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Wal

Wal::Wal(std::string path, int fd, uint64_t tail, WalOptions opts)
    : path_(std::move(path)),
      fd_(fd),
      tail_(tail),
      opts_(opts),
      last_sync_(std::chrono::steady_clock::now()) {}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (sync_pending_) ::fsync(fd_);  // flush a pending group-commit window
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       WalOptions opts) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal(Errno("failed opening WAL", path));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::Internal(Errno("failed seeking WAL", path));
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, static_cast<uint64_t>(end), opts));
}

Status Wal::Append(uint64_t epoch, const WriteBatch& batch,
                   const std::vector<std::string>& files) {
  const auto started = std::chrono::steady_clock::now();
  if (opts_.faults != nullptr) {
    GRAPHLOG_RETURN_NOT_OK(opts_.faults->Hit("wal.append"));
  }
  std::string payload;
  PutU64(&payload, epoch);
  GRAPHLOG_RETURN_NOT_OK(BatchCodec::Encode(batch, files, &payload));
  std::string record;
  record.reserve(8 + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32(payload.data(), payload.size()));
  record += payload;

  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n = ::write(fd_, record.data() + written,
                              record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Restore the pre-append length so the failed record's fragment
      // cannot end up buried mid-file by a later successful append.
      (void)::ftruncate(fd_, static_cast<off_t>(tail_));
      (void)::lseek(fd_, static_cast<off_t>(tail_), SEEK_SET);
      return Status::Internal(Errno("failed appending to WAL", path_));
    }
    written += static_cast<size_t>(n);
  }
  tail_ += record.size();
  sync_pending_ = true;

  Status synced = Status::OK();
  switch (opts_.fsync) {
    case FsyncPolicy::kAlways:
      synced = DoSync();
      break;
    case FsyncPolicy::kGroupCommit: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_sync_ >=
          std::chrono::milliseconds(opts_.group_window_ms)) {
        synced = DoSync();
      }
      break;
    }
    case FsyncPolicy::kOff:
      break;
  }
  if (!synced.ok()) {
    // The record reached the file but not stable storage, and the caller
    // will roll the in-memory apply back — unwind the append too so the
    // log never holds a record for an epoch that was never published.
    tail_ -= record.size();
    (void)::ftruncate(fd_, static_cast<off_t>(tail_));
    (void)::lseek(fd_, static_cast<off_t>(tail_), SEEK_SET);
    return synced;
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("wal.appends")->Increment();
    opts_.metrics->counter("wal.bytes_appended")
        ->Add(static_cast<int64_t>(record.size()));
    opts_.metrics->histogram("wal.append_ns")
        ->Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - started)
                      .count());
  }
  return Status::OK();
}

Status Wal::DoSync() {
  if (opts_.faults != nullptr) {
    GRAPHLOG_RETURN_NOT_OK(opts_.faults->Hit("wal.fsync"));
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal(Errno("failed fsync of WAL", path_));
  }
  sync_pending_ = false;
  last_sync_ = std::chrono::steady_clock::now();
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("wal.fsyncs")->Increment();
  }
  return Status::OK();
}

Status Wal::Sync() { return DoSync(); }

Status Wal::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal(Errno("failed truncating WAL", path_));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::Internal(Errno("failed rewinding WAL", path_));
  }
  tail_ = 0;
  sync_pending_ = false;
  if (::fsync(fd_) != 0) {
    return Status::Internal(Errno("failed fsync of WAL", path_));
  }
  return Status::OK();
}

}  // namespace graphlog::durability
