// Checkpoint: one whole-database snapshot on disk.
//
// A checkpoint serializes the authoritative Database at epoch E —
// relation names, arities, and rows in insertion order, with symbol
// values spelled out as strings (re-interned on load, so recovered
// symbol ids are fresh but resolve to identical strings). The file is:
//
//   "GLCKPT1\n"  8-byte magic
//   payload      u64 epoch; u32 n_relations;
//                per relation: str name, u32 arity, u64 n_rows,
//                rows as tagged values (u8 kind; i64 | f64-bits | str)
//   u32          crc32(payload)
//
// The writer goes temp-file + fsync + atomic rename, so a crash (or an
// injected `checkpoint.write` fault) mid-checkpoint leaves the previous
// valid checkpoint untouched — there is never a moment with no valid
// checkpoint on disk once one has been written. After the rename the
// server truncates the WAL behind it; a crash in between is benign
// because recovery skips WAL records with epoch <= the checkpoint's.
//
// NOT in a checkpoint (rebuilt cold after recovery): indexes, CSR
// snapshots, result-cache entries, and column statistics — all derived
// state keyed by stamps that do not survive a process restart.

#ifndef GRAPHLOG_DURABILITY_CHECKPOINT_H_
#define GRAPHLOG_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "gov/fault_injection.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace graphlog::durability {

/// \brief Serializes `db` at `epoch` to `path` via temp-file + atomic
/// rename. The `checkpoint.write` fault site is consulted before any
/// byte is written; metrics: checkpoint.writes / checkpoint.bytes /
/// checkpoint.write_ns.
Status WriteCheckpoint(const std::string& path, const storage::Database& db,
                       uint64_t epoch,
                       gov::FaultInjector* faults = nullptr,
                       obs::MetricsRegistry* metrics = nullptr);

/// \brief A checkpoint loaded back from disk.
struct CheckpointData {
  bool found = false;  ///< false: no checkpoint file (fresh directory)
  uint64_t epoch = 0;
  storage::Database db;
};

/// \brief Loads the checkpoint at `path`. A missing file is not an error
/// (found = false); a present file that fails the magic, structure, or
/// checksum is kCorruptedLog.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace graphlog::durability

#endif  // GRAPHLOG_DURABILITY_CHECKPOINT_H_
