// Write-ahead log of committed WriteBatches.
//
// The server's WriteBatch op list (kFacts/kInsert/kLoadFile/kClear, with
// kLoadFile contents captured at commit) is already a logical redo log in
// memory; this file makes it survive a crash. The log is a headerless
// sequence of records, each framing one committed batch:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = u64 committed_epoch
//           + encoded ops (kind, text, args)
//           + captured kLoadFile contents, in op order
//
// kLoadFile records replay from the bytes the original commit read —
// recovery NEVER re-reads a path from disk, so files edited or deleted
// after the commit cannot change what replays (the same contract session
// fast-forward already honors).
//
// Crash anatomy, applied when scanning the log (ScanWal):
//
//   * A record whose declared extent runs past EOF, or a trailing
//     fragment shorter than a header, is a TORN TAIL — the crash
//     interrupted the final append. Recovery replays the prefix and
//     truncates the tear.
//   * A complete record with a bad checksum that ends exactly at EOF is
//     also classified torn (a zeroed-out tail block from a crashed
//     in-place write looks like this); same treatment.
//   * A complete record with a bad checksum FOLLOWED BY MORE BYTES cannot
//     be a crash artifact of an append-only log — it is interior
//     corruption. The scan fails with kCorruptedLog and nothing is
//     applied; a half-replayed log is worse than a refused one.
//
// fsync policy (fsync_policy.h) decides when appended records reach
// stable storage; under kAlways the commit path syncs before the epoch
// publishes, so every acknowledged commit survives any crash.

#ifndef GRAPHLOG_DURABILITY_WAL_H_
#define GRAPHLOG_DURABILITY_WAL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "durability/fsync_policy.h"
#include "gov/fault_injection.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace graphlog::durability {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len`
/// bytes. Crc32("123456789") == 0xCBF43926, the standard check value.
uint32_t Crc32(const void* data, size_t len);

/// \brief Encodes/decodes a WriteBatch (+ captured file contents) to the
/// WAL payload wire format. Befriended by WriteBatch for op access.
struct BatchCodec {
  /// Appends the encoding of `batch` to `out`. `files` carries the raw
  /// text captured at commit for each kLoadFile op, in op order.
  static Status Encode(const WriteBatch& batch,
                       const std::vector<std::string>& files,
                       std::string* out);
  /// Inverse of Encode; `data` must be exactly one encoded batch.
  static Status Decode(std::string_view data, WriteBatch* batch,
                       std::vector<std::string>* files);
};

/// \brief One committed batch read back from the log.
struct WalRecord {
  uint64_t epoch = 0;
  WriteBatch batch;
  std::vector<std::string> files;  ///< captured kLoadFile contents
};

/// \brief Result of scanning a log file (see crash anatomy above).
struct WalScan {
  std::vector<WalRecord> records;  ///< the valid committed prefix
  /// Bytes of the valid prefix; a torn log truncates to this offset.
  uint64_t valid_prefix_bytes = 0;
  /// Total bytes the file held when scanned.
  uint64_t file_bytes = 0;
  /// True when bytes past the valid prefix were classified as a torn
  /// tail (to be truncated), false when the file ended exactly on a
  /// record boundary.
  bool torn = false;
};

/// \brief Reads every record of the log at `path`, classifying any
/// malformed suffix. A missing file scans as empty. Interior corruption
/// fails with kCorruptedLog and NO records (never a partial prefix whose
/// end was chosen by corruption rather than a crash).
Result<WalScan> ScanWal(const std::string& path);

/// \brief Truncates the file at `path` to `size` bytes (recovery's
/// torn-tail repair).
Status TruncateFile(const std::string& path, uint64_t size);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// kGroupCommit: at most one fsync per window.
  uint64_t group_window_ms = 5;
  /// wal.appends / wal.fsyncs / wal.bytes_appended / wal.append_ns.
  obs::MetricsRegistry* metrics = nullptr;
  /// Sites wal.append (before the record write) and wal.fsync (before
  /// the sync); an injected failure surfaces to the commit path before
  /// the epoch publishes.
  gov::FaultInjector* faults = nullptr;
};

/// \brief Appender over one log file. Single-writer (the server calls it
/// under its commit lock); opening is append-at-end, so recovery must
/// scan + truncate the file first.
class Wal {
 public:
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           WalOptions opts = {});
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief Frames and appends one committed batch, then syncs per the
  /// fsync policy. On any failure (injected or real) the log is restored
  /// to its pre-append length so a half-written record never lingers for
  /// the next append to bury mid-file.
  Status Append(uint64_t epoch, const WriteBatch& batch,
                const std::vector<std::string>& files);

  /// \brief Forces an fsync regardless of policy (checkpoint barrier).
  Status Sync();

  /// \brief Empties the log (checkpoint truncates the WAL behind it).
  Status Reset();

  /// \brief Current end-of-log offset == bytes of committed records.
  uint64_t tail_offset() const { return tail_; }

  const std::string& path() const { return path_; }
  FsyncPolicy fsync_policy() const { return opts_.fsync; }
  void set_fsync_policy(FsyncPolicy p) { opts_.fsync = p; }

 private:
  Wal(std::string path, int fd, uint64_t tail, WalOptions opts);
  Status DoSync();

  std::string path_;
  int fd_ = -1;
  uint64_t tail_ = 0;
  WalOptions opts_;
  std::chrono::steady_clock::time_point last_sync_;
  bool sync_pending_ = false;  ///< unsynced bytes under kGroupCommit
};

}  // namespace graphlog::durability

#endif  // GRAPHLOG_DURABILITY_WAL_H_
