// FsyncPolicy: how eagerly the write-ahead log reaches stable storage.
//
// Split into its own dependency-free header so server/server.h can name
// the policy in DurabilityOptions without pulling the whole WAL in.

#ifndef GRAPHLOG_DURABILITY_FSYNC_POLICY_H_
#define GRAPHLOG_DURABILITY_FSYNC_POLICY_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace graphlog::durability {

/// \brief When a committed WAL record is fsync'd.
///
/// The durability contract per policy (DESIGN.md §13):
///   kAlways      — fsync before the commit publishes its epoch; a
///                  committed write survives any crash.
///   kGroupCommit — fsync at most once per window; commits inside the
///                  window publish before the sync, so a crash can lose
///                  up to one window of the newest commits (the surviving
///                  prefix is still exactly a committed prefix).
///   kOff         — never fsync (OS page cache only); a crash can lose
///                  any unsynced suffix, never consistency.
enum class FsyncPolicy : uint8_t {
  kAlways = 0,
  kGroupCommit = 1,
  kOff = 2,
};

inline std::string_view FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroupCommit:
      return "group";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

inline Result<FsyncPolicy> ParseFsyncPolicy(std::string_view s) {
  if (s == "always") return FsyncPolicy::kAlways;
  if (s == "group") return FsyncPolicy::kGroupCommit;
  if (s == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" + std::string(s) +
                                 "' (expected always|group|off)");
}

}  // namespace graphlog::durability

#endif  // GRAPHLOG_DURABILITY_FSYNC_POLICY_H_
