// Provenance: why is this tuple in the answer?
//
// The Section 5 prototype lets the user view answers "one by one"; the
// modern equivalent of that inspection is an explanation. When evaluation
// runs with a ProvenanceStore attached (EvalOptions::provenance), every
// *first* derivation of a tuple records the rule that fired and the body
// facts that matched. ExplainFact then renders the derivation tree:
//
//   tc(a, c)
//   . by rule: tc(X, Y) :- e(X, Z), tc(Z, Y).
//   . e(a, b)   [edb]
//   . tc(b, c)
//   . . by rule: tc(X, Y) :- e(X, Y).
//   . . e(b, c)   [edb]

#ifndef GRAPHLOG_EVAL_PROVENANCE_H_
#define GRAPHLOG_EVAL_PROVENANCE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"
#include "storage/tuple.h"

namespace graphlog::eval {

/// \brief The first derivation recorded for a tuple.
struct Justification {
  int rule_index = -1;  ///< index into the evaluated Program's rules
  std::vector<std::pair<Symbol, storage::Tuple>> premises;
};

/// \brief Records one justification per derived (predicate, tuple).
class ProvenanceStore {
 public:
  /// \brief Records the first justification; later ones are ignored
  /// (the first derivation is the canonical explanation). The stored
  /// rule index is offset by set_rule_offset(), letting a driver that
  /// runs several programs against one store (the GraphLog engine, one
  /// program per query graph) keep indexes valid into the concatenation.
  void Record(Symbol pred, const storage::Tuple& tuple, Justification j) {
    j.rule_index += rule_offset_;
    auto& per_pred = facts_[pred];
    per_pred.try_emplace(tuple, std::move(j));
  }

  /// \brief Offset added to subsequently recorded rule indexes.
  void set_rule_offset(int offset) { rule_offset_ = offset; }

  /// \brief The justification, or nullptr for EDB facts / unknown tuples.
  const Justification* Find(Symbol pred, const storage::Tuple& tuple) const {
    auto it = facts_.find(pred);
    if (it == facts_.end()) return nullptr;
    auto jt = it->second.find(tuple);
    return jt == it->second.end() ? nullptr : &jt->second;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& [_, m] : facts_) n += m.size();
    return n;
  }

 private:
  std::map<Symbol,
           std::unordered_map<storage::Tuple, Justification,
                              storage::TupleHash>>
      facts_;
  int rule_offset_ = 0;
};

/// \brief Renders the derivation tree of `fact` (a ground atom like
/// "tc(a, c)", parsed against `syms`). Tuples without a recorded
/// justification print as "[edb]". Shared subderivations deeper than
/// `max_depth` are elided with "...".
Result<std::string> ExplainFact(const ProvenanceStore& store,
                                const datalog::Program& program,
                                const SymbolTable& syms,
                                std::string_view fact_text,
                                int max_depth = 16);

}  // namespace graphlog::eval

#endif  // GRAPHLOG_EVAL_PROVENANCE_H_
