// Arithmetic evaluation over Values.

#ifndef GRAPHLOG_EVAL_ARITH_H_
#define GRAPHLOG_EVAL_ARITH_H_

#include "common/value.h"
#include "datalog/ast.h"

namespace graphlog::eval {

/// \brief Applies `op` to numeric values. Integer pairs stay integral
/// (C++ semantics for / and %); any double operand widens the result.
///
/// Returns false — meaning "the builtin literal fails" — on non-numeric
/// operands, division by zero, or % with a non-integer operand. Failing
/// rather than erroring matches the semantics of builtins as filters.
bool ApplyArith(datalog::ArithOp op, const Value& lhs, const Value& rhs,
                Value* out);

}  // namespace graphlog::eval

#endif  // GRAPHLOG_EVAL_ARITH_H_
