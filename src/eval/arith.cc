#include "eval/arith.h"

namespace graphlog::eval {

bool ApplyArith(datalog::ArithOp op, const Value& lhs, const Value& rhs,
                Value* out) {
  using datalog::ArithOp;
  if (!lhs.is_numeric() || !rhs.is_numeric()) return false;
  if (lhs.is_int() && rhs.is_int()) {
    int64_t a = lhs.AsInt(), b = rhs.AsInt();
    switch (op) {
      case ArithOp::kAdd:
        *out = Value::Int(a + b);
        return true;
      case ArithOp::kSub:
        *out = Value::Int(a - b);
        return true;
      case ArithOp::kMul:
        *out = Value::Int(a * b);
        return true;
      case ArithOp::kDiv:
        if (b == 0) return false;
        *out = Value::Int(a / b);
        return true;
      case ArithOp::kMod:
        if (b == 0) return false;
        *out = Value::Int(a % b);
        return true;
    }
    return false;
  }
  double a = lhs.ToDouble(), b = rhs.ToDouble();
  switch (op) {
    case ArithOp::kAdd:
      *out = Value::Double(a + b);
      return true;
    case ArithOp::kSub:
      *out = Value::Double(a - b);
      return true;
    case ArithOp::kMul:
      *out = Value::Double(a * b);
      return true;
    case ArithOp::kDiv:
      if (b == 0.0) return false;
      *out = Value::Double(a / b);
      return true;
    case ArithOp::kMod:
      return false;  // % requires integers
  }
  return false;
}

}  // namespace graphlog::eval
