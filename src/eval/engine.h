// The stratified bottom-up evaluation engine.
//
// Evaluates a stratified Datalog program (negation + aggregates) against a
// Database, materializing every IDB predicate as a relation. Within each
// stratum, recursive rules run to fixpoint either naively (recompute
// everything per round) or semi-naively (differential: one occurrence of a
// recursive subgoal reads the previous round's delta). Aggregate rules are
// evaluated once per stratum — stratification guarantees their inputs are
// complete.

#ifndef GRAPHLOG_EVAL_ENGINE_H_
#define GRAPHLOG_EVAL_ENGINE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "datalog/ast.h"
#include "storage/database.h"

namespace graphlog::obs {
class Tracer;           // obs/trace.h
class MetricsRegistry;  // obs/metrics.h
struct QueryProfile;    // obs/profile.h
}

namespace graphlog::gov {
struct GovernorContext;  // gov/governor.h
}

namespace graphlog::columnar {
class CsrCache;  // columnar/csr_cache.h
}

namespace graphlog::eval {

/// \brief Evaluation strategy for recursive strata.
enum class Strategy : uint8_t {
  kNaive,      ///< recompute all rules each round until no new tuples
  kSemiNaive,  ///< differential evaluation on deltas
};


class ProvenanceStore;  // eval/provenance.h

/// \brief Knobs for Evaluate().
struct EvalOptions {
  Strategy strategy = Strategy::kSemiNaive;
  /// When set, the first derivation of every IDB tuple is recorded here
  /// (rule index + matched body facts); see eval/provenance.h.
  ProvenanceStore* provenance = nullptr;
  /// Order joins by estimated cost using the sizes of already-computed
  /// relations (rules are compiled per stratum, so lower-strata IDB sizes
  /// are real). Disable to get the syntactic bound-count ordering.
  bool cardinality_join_ordering = true;
  /// Safety valve for runaway recursion in tests; 0 = unlimited.
  uint64_t max_iterations = 0;
  /// Worker lanes for rule execution: 1 (default) is the serial path, 0
  /// resolves to hardware concurrency, N > 1 uses N lanes. Join plans
  /// partition their driver relation across lanes with per-partition
  /// derivation buffers merged in partition order, so relation contents,
  /// insertion order, provenance, and stats are bit-identical across all
  /// settings.
  unsigned num_threads = 1;
  /// When set, the engine records a span per stratification, stratum, and
  /// fixpoint round (delta sizes, rule firings, join-plan choice, per-lane
  /// busy times) plus run-level counters into this tracer. Null (the
  /// default) is the zero-overhead path: every instrumentation site is a
  /// single pointer test. See obs/trace.h.
  obs::Tracer* tracer = nullptr;
  /// When set, the engine folds its cumulative counters (`eval.runs`,
  /// `eval.rule_firings`, `eval.tuples_derived`, index maintenance) and
  /// per-stratum/per-round distributions (`eval.stratum_rounds`,
  /// `eval.delta_rows`) into this process-wide registry at the same sites
  /// the tracer instruments. Null (the default) costs one pointer test;
  /// updates are per-round/per-run, never per-tuple. See obs/metrics.h.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, the engine is governed: cancellation and the deadline are
  /// polled per pool work item and at every fixpoint-round boundary,
  /// resource budgets are checked at round boundaries (deterministic
  /// across num_threads), and armed fault-injection points fire. On a
  /// kCancelled / kDeadlineExceeded / kBudgetExceeded abort the engine
  /// rolls the Database back to its pre-run state (created relations
  /// removed, pre-existing ones truncated to their pre-run size) — no
  /// partially-merged rounds leak. With budget.return_partial, a
  /// rows/rounds/delta/bytes trip instead stops at the round boundary
  /// and returns the partial fixpoint with EvalStats::truncated set.
  /// Null (the default) costs one pointer test per site. See
  /// gov/governor.h.
  const gov::GovernorContext* governor = nullptr;
  /// Columnar join path: serve probes over binary (arity-2) relations
  /// from CSR adjacency snapshots (columnar/csr.h) instead of hash
  /// indexes, and skip building those hash indexes. CSR spans preserve
  /// posting-list (row insertion) order, so derived rows, insertion
  /// order, provenance, and all logical stats are bit-identical to the
  /// row path; only index_builds/index_appends differ (the physical
  /// index work the columnar path exists to avoid). Steps the CSR layout
  /// cannot serve (scans, wider relations) transparently stay on the
  /// row path.
  bool columnar = false;
  /// Cache of CSR snapshots reused across runs (invalidation by
  /// data_generation; see columnar/csr_cache.h). Null with columnar set
  /// means a fresh per-run cache — correct, but rebuilds CSRs every run.
  columnar::CsrCache* csr_cache = nullptr;
  /// When set, the engine fills a plan-level execution profile (EXPLAIN
  /// ANALYZE): per rule and per plan step, probes issued, rows matched,
  /// dedup-rejected rows, and per-fixpoint-round deltas, plus per-rule
  /// wall-clock in the profile's timings section. Logical counters follow
  /// the EvalStats merge discipline — accumulated per (task, partition)
  /// and folded in partition order — so they are bit-identical across
  /// num_threads and columnar on/off. The profile's rules vector is sized
  /// to the program's rule count. Null (the default) is the zero-overhead
  /// path. See obs/profile.h.
  obs::QueryProfile* profile = nullptr;
};

/// \brief Counters reported by an evaluation.
struct EvalStats {
  uint64_t iterations = 0;      ///< total fixpoint rounds across strata
  uint64_t rule_firings = 0;    ///< satisfying assignments enumerated
  uint64_t tuples_derived = 0;  ///< novel tuples inserted into IDBs
  uint64_t strata = 0;
  uint64_t index_builds = 0;    ///< full hash-index builds across relations
  uint64_t index_appends = 0;   ///< incremental index row appends
  /// Peak transient working set of the semi-naive loop: the largest total
  /// delta-relation row count (resp. estimated bytes, see
  /// Relation::MemoryBytes) observed at any round start. Deterministic
  /// across num_threads like every other field.
  uint64_t peak_delta_rows = 0;
  uint64_t peak_delta_bytes = 0;
  /// True when a governed run stopped early at a round boundary because a
  /// resource budget tripped with ResourceBudget::return_partial set. The
  /// materialized IDB relations then hold the partial fixpoint computed
  /// so far — deterministic (bit-identical rows and insertion order
  /// across num_threads) because rows/rounds/bytes budgets are checked
  /// against deterministic quantities at deterministic points.
  bool truncated = false;
  /// Which budget tripped, e.g. "max_rounds at eval.round (stratum 1,
  /// round 10)"; empty unless truncated.
  std::string truncated_by;

  /// \brief Adds every counter of `other` into this one (peaks take the
  /// max — the merged value is the peak over the combined run). The single
  /// audited accumulation point for drivers that sum stats over multiple
  /// engine runs (e.g. one per query graph) — field-by-field addition at
  /// call sites silently dropped counters when new fields were added.
  void Merge(const EvalStats& other) {
    iterations += other.iterations;
    rule_firings += other.rule_firings;
    tuples_derived += other.tuples_derived;
    strata += other.strata;
    index_builds += other.index_builds;
    index_appends += other.index_appends;
    if (other.peak_delta_rows > peak_delta_rows) {
      peak_delta_rows = other.peak_delta_rows;
    }
    if (other.peak_delta_bytes > peak_delta_bytes) {
      peak_delta_bytes = other.peak_delta_bytes;
    }
    truncated |= other.truncated;
    if (truncated_by.empty()) truncated_by = other.truncated_by;
  }
};

/// \brief Evaluates `prog` against `db` (checking arity consistency,
/// safety, and stratifiability first). IDB relations are created or
/// extended in `db`. Returns evaluation statistics.
Result<EvalStats> Evaluate(const datalog::Program& prog,
                           storage::Database* db,
                           const EvalOptions& options = {});

/// \brief Convenience: parse + evaluate program text against `db`.
///
/// \deprecated For front-door use prefer graphlog::Run() with
/// QueryRequest::Datalog (graphlog/api.h), which adds tracing, metrics,
/// and EXPLAIN; this remains the engine-level entry the API builds on.
Result<EvalStats> EvaluateText(std::string_view program_text,
                               storage::Database* db,
                               const EvalOptions& options = {});

}  // namespace graphlog::eval

#endif  // GRAPHLOG_EVAL_ENGINE_H_
