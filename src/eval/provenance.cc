#include "eval/provenance.h"

#include "common/strings.h"
#include "datalog/parser.h"

namespace graphlog::eval {

using storage::Tuple;

namespace {

std::string RenderFact(Symbol pred, const Tuple& t,
                       const SymbolTable& syms) {
  std::vector<std::string> parts;
  parts.reserve(t.size());
  for (const Value& v : t) parts.push_back(v.ToString(syms));
  return syms.name(pred) + "(" + Join(parts, ", ") + ")";
}

void Render(const ProvenanceStore& store, const datalog::Program& program,
            const SymbolTable& syms, Symbol pred, const Tuple& tuple,
            int depth, int max_depth, const std::string& indent,
            std::string* out) {
  *out += indent + RenderFact(pred, tuple, syms);
  const Justification* j = store.Find(pred, tuple);
  if (j == nullptr) {
    *out += "   [edb]\n";
    return;
  }
  *out += "\n";
  if (depth >= max_depth) {
    *out += indent + ". ...\n";
    return;
  }
  if (j->rule_index >= 0 &&
      j->rule_index < static_cast<int>(program.rules.size())) {
    *out += indent + ". by rule: " +
            program.rules[j->rule_index].ToString(syms) + "\n";
  }
  for (const auto& [p, t] : j->premises) {
    Render(store, program, syms, p, t, depth + 1, max_depth, indent + ". ",
           out);
  }
}

}  // namespace

Result<std::string> ExplainFact(const ProvenanceStore& store,
                                const datalog::Program& program,
                                const SymbolTable& syms,
                                std::string_view fact_text, int max_depth) {
  std::string text(Trim(fact_text));
  if (text.empty()) return Status::InvalidArgument("empty fact");
  if (text.back() != '.') text += '.';

  // Parse with a scratch table, then map names into `syms` via lookup so
  // the caller's table is not mutated by typos.
  SymbolTable scratch;
  GRAPHLOG_ASSIGN_OR_RETURN(datalog::Rule r,
                            datalog::ParseRule(text, &scratch));
  if (!r.is_fact() || r.head.has_aggregates()) {
    return Status::InvalidArgument("expected a ground fact");
  }
  Symbol pred = syms.Lookup(scratch.name(r.head.predicate));
  if (pred == kNoSymbol) {
    return Status::NotFound("unknown predicate in fact");
  }
  Tuple tuple;
  tuple.reserve(r.head.arity());
  for (const datalog::HeadTerm& h : r.head.args) {
    if (!h.term.is_constant()) {
      return Status::InvalidArgument("expected a ground fact");
    }
    Value v = h.term.value();
    if (v.is_symbol()) {
      Symbol s = syms.Lookup(scratch.name(v.AsSymbol()));
      if (s == kNoSymbol) {
        return Status::NotFound("unknown constant in fact");
      }
      v = Value::Sym(s);
    }
    tuple.push_back(v);
  }

  std::string out;
  Render(store, program, syms, pred, tuple, 0, max_depth, "", &out);
  return out;
}

}  // namespace graphlog::eval
