#include "eval/engine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "columnar/csr_cache.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/compiled_rule.h"
#include "eval/provenance.h"
#include "exec/thread_pool.h"
#include "gov/fault_injection.h"
#include "gov/governor.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/tuple.h"

namespace graphlog::eval {

using datalog::AggKind;
using datalog::Program;
using datalog::Rule;
using datalog::Stratification;
using storage::Database;
using storage::Relation;
using storage::Tuple;
using storage::TupleHash;

namespace {

/// Accumulator for one aggregate column of one group.
struct AggAccum {
  int64_t count = 0;
  double dsum = 0.0;
  int64_t isum = 0;
  bool any_double = false;
  bool has_minmax = false;
  Value min, max;

  void Add(const Value& v) {
    ++count;
    if (v.is_numeric()) {
      if (v.is_double()) {
        any_double = true;
        dsum += v.AsDouble();
      } else {
        isum += v.AsInt();
      }
    }
    if (!has_minmax) {
      min = max = v;
      has_minmax = true;
    } else {
      if (datalog::EvalCmp(datalog::CmpOp::kLt, v, min)) min = v;
      if (datalog::EvalCmp(datalog::CmpOp::kGt, v, max)) max = v;
    }
  }

  Value Result(AggKind kind) const {
    switch (kind) {
      case AggKind::kCount:
        return Value::Int(count);
      case AggKind::kSum:
        return any_double ? Value::Double(dsum + static_cast<double>(isum))
                          : Value::Int(isum);
      case AggKind::kMin:
        return min;
      case AggKind::kMax:
        return max;
      case AggKind::kAvg: {
        double total = dsum + static_cast<double>(isum);
        return Value::Double(count == 0 ? 0.0 : total / count);
      }
    }
    return Value::Int(0);
  }
};

/// Below this many driver rows a rule execution is not split further;
/// partition bookkeeping would outweigh the join work.
constexpr size_t kMinRowsPerPartition = 128;

/// Shared evaluation state for one program run.
class Engine {
 public:
  Engine(const Program& prog, Database* db, const EvalOptions& options)
      : prog_(prog),
        db_(db),
        options_(options),
        csr_cache_(options.csr_cache != nullptr ? options.csr_cache
                                                : &local_csr_cache_) {}

  Result<EvalStats> Run() {
    const SymbolTable& syms = db_->symbols();
    Stratification strat;
    {
      obs::SpanGuard span(options_.tracer, "stratify");
      GRAPHLOG_RETURN_NOT_OK(datalog::CheckArities(prog_, syms));
      GRAPHLOG_RETURN_NOT_OK(datalog::CheckSafety(prog_, syms));
      GRAPHLOG_ASSIGN_OR_RETURN(strat, datalog::Stratify(prog_, syms));
      span.AddAttr("rules", static_cast<int64_t>(prog_.rules.size()));
      span.AddAttr("strata", strat.num_strata);
    }
    stats_.strata = strat.num_strata;
    if (options_.profile != nullptr) {
      options_.profile->rules.resize(prog_.rules.size());
    }

    unsigned lanes =
        exec::ThreadPool::ResolveParallelism(options_.num_threads);
    if (lanes > 1) pool_ = std::make_unique<exec::ThreadPool>(lanes);

    // Index-maintenance counters are reported as this run's delta over
    // whatever the database accumulated before (plus the short-lived
    // delta relations absorbed by the semi-naive loop).
    uint64_t base_builds = 0, base_appends = 0;
    for (const auto& [_, rel] : db_->relations()) {
      base_builds += rel.index_builds();
      base_appends += rel.index_appends();
    }

    // Rollback baseline: the pre-run size of every head relation (or
    // "created by this run"), captured before the Declare loop below. A
    // governed abort — cancellation, deadline, strict budget trip, or an
    // injected lane failure — restores exactly this state, so no
    // partially-computed stratum leaks into the Database.
    for (const Rule& r : prog_.rules) {
      const Symbol head = r.head.predicate;
      if (baseline_.count(head) > 0) continue;
      const Relation* existing = db_->Find(head);
      baseline_.emplace(head,
                        existing == nullptr ? kCreatedByRun : existing->size());
    }

    // Check IDB arity against any pre-existing relations and declare them.
    for (const Rule& r : prog_.rules) {
      GRAPHLOG_ASSIGN_OR_RETURN(Relation * rel,
                                db_->Declare(r.head.predicate,
                                             r.head.arity()));
      (void)rel;
    }

    for (size_t gi = 0; gi < strat.rule_groups.size(); ++gi) {
      if (truncated_) break;  // budget tripped with return_partial
      obs::SpanGuard span(options_.tracer, "stratum");
      span.AddAttr("index", static_cast<int64_t>(gi));
      span.AddAttr("rules",
                   static_cast<int64_t>(strat.rule_groups[gi].size()));
      const uint64_t rounds_before = stats_.iterations;
      stratum_ = static_cast<int64_t>(gi);
      prof_round_ = 0;
      Status st = RunStratum(strat.rule_groups[gi]);
      if (st.ok() && !truncated_) {
        // Derivations of a stratum's final productive round are only seen
        // by the *next* round's boundary check; settle the run-wide
        // budgets here so the last round cannot slip past them.
        st = CheckRunBudgets("eval.round");
      }
      if (!st.ok()) {
        Rollback();
        return st;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->histogram("eval.stratum_rounds")
            ->Observe(static_cast<int64_t>(stats_.iterations -
                                           rounds_before));
      }
    }
    stats_.truncated = truncated_;
    stats_.truncated_by = truncated_by_;

    for (const auto& [_, rel] : db_->relations()) {
      stats_.index_builds += rel.index_builds();
      stats_.index_appends += rel.index_appends();
    }
    stats_.index_builds -= base_builds;
    stats_.index_appends -= base_appends;
    if (options_.tracer != nullptr) {
      obs::Metrics& m = options_.tracer->metrics();
      m.Count("eval.iterations", stats_.iterations);
      m.Count("eval.rule_firings", stats_.rule_firings);
      m.Count("eval.tuples_derived", stats_.tuples_derived);
      m.Count("eval.strata", stats_.strata);
      m.Count("eval.index_builds", stats_.index_builds);
      m.Count("eval.index_appends", stats_.index_appends);
    }
    if (options_.metrics != nullptr) {
      // One registration + one add per counter per run; the cumulative
      // twins of the per-run tracer metrics above.
      obs::MetricsRegistry& m = *options_.metrics;
      m.counter("eval.runs")->Increment();
      m.counter("eval.iterations")->Add(stats_.iterations);
      m.counter("eval.rule_firings")->Add(stats_.rule_firings);
      m.counter("eval.tuples_derived")->Add(stats_.tuples_derived);
      m.counter("eval.strata")->Add(stats_.strata);
      m.counter("eval.index_builds")->Add(stats_.index_builds);
      m.counter("eval.index_appends")->Add(stats_.index_appends);
    }
    return stats_;
  }

 private:
  const Relation* Resolve(Symbol pred) const { return db_->Find(pred); }

  /// Runs one stratum's rules to fixpoint.
  Status RunStratum(const std::vector<int>& rule_indices) {
    // Compile this stratum's rules now: lower strata are materialized, so
    // the cardinality oracle sees real sizes (and real column statistics)
    // for everything below.
    CardinalityFn card;
    if (options_.cardinality_join_ordering) {
      card = MakeDbCardinality(db_);
    }
    // The profile always gets estimates, even when cost-based ordering is
    // off — EXPLAIN ANALYZE compares the chosen plan against them.
    CardinalityFn est;
    if (options_.profile != nullptr) {
      est = card ? card : MakeDbCardinality(db_);
    }
    for (int i : rule_indices) {
      GRAPHLOG_ASSIGN_OR_RETURN(
          CompiledRule c,
          CompiledRule::Compile(prog_.rules[i], db_->symbols(), card));
      compiled_.erase(i);
      compiled_.emplace(i, std::move(c));
      if (options_.tracer != nullptr) {
        // The chosen join plan, on the enclosing stratum span. Plans are a
        // function of rule text + relation statistics, so this note is
        // deterministic across thread counts.
        options_.tracer->AddNote(
            "plan rule " + std::to_string(i),
            compiled_.at(i).PlanToString(db_->symbols()));
      }
      if (options_.profile != nullptr) {
        const CompiledRule& cr = compiled_.at(i);
        obs::RuleProfile& rp = options_.profile->rules[i];
        rp.rule = prog_.rules[i].ToString(db_->symbols());
        rp.plan = cr.PlanToString(db_->symbols());
        rp.steps.resize(cr.steps().size());
        for (size_t k = 0; k < cr.steps().size(); ++k) {
          const Step& s = cr.steps()[k];
          rp.steps[k].op = cr.StepToString(k, db_->symbols());
          if (s.kind == Step::Kind::kScanProbe ||
              s.kind == Step::Kind::kNegCheck) {
            rp.steps[k].estimated_rows = est(s.pred, s.probe_cols);
          }
        }
      }
    }

    // IDB predicates defined in this stratum.
    std::set<Symbol> local_idbs;
    for (int i : rule_indices) {
      local_idbs.insert(prog_.rules[i].head.predicate);
    }

    std::vector<int> aggregate_rules, normal_rules;
    for (int i : rule_indices) {
      if (prog_.rules[i].head.has_aggregates()) {
        aggregate_rules.push_back(i);
      } else {
        normal_rules.push_back(i);
      }
    }

    // Aggregate rules first: stratification guarantees their bodies read
    // lower strata only, so one pass is complete.
    const uint64_t seed_firings_before = stats_.rule_firings;
    const uint64_t seed_derived_before = stats_.tuples_derived;
    for (int i : aggregate_rules) {
      GRAPHLOG_RETURN_NOT_OK(RunAggregateRule(i));
    }

    // Split normal rules into non-recursive (no local IDB in body) and
    // recursive.
    std::vector<int> base_rules, rec_rules;
    for (int i : normal_rules) {
      bool recursive = false;
      for (const auto& l : prog_.rules[i].body) {
        if (l.is_relational() && local_idbs.count(l.atom.predicate) > 0) {
          recursive = true;
          break;
        }
      }
      (recursive ? rec_rules : base_rules).push_back(i);
    }

    // One pass over non-recursive rules. Base rules never read a local
    // head (that would make them recursive), so they usually fan out as
    // one batch; RunTasksBatched still verifies independence.
    std::vector<RuleTask> base_tasks;
    base_tasks.reserve(base_rules.size());
    for (int i : base_rules) {
      base_tasks.push_back({i, kNoSymbol, -1});
    }
    GRAPHLOG_RETURN_NOT_OK(RunTasksBatched(base_tasks, nullptr, nullptr));
    // The stratum's one-shot pass (aggregates + non-recursive rules) is
    // the round log's round 0, so the log's firings/derived sums match
    // the run totals. No deltas exist yet: it seeds from lower strata.
    if (!aggregate_rules.empty() || !base_rules.empty()) {
      RecordRound(0, seed_firings_before, seed_derived_before);
    }
    if (rec_rules.empty()) return Status::OK();

    if (options_.strategy == Strategy::kNaive) {
      return NaiveFixpoint(rec_rules);
    }
    return SemiNaiveFixpoint(rec_rules, local_idbs);
  }

  Status NaiveFixpoint(const std::vector<int>& rec_rules) {
    bool changed = true;
    int64_t round = 0;
    uint64_t last_round_added = 0;
    while (changed) {
      // The naive strategy has no materialized deltas; the previous
      // round's novel tuples play that role for the boundary check.
      GRAPHLOG_RETURN_NOT_OK(CheckRoundBoundary(last_round_added, 0));
      if (truncated_) break;
      obs::SpanGuard span(options_.tracer, "round");
      span.AddAttr("round", round++);
      const uint64_t firings_before = stats_.rule_firings;
      const uint64_t derived_before = stats_.tuples_derived;
      GRAPHLOG_RETURN_NOT_OK(TickIteration());
      changed = false;
      const uint64_t round_delta = last_round_added;
      last_round_added = 0;
      for (int i : rec_rules) {
        GRAPHLOG_ASSIGN_OR_RETURN(
            size_t added, RunRuleOnce(i, kNoSymbol, -1, nullptr, nullptr));
        if (added > 0) changed = true;
        last_round_added += added;
      }
      span.AddAttr("firings",
                   static_cast<int64_t>(stats_.rule_firings - firings_before));
      span.AddAttr(
          "derived",
          static_cast<int64_t>(stats_.tuples_derived - derived_before));
      RecordRound(round_delta, firings_before, derived_before);
    }
    return Status::OK();
  }

  /// Appends one fixpoint round to the profile (no-op unless profiling).
  void RecordRound(uint64_t delta_rows, uint64_t firings_before,
                   uint64_t derived_before) {
    if (options_.profile == nullptr) return;
    obs::RoundProfile r;
    r.stratum = stratum_;
    r.round = prof_round_++;
    r.delta_rows = delta_rows;
    r.firings = stats_.rule_firings - firings_before;
    r.derived = stats_.tuples_derived - derived_before;
    options_.profile->rounds.push_back(r);
  }

  Status SemiNaiveFixpoint(const std::vector<int>& rec_rules,
                           const std::set<Symbol>& local_idbs) {
    // delta[p] starts as everything currently known for p. Relations are
    // emplaced empty and filled in place so no populated relation is ever
    // moved.
    std::map<Symbol, Relation> delta;
    for (Symbol p : local_idbs) {
      const Relation* full = db_->Find(p);
      auto [it, inserted] = delta.emplace(p, Relation(full->arity()));
      (void)inserted;
      it->second.InsertAll(*full);
    }

    bool any_delta = true;
    int64_t round = 0;
    while (any_delta) {
      // Combined delta at the round start: feeds the governed
      // round-boundary check (delta-rows/bytes budgets) and the
      // peak-working-set stats. O(local IDBs) per round.
      uint64_t delta_rows = 0;
      uint64_t delta_bytes = 0;
      for (const auto& [p, d] : delta) {
        delta_rows += d.size();
        delta_bytes += d.MemoryBytes();
      }
      GRAPHLOG_RETURN_NOT_OK(CheckRoundBoundary(delta_rows, delta_bytes));
      if (truncated_) break;
      obs::SpanGuard span(options_.tracer, "round");
      if (span.enabled()) {
        span.AddAttr("round", round++);
        for (const auto& [p, d] : delta) {
          span.AddAttr("delta." + db_->symbols().name(p),
                       static_cast<int64_t>(d.size()));
          options_.tracer->metrics().Observe(
              "eval.delta_rows", static_cast<int64_t>(d.size()));
        }
      }
      if (delta_rows > stats_.peak_delta_rows) {
        stats_.peak_delta_rows = delta_rows;
      }
      if (delta_bytes > stats_.peak_delta_bytes) {
        stats_.peak_delta_bytes = delta_bytes;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->histogram("eval.delta_rows")
            ->Observe(static_cast<int64_t>(delta_rows));
      }
      const uint64_t firings_before = stats_.rule_firings;
      const uint64_t derived_before = stats_.tuples_derived;
      GRAPHLOG_RETURN_NOT_OK(TickIteration());
      std::map<Symbol, Relation> next;
      for (Symbol p : local_idbs) {
        next.emplace(p, Relation(db_->Find(p)->arity()));
      }
      // The round's tasks in serial order: for each rule, one run per
      // occurrence of a local IDB in the body, with that occurrence
      // reading the delta.
      std::vector<RuleTask> round;
      for (int i : rec_rules) {
        const CompiledRule& c = compiled_.at(i);
        for (Symbol p : local_idbs) {
          for (int occ : c.OccurrencesOf(p)) {
            round.push_back({i, p, occ});
          }
        }
      }
      GRAPHLOG_RETURN_NOT_OK(RunTasksBatched(round, &delta, &next));
      RecordRound(delta_rows, firings_before, derived_before);
      any_delta = false;
      for (auto& [p, d] : next) {
        if (!d.empty()) any_delta = true;
      }
      // The old delta dies here; fold its index-maintenance counters into
      // the run stats first.
      for (auto& [p, d] : delta) AbsorbIndexStats(d);
      delta = std::move(next);
      span.AddAttr("firings",
                   static_cast<int64_t>(stats_.rule_firings - firings_before));
      span.AddAttr(
          "derived",
          static_cast<int64_t>(stats_.tuples_derived - derived_before));
    }
    for (auto& [p, d] : delta) AbsorbIndexStats(d);
    return Status::OK();
  }

  /// One unit of rule execution: rule `rule` with occurrence
  /// `delta_occurrence` of `delta_pred` reading the delta relation
  /// (kNoSymbol/-1 for a plain full run).
  struct RuleTask {
    int rule;
    Symbol delta_pred;
    int delta_occurrence;
  };

  /// Executes `tasks` in serial task order, fanning maximal prefixes of
  /// independent tasks across the pool. A task may run concurrently with
  /// the tasks before it only when it reads none of their head predicates:
  /// batch merges are deferred past the joins, and the serial engine would
  /// have made those writes visible. Delta-substituted occurrences read
  /// the (frozen) previous-round delta, not the head relation, so they do
  /// not count as reads of it.
  Status RunTasksBatched(const std::vector<RuleTask>& tasks,
                         std::map<Symbol, Relation>* delta,
                         std::map<Symbol, Relation>* next) {
    size_t b = 0;
    while (b < tasks.size()) {
      size_t e = b;
      std::set<Symbol> batch_heads;
      while (e < tasks.size()) {
        const RuleTask& task = tasks[e];
        const CompiledRule& c = compiled_.at(task.rule);
        bool reads_batch_head = false;
        for (const Step& s : c.steps()) {
          if (s.kind != Step::Kind::kScanProbe &&
              s.kind != Step::Kind::kNegCheck) {
            continue;
          }
          if (s.pred == task.delta_pred &&
              s.occurrence == task.delta_occurrence) {
            continue;  // reads the frozen delta, not the head relation
          }
          if (batch_heads.count(s.pred) > 0) {
            reads_batch_head = true;
            break;
          }
        }
        if (reads_batch_head) break;
        batch_heads.insert(c.head_predicate());
        ++e;
      }
      GRAPHLOG_ASSIGN_OR_RETURN(
          size_t added,
          RunTaskBatch({tasks.begin() + b, tasks.begin() + e}, delta, next));
      (void)added;
      b = e;
    }
    return Status::OK();
  }

  /// Executes one batch of mutually independent tasks: a read-only join
  /// fan-out (every index the plans touch is pre-built, and derivations
  /// go to per-(task, partition) buffers), then a serial merge in (task,
  /// partition) order. The merge order equals the serial engine's
  /// derivation order, so relation contents, insertion order, provenance,
  /// and stats are bit-identical to num_threads == 1. Returns the number
  /// of novel tuples.
  ///
  /// When the run is governed, every lane re-checks the cancellation
  /// token, deadline, and the `pool.task` injection point before each
  /// item it claims, so cancellation latency is bounded by one work item
  /// rather than one batch. A governed abort raises a stop flag the pool
  /// observes before each claim, the join still happens, and the batch
  /// returns *before* the merge phase — no partially-merged batch is ever
  /// visible in the Database (the caller then rolls back whole strata).
  /// The first error in item order wins, so the surfaced Status is
  /// independent of lane scheduling.
  Result<size_t> RunTaskBatch(const std::vector<RuleTask>& tasks,
                              std::map<Symbol, Relation>* delta,
                              std::map<Symbol, Relation>* next) {
    struct Item {
      size_t task;
      size_t part;
    };
    struct TaskState {
      const CompiledRule* rule = nullptr;
      const Relation* head_rel = nullptr;
      RelationResolver resolver;
      size_t parts = 1;
      std::vector<std::vector<Tuple>> derived;
      std::vector<std::vector<Justification>> just;
      std::vector<uint64_t> firings;
      // Columnar path: per-step CSR bindings (empty on the row path) and
      // the shared_ptrs keeping those snapshots alive for the batch.
      CsrBindings csrs;
      std::vector<std::shared_ptr<const columnar::Csr>> csr_owned;
      // Profiling buffers, one per partition (empty unless profiling):
      // step counters, head-dup drops, and wall time. Folded into the
      // profile during the serial merge, in partition order.
      std::vector<StepCounters> step_counts;
      std::vector<uint64_t> dup_head;
      std::vector<int64_t> wall_ns;
    };
    const bool track = options_.provenance != nullptr;
    obs::QueryProfile* profile = options_.profile;
    const size_t lanes = pool_ != nullptr ? pool_->parallelism() : 1;

    std::vector<TaskState> states(tasks.size());
    std::vector<Item> items;
    for (size_t t = 0; t < tasks.size(); ++t) {
      const RuleTask& task = tasks[t];
      TaskState& st = states[t];
      st.rule = &compiled_.at(task.rule);
      st.head_rel = db_->Find(st.rule->head_predicate());
      st.resolver = MakeResolver(task, delta);
      // Pre-build every index the plan probes so the fan-out below only
      // reads relation state. Unconditional (also on the serial path) so
      // index_builds is identical across thread counts. The columnar
      // path instead binds CSR snapshots to every probed binary step
      // (skipping those hash indexes entirely — that is its win) and
      // may fail on a csr.build fault, aborting the batch pre-merge.
      size_t driver_rows;
      if (options_.columnar) {
        GRAPHLOG_ASSIGN_OR_RETURN(
            driver_rows,
            PrepareColumnar(*st.rule, st.resolver, &st.csrs, &st.csr_owned));
      } else {
        driver_rows = PrepareIndexes(*st.rule, st.resolver);
      }
      st.parts =
          lanes <= 1
              ? 1
              : std::min(lanes, std::max<size_t>(
                                    1, driver_rows / kMinRowsPerPartition));
      st.derived.resize(st.parts);
      st.just.resize(st.parts);
      st.firings.assign(st.parts, 0);
      if (profile != nullptr) {
        st.step_counts.assign(st.parts,
                              StepCounters(st.rule->steps().size()));
        st.dup_head.assign(st.parts, 0);
        st.wall_ns.assign(st.parts, 0);
      }
      for (size_t p = 0; p < st.parts; ++p) items.push_back({t, p});
    }

    auto run_item = [&](const Item& item) {
      TaskState& st = states[item.task];
      const CompiledRule& c = *st.rule;
      std::vector<Tuple>& derived = st.derived[item.part];
      std::vector<Justification>& just = st.just[item.part];
      uint64_t& firings = st.firings[item.part];
      // Derivations already present in the head relation would be dropped
      // by the merge anyway (the head is frozen for the whole batch), as
      // would repeats within this partition; filtering here keeps the
      // serial merge phase small. Neither filter can change results: the
      // first surviving occurrence in (task, partition, position) order
      // is exactly the tuple the serial engine would have inserted.
      std::unordered_set<Tuple, TupleHash> seen;
      // Head-dup drops are deterministic (the head relation is frozen for
      // the batch); counted per partition when profiling. seen-drops are
      // not counted here — the partition split varies with num_threads;
      // the merge computes the thread-invariant residual instead.
      uint64_t* dup_head =
          st.dup_head.empty() ? nullptr : &st.dup_head[item.part];
      c.ExecutePartition(
          st.resolver,
          [&](const std::vector<Value>& slots) {
            ++firings;
            Tuple t = c.EmitHead(slots);
            if (st.head_rel->Contains(t)) {
              if (dup_head != nullptr) ++*dup_head;
              return;
            }
            if (!seen.insert(t).second) return;
            derived.push_back(std::move(t));
            if (track) {
              Justification j;
              j.rule_index = tasks[item.task].rule;
              j.premises = c.Premises(slots);
              just.push_back(std::move(j));
            }
          },
          item.part, st.parts, st.csrs.empty() ? nullptr : &st.csrs,
          st.step_counts.empty() ? nullptr : &st.step_counts[item.part]);
    };
    // Per-lane busy time: each worker accumulates into its own slot (no
    // synchronization needed), folded into the open span after the join.
    // Clock reads happen only when tracing or profiling, keeping the
    // disabled path hot. Profiling also attributes the item's time to its
    // task (the per-partition slot is exclusive to this item).
    const bool timed = options_.tracer != nullptr || profile != nullptr;
    std::vector<int64_t> lane_busy_ns;
    if (timed) lane_busy_ns.assign(lanes, 0);
    auto run_timed = [&](unsigned worker, size_t k) {
      const uint64_t t0 = obs::NowNs();
      run_item(items[k]);
      const int64_t dt = static_cast<int64_t>(obs::NowNs() - t0);
      lane_busy_ns[worker] += dt;
      TaskState& st = states[items[k].task];
      if (!st.wall_ns.empty()) st.wall_ns[items[k].part] += dt;
    };
    // Governed abort machinery: the first failing item (in item order)
    // records its Status and raises the stop flag; later lanes drain
    // without claiming more work.
    const gov::GovernorContext* gvn = options_.governor;
    std::atomic<bool> stop{false};
    std::mutex err_mu;
    Status lane_error = Status::OK();
    size_t err_item = items.size();
    auto record_error = [&](size_t k, Status st) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (k < err_item) {
        err_item = k;
        lane_error = std::move(st);
      }
      stop.store(true, std::memory_order_relaxed);
    };
    auto exec_item = [&](unsigned worker, size_t k) {
      if (gvn != nullptr) {
        if (stop.load(std::memory_order_relaxed)) return;
        Status st = gvn->Check("pool.task");
        if (!st.ok()) {
          record_error(k, std::move(st));
          return;
        }
      }
      if (timed) {
        run_timed(worker, k);
      } else {
        run_item(items[k]);
      }
    };
    if (pool_ != nullptr && items.size() > 1) {
      pool_->ParallelFor(items.size(), exec_item,
                         gvn != nullptr ? &stop : nullptr);
    } else {
      for (size_t k = 0; k < items.size(); ++k) exec_item(0, k);
    }
    // The pool has joined: err_item/lane_error are stable. Abort before
    // the merge so a failed batch leaves the head relations untouched.
    if (err_item < items.size()) return lane_error;
    if (options_.tracer != nullptr) {
      for (size_t lane = 0; lane < lane_busy_ns.size(); ++lane) {
        if (lane_busy_ns[lane] != 0) {
          options_.tracer->AddTiming("lane." + std::to_string(lane),
                                     lane_busy_ns[lane]);
        }
      }
    }

    // Merge in (task, partition) order — the serial derivation order.
    size_t added = 0;
    for (size_t t = 0; t < tasks.size(); ++t) {
      TaskState& st = states[t];
      const CompiledRule& c = *st.rule;
      Relation* head_rel = db_->FindMutable(c.head_predicate());
      Relation* next_rel = nullptr;
      if (next != nullptr) {
        auto it = next->find(c.head_predicate());
        if (it != next->end()) next_rel = &it->second;
      }
      size_t task_added = 0;
      uint64_t task_firings = 0;
      for (size_t p = 0; p < st.parts; ++p) {
        stats_.rule_firings += st.firings[p];
        task_firings += st.firings[p];
        std::vector<Tuple>& derived = st.derived[p];
        std::vector<Justification>& just = st.just[p];
        for (size_t k = 0; k < derived.size(); ++k) {
          Tuple& tup = derived[k];
          // When no delta copy is needed the tuple moves straight into the
          // head relation; otherwise it stays alive for the delta insert.
          bool novel = next_rel != nullptr ? head_rel->Insert(tup)
                                           : head_rel->Insert(std::move(tup));
          if (!novel) continue;
          ++task_added;
          ++stats_.tuples_derived;
          if (track) {
            options_.provenance->Record(c.head_predicate(),
                                        head_rel->rows().back(),
                                        std::move(just[k]));
          }
          if (next_rel != nullptr) next_rel->Insert(std::move(tup));
        }
      }
      added += task_added;
      if (profile != nullptr) {
        // Fold this task's buffers into its rule's profile, in partition
        // order — the EvalStats merge discipline, so every logical
        // counter below is bit-identical across num_threads.
        obs::RuleProfile& rp = profile->rules[tasks[t].rule];
        uint64_t task_dup_head = 0;
        for (size_t p = 0; p < st.parts; ++p) {
          for (size_t k = 0; k < st.step_counts[p].size(); ++k) {
            const StepCounter& sc = st.step_counts[p][k];
            rp.steps[k].invocations += sc.invocations;
            rp.steps[k].rows_out += sc.rows_out;
            rp.steps[k].csr_invocations += sc.csr_invocations;
          }
          task_dup_head += st.dup_head[p];
          rp.wall_ns += static_cast<uint64_t>(st.wall_ns[p]);
        }
        rp.firings += task_firings;
        rp.rows_emitted += task_added;
        rp.dup_in_head += task_dup_head;
        // Residual = partition-local `seen` drops + merge drops. The split
        // between those two sites depends on the partitioning, but their
        // sum does not: every firing either emits, pre-existed in the
        // head, or duplicated an earlier derivation of this round.
        rp.dup_in_round +=
            task_firings - task_dup_head - static_cast<uint64_t>(task_added);
      }
    }
    return added;
  }

  /// Single-task convenience wrapper around RunTaskBatch.
  Result<size_t> RunRuleOnce(int i, Symbol delta_pred, int delta_occurrence,
                             std::map<Symbol, Relation>* delta,
                             std::map<Symbol, Relation>* next) {
    return RunTaskBatch({{i, delta_pred, delta_occurrence}}, delta, next);
  }

  /// Resolves relations for one task: the designated delta occurrence
  /// reads the delta relation, everything else the database.
  RelationResolver MakeResolver(const RuleTask& task,
                                std::map<Symbol, Relation>* delta) {
    const Symbol dp = task.delta_pred;
    const int docc = task.delta_occurrence;
    return [this, dp, docc, delta](Symbol pred,
                                   int occurrence) -> const Relation* {
      if (pred == dp && occurrence == docc && delta != nullptr) {
        auto it = delta->find(pred);
        return it == delta->end() ? nullptr : &it->second;
      }
      return Resolve(pred);
    };
  }

  /// Builds every hash index the plan will probe and returns the row
  /// count of the plan's driver relation (0 when there is none).
  size_t PrepareIndexes(const CompiledRule& c,
                        const RelationResolver& resolver) {
    for (const Step& s : c.steps()) {
      if (s.kind != Step::Kind::kScanProbe &&
          s.kind != Step::Kind::kNegCheck) {
        continue;
      }
      if (s.probe_cols.empty()) continue;
      const Relation* rel = resolver(s.pred, s.occurrence);
      if (rel != nullptr && !rel->empty()) rel->BuildIndex(s.probe_cols);
    }
    const Step* d = c.driver();
    if (d == nullptr) return 0;
    const Relation* rel = resolver(d->pred, d->occurrence);
    return rel == nullptr ? 0 : rel->size();
  }

  void AbsorbIndexStats(const Relation& r) {
    stats_.index_builds += r.index_builds();
    stats_.index_appends += r.index_appends();
  }

  /// Columnar twin of PrepareIndexes: binds a CSR snapshot to every
  /// probed arity-2 step (their hash indexes are never built — the
  /// whole point of the path) and falls back to hash indexes for the
  /// steps CSR cannot serve. Snapshots come from the run's CsrCache
  /// (generation-validated reuse) except for uid-0 relations — the
  /// per-round deltas — which are built fresh, matching the row path's
  /// per-round delta index builds in cost. Returns driver rows; fails
  /// only on a csr.build governor fault.
  Result<size_t> PrepareColumnar(
      const CompiledRule& c, const RelationResolver& resolver,
      CsrBindings* csrs,
      std::vector<std::shared_ptr<const columnar::Csr>>* owned) {
    csrs->assign(c.steps().size(), nullptr);
    for (size_t k = 0; k < c.steps().size(); ++k) {
      const Step& s = c.steps()[k];
      if (s.kind != Step::Kind::kScanProbe &&
          s.kind != Step::Kind::kNegCheck) {
        continue;
      }
      if (s.probe_cols.empty()) continue;
      const Relation* rel = resolver(s.pred, s.occurrence);
      if (rel == nullptr || rel->empty()) continue;
      if (rel->arity() == 2) {
        GRAPHLOG_ASSIGN_OR_RETURN(
            std::shared_ptr<const columnar::Csr> csr,
            csr_cache_->Get(*rel, options_.metrics, options_.governor));
        (*csrs)[k] = csr.get();
        owned->push_back(std::move(csr));
      } else {
        rel->BuildIndex(s.probe_cols);
      }
    }
    const Step* d = c.driver();
    if (d == nullptr) return size_t{0};
    const Relation* rel = resolver(d->pred, d->occurrence);
    return rel == nullptr ? size_t{0} : rel->size();
  }

  Status RunAggregateRule(int i) {
    const CompiledRule& c = compiled_.at(i);
    Relation* head_rel = db_->FindMutable(c.head_predicate());
    const auto& head_args = c.head_args();
    obs::QueryProfile* profile = options_.profile;
    StepCounters agg_counts;
    if (profile != nullptr) agg_counts.resize(c.steps().size());
    const uint64_t firings_before = stats_.rule_firings;
    const uint64_t derived_before = stats_.tuples_derived;
    const uint64_t t0 = profile != nullptr ? obs::NowNs() : 0;

    // Group key = plain head args; aggregates accumulate per group over the
    // SET of distinct body bindings (set semantics: duplicate slot vectors
    // from pure-check subgoals are deduplicated first).
    std::unordered_set<Tuple, TupleHash> seen_bindings;
    std::map<Tuple, std::vector<AggAccum>, storage::TupleLess> groups;

    RelationResolver resolver = [&](Symbol pred, int) -> const Relation* {
      return Resolve(pred);
    };
    BindingSink sink = [&](const std::vector<Value>& slots) {
      ++stats_.rule_firings;
      if (!seen_bindings.insert(slots).second) return;
      Tuple key;
      for (const CompiledHeadArg& a : head_args) {
        if (!a.is_aggregate) key.push_back(a.source.Get(slots));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) {
        size_t naggs = 0;
        for (const CompiledHeadArg& a : head_args) {
          if (a.is_aggregate) ++naggs;
        }
        it->second.resize(naggs);
      }
      size_t ai = 0;
      for (const CompiledHeadArg& a : head_args) {
        if (!a.is_aggregate) continue;
        it->second[ai].Add(a.has_input ? a.source.Get(slots)
                                       : Value::Int(1));
        ++ai;
      }
    };
    c.ExecutePartition(resolver, sink, 0, 1, nullptr,
                       profile != nullptr ? &agg_counts : nullptr);

    for (const auto& [key, accums] : groups) {
      Tuple t;
      t.reserve(head_args.size());
      size_t ki = 0, ai = 0;
      for (const CompiledHeadArg& a : head_args) {
        if (a.is_aggregate) {
          t.push_back(accums[ai++].Result(a.agg));
        } else {
          t.push_back(key[ki++]);
        }
      }
      if (head_rel->Insert(std::move(t))) ++stats_.tuples_derived;
    }
    if (profile != nullptr) {
      // Aggregates transform firings into groups, so the join-rule dedup
      // identity does not apply; dup_in_round records the duplicate body
      // bindings the set semantics collapsed.
      obs::RuleProfile& rp = profile->rules[i];
      const uint64_t firings = stats_.rule_firings - firings_before;
      rp.firings += firings;
      rp.rows_emitted += stats_.tuples_derived - derived_before;
      rp.dup_in_round += firings - seen_bindings.size();
      for (size_t k = 0; k < agg_counts.size(); ++k) {
        rp.steps[k].invocations += agg_counts[k].invocations;
        rp.steps[k].rows_out += agg_counts[k].rows_out;
        rp.steps[k].csr_invocations += agg_counts[k].csr_invocations;
      }
      rp.wall_ns += obs::NowNs() - t0;
    }
    return Status::OK();
  }

  Status TickIteration() {
    ++stats_.iterations;
    if (options_.max_iterations != 0 &&
        stats_.iterations > options_.max_iterations) {
      return Status::Internal("evaluation exceeded max_iterations");
    }
    return Status::OK();
  }

  /// Restores every head relation to its pre-run state: relations this
  /// run created are removed, pre-existing ones truncated back to their
  /// baseline size (insertion order makes TruncateTo an exact undo). Only
  /// head relations can have been touched — EDB inputs are read-only to
  /// the engine.
  void Rollback() {
    for (const auto& [pred, base] : baseline_) {
      if (base == kCreatedByRun) {
        db_->Remove(pred);
      } else if (Relation* rel = db_->FindMutable(pred)) {
        rel->TruncateTo(base);
      }
    }
  }

  /// A tripped budget either marks the run truncated (return_partial:
  /// callers stop at the boundary and keep the partial fixpoint) or
  /// returns the strict kBudgetExceeded (Run() then rolls back).
  Status TripBudget(std::string_view budget, std::string_view site,
                    uint64_t observed, uint64_t limit) {
    if (options_.governor->budget.return_partial) {
      truncated_ = true;
      truncated_by_ = std::string(budget) + " at " + std::string(site) +
                      " (stratum " + std::to_string(stratum_) + ")";
      return Status::OK();
    }
    return gov::BudgetExceededError(budget, site, observed, limit);
  }

  /// Run-wide budgets computable from cumulative stats and the database:
  /// total derived rows and estimated resident bytes. Both quantities are
  /// deterministic across num_threads (the merge order fixes
  /// tuples_derived; MemoryBytes is structural).
  Status CheckRunBudgets(std::string_view site) {
    const gov::GovernorContext* g = options_.governor;
    if (g == nullptr || !g->budget.any()) return Status::OK();
    const gov::ResourceBudget& b = g->budget;
    if (b.max_result_rows != 0 && stats_.tuples_derived > b.max_result_rows) {
      return TripBudget("max_result_rows", site, stats_.tuples_derived,
                        b.max_result_rows);
    }
    if (b.max_bytes != 0) {
      const uint64_t bytes = db_->TotalBytes();
      if (bytes > b.max_bytes) {
        return TripBudget("max_bytes", site, bytes, b.max_bytes);
      }
    }
    return Status::OK();
  }

  /// The deterministic round boundary: interrupts (cancellation,
  /// deadline, armed eval.round faults) first, then every budget against
  /// this round's delta. Called at the top of each fixpoint round; on a
  /// return_partial trip it sets truncated_ and the caller breaks out
  /// with the previous round's (complete) fixpoint prefix.
  Status CheckRoundBoundary(uint64_t delta_rows, uint64_t delta_bytes) {
    const gov::GovernorContext* g = options_.governor;
    if (g == nullptr) return Status::OK();
    GRAPHLOG_RETURN_NOT_OK(g->Check("eval.round"));
    const gov::ResourceBudget& b = g->budget;
    if (!b.any()) return Status::OK();
    if (b.max_rounds != 0 && stats_.iterations >= b.max_rounds) {
      return TripBudget("max_rounds", "eval.round", stats_.iterations + 1,
                        b.max_rounds);
    }
    if (b.max_delta_rows != 0 && delta_rows > b.max_delta_rows) {
      return TripBudget("max_delta_rows", "eval.round", delta_rows,
                        b.max_delta_rows);
    }
    if (b.max_result_rows != 0 && stats_.tuples_derived > b.max_result_rows) {
      return TripBudget("max_result_rows", "eval.round",
                        stats_.tuples_derived, b.max_result_rows);
    }
    if (b.max_bytes != 0) {
      const uint64_t bytes = db_->TotalBytes() + delta_bytes;
      if (bytes > b.max_bytes) {
        return TripBudget("max_bytes", "eval.round", bytes, b.max_bytes);
      }
    }
    return Status::OK();
  }

  const Program& prog_;
  Database* db_;
  EvalOptions options_;
  EvalStats stats_;
  std::map<int, CompiledRule> compiled_;
  // Worker lanes shared by every batch of this run; null on the serial path.
  std::unique_ptr<exec::ThreadPool> pool_;
  // CSR snapshots for the columnar join path: the caller's cross-run
  // cache when provided, else this run-local one. Unused unless
  // options_.columnar.
  columnar::CsrCache local_csr_cache_;
  columnar::CsrCache* csr_cache_;

  /// Pre-run size of every head relation, or kCreatedByRun for relations
  /// this run declares; the Rollback() baseline.
  static constexpr size_t kCreatedByRun = static_cast<size_t>(-1);
  std::map<Symbol, size_t> baseline_;
  // Governed-run truncation state (ResourceBudget::return_partial).
  bool truncated_ = false;
  std::string truncated_by_;
  int64_t stratum_ = 0;  // current stratum index, for trip messages
  int64_t prof_round_ = 0;  // round index within the stratum (profiling)
};

}  // namespace

Result<EvalStats> Evaluate(const Program& prog, Database* db,
                           const EvalOptions& options) {
  Engine engine(prog, db, options);
  return engine.Run();
}

Result<EvalStats> EvaluateText(std::string_view program_text, Database* db,
                               const EvalOptions& options) {
  GRAPHLOG_ASSIGN_OR_RETURN(
      Program prog, datalog::ParseProgram(program_text, &db->symbols()));
  return Evaluate(prog, db, options);
}

}  // namespace graphlog::eval
