#include "eval/engine.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/compiled_rule.h"
#include "eval/provenance.h"
#include "storage/tuple.h"

namespace graphlog::eval {

using datalog::AggKind;
using datalog::Program;
using datalog::Rule;
using datalog::Stratification;
using storage::Database;
using storage::Relation;
using storage::Tuple;
using storage::TupleHash;

namespace {

/// Accumulator for one aggregate column of one group.
struct AggAccum {
  int64_t count = 0;
  double dsum = 0.0;
  int64_t isum = 0;
  bool any_double = false;
  bool has_minmax = false;
  Value min, max;

  void Add(const Value& v) {
    ++count;
    if (v.is_numeric()) {
      if (v.is_double()) {
        any_double = true;
        dsum += v.AsDouble();
      } else {
        isum += v.AsInt();
      }
    }
    if (!has_minmax) {
      min = max = v;
      has_minmax = true;
    } else {
      if (datalog::EvalCmp(datalog::CmpOp::kLt, v, min)) min = v;
      if (datalog::EvalCmp(datalog::CmpOp::kGt, v, max)) max = v;
    }
  }

  Value Result(AggKind kind) const {
    switch (kind) {
      case AggKind::kCount:
        return Value::Int(count);
      case AggKind::kSum:
        return any_double ? Value::Double(dsum + static_cast<double>(isum))
                          : Value::Int(isum);
      case AggKind::kMin:
        return min;
      case AggKind::kMax:
        return max;
      case AggKind::kAvg: {
        double total = dsum + static_cast<double>(isum);
        return Value::Double(count == 0 ? 0.0 : total / count);
      }
    }
    return Value::Int(0);
  }
};

/// Shared evaluation state for one program run.
class Engine {
 public:
  Engine(const Program& prog, Database* db, const EvalOptions& options)
      : prog_(prog), db_(db), options_(options) {}

  Result<EvalStats> Run() {
    const SymbolTable& syms = db_->symbols();
    GRAPHLOG_RETURN_NOT_OK(datalog::CheckArities(prog_, syms));
    GRAPHLOG_RETURN_NOT_OK(datalog::CheckSafety(prog_, syms));
    GRAPHLOG_ASSIGN_OR_RETURN(Stratification strat,
                              datalog::Stratify(prog_, syms));
    stats_.strata = strat.num_strata;

    // Check IDB arity against any pre-existing relations and declare them.
    for (const Rule& r : prog_.rules) {
      GRAPHLOG_ASSIGN_OR_RETURN(Relation * rel,
                                db_->Declare(r.head.predicate,
                                             r.head.arity()));
      (void)rel;
    }

    for (const auto& group : strat.rule_groups) {
      GRAPHLOG_RETURN_NOT_OK(RunStratum(group));
    }
    return stats_;
  }

 private:
  const Relation* Resolve(Symbol pred) const { return db_->Find(pred); }

  /// Runs one stratum's rules to fixpoint.
  Status RunStratum(const std::vector<int>& rule_indices) {
    // Compile this stratum's rules now: lower strata are materialized, so
    // the cardinality oracle sees real sizes for everything below.
    CardinalityFn card;
    if (options_.cardinality_join_ordering) {
      card = [this](Symbol p) {
        const Relation* r = db_->Find(p);
        return r == nullptr ? size_t{0} : r->size();
      };
    }
    for (int i : rule_indices) {
      GRAPHLOG_ASSIGN_OR_RETURN(
          CompiledRule c,
          CompiledRule::Compile(prog_.rules[i], db_->symbols(), card));
      compiled_.erase(i);
      compiled_.emplace(i, std::move(c));
    }

    // IDB predicates defined in this stratum.
    std::set<Symbol> local_idbs;
    for (int i : rule_indices) {
      local_idbs.insert(prog_.rules[i].head.predicate);
    }

    std::vector<int> aggregate_rules, normal_rules;
    for (int i : rule_indices) {
      if (prog_.rules[i].head.has_aggregates()) {
        aggregate_rules.push_back(i);
      } else {
        normal_rules.push_back(i);
      }
    }

    // Aggregate rules first: stratification guarantees their bodies read
    // lower strata only, so one pass is complete.
    for (int i : aggregate_rules) {
      GRAPHLOG_RETURN_NOT_OK(RunAggregateRule(i));
    }

    // Split normal rules into non-recursive (no local IDB in body) and
    // recursive.
    std::vector<int> base_rules, rec_rules;
    for (int i : normal_rules) {
      bool recursive = false;
      for (const auto& l : prog_.rules[i].body) {
        if (l.is_relational() && local_idbs.count(l.atom.predicate) > 0) {
          recursive = true;
          break;
        }
      }
      (recursive ? rec_rules : base_rules).push_back(i);
    }

    // One pass over non-recursive rules.
    for (int i : base_rules) {
      RunRuleOnce(i, /*delta_pred=*/kNoSymbol, /*delta_occurrence=*/-1,
                  nullptr, nullptr);
    }
    if (rec_rules.empty()) return Status::OK();

    if (options_.strategy == Strategy::kNaive) {
      return NaiveFixpoint(rec_rules);
    }
    return SemiNaiveFixpoint(rec_rules, local_idbs);
  }

  Status NaiveFixpoint(const std::vector<int>& rec_rules) {
    bool changed = true;
    while (changed) {
      GRAPHLOG_RETURN_NOT_OK(TickIteration());
      changed = false;
      for (int i : rec_rules) {
        size_t added = RunRuleOnce(i, kNoSymbol, -1, nullptr, nullptr);
        if (added > 0) changed = true;
      }
    }
    return Status::OK();
  }

  Status SemiNaiveFixpoint(const std::vector<int>& rec_rules,
                           const std::set<Symbol>& local_idbs) {
    // delta[p] starts as everything currently known for p.
    std::map<Symbol, Relation> delta;
    for (Symbol p : local_idbs) {
      const Relation* full = db_->Find(p);
      Relation d(full->arity());
      d.InsertAll(*full);
      delta.emplace(p, std::move(d));
    }

    bool any_delta = true;
    while (any_delta) {
      GRAPHLOG_RETURN_NOT_OK(TickIteration());
      std::map<Symbol, Relation> next;
      for (Symbol p : local_idbs) {
        next.emplace(p, Relation(db_->Find(p)->arity()));
      }
      for (int i : rec_rules) {
        const CompiledRule& c = compiled_.at(i);
        // For each occurrence of a local IDB in the body, run a version
        // where that occurrence reads the delta.
        for (Symbol p : local_idbs) {
          for (int occ : c.OccurrencesOf(p)) {
            RunRuleOnce(i, p, occ, &delta, &next);
          }
        }
      }
      any_delta = false;
      for (auto& [p, d] : next) {
        if (!d.empty()) any_delta = true;
      }
      delta = std::move(next);
    }
    return Status::OK();
  }

  /// Executes rule `i`. When `delta_pred != kNoSymbol`, occurrence
  /// `delta_occurrence` of `delta_pred` reads from (*delta)[delta_pred].
  /// New tuples go into the db relation and, if `next` != nullptr, into
  /// (*next)[head].
  size_t RunRuleOnce(int i, Symbol delta_pred, int delta_occurrence,
                     std::map<Symbol, Relation>* delta,
                     std::map<Symbol, Relation>* next) {
    const CompiledRule& c = compiled_.at(i);
    Relation* head_rel = db_->FindMutable(c.head_predicate());
    size_t added = 0;
    RelationResolver resolver = [&](Symbol pred,
                                    int occurrence) -> const Relation* {
      if (pred == delta_pred && occurrence == delta_occurrence &&
          delta != nullptr) {
        auto it = delta->find(pred);
        return it == delta->end() ? nullptr : &it->second;
      }
      return Resolve(pred);
    };
    // Buffer derivations: inserting into the head relation while a step is
    // iterating it (recursive rules read and write the same relation)
    // would invalidate the rows/index storage being walked.
    std::vector<Tuple> derived;
    std::vector<Justification> just;
    const bool track = options_.provenance != nullptr;
    c.Execute(resolver, [&](const std::vector<Value>& slots) {
      ++stats_.rule_firings;
      derived.push_back(c.EmitHead(slots));
      if (track) {
        Justification j;
        j.rule_index = i;
        j.premises = c.Premises(slots);
        just.push_back(std::move(j));
      }
    });
    for (size_t k = 0; k < derived.size(); ++k) {
      Tuple& t = derived[k];
      if (head_rel->Insert(t)) {
        ++added;
        ++stats_.tuples_derived;
        if (track) {
          options_.provenance->Record(c.head_predicate(), t,
                                      std::move(just[k]));
        }
        if (next != nullptr) {
          auto it = next->find(c.head_predicate());
          if (it != next->end()) it->second.Insert(std::move(t));
        }
      }
    }
    return added;
  }

  Status RunAggregateRule(int i) {
    const CompiledRule& c = compiled_.at(i);
    Relation* head_rel = db_->FindMutable(c.head_predicate());
    const auto& head_args = c.head_args();

    // Group key = plain head args; aggregates accumulate per group over the
    // SET of distinct body bindings (set semantics: duplicate slot vectors
    // from pure-check subgoals are deduplicated first).
    std::unordered_set<Tuple, TupleHash> seen_bindings;
    std::map<Tuple, std::vector<AggAccum>, storage::TupleLess> groups;

    RelationResolver resolver = [&](Symbol pred, int) -> const Relation* {
      return Resolve(pred);
    };
    c.Execute(resolver, [&](const std::vector<Value>& slots) {
      ++stats_.rule_firings;
      if (!seen_bindings.insert(slots).second) return;
      Tuple key;
      for (const CompiledHeadArg& a : head_args) {
        if (!a.is_aggregate) key.push_back(a.source.Get(slots));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) {
        size_t naggs = 0;
        for (const CompiledHeadArg& a : head_args) {
          if (a.is_aggregate) ++naggs;
        }
        it->second.resize(naggs);
      }
      size_t ai = 0;
      for (const CompiledHeadArg& a : head_args) {
        if (!a.is_aggregate) continue;
        it->second[ai].Add(a.has_input ? a.source.Get(slots)
                                       : Value::Int(1));
        ++ai;
      }
    });

    for (const auto& [key, accums] : groups) {
      Tuple t;
      t.reserve(head_args.size());
      size_t ki = 0, ai = 0;
      for (const CompiledHeadArg& a : head_args) {
        if (a.is_aggregate) {
          t.push_back(accums[ai++].Result(a.agg));
        } else {
          t.push_back(key[ki++]);
        }
      }
      if (head_rel->Insert(std::move(t))) ++stats_.tuples_derived;
    }
    return Status::OK();
  }

  Status TickIteration() {
    ++stats_.iterations;
    if (options_.max_iterations != 0 &&
        stats_.iterations > options_.max_iterations) {
      return Status::Internal("evaluation exceeded max_iterations");
    }
    return Status::OK();
  }

  const Program& prog_;
  Database* db_;
  EvalOptions options_;
  EvalStats stats_;
  std::map<int, CompiledRule> compiled_;
};

}  // namespace

Result<EvalStats> Evaluate(const Program& prog, Database* db,
                           const EvalOptions& options) {
  Engine engine(prog, db, options);
  return engine.Run();
}

Result<EvalStats> EvaluateText(std::string_view program_text, Database* db,
                               const EvalOptions& options) {
  GRAPHLOG_ASSIGN_OR_RETURN(
      Program prog, datalog::ParseProgram(program_text, &db->symbols()));
  return Evaluate(prog, db, options);
}

}  // namespace graphlog::eval
