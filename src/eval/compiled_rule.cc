#include "eval/compiled_rule.h"

#include <algorithm>
#include <map>
#include <set>

#include "columnar/csr.h"
#include "eval/arith.h"
#include "storage/database.h"

namespace graphlog::eval {

using datalog::ArithExpr;
using datalog::CmpOp;
using datalog::EvalCmp;
using datalog::Literal;
using datalog::Rule;
using datalog::Term;
using storage::Relation;
using storage::Tuple;

bool CompiledArith::Eval(const std::vector<Value>& slots, Value* out) const {
  if (is_leaf) {
    *out = leaf.Get(slots);
    return true;
  }
  Value a, b;
  if (!children[0].Eval(slots, &a) || !children[1].Eval(slots, &b)) {
    return false;
  }
  return ApplyArith(op, a, b, out);
}

namespace {

/// Tracks variable -> slot assignment during compilation.
class SlotMap {
 public:
  uint32_t SlotOf(Symbol var) {
    auto [it, inserted] = slots_.emplace(var, next_);
    if (inserted) ++next_;
    return it->second;
  }
  bool Has(Symbol var) const { return slots_.count(var) > 0; }
  uint32_t size() const { return next_; }

 private:
  std::map<Symbol, uint32_t> slots_;
  uint32_t next_ = 0;
};

CompiledArith CompileArith(const ArithExpr& e, SlotMap* slots) {
  CompiledArith c;
  c.is_leaf = e.is_leaf;
  if (e.is_leaf) {
    if (e.leaf.is_variable()) {
      c.leaf = ArgSource::Slot(slots->SlotOf(e.leaf.var()));
    } else {
      c.leaf = ArgSource::Const(e.leaf.value());
    }
    return c;
  }
  c.op = e.op;
  c.children.push_back(CompileArith(e.children[0], slots));
  c.children.push_back(CompileArith(e.children[1], slots));
  return c;
}

/// Variables of a literal, for schedulability tests.
std::set<Symbol> LiteralVars(const Literal& l) {
  std::vector<Symbol> v;
  l.CollectVariables(&v);
  return std::set<Symbol>(v.begin(), v.end());
}

}  // namespace

CardinalityFn MakeDbCardinality(const storage::Database* db) {
  return [db](Symbol pred,
              const std::vector<uint32_t>& bound_cols) -> size_t {
    const Relation* rel = db->Find(pred);
    if (rel == nullptr) return 0;
    if (const storage::RelationStats* st = db->StatsFor(pred)) {
      return st->EstimateMatches(bound_cols);
    }
    // No stats (uid-0 relation): blind fixed-fanout discount.
    size_t est = rel->size();
    for (size_t k = 0; k < bound_cols.size() && est > 0; ++k) est /= 4;
    return est == 0 && !rel->empty() ? 1 : est;
  };
}

Result<CompiledRule> CompiledRule::Compile(const Rule& rule,
                                           const SymbolTable& syms,
                                           const CardinalityFn& cardinality) {
  CompiledRule out;
  out.head_predicate_ = rule.head.predicate;

  SlotMap slots;
  std::set<Symbol> bound;  // variables bound so far (schedule-time)

  std::vector<const Literal*> remaining;
  for (const Literal& l : rule.body) remaining.push_back(&l);

  // Assign occurrence ids in original body order (the engine's delta
  // substitution is keyed on them).
  std::map<const Literal*, int> occ_of;
  int occ = 0;
  for (const Literal& l : rule.body) {
    if (l.is_positive_atom()) occ_of[&l] = occ++;
  }
  out.num_occurrences_ = occ;

  auto lower_atom = [&](const Literal& l, bool negated) {
    Step s;
    s.kind = negated ? Step::Kind::kNegCheck : Step::Kind::kScanProbe;
    s.pred = l.atom.predicate;
    s.occurrence = negated ? -1 : occ_of[&l];
    std::map<Symbol, uint32_t> first_col;  // first unbound occurrence col
    for (uint32_t c = 0; c < l.atom.args.size(); ++c) {
      const Term& t = l.atom.args[c];
      if (t.is_constant()) {
        s.probe_cols.push_back(c);
        s.probe_sources.push_back(ArgSource::Const(t.value()));
      } else if (t.is_variable()) {
        Symbol v = t.var();
        if (bound.count(v) > 0) {
          s.probe_cols.push_back(c);
          s.probe_sources.push_back(ArgSource::Slot(slots.SlotOf(v)));
        } else if (auto it = first_col.find(v); it != first_col.end()) {
          // Repeated unbound variable within this atom.
          s.eq_cols.emplace_back(it->second, c);
        } else {
          first_col[v] = c;
          if (!negated) {
            s.out_cols.emplace_back(c, slots.SlotOf(v));
          }
        }
      } else {
        // Wildcard: unconstrained column (parser normally removes these).
        continue;
      }
    }
    if (!negated) {
      for (const auto& [v, _] : first_col) bound.insert(v);
    }
    return s;
  };

  while (!remaining.empty()) {
    // 1. Place every filter/binder that is ready.
    bool placed = true;
    while (placed) {
      placed = false;
      for (auto it = remaining.begin(); it != remaining.end();) {
        const Literal& l = **it;
        bool take = false;
        Step s;
        switch (l.kind) {
          case Literal::Kind::kComparison: {
            auto ready = [&](const Term& t) {
              return !t.is_variable() || bound.count(t.var()) > 0;
            };
            if (ready(l.lhs) && ready(l.rhs)) {
              s.kind = Step::Kind::kCompare;
              s.cmp = l.cmp;
              s.lhs = l.lhs.is_variable()
                          ? ArgSource::Slot(slots.SlotOf(l.lhs.var()))
                          : ArgSource::Const(l.lhs.value());
              s.rhs = l.rhs.is_variable()
                          ? ArgSource::Slot(slots.SlotOf(l.rhs.var()))
                          : ArgSource::Const(l.rhs.value());
              take = true;
            } else if (l.cmp == CmpOp::kEq && ready(l.lhs) &&
                       l.rhs.is_variable()) {
              s.kind = Step::Kind::kEqBind;
              s.bind_source = l.lhs.is_variable()
                                  ? ArgSource::Slot(slots.SlotOf(l.lhs.var()))
                                  : ArgSource::Const(l.lhs.value());
              s.bind_slot = slots.SlotOf(l.rhs.var());
              bound.insert(l.rhs.var());
              take = true;
            } else if (l.cmp == CmpOp::kEq && ready(l.rhs) &&
                       l.lhs.is_variable()) {
              s.kind = Step::Kind::kEqBind;
              s.bind_source = l.rhs.is_variable()
                                  ? ArgSource::Slot(slots.SlotOf(l.rhs.var()))
                                  : ArgSource::Const(l.rhs.value());
              s.bind_slot = slots.SlotOf(l.lhs.var());
              bound.insert(l.lhs.var());
              take = true;
            }
            break;
          }
          case Literal::Kind::kAssignment: {
            std::vector<Symbol> inputs;
            l.assign_expr.CollectVariables(&inputs);
            bool all = std::all_of(
                inputs.begin(), inputs.end(),
                [&](Symbol v) { return bound.count(v) > 0; });
            if (all) {
              s.kind = Step::Kind::kAssign;
              s.arith = CompileArith(l.assign_expr, &slots);
              if (!l.assign_target.is_variable()) {
                return Status::UnsafeRule(
                    "assignment target must be a variable in rule '" +
                    rule.ToString(syms) + "'");
              }
              Symbol tv = l.assign_target.var();
              s.target_bound = bound.count(tv) > 0;
              s.target_slot = slots.SlotOf(tv);
              bound.insert(tv);
              take = true;
            }
            break;
          }
          case Literal::Kind::kNegatedAtom: {
            // Ready when every variable is bound or local to this literal.
            std::set<Symbol> local;
            for (const Term& t : l.atom.args) {
              if (t.is_variable()) local.insert(t.var());
            }
            bool ready = true;
            for (Symbol v : local) {
              if (bound.count(v) > 0) continue;
              // Unbound: must not occur in any other remaining literal,
              // elsewhere we cannot anti-join yet.
              for (const Literal* other : remaining) {
                if (other == &l) continue;
                if (LiteralVars(*other).count(v) > 0) {
                  ready = false;
                  break;
                }
              }
              if (!ready) break;
            }
            if (ready) {
              s = lower_atom(l, /*negated=*/true);
              take = true;
            }
            break;
          }
          case Literal::Kind::kAtom:
            break;  // handled below
        }
        if (take) {
          out.steps_.push_back(std::move(s));
          it = remaining.erase(it);
          placed = true;
        } else {
          ++it;
        }
      }
    }

    // 2. Place the best positive atom. Without a cardinality oracle:
    // most bound argument positions wins (first in body order on ties).
    // With one: minimize the estimated rows a probe bound on the
    // already-bound columns would match, so a small relation is scanned
    // before a large one is probed and a selective column wins over a
    // skewed one.
    const Literal* best = nullptr;
    int best_bound = -1;
    double best_cost = 0.0;
    for (const Literal* l : remaining) {
      if (!l->is_positive_atom()) continue;
      int nb = 0;
      std::vector<uint32_t> bcols;
      for (uint32_t c = 0; c < l->atom.args.size(); ++c) {
        const Term& t = l->atom.args[c];
        if (t.is_constant() ||
            (t.is_variable() && bound.count(t.var()) > 0)) {
          ++nb;
          bcols.push_back(c);
        }
      }
      if (cardinality) {
        const double cost =
            static_cast<double>(cardinality(l->atom.predicate, bcols));
        if (best == nullptr || cost < best_cost) {
          best_cost = cost;
          best = l;
        }
      } else if (nb > best_bound) {
        best_bound = nb;
        best = l;
      }
    }
    if (best == nullptr) {
      if (!remaining.empty()) {
        return Status::UnsafeRule(
            "cannot schedule remaining builtins/negations in rule '" +
            rule.ToString(syms) + "' (unsafe rule)");
      }
      break;
    }
    out.steps_.push_back(lower_atom(*best, /*negated=*/false));
    out.occurrence_preds_.emplace_back(best->atom.predicate, occ_of[best]);
    {
      // Premise spec for provenance: every column of this atom, sourced
      // from constants or the (now bound) variable slots. Wildcards only
      // reach here through the builder API; they render as integer 0.
      std::vector<ArgSource> srcs;
      for (const Term& t : best->atom.args) {
        if (t.is_constant()) {
          srcs.push_back(ArgSource::Const(t.value()));
        } else if (t.is_variable()) {
          srcs.push_back(ArgSource::Slot(slots.SlotOf(t.var())));
        } else {
          srcs.push_back(ArgSource::Const(Value::Int(0)));
        }
      }
      out.premise_specs_.emplace_back(best->atom.predicate,
                                      std::move(srcs));
    }
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }

  // Compile the head.
  for (const datalog::HeadTerm& h : rule.head.args) {
    CompiledHeadArg a;
    if (h.is_aggregate) {
      out.has_aggregates_ = true;
      a.is_aggregate = true;
      a.agg = h.agg;
      if (h.agg_var != kNoSymbol) {
        if (!bound.count(h.agg_var)) {
          return Status::UnsafeRule("aggregate variable '" +
                                    syms.name(h.agg_var) +
                                    "' is unbound in rule '" +
                                    rule.ToString(syms) + "'");
        }
        a.has_input = true;
        a.source = ArgSource::Slot(slots.SlotOf(h.agg_var));
      }
    } else if (h.term.is_variable()) {
      if (!bound.count(h.term.var())) {
        return Status::UnsafeRule("head variable '" + syms.name(h.term.var()) +
                                  "' is unbound in rule '" +
                                  rule.ToString(syms) + "'");
      }
      a.source = ArgSource::Slot(slots.SlotOf(h.term.var()));
    } else if (h.term.is_constant()) {
      a.source = ArgSource::Const(h.term.value());
    } else {
      return Status::UnsafeRule("wildcard in rule head");
    }
    out.head_args_.push_back(std::move(a));
  }

  out.num_slots_ = slots.size();
  for (size_t k = 0; k < out.steps_.size(); ++k) {
    if (out.steps_[k].kind == Step::Kind::kScanProbe) {
      out.driver_step_ = static_cast<int>(k);
      break;
    }
  }
  return out;
}

void CompiledRule::Execute(const RelationResolver& resolver,
                           const BindingSink& sink) const {
  ExecutePartition(resolver, sink, 0, 1);
}

void CompiledRule::ExecutePartition(const RelationResolver& resolver,
                                    const BindingSink& sink, size_t part,
                                    size_t num_parts,
                                    const CsrBindings* csrs,
                                    StepCounters* counters) const {
  // A plan without a positive atom has nothing to partition over; its
  // (at most one) satisfying assignment belongs to partition 0.
  if (driver_step_ < 0 && part > 0) return;
  std::vector<Value> slots(num_slots_);
  ExecuteStep(0, &slots, resolver, sink, part, num_parts, csrs, counters);
}

void CompiledRule::ExecuteStep(size_t idx, std::vector<Value>* slots,
                               const RelationResolver& resolver,
                               const BindingSink& sink, size_t part,
                               size_t num_parts, const CsrBindings* csrs,
                               StepCounters* counters) const {
  if (idx == steps_.size()) {
    sink(*slots);
    return;
  }
  const Step& s = steps_[idx];
  // Profiling counters, under the partition rules documented at
  // StepCounters: pre-driver steps count only in partition 0 (they repeat
  // identically everywhere); the driver's invocation counts once but its
  // per-chunk rows count in every partition; post-driver steps count
  // everywhere. Summed over partitions this reproduces the serial counts.
  StepCounter* inv_ctr = nullptr;   // invocations (+ csr_invocations)
  StepCounter* rows_ctr = nullptr;  // rows_out
  if (counters != nullptr) {
    const int i = static_cast<int>(idx);
    if (i > driver_step_ || part == 0) inv_ctr = &(*counters)[idx];
    if (i >= driver_step_ || part == 0) rows_ctr = &(*counters)[idx];
    if (inv_ctr != nullptr) ++inv_ctr->invocations;
  }
  const columnar::Csr* csr =
      csrs != nullptr && idx < csrs->size() ? (*csrs)[idx] : nullptr;
  switch (s.kind) {
    case Step::Kind::kScanProbe: {
      // Columnar path: serve a probe over a binary relation from its CSR
      // snapshot. Adjacency spans are laid out in row insertion order —
      // the posting-list order of the hash-index path — so the recursion
      // sequence (and with it derived rows, insertion order, provenance,
      // and stats) is bit-identical to the row path below.
      if (csr != nullptr && !s.probe_cols.empty()) {
        if (inv_ctr != nullptr) ++inv_ctr->csr_invocations;
        const bool is_drv = static_cast<int>(idx) == driver_step_;
        auto chunk = [&](size_t m, size_t* lo, size_t* hi) {
          *lo = 0;
          *hi = m;
          if (is_drv && num_parts > 1) {
            *lo = part * m / num_parts;
            *hi = (part + 1) * m / num_parts;
          }
        };
        auto try_pair = [&](const Value& v0, const Value& v1) {
          for (const auto& [a, b] : s.eq_cols) {
            if (!((a == 0 ? v0 : v1) == (b == 0 ? v0 : v1))) return;
          }
          for (const auto& [col, slot] : s.out_cols) {
            (*slots)[slot] = col == 0 ? v0 : v1;
          }
          if (rows_ctr != nullptr) ++rows_ctr->rows_out;
          ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                      counters);
        };
        if (s.probe_cols.size() == 2) {
          // Fully-bound probe: at most one matching row (relations are
          // sets); existence by binary search in the sorted span.
          const int64_t u = csr->IdOf(s.probe_sources[0].Get(*slots));
          const int64_t t =
              u < 0 ? -1 : csr->IdOf(s.probe_sources[1].Get(*slots));
          const bool hit = t >= 0 && csr->HasEdge(static_cast<uint32_t>(u),
                                                  static_cast<uint32_t>(t));
          size_t lo, hi;
          chunk(hit ? 1 : 0, &lo, &hi);
          if (hit && lo < hi) {
            try_pair(csr->values[static_cast<size_t>(u)],
                     csr->values[static_cast<size_t>(t)]);
          }
        } else if (s.probe_cols[0] == 0) {
          const int64_t u = csr->IdOf(s.probe_sources[0].Get(*slots));
          if (u < 0) return;
          const auto span = csr->Fwd(static_cast<uint32_t>(u));
          size_t lo, hi;
          chunk(span.size(), &lo, &hi);
          const Value& v0 = csr->values[static_cast<size_t>(u)];
          for (size_t k = lo; k < hi; ++k) try_pair(v0, csr->values[span[k]]);
        } else {  // probe_cols == {1}
          const int64_t t = csr->IdOf(s.probe_sources[0].Get(*slots));
          if (t < 0) return;
          const auto span = csr->Rev(static_cast<uint32_t>(t));
          size_t lo, hi;
          chunk(span.size(), &lo, &hi);
          const Value& v1 = csr->values[static_cast<size_t>(t)];
          for (size_t k = lo; k < hi; ++k) try_pair(csr->values[span[k]], v1);
        }
        return;
      }
      const Relation* rel = resolver(s.pred, s.occurrence);
      if (rel == nullptr || rel->empty()) return;
      auto try_row = [&](const Tuple& row) {
        for (const auto& [a, b] : s.eq_cols) {
          if (!(row[a] == row[b])) return;
        }
        for (const auto& [col, slot] : s.out_cols) {
          (*slots)[slot] = row[col];
        }
        if (rows_ctr != nullptr) ++rows_ctr->rows_out;
        ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                    counters);
      };
      // The driver step enumerates only its contiguous chunk of the row
      // range; partition boundaries use the standard p*m/P split so the
      // chunks are exhaustive, disjoint, and ordered.
      const bool is_driver = static_cast<int>(idx) == driver_step_;
      if (s.probe_cols.empty()) {
        const size_t m = rel->rows().size();
        size_t lo = 0, hi = m;
        if (is_driver && num_parts > 1) {
          lo = part * m / num_parts;
          hi = (part + 1) * m / num_parts;
        }
        for (size_t r = lo; r < hi; ++r) try_row(rel->row(r));
      } else {
        Tuple key;
        key.reserve(s.probe_cols.size());
        for (const ArgSource& src : s.probe_sources) {
          key.push_back(src.Get(*slots));
        }
        storage::ProbeResult hits = rel->Probe(s.probe_cols, key);
        const size_t m = hits.size();
        size_t lo = 0, hi = m;
        if (is_driver && num_parts > 1) {
          lo = part * m / num_parts;
          hi = (part + 1) * m / num_parts;
        }
        for (size_t k = lo; k < hi; ++k) try_row(rel->row(hits[k]));
      }
      return;
    }
    case Step::Kind::kNegCheck: {
      // Columnar anti-join: existence against the CSR snapshot. A probed
      // negation over a binary relation never carries eq_cols (a repeated
      // unbound variable forces the scan path), so presence of any match
      // is exactly "negation fails".
      if (csr != nullptr && !s.probe_cols.empty() && s.eq_cols.empty()) {
        if (inv_ctr != nullptr) ++inv_ctr->csr_invocations;
        bool found = false;
        if (s.probe_cols.size() == 2) {
          const int64_t u = csr->IdOf(s.probe_sources[0].Get(*slots));
          const int64_t t =
              u < 0 ? -1 : csr->IdOf(s.probe_sources[1].Get(*slots));
          found = t >= 0 && csr->HasEdge(static_cast<uint32_t>(u),
                                         static_cast<uint32_t>(t));
        } else if (s.probe_cols[0] == 0) {
          const int64_t u = csr->IdOf(s.probe_sources[0].Get(*slots));
          found = u >= 0 && !csr->Fwd(static_cast<uint32_t>(u)).empty();
        } else {
          const int64_t t = csr->IdOf(s.probe_sources[0].Get(*slots));
          found = t >= 0 && !csr->Rev(static_cast<uint32_t>(t)).empty();
        }
        if (found) return;  // negation fails
        if (rows_ctr != nullptr) ++rows_ctr->rows_out;
        ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                    counters);
        return;
      }
      const Relation* rel = resolver(s.pred, s.occurrence);
      if (rel != nullptr && !rel->empty()) {
        bool found = false;
        auto check_row = [&](const Tuple& row) {
          for (const auto& [a, b] : s.eq_cols) {
            if (!(row[a] == row[b])) return;
          }
          found = true;
        };
        if (s.probe_cols.empty()) {
          for (const Tuple& row : rel->rows()) {
            check_row(row);
            if (found) break;
          }
        } else {
          Tuple key;
          key.reserve(s.probe_cols.size());
          for (const ArgSource& src : s.probe_sources) {
            key.push_back(src.Get(*slots));
          }
          for (uint32_t i : rel->Probe(s.probe_cols, key)) {
            check_row(rel->row(i));
            if (found) break;
          }
        }
        if (found) return;  // negation fails
      }
      if (rows_ctr != nullptr) ++rows_ctr->rows_out;
      ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                  counters);
      return;
    }
    case Step::Kind::kCompare: {
      if (EvalCmp(s.cmp, s.lhs.Get(*slots), s.rhs.Get(*slots))) {
        if (rows_ctr != nullptr) ++rows_ctr->rows_out;
        ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                    counters);
      }
      return;
    }
    case Step::Kind::kEqBind: {
      (*slots)[s.bind_slot] = s.bind_source.Get(*slots);
      if (rows_ctr != nullptr) ++rows_ctr->rows_out;
      ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                  counters);
      return;
    }
    case Step::Kind::kAssign: {
      Value v;
      if (!s.arith.Eval(*slots, &v)) return;
      if (s.target_bound) {
        if (!EvalCmp(CmpOp::kEq, (*slots)[s.target_slot], v)) return;
      } else {
        (*slots)[s.target_slot] = v;
      }
      if (rows_ctr != nullptr) ++rows_ctr->rows_out;
      ExecuteStep(idx + 1, slots, resolver, sink, part, num_parts, csrs,
                  counters);
      return;
    }
  }
}

Tuple CompiledRule::EmitHead(const std::vector<Value>& slots) const {
  Tuple t;
  t.reserve(head_args_.size());
  for (const CompiledHeadArg& a : head_args_) {
    t.push_back(a.source.Get(slots));
  }
  return t;
}

std::vector<std::pair<Symbol, Tuple>> CompiledRule::Premises(
    const std::vector<Value>& slots) const {
  std::vector<std::pair<Symbol, Tuple>> out;
  out.reserve(premise_specs_.size());
  for (const auto& [pred, srcs] : premise_specs_) {
    Tuple t;
    t.reserve(srcs.size());
    for (const ArgSource& s : srcs) t.push_back(s.Get(slots));
    out.emplace_back(pred, std::move(t));
  }
  return out;
}

std::vector<int> CompiledRule::OccurrencesOf(Symbol p) const {
  std::vector<int> out;
  for (const auto& [pred, occ] : occurrence_preds_) {
    if (pred == p) out.push_back(occ);
  }
  return out;
}

std::string CompiledRule::StepToString(size_t idx,
                                       const SymbolTable& syms) const {
  const Step& s = steps_[idx];
  std::string out;
  switch (s.kind) {
    case Step::Kind::kScanProbe: {
      if (s.probe_cols.empty()) {
        out += "scan " + syms.name(s.pred);
      } else {
        out += "probe " + syms.name(s.pred) + "(";
        for (size_t i = 0; i < s.probe_cols.size(); ++i) {
          if (i > 0) out += ",";
          out += std::to_string(s.probe_cols[i]);
        }
        out += ")";
      }
      if (driver() == &s) out += " [driver]";
      break;
    }
    case Step::Kind::kNegCheck:
      out += "antijoin !" + syms.name(s.pred);
      break;
    case Step::Kind::kCompare:
      out += "filter ";
      out += datalog::CmpOpToString(s.cmp);
      break;
    case Step::Kind::kEqBind:
      out += "bind s" + std::to_string(s.bind_slot);
      break;
    case Step::Kind::kAssign:
      out += s.target_bound ? "check s" : "assign s";
      out += std::to_string(s.target_slot);
      break;
  }
  return out;
}

std::string CompiledRule::PlanToString(const SymbolTable& syms) const {
  std::string out = syms.name(head_predicate_) + " <-";
  for (size_t k = 0; k < steps_.size(); ++k) {
    out += k == 0 ? " " : " ; ";
    out += StepToString(k, syms);
  }
  return out;
}

}  // namespace graphlog::eval
