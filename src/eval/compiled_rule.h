// CompiledRule: a Datalog rule lowered to an executable join plan.
//
// Compilation fixes a literal order (greedy bound-first: filters and
// binders are placed as soon as their inputs are bound; positive atoms are
// chosen to maximize bound columns), assigns every variable a dense slot,
// and lowers each literal to a Step:
//
//   * kScanProbe — positive atom: probe a hash index on the bound columns
//     (or scan when none are bound), binding output columns to slots;
//   * kNegCheck — negated atom: anti-join on the bound columns;
//   * kCompare  — builtin comparison with both sides bound;
//   * kEqBind   — equality that binds one previously-unbound variable;
//   * kAssign   — arithmetic assignment (binds or checks its target).
//
// Execution enumerates all satisfying slot vectors and hands each to a
// sink. Relations are looked up through a RelationResolver so the
// semi-naive engine can substitute a delta relation for one designated
// occurrence of a recursive subgoal.

#ifndef GRAPHLOG_EVAL_COMPILED_RULE_H_
#define GRAPHLOG_EVAL_COMPILED_RULE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/symbol_table.h"
#include "datalog/ast.h"
#include "storage/relation.h"

namespace graphlog::columnar {
struct Csr;  // columnar/csr.h
}

namespace graphlog::storage {
class Database;  // storage/database.h
}

namespace graphlog::eval {

/// \brief Where an argument value comes from at runtime.
struct ArgSource {
  enum class Kind : uint8_t { kConst, kSlot };
  Kind kind = Kind::kConst;
  Value constant;
  uint32_t slot = 0;

  static ArgSource Const(Value v) {
    ArgSource a;
    a.kind = Kind::kConst;
    a.constant = v;
    return a;
  }
  static ArgSource Slot(uint32_t s) {
    ArgSource a;
    a.kind = Kind::kSlot;
    a.slot = s;
    return a;
  }

  const Value& Get(const std::vector<Value>& slots) const {
    return kind == Kind::kConst ? constant : slots[slot];
  }
};

/// \brief Arithmetic expression with variables resolved to slots.
struct CompiledArith {
  bool is_leaf = true;
  ArgSource leaf;
  datalog::ArithOp op = datalog::ArithOp::kAdd;
  std::vector<CompiledArith> children;  // 2 when !is_leaf

  /// \brief Evaluates; false means the builtin fails (type error, div 0).
  bool Eval(const std::vector<Value>& slots, Value* out) const;
};

/// \brief One step of the lowered plan.
struct Step {
  enum class Kind : uint8_t {
    kScanProbe,
    kNegCheck,
    kCompare,
    kEqBind,
    kAssign,
  };
  Kind kind = Kind::kScanProbe;

  // kScanProbe / kNegCheck:
  Symbol pred = kNoSymbol;
  int occurrence = -1;  ///< occurrence id of this body atom (-1: negated)
  std::vector<uint32_t> probe_cols;       // strictly increasing
  std::vector<ArgSource> probe_sources;   // parallel to probe_cols
  std::vector<std::pair<uint32_t, uint32_t>> out_cols;  // (col, slot)
  std::vector<std::pair<uint32_t, uint32_t>> eq_cols;   // row[a] == row[b]

  // kCompare:
  datalog::CmpOp cmp = datalog::CmpOp::kEq;
  ArgSource lhs, rhs;

  // kEqBind:
  ArgSource bind_source;
  uint32_t bind_slot = 0;

  // kAssign:
  CompiledArith arith;
  bool target_bound = false;  ///< true: compare result to slot; else bind
  uint32_t target_slot = 0;
};

/// \brief A head argument after compilation.
struct CompiledHeadArg {
  bool is_aggregate = false;
  ArgSource source;                        // plain, or aggregate input
  bool has_input = false;                  // false for count<*>
  datalog::AggKind agg = datalog::AggKind::kCount;
};

/// \brief Resolves the relation a step should read.
///
/// `occurrence` is the body-order index of the positive relational atom,
/// or -1 for negated atoms (which always read the full relation).
/// Returning nullptr means "empty relation".
using RelationResolver =
    std::function<const storage::Relation*(Symbol pred, int occurrence)>;

/// \brief Receives each satisfying assignment (the full slot vector).
using BindingSink = std::function<void(const std::vector<Value>& slots)>;

/// \brief Per-step CSR bindings for the columnar join path: entry i is
/// the CSR snapshot serving steps()[i], or nullptr to use the row path
/// for that step. The engine binds CSRs only to kScanProbe/kNegCheck
/// steps over arity-2 relations; a bound CSR must be a snapshot of
/// exactly the relation the step's resolver returns. An empty vector
/// (or null pointer) disables the columnar path entirely.
using CsrBindings = std::vector<const columnar::Csr*>;

/// \brief Cardinality oracle used by the join-order heuristic and by
/// EXPLAIN: the estimated number of rows of `pred` matching a probe bound
/// on `bound_cols` (strictly increasing column positions; empty = a full
/// scan, i.e. the relation's size). 0 means unknown/empty.
using CardinalityFn =
    std::function<size_t(Symbol pred, const std::vector<uint32_t>& bound_cols)>;

/// \brief The standard Database-backed oracle: selectivity from the
/// incrementally-maintained column statistics (storage/relation_stats.h)
/// — estimated matches = rows / prod(distinct(bound col)) — with a fixed
/// 4x-per-bound-column discount as the fallback when stats are
/// unavailable. `db` must outlive the returned function.
CardinalityFn MakeDbCardinality(const storage::Database* db);

/// \brief Per-step execution counters for plan profiling (EXPLAIN
/// ANALYZE; obs/profile.h holds the aggregated form). A counters vector
/// is parallel to CompiledRule::steps().
///
/// Counting rules make the totals summed over an ExecutePartition fan-out
/// bit-identical to a serial Execute(): steps before the driver repeat
/// identically in every partition, so only partition 0 counts them; the
/// driver's probe is entered once per partition but issued once
/// logically, so only partition 0 counts its invocation while every
/// partition counts the rows of its own chunk; steps after the driver
/// enumerate disjoint work per partition and count everywhere.
struct StepCounter {
  uint64_t invocations = 0;      ///< times the step was entered
  uint64_t rows_out = 0;         ///< rows passed to the next step
  uint64_t csr_invocations = 0;  ///< invocations served by a CSR snapshot
};
using StepCounters = std::vector<StepCounter>;

/// \brief An executable rule plan.
class CompiledRule {
 public:
  /// \brief Lowers `rule`. Fails (kUnsafeRule) when no valid literal order
  /// exists, i.e. the rule is unsafe.
  ///
  /// When `cardinality` is provided, positive atoms are ordered by an
  /// estimated probe cost — |R| discounted by the number of bound columns
  /// — instead of bound-count alone, so a small relation is scanned
  /// before a large one is probed (classic greedy join ordering).
  static Result<CompiledRule> Compile(const datalog::Rule& rule,
                                      const SymbolTable& syms,
                                      const CardinalityFn& cardinality = {});

  /// \brief Runs the plan, invoking `sink` once per satisfying assignment.
  void Execute(const RelationResolver& resolver, const BindingSink& sink) const;

  /// \brief Runs one of `num_parts` contiguous partitions of the plan.
  ///
  /// The plan's *driver* step — the first positive scan/probe — splits its
  /// row range into `num_parts` contiguous chunks and enumerates only the
  /// `part`-th; all other steps run unchanged. Concatenating the sink
  /// sequences for part = 0..num_parts-1 therefore yields exactly the
  /// Execute() sequence, which is what lets the parallel engine merge
  /// per-partition derivation buffers back into the serial insertion
  /// order. Plans with no positive atom run entirely in partition 0.
  ///
  /// `csrs` (nullable) selects the columnar path per step — see
  /// CsrBindings. A CSR-served probe enumerates matches in the exact
  /// posting-list order of the hash-index path (CSR spans are built in
  /// row insertion order), so the sink sequence — and therefore derived
  /// rows, insertion order, provenance, and stats — is bit-identical to
  /// the row path.
  /// `counters` (nullable) collects per-step execution counts — see
  /// StepCounters for the partition-counting rules; must be pre-sized to
  /// steps().size(). Null is the zero-overhead path (one pointer test
  /// per step entry and per enumerated row).
  void ExecutePartition(const RelationResolver& resolver,
                        const BindingSink& sink, size_t part,
                        size_t num_parts,
                        const CsrBindings* csrs = nullptr,
                        StepCounters* counters = nullptr) const;

  /// \brief Builds the head tuple for a satisfying assignment; only valid
  /// when !has_aggregates().
  storage::Tuple EmitHead(const std::vector<Value>& slots) const;

  Symbol head_predicate() const { return head_predicate_; }
  size_t head_arity() const { return head_args_.size(); }
  bool has_aggregates() const { return has_aggregates_; }
  const std::vector<CompiledHeadArg>& head_args() const { return head_args_; }
  size_t num_slots() const { return num_slots_; }

  /// \brief Occurrence ids of positive body atoms whose predicate is `p`.
  std::vector<int> OccurrencesOf(Symbol p) const;

  /// \brief The positive body atoms instantiated under a satisfying
  /// assignment — the premises justifying the derived head tuple. Used by
  /// provenance tracking (eval/provenance.h).
  std::vector<std::pair<Symbol, storage::Tuple>> Premises(
      const std::vector<Value>& slots) const;

  /// \brief Number of positive relational atoms in the body.
  int num_occurrences() const { return num_occurrences_; }

  /// \brief The lowered plan; the engine walks it to pre-build every index
  /// the plan will probe before fanning execution across threads.
  const std::vector<Step>& steps() const { return steps_; }

  /// \brief The driver step (first positive scan/probe in plan order), or
  /// nullptr when the body has no positive atom.
  const Step* driver() const {
    return driver_step_ < 0 ? nullptr : &steps_[driver_step_];
  }

  /// \brief One-line description of the chosen join plan, in step order
  /// (scan/probe with probed columns, anti-joins, filters, binds). Used by
  /// EXPLAIN and by the per-stratum trace notes.
  std::string PlanToString(const SymbolTable& syms) const;

  /// \brief Rendering of a single plan step (the per-atom label the
  /// profile records), e.g. "probe edge(0) [driver]" or "filter <".
  std::string StepToString(size_t idx, const SymbolTable& syms) const;

 private:
  Symbol head_predicate_ = kNoSymbol;
  std::vector<CompiledHeadArg> head_args_;
  bool has_aggregates_ = false;
  std::vector<Step> steps_;
  size_t num_slots_ = 0;
  int num_occurrences_ = 0;
  int driver_step_ = -1;  ///< index into steps_, -1 when no positive atom
  std::vector<std::pair<Symbol, int>> occurrence_preds_;  // (pred, occ)
  // Positive body atoms as (pred, per-column sources), for Premises().
  std::vector<std::pair<Symbol, std::vector<ArgSource>>> premise_specs_;

  void ExecuteStep(size_t idx, std::vector<Value>* slots,
                   const RelationResolver& resolver, const BindingSink& sink,
                   size_t part, size_t num_parts, const CsrBindings* csrs,
                   StepCounters* counters) const;
};

}  // namespace graphlog::eval

#endif  // GRAPHLOG_EVAL_COMPILED_RULE_H_
