#include "tc/columnar_tc.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "columnar/bitset.h"
#include "columnar/csr.h"
#include "columnar/csr_cache.h"
#include "exec/thread_pool.h"
#include "gov/governor.h"

namespace graphlog::tc {

using columnar::Bitset;
using columnar::Csr;
using storage::Relation;
using storage::Tuple;

Result<Relation> ColumnarTransitiveClosure(
    const Relation& edges, unsigned num_threads,
    obs::MetricsRegistry* metrics, const gov::GovernorContext* governor,
    TcStats* stats, columnar::CsrCache* cache) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  const unsigned lanes = exec::ThreadPool::ResolveParallelism(num_threads);

  std::shared_ptr<const Csr> csr;
  if (cache != nullptr) {
    GRAPHLOG_ASSIGN_OR_RETURN(csr, cache->Get(edges, metrics, governor));
  } else {
    GRAPHLOG_ASSIGN_OR_RETURN(Csr built,
                              columnar::BuildCsr(edges, metrics, governor));
    csr = std::make_shared<const Csr>(std::move(built));
  }
  const uint32_t n = csr->num_nodes();

  // Same governed fan-out discipline as ParallelTransitiveClosure: one
  // BFS per source, first failing source (in source order) wins, lanes
  // drain once the stop flag is up, token polled inside the expansion.
  std::atomic<bool> stop{false};
  std::mutex err_mu;
  Status lane_error = Status::OK();
  size_t err_src = n;
  auto record_error = [&](size_t s, Status st) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (s < err_src) {
      err_src = s;
      lane_error = std::move(st);
    }
    stop.store(true, std::memory_order_relaxed);
  };
  const std::atomic<bool>* cancel =
      governor != nullptr ? governor->token.flag() : nullptr;
  std::vector<std::vector<uint32_t>> reach(n);
  {
    exec::ThreadPool pool(lanes);
    // Per-worker scratch bitsets, reused across sources.
    struct Scratch {
      Bitset visited, frontier, next;
    };
    std::vector<Scratch> scratch(pool.parallelism());
    for (Scratch& sc : scratch) {
      sc.visited.ResetTo(n);
      sc.frontier.ResetTo(n);
      sc.next.ResetTo(n);
    }
    pool.ParallelFor(
        n,
        [&](unsigned wid, size_t s) {
          if (governor != nullptr) {
            if (stop.load(std::memory_order_relaxed)) return;
            Status st = governor->Check("tc.expand");
            if (!st.ok()) {
              record_error(s, std::move(st));
              return;
            }
          }
          Scratch& sc = scratch[wid];
          sc.visited.Reset();
          sc.frontier.Reset();
          for (uint32_t v : csr->Sorted(static_cast<uint32_t>(s))) {
            sc.frontier.Set(v);
          }
          size_t expansions = 0;
          // frontier &~ visited = the genuinely new wave; or its spans
          // into next; repeat until the wave is empty.
          while (sc.frontier.AndNot(sc.visited)) {
            sc.visited.OrWith(sc.frontier);
            sc.next.Reset();
            bool aborted = false;
            sc.frontier.ForEachSet([&](uint32_t u) {
              if (aborted) return;
              if (cancel != nullptr && (++expansions & 1023u) == 0 &&
                  cancel->load(std::memory_order_relaxed)) {
                record_error(s,
                             Status::Cancelled(
                                 "query cancelled at tc.expand"));
                aborted = true;
                return;
              }
              for (uint32_t v : csr->Sorted(u)) sc.next.Set(v);
            });
            if (aborted) return;
            std::swap(sc.frontier, sc.next);
          }
          std::vector<uint32_t>& local = reach[s];
          local.reserve(sc.visited.Count());
          sc.visited.ForEachSet([&](uint32_t v) { local.push_back(v); });
        },
        governor != nullptr ? &stop : nullptr);
  }
  if (err_src < n) return lane_error;

  size_t total = 0;
  for (const auto& local : reach) total += local.size();
  Relation tc(2);
  tc.Reserve(total);
  // Each (source, reached) pair is unique by construction — sources are
  // distinct and each source's reach set holds distinct nodes — so the
  // merge bulk-loads past the dedup set entirely.
  for (uint32_t s = 0; s < n; ++s) {
    const Value& vs = csr->values[s];
    for (uint32_t v : reach[s]) {
      tc.AppendUnique(Tuple{vs, csr->values[v]});
    }
  }
  if (stats != nullptr) {
    stats->rounds = n;
    stats->pair_visits = total;
  }
  // Budgets on the merged closure, exactly as in parallel_tc.cc: the
  // deterministic boundary of the kernel.
  if (governor != nullptr) {
    GRAPHLOG_RETURN_NOT_OK(governor->CheckInterrupts("tc.expand"));
    const gov::ResourceBudget& b = governor->budget;
    uint64_t row_cap = 0;  // 0 = no trip
    if (b.max_result_rows != 0 && tc.size() > b.max_result_rows) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_result_rows", "tc.expand",
                                        tc.size(), b.max_result_rows);
      }
      row_cap = b.max_result_rows;
    }
    if (b.max_bytes != 0 && tc.MemoryBytes() > b.max_bytes) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_bytes", "tc.expand",
                                        tc.MemoryBytes(), b.max_bytes);
      }
      uint64_t per_row = tc.MemoryBytes() / tc.size();
      uint64_t by_bytes = per_row == 0 ? tc.size() : b.max_bytes / per_row;
      if (row_cap == 0 || by_bytes < row_cap) row_cap = by_bytes;
    }
    if (row_cap != 0 && row_cap < tc.size()) {
      tc.TruncateTo(row_cap);
      if (stats != nullptr) stats->truncated = true;
    }
  }
  if (metrics != nullptr) {
    metrics->counter("tc.invocations")->Increment();
    metrics->counter("tc.pair_visits")->Add(total);
    metrics->histogram("tc.output_pairs")
        ->Observe(static_cast<int64_t>(tc.size()));
  }
  return tc;
}

}  // namespace graphlog::tc
