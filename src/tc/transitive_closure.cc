#include "tc/transitive_closure.h"

#include <unordered_map>
#include <vector>

namespace graphlog::tc {

using storage::Relation;
using storage::Tuple;

namespace {

/// Dense-id view of a binary relation: node values interned to uint32.
struct Adjacency {
  std::vector<Value> values;
  std::unordered_map<Value, uint32_t, ValueHash> ids;
  std::vector<std::vector<uint32_t>> out;

  uint32_t Intern(const Value& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(values.size()));
    if (inserted) {
      values.push_back(v);
      out.emplace_back();
    }
    return it->second;
  }

  static Adjacency Build(const Relation& edges) {
    Adjacency a;
    for (const Tuple& t : edges.rows()) {
      uint32_t u = a.Intern(t[0]);
      uint32_t v = a.Intern(t[1]);
      a.out[u].push_back(v);
    }
    return a;
  }
};

Relation NaiveTc(const Relation& edges, TcStats* stats) {
  Relation tc(2);
  tc.InsertAll(edges);
  bool changed = true;
  const std::vector<uint32_t> cols = {0};
  while (changed) {
    if (stats != nullptr) ++stats->rounds;
    changed = false;
    // Recompute T(x,y) :- T(x,z), E(z,y) over the FULL current closure.
    std::vector<Tuple> fresh;
    for (const Tuple& t : tc.rows()) {
      for (uint32_t i : edges.Probe(cols, Tuple{t[1]})) {
        if (stats != nullptr) ++stats->pair_visits;
        Tuple cand{t[0], edges.row(i)[1]};
        if (!tc.Contains(cand)) fresh.push_back(std::move(cand));
      }
    }
    for (Tuple& t : fresh) {
      if (tc.Insert(std::move(t))) changed = true;
    }
  }
  return tc;
}

Relation SemiNaiveTc(const Relation& edges, TcStats* stats) {
  Relation tc(2);
  Relation delta(2);
  tc.InsertAll(edges);
  delta.InsertAll(edges);
  const std::vector<uint32_t> cols = {0};
  while (!delta.empty()) {
    if (stats != nullptr) ++stats->rounds;
    Relation next(2);
    for (const Tuple& t : delta.rows()) {
      for (uint32_t i : edges.Probe(cols, Tuple{t[1]})) {
        if (stats != nullptr) ++stats->pair_visits;
        Tuple cand{t[0], edges.row(i)[1]};
        if (!tc.Contains(cand)) next.Insert(std::move(cand));
      }
    }
    tc.InsertAll(next);
    delta = std::move(next);
  }
  return tc;
}

Relation SquaringTc(const Relation& edges, TcStats* stats) {
  Relation tc(2);
  tc.InsertAll(edges);
  const std::vector<uint32_t> cols = {0};
  bool changed = true;
  while (changed) {
    if (stats != nullptr) ++stats->rounds;
    changed = false;
    // T := T ∪ T∘T — doubles the reachable path length each round.
    std::vector<Tuple> fresh;
    for (const Tuple& t : tc.rows()) {
      for (uint32_t i : tc.Probe(cols, Tuple{t[1]})) {
        if (stats != nullptr) ++stats->pair_visits;
        Tuple cand{t[0], tc.row(i)[1]};
        if (!tc.Contains(cand)) fresh.push_back(std::move(cand));
      }
    }
    for (Tuple& t : fresh) {
      if (tc.Insert(std::move(t))) changed = true;
    }
  }
  return tc;
}

Relation BfsTc(const Relation& edges, TcStats* stats) {
  Adjacency adj = Adjacency::Build(edges);
  Relation tc(2);
  size_t n = adj.values.size();
  std::vector<uint32_t> stack;
  std::vector<bool> seen(n);
  for (uint32_t s = 0; s < n; ++s) {
    if (stats != nullptr) ++stats->rounds;
    std::fill(seen.begin(), seen.end(), false);
    stack.clear();
    for (uint32_t v : adj.out[s]) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      tc.Insert(Tuple{adj.values[s], adj.values[u]});
      for (uint32_t v : adj.out[u]) {
        if (stats != nullptr) ++stats->pair_visits;
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return tc;
}

}  // namespace

namespace {

std::string_view AlgorithmName(TcAlgorithm algorithm) {
  switch (algorithm) {
    case TcAlgorithm::kNaive:
      return "naive";
    case TcAlgorithm::kSemiNaive:
      return "semi-naive";
    case TcAlgorithm::kSquaring:
      return "squaring";
    case TcAlgorithm::kBfs:
      return "bfs";
  }
  return "unknown";
}

}  // namespace

Result<Relation> TransitiveClosure(const Relation& edges,
                                   TcAlgorithm algorithm, TcStats* stats,
                                   obs::Tracer* tracer,
                                   obs::MetricsRegistry* metrics) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  obs::SpanGuard span(tracer, "tc");
  // Effort counters feed the span/registry even when the caller passed no
  // stats.
  TcStats local;
  if (stats == nullptr && (span.enabled() || metrics != nullptr)) {
    stats = &local;
  }
  Relation closure(2);
  switch (algorithm) {
    case TcAlgorithm::kNaive:
      closure = NaiveTc(edges, stats);
      break;
    case TcAlgorithm::kSemiNaive:
      closure = SemiNaiveTc(edges, stats);
      break;
    case TcAlgorithm::kSquaring:
      closure = SquaringTc(edges, stats);
      break;
    case TcAlgorithm::kBfs:
      closure = BfsTc(edges, stats);
      break;
    default:
      return Status::InvalidArgument("unknown TC algorithm");
  }
  if (span.enabled()) {
    span.AddNote("algorithm", AlgorithmName(algorithm));
    span.AddAttr("edges", static_cast<int64_t>(edges.size()));
    span.AddAttr("pairs", static_cast<int64_t>(closure.size()));
    span.AddAttr("rounds", static_cast<int64_t>(stats->rounds));
    span.AddAttr("pair_visits", static_cast<int64_t>(stats->pair_visits));
  }
  if (metrics != nullptr) {
    metrics->counter("tc.invocations")->Increment();
    metrics->counter("tc.rounds")->Add(stats->rounds);
    metrics->counter("tc.pair_visits")->Add(stats->pair_visits);
    metrics->histogram("tc.output_pairs")
        ->Observe(static_cast<int64_t>(closure.size()));
  }
  return closure;
}

Result<Relation> ReachableFrom(const Relation& edges, const Value& source) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  Adjacency adj = Adjacency::Build(edges);
  Relation out(1);
  auto it = adj.ids.find(source);
  if (it == adj.ids.end()) return out;
  std::vector<uint32_t> stack{it->second};
  // The source itself is reachable only via a non-empty path (positive
  // closure); do not pre-mark it.
  std::vector<bool> emitted(adj.values.size());
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t v : adj.out[u]) {
      if (!emitted[v]) {
        emitted[v] = true;
        out.Insert(Tuple{adj.values[v]});
        stack.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace graphlog::tc
