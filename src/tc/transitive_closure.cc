#include "tc/transitive_closure.h"

#include <unordered_map>
#include <vector>

#include "gov/governor.h"

namespace graphlog::tc {

using storage::Relation;
using storage::Tuple;

namespace {

/// Dense-id view of a binary relation: node values interned to uint32.
struct Adjacency {
  std::vector<Value> values;
  std::unordered_map<Value, uint32_t, ValueHash> ids;
  std::vector<std::vector<uint32_t>> out;

  uint32_t Intern(const Value& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(values.size()));
    if (inserted) {
      values.push_back(v);
      out.emplace_back();
    }
    return it->second;
  }

  static Adjacency Build(const Relation& edges) {
    Adjacency a;
    for (const Tuple& t : edges.rows()) {
      uint32_t u = a.Intern(t[0]);
      uint32_t v = a.Intern(t[1]);
      a.out[u].push_back(v);
    }
    return a;
  }
};

/// The kernels' shared round boundary: interrupts (cancellation,
/// deadline, armed tc.expand faults), then budgets against the closure
/// built so far. Sets *truncated and returns OK when the budget allows
/// partial results; the kernel then stops at the boundary.
Status TcRoundCheck(const gov::GovernorContext* governor, uint64_t rounds,
                    const Relation& tc, bool* truncated) {
  if (governor == nullptr) return Status::OK();
  GRAPHLOG_RETURN_NOT_OK(governor->Check("tc.expand"));
  const gov::ResourceBudget& b = governor->budget;
  if (!b.any()) return Status::OK();
  const char* tripped = nullptr;
  uint64_t observed = 0, limit = 0;
  if (b.max_rounds != 0 && rounds >= b.max_rounds) {
    tripped = "max_rounds";
    observed = rounds + 1;
    limit = b.max_rounds;
  } else if (b.max_result_rows != 0 && tc.size() > b.max_result_rows) {
    tripped = "max_result_rows";
    observed = tc.size();
    limit = b.max_result_rows;
  } else if (b.max_bytes != 0 && tc.MemoryBytes() > b.max_bytes) {
    tripped = "max_bytes";
    observed = tc.MemoryBytes();
    limit = b.max_bytes;
  }
  if (tripped == nullptr) return Status::OK();
  if (b.return_partial) {
    *truncated = true;
    return Status::OK();
  }
  return gov::BudgetExceededError(tripped, "tc.expand", observed, limit);
}

Result<Relation> NaiveTc(const Relation& edges, TcStats* stats,
                         const gov::GovernorContext* governor) {
  Relation tc(2);
  tc.InsertAll(edges);
  bool changed = true;
  bool truncated = false;
  uint64_t rounds = 0;
  const std::vector<uint32_t> cols = {0};
  while (changed) {
    GRAPHLOG_RETURN_NOT_OK(TcRoundCheck(governor, rounds, tc, &truncated));
    if (truncated) break;
    ++rounds;
    if (stats != nullptr) ++stats->rounds;
    changed = false;
    // Recompute T(x,y) :- T(x,z), E(z,y) over the FULL current closure.
    std::vector<Tuple> fresh;
    for (const Tuple& t : tc.rows()) {
      for (uint32_t i : edges.Probe(cols, Tuple{t[1]})) {
        if (stats != nullptr) ++stats->pair_visits;
        Tuple cand{t[0], edges.row(i)[1]};
        if (!tc.Contains(cand)) fresh.push_back(std::move(cand));
      }
    }
    for (Tuple& t : fresh) {
      if (tc.Insert(std::move(t))) changed = true;
    }
  }
  if (stats != nullptr) stats->truncated = truncated;
  return tc;
}

Result<Relation> SemiNaiveTc(const Relation& edges, TcStats* stats,
                             const gov::GovernorContext* governor) {
  Relation tc(2);
  Relation delta(2);
  tc.InsertAll(edges);
  delta.InsertAll(edges);
  bool truncated = false;
  uint64_t rounds = 0;
  const std::vector<uint32_t> cols = {0};
  while (!delta.empty()) {
    GRAPHLOG_RETURN_NOT_OK(TcRoundCheck(governor, rounds, tc, &truncated));
    if (truncated) break;
    ++rounds;
    if (stats != nullptr) ++stats->rounds;
    Relation next(2);
    for (const Tuple& t : delta.rows()) {
      for (uint32_t i : edges.Probe(cols, Tuple{t[1]})) {
        if (stats != nullptr) ++stats->pair_visits;
        Tuple cand{t[0], edges.row(i)[1]};
        if (!tc.Contains(cand)) next.Insert(std::move(cand));
      }
    }
    tc.InsertAll(next);
    delta = std::move(next);
  }
  if (stats != nullptr) stats->truncated = truncated;
  return tc;
}

Result<Relation> SquaringTc(const Relation& edges, TcStats* stats,
                            const gov::GovernorContext* governor) {
  Relation tc(2);
  tc.InsertAll(edges);
  const std::vector<uint32_t> cols = {0};
  bool changed = true;
  bool truncated = false;
  uint64_t rounds = 0;
  while (changed) {
    GRAPHLOG_RETURN_NOT_OK(TcRoundCheck(governor, rounds, tc, &truncated));
    if (truncated) break;
    ++rounds;
    if (stats != nullptr) ++stats->rounds;
    changed = false;
    // T := T ∪ T∘T — doubles the reachable path length each round.
    std::vector<Tuple> fresh;
    for (const Tuple& t : tc.rows()) {
      for (uint32_t i : tc.Probe(cols, Tuple{t[1]})) {
        if (stats != nullptr) ++stats->pair_visits;
        Tuple cand{t[0], tc.row(i)[1]};
        if (!tc.Contains(cand)) fresh.push_back(std::move(cand));
      }
    }
    for (Tuple& t : fresh) {
      if (tc.Insert(std::move(t))) changed = true;
    }
  }
  if (stats != nullptr) stats->truncated = truncated;
  return tc;
}

Result<Relation> BfsTc(const Relation& edges, TcStats* stats,
                       const gov::GovernorContext* governor) {
  Adjacency adj = Adjacency::Build(edges);
  Relation tc(2);
  size_t n = adj.values.size();
  std::vector<uint32_t> stack;
  std::vector<bool> seen(n);
  bool truncated = false;
  for (uint32_t s = 0; s < n; ++s) {
    // One "round" per source: the boundary where the per-source DFS
    // below becomes visible in the closure.
    GRAPHLOG_RETURN_NOT_OK(TcRoundCheck(governor, s, tc, &truncated));
    if (truncated) break;
    if (stats != nullptr) ++stats->rounds;
    std::fill(seen.begin(), seen.end(), false);
    stack.clear();
    for (uint32_t v : adj.out[s]) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      tc.Insert(Tuple{adj.values[s], adj.values[u]});
      for (uint32_t v : adj.out[u]) {
        if (stats != nullptr) ++stats->pair_visits;
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  if (stats != nullptr) stats->truncated = truncated;
  return tc;
}

}  // namespace

namespace {

std::string_view AlgorithmName(TcAlgorithm algorithm) {
  switch (algorithm) {
    case TcAlgorithm::kNaive:
      return "naive";
    case TcAlgorithm::kSemiNaive:
      return "semi-naive";
    case TcAlgorithm::kSquaring:
      return "squaring";
    case TcAlgorithm::kBfs:
      return "bfs";
  }
  return "unknown";
}

}  // namespace

Result<Relation> TransitiveClosure(const Relation& edges,
                                   TcAlgorithm algorithm, TcStats* stats,
                                   obs::Tracer* tracer,
                                   obs::MetricsRegistry* metrics,
                                   const gov::GovernorContext* governor) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  obs::SpanGuard span(tracer, "tc");
  // Effort counters feed the span/registry even when the caller passed no
  // stats; a governed run always tracks them so truncation is reportable.
  TcStats local;
  if (stats == nullptr &&
      (span.enabled() || metrics != nullptr || governor != nullptr)) {
    stats = &local;
  }
  Relation closure(2);
  switch (algorithm) {
    case TcAlgorithm::kNaive: {
      GRAPHLOG_ASSIGN_OR_RETURN(closure, NaiveTc(edges, stats, governor));
      break;
    }
    case TcAlgorithm::kSemiNaive: {
      GRAPHLOG_ASSIGN_OR_RETURN(closure, SemiNaiveTc(edges, stats, governor));
      break;
    }
    case TcAlgorithm::kSquaring: {
      GRAPHLOG_ASSIGN_OR_RETURN(closure, SquaringTc(edges, stats, governor));
      break;
    }
    case TcAlgorithm::kBfs: {
      GRAPHLOG_ASSIGN_OR_RETURN(closure, BfsTc(edges, stats, governor));
      break;
    }
    default:
      return Status::InvalidArgument("unknown TC algorithm");
  }
  if (span.enabled()) {
    span.AddNote("algorithm", AlgorithmName(algorithm));
    span.AddAttr("edges", static_cast<int64_t>(edges.size()));
    span.AddAttr("pairs", static_cast<int64_t>(closure.size()));
    span.AddAttr("rounds", static_cast<int64_t>(stats->rounds));
    span.AddAttr("pair_visits", static_cast<int64_t>(stats->pair_visits));
  }
  if (metrics != nullptr) {
    metrics->counter("tc.invocations")->Increment();
    metrics->counter("tc.rounds")->Add(stats->rounds);
    metrics->counter("tc.pair_visits")->Add(stats->pair_visits);
    metrics->histogram("tc.output_pairs")
        ->Observe(static_cast<int64_t>(closure.size()));
  }
  return closure;
}

Result<Relation> ReachableFrom(const Relation& edges, const Value& source) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  Adjacency adj = Adjacency::Build(edges);
  Relation out(1);
  auto it = adj.ids.find(source);
  if (it == adj.ids.end()) return out;
  std::vector<uint32_t> stack{it->second};
  // The source itself is reachable only via a non-empty path (positive
  // closure); do not pre-mark it.
  std::vector<bool> emitted(adj.values.size());
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t v : adj.out[u]) {
      if (!emitted[v]) {
        emitted[v] = true;
        out.Insert(Tuple{adj.values[v]});
        stack.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace graphlog::tc
