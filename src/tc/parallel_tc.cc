#include "tc/parallel_tc.h"

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

namespace graphlog::tc {

using storage::Relation;
using storage::Tuple;

Result<Relation> ParallelTransitiveClosure(const Relation& edges,
                                           unsigned num_threads) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // Dense-id adjacency (same layout as the sequential kernels).
  std::unordered_map<Value, uint32_t, ValueHash> ids;
  std::vector<Value> values;
  auto intern = [&](const Value& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(values.size()));
    if (inserted) values.push_back(v);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> flat;
  flat.reserve(edges.size());
  for (const Tuple& t : edges.rows()) {
    uint32_t u = intern(t[0]);
    uint32_t v = intern(t[1]);
    flat.emplace_back(u, v);
  }
  const size_t n = values.size();
  std::vector<std::vector<uint32_t>> out(n);
  for (auto [u, v] : flat) out[u].push_back(v);

  // Each worker claims sources from a shared counter and accumulates its
  // closure pairs locally; the merge into one Relation is sequential (the
  // dedup hash set is not concurrent), but per-source search dominates.
  std::atomic<uint32_t> next_source{0};
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> partials(
      num_threads);

  auto worker = [&](unsigned wid) {
    std::vector<bool> seen(n);
    std::vector<uint32_t> stack;
    auto& local = partials[wid];
    while (true) {
      uint32_t s = next_source.fetch_add(1, std::memory_order_relaxed);
      if (s >= n) break;
      std::fill(seen.begin(), seen.end(), false);
      stack.clear();
      for (uint32_t v : out[s]) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
          local.emplace_back(s, v);
        }
      }
      while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t v : out[u]) {
          if (!seen[v]) {
            seen[v] = true;
            stack.push_back(v);
            local.emplace_back(s, v);
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    threads.emplace_back(worker, w);
  }
  for (std::thread& t : threads) t.join();

  Relation tc(2);
  for (const auto& local : partials) {
    for (auto [u, v] : local) {
      tc.Insert(Tuple{values[u], values[v]});
    }
  }
  return tc;
}

}  // namespace graphlog::tc
