#include "tc/parallel_tc.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "gov/governor.h"

namespace graphlog::tc {

using storage::Relation;
using storage::Tuple;

Result<Relation> ParallelTransitiveClosure(const Relation& edges,
                                           unsigned num_threads,
                                           obs::MetricsRegistry* metrics,
                                           const gov::GovernorContext* governor,
                                           TcStats* stats) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  const unsigned lanes = exec::ThreadPool::ResolveParallelism(num_threads);

  // Dense-id adjacency (same layout as the sequential kernels).
  std::unordered_map<Value, uint32_t, ValueHash> ids;
  std::vector<Value> values;
  auto intern = [&](const Value& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(values.size()));
    if (inserted) values.push_back(v);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> flat;
  flat.reserve(edges.size());
  for (const Tuple& t : edges.rows()) {
    uint32_t u = intern(t[0]);
    uint32_t v = intern(t[1]);
    flat.emplace_back(u, v);
  }
  const size_t n = values.size();
  std::vector<std::vector<uint32_t>> out(n);
  for (auto [u, v] : flat) out[u].push_back(v);

  // One DFS per source, fanned across the pool. Results are keyed by
  // source, so the merge below runs in source order and the output
  // relation's insertion order is identical for every thread count.
  //
  // Governed abort machinery: the first failing source (in source order)
  // records its Status and raises the stop flag the pool observes before
  // each claim; inside a DFS the cancellation token is polled every ~1k
  // pops so one huge source cannot hold the query hostage.
  std::atomic<bool> stop{false};
  std::mutex err_mu;
  Status lane_error = Status::OK();
  size_t err_src = n;
  auto record_error = [&](size_t s, Status st) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (s < err_src) {
      err_src = s;
      lane_error = std::move(st);
    }
    stop.store(true, std::memory_order_relaxed);
  };
  const std::atomic<bool>* cancel =
      governor != nullptr ? governor->token.flag() : nullptr;
  std::vector<std::vector<uint32_t>> reach(n);
  {
    exec::ThreadPool pool(lanes);
    std::vector<std::vector<bool>> seen(pool.parallelism(),
                                        std::vector<bool>(n));
    std::vector<std::vector<uint32_t>> stacks(pool.parallelism());
    pool.ParallelFor(
        n,
        [&](unsigned wid, size_t s) {
          if (governor != nullptr) {
            if (stop.load(std::memory_order_relaxed)) return;
            Status st = governor->Check("tc.expand");
            if (!st.ok()) {
              record_error(s, std::move(st));
              return;
            }
          }
          std::vector<bool>& sn = seen[wid];
          std::vector<uint32_t>& stack = stacks[wid];
          std::fill(sn.begin(), sn.end(), false);
          stack.clear();
          std::vector<uint32_t>& local = reach[s];
          for (uint32_t v : out[s]) {
            if (!sn[v]) {
              sn[v] = true;
              stack.push_back(v);
              local.push_back(v);
            }
          }
          size_t pops = 0;
          while (!stack.empty()) {
            if (cancel != nullptr && (++pops & 1023u) == 0 &&
                cancel->load(std::memory_order_relaxed)) {
              record_error(s,
                           Status::Cancelled("query cancelled at tc.expand"));
              return;
            }
            uint32_t u = stack.back();
            stack.pop_back();
            for (uint32_t v : out[u]) {
              if (!sn[v]) {
                sn[v] = true;
                stack.push_back(v);
                local.push_back(v);
              }
            }
          }
        },
        governor != nullptr ? &stop : nullptr);
  }
  // The pool has joined. Abort before the merge so a cancelled or failed
  // fan-out never materializes a partial closure.
  if (err_src < n) return lane_error;

  size_t total = 0;
  for (const auto& local : reach) total += local.size();
  Relation tc(2);
  tc.Reserve(total);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t v : reach[s]) {
      tc.Insert(Tuple{values[s], values[v]});
    }
  }
  if (stats != nullptr) {
    stats->rounds = n;
    stats->pair_visits = total;
  }
  // Budgets are enforced on the merged closure — the only point of this
  // kernel where row count and byte estimate are deterministic.
  if (governor != nullptr) {
    GRAPHLOG_RETURN_NOT_OK(governor->CheckInterrupts("tc.expand"));
    const gov::ResourceBudget& b = governor->budget;
    uint64_t row_cap = 0;  // 0 = no trip
    if (b.max_result_rows != 0 && tc.size() > b.max_result_rows) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_result_rows", "tc.expand",
                                        tc.size(), b.max_result_rows);
      }
      row_cap = b.max_result_rows;
    }
    if (b.max_bytes != 0 && tc.MemoryBytes() > b.max_bytes) {
      if (!b.return_partial) {
        return gov::BudgetExceededError("max_bytes", "tc.expand",
                                        tc.MemoryBytes(), b.max_bytes);
      }
      // Rows admissible under the byte budget, by the deterministic
      // per-row estimate.
      uint64_t per_row = tc.MemoryBytes() / tc.size();
      uint64_t by_bytes = per_row == 0 ? tc.size() : b.max_bytes / per_row;
      if (row_cap == 0 || by_bytes < row_cap) row_cap = by_bytes;
    }
    if (row_cap != 0 && row_cap < tc.size()) {
      tc.TruncateTo(row_cap);
      if (stats != nullptr) stats->truncated = true;
    }
  }
  if (metrics != nullptr) {
    metrics->counter("tc.invocations")->Increment();
    metrics->counter("tc.pair_visits")->Add(total);
    metrics->histogram("tc.output_pairs")
        ->Observe(static_cast<int64_t>(tc.size()));
  }
  return tc;
}

}  // namespace graphlog::tc
