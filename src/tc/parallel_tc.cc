#include "tc/parallel_tc.h"

#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"

namespace graphlog::tc {

using storage::Relation;
using storage::Tuple;

Result<Relation> ParallelTransitiveClosure(const Relation& edges,
                                           unsigned num_threads,
                                           obs::MetricsRegistry* metrics) {
  if (edges.arity() != 2) {
    return Status::InvalidArgument(
        "transitive closure requires a binary relation");
  }
  const unsigned lanes = exec::ThreadPool::ResolveParallelism(num_threads);

  // Dense-id adjacency (same layout as the sequential kernels).
  std::unordered_map<Value, uint32_t, ValueHash> ids;
  std::vector<Value> values;
  auto intern = [&](const Value& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<uint32_t>(values.size()));
    if (inserted) values.push_back(v);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> flat;
  flat.reserve(edges.size());
  for (const Tuple& t : edges.rows()) {
    uint32_t u = intern(t[0]);
    uint32_t v = intern(t[1]);
    flat.emplace_back(u, v);
  }
  const size_t n = values.size();
  std::vector<std::vector<uint32_t>> out(n);
  for (auto [u, v] : flat) out[u].push_back(v);

  // One DFS per source, fanned across the pool. Results are keyed by
  // source, so the merge below runs in source order and the output
  // relation's insertion order is identical for every thread count.
  std::vector<std::vector<uint32_t>> reach(n);
  {
    exec::ThreadPool pool(lanes);
    std::vector<std::vector<bool>> seen(pool.parallelism(),
                                        std::vector<bool>(n));
    std::vector<std::vector<uint32_t>> stacks(pool.parallelism());
    pool.ParallelFor(n, [&](unsigned wid, size_t s) {
      std::vector<bool>& sn = seen[wid];
      std::vector<uint32_t>& stack = stacks[wid];
      std::fill(sn.begin(), sn.end(), false);
      stack.clear();
      std::vector<uint32_t>& local = reach[s];
      for (uint32_t v : out[s]) {
        if (!sn[v]) {
          sn[v] = true;
          stack.push_back(v);
          local.push_back(v);
        }
      }
      while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t v : out[u]) {
          if (!sn[v]) {
            sn[v] = true;
            stack.push_back(v);
            local.push_back(v);
          }
        }
      }
    });
  }

  size_t total = 0;
  for (const auto& local : reach) total += local.size();
  Relation tc(2);
  tc.Reserve(total);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t v : reach[s]) {
      tc.Insert(Tuple{values[s], values[v]});
    }
  }
  if (metrics != nullptr) {
    metrics->counter("tc.invocations")->Increment();
    metrics->counter("tc.pair_visits")->Add(total);
    metrics->histogram("tc.output_pairs")
        ->Observe(static_cast<int64_t>(tc.size()));
  }
  return tc;
}

}  // namespace graphlog::tc
