// Dedicated transitive-closure kernels.
//
// Section 6 of the paper: "implementations can benefit from the existing
// work on transitive closure computation and linear Datalog optimization".
// This module provides that substrate: four interchangeable algorithms for
// computing the positive closure of a binary relation, used by the
// benchmark ablation (bench_tc_ablation) and as oracles in tests.
//
//   * kNaive      — iterate T := T ∪ T∘E until fixpoint, recomputing the
//                   full join each round (the naive Datalog evaluation).
//   * kSemiNaive  — differential: only join the last round's new pairs
//                   against E (what the Datalog engine does).
//   * kSquaring   — logarithmic rounds: T := T ∪ T∘T ("smart" TC, [Ull89]);
//                   few rounds, heavier joins.
//   * kBfs        — per-source DFS/BFS over an adjacency list; the classic
//                   graph-algorithmic approach ([JAN87] style).
//
// All four return identical relations; they differ only in cost shape.

#ifndef GRAPHLOG_TC_TRANSITIVE_CLOSURE_H_
#define GRAPHLOG_TC_TRANSITIVE_CLOSURE_H_

#include <cstdint>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/relation.h"

namespace graphlog::gov {
struct GovernorContext;  // gov/governor.h
}

namespace graphlog::tc {

/// \brief Algorithm selector for TransitiveClosure().
enum class TcAlgorithm : uint8_t {
  kNaive,
  kSemiNaive,
  kSquaring,
  kBfs,
};

/// \brief Statistics of one closure computation.
struct TcStats {
  uint64_t rounds = 0;        ///< fixpoint rounds (BFS: source count)
  uint64_t pair_visits = 0;   ///< candidate pairs generated (incl. dups)
  /// True when a governed run stopped early at a round boundary because
  /// a resource budget tripped with ResourceBudget::return_partial set;
  /// the returned relation then holds the (deterministic) partial
  /// closure built so far.
  bool truncated = false;
};

/// \brief Computes the positive transitive closure of binary relation
/// `edges`. Fails with kInvalidArgument when arity != 2.
///
/// When `tracer` is set a "tc" span is recorded (algorithm, input/output
/// sizes, rounds, candidate pairs); when `metrics` is set the cumulative
/// kernel counters (`tc.invocations`, `tc.rounds`, `tc.pair_visits`) and
/// the `tc.output_pairs` distribution are folded into the registry. Null
/// for either costs one pointer test.
///
/// When `governor` is set the kernels poll cancellation/deadline and any
/// armed `tc.expand` fault at every round boundary (BFS: per source) and
/// enforce the resource budgets (max_rounds against fixpoint rounds,
/// max_result_rows against closure pairs, max_bytes against the
/// closure's estimated bytes). Budget trips either fail with
/// kBudgetExceeded or — with return_partial — stop at the boundary and
/// return the partial closure with TcStats::truncated set. All checks
/// compare deterministic quantities at deterministic points.
Result<storage::Relation> TransitiveClosure(
    const storage::Relation& edges, TcAlgorithm algorithm,
    TcStats* stats = nullptr, obs::Tracer* tracer = nullptr,
    obs::MetricsRegistry* metrics = nullptr,
    const gov::GovernorContext* governor = nullptr);

/// \brief Closure of a single source: all y with source ->+ y. Linear-time
/// BFS; the right tool when one endpoint is fixed (the Figure 12 query).
Result<storage::Relation> ReachableFrom(const storage::Relation& edges,
                                        const Value& source);

}  // namespace graphlog::tc

#endif  // GRAPHLOG_TC_TRANSITIVE_CLOSURE_H_
