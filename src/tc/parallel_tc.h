// Parallel transitive closure.
//
// Section 6 of the paper: "Our results imply that GraphLog is in QNC,
// hence amenable to efficient parallel implementations." This module
// exercises that claim operationally: per-source BFS closure is
// embarrassingly parallel across sources, so the closure of a graph
// partitions cleanly over worker threads. The bench_parallel_tc harness
// measures the speedup curve.

#ifndef GRAPHLOG_TC_PARALLEL_TC_H_
#define GRAPHLOG_TC_PARALLEL_TC_H_

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/relation.h"
#include "tc/transitive_closure.h"

namespace graphlog::gov {
struct GovernorContext;  // gov/governor.h
}

namespace graphlog::tc {

/// \brief Computes the positive transitive closure of binary `edges`
/// with `num_threads` workers (0 = hardware concurrency) on the shared
/// exec::ThreadPool. Per-source results are merged in source order, so
/// the output relation — contents *and* insertion order — is identical
/// for every thread count; only wall-clock differs.
///
/// When `metrics` is set the kernel folds `tc.invocations` and the
/// `tc.output_pairs` distribution into the registry (same names as the
/// sequential kernels — a closure is a closure); null costs one test.
///
/// When `governor` is set, every lane re-checks the cancellation token,
/// deadline, and the `tc.expand` injection point before each source it
/// claims, and additionally polls the token every ~1k stack pops inside
/// a source's DFS — cancellation latency is bounded by a slice of one
/// source's expansion, not the whole fan-out. A governed abort stops the
/// remaining lanes and returns before the merge, so no partial closure
/// escapes. Budgets are enforced on the merged result (the only
/// deterministic boundary of this kernel): a max_result_rows /
/// max_bytes trip fails with kBudgetExceeded, or with return_partial
/// truncates the (deterministically ordered) closure and sets
/// `stats->truncated`.
Result<storage::Relation> ParallelTransitiveClosure(
    const storage::Relation& edges, unsigned num_threads = 0,
    obs::MetricsRegistry* metrics = nullptr,
    const gov::GovernorContext* governor = nullptr,
    TcStats* stats = nullptr);

}  // namespace graphlog::tc

#endif  // GRAPHLOG_TC_PARALLEL_TC_H_
