// Columnar transitive closure: per-source BFS over CSR adjacency with
// bitset frontiers (columnar/bitset.h), the closure kernel of the
// columnar path. Same fan-out/merge discipline as ParallelTransitiveClosure
// (parallel_tc.h) — per-source results merged in source order, so output
// contents and insertion order are identical for every thread count —
// but the expansion is word-at-a-time (frontier &~ visited, or-scan of
// sorted spans) and the merge bulk-loads via Relation::AppendUnique,
// skipping the per-row dedup hashing: each (source, reached) pair is
// emitted exactly once by construction.

#ifndef GRAPHLOG_TC_COLUMNAR_TC_H_
#define GRAPHLOG_TC_COLUMNAR_TC_H_

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/relation.h"
#include "tc/transitive_closure.h"

namespace graphlog::gov {
struct GovernorContext;  // gov/governor.h
}

namespace graphlog::columnar {
class CsrCache;  // columnar/csr_cache.h
}

namespace graphlog::tc {

/// \brief Transitive closure of binary `edges` via per-source bitset
/// BFS over a CSR snapshot, fanned across `num_threads` workers (0 =
/// hardware concurrency). Result set equals every other TC kernel;
/// insertion order is (source in first-appearance order, reached in
/// ascending dense id) and identical across thread counts.
///
/// Governance matches ParallelTransitiveClosure: the `csr.build` point
/// gates the CSR construction, every lane checks `tc.expand` per source
/// claimed, the cancellation token is polled every ~1k edge expansions
/// inside a source's BFS, and max_result_rows/max_bytes budgets are
/// enforced on the merged closure (strict fail, or deterministic
/// truncation + `stats->truncated` with return_partial).
///
/// `cache` (nullable) reuses/stores the CSR snapshot across calls,
/// invalidated by the relation's data_generation.
Result<storage::Relation> ColumnarTransitiveClosure(
    const storage::Relation& edges, unsigned num_threads = 0,
    obs::MetricsRegistry* metrics = nullptr,
    const gov::GovernorContext* governor = nullptr, TcStats* stats = nullptr,
    columnar::CsrCache* cache = nullptr);

}  // namespace graphlog::tc

#endif  // GRAPHLOG_TC_COLUMNAR_TC_H_
